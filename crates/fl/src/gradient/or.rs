//! OR (Song et al., BigData'19): exact MC-SV over gradient-reconstructed
//! models.
//!
//! OR takes the gradients recorded within the full-clients FL process and
//! treats them as the gradients of every other combination, reconstructing
//! `M_S` for all `2^n` coalitions without extra training. All `2^n`
//! *evaluations* still happen (cheap: load parameters + test), which is why
//! OR's time grows visibly at `n = 10` in Table IV while staying far below
//! retraining-based exact SV. There is no approximation-error guarantee —
//! the reconstructed trajectory is not the coalition's true trajectory.

use fedval_core::exact::exact_mc_sv;
use fedval_core::utility::CachedUtility;
use fedval_data::Dataset;
use fedval_nn::Network;

use crate::gradient::ReconstructedUtility;
use crate::history::TrainingHistory;

/// OR valuation: exact MC-SV on the reconstructed utility table.
pub fn or_valuation(history: &TrainingHistory, net: Network, test: Dataset) -> Vec<f64> {
    let n = history.n_clients();
    assert!(n <= 20, "OR enumerates 2^n reconstructions (n = {n})");
    let utility = CachedUtility::new(ReconstructedUtility::new(history, net, test));
    exact_mc_sv(&utility)
}

#[cfg(test)]
// Tests assert invariants; an unwrap that trips IS the test failing.
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::config::FedAvgConfig;
    use crate::fedavg::train_with_history;
    use crate::model::ModelSpec;
    use fedval_data::{MnistLike, SyntheticSetup};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(n: usize) -> (Vec<Dataset>, Dataset) {
        let gen = MnistLike::new(2);
        let (train, test) = gen.generate_split(60 * n, 100, 3);
        let mut rng = StdRng::seed_from_u64(4);
        let clients = SyntheticSetup::SameSizeSameDist.partition(&train, n, &mut rng);
        (clients, test)
    }

    #[test]
    fn or_produces_plausible_values() {
        let (clients, test) = setup(4);
        let spec = ModelSpec::default_mlp();
        let cfg = FedAvgConfig {
            rounds: 3,
            local_epochs: 1,
            ..Default::default()
        };
        let (net, history) = train_with_history(&spec, &clients, 64, 10, &cfg);
        let phi = or_valuation(&history, net, test);
        assert_eq!(phi.len(), 4);
        // Efficiency: Σϕ = U_rec(N) − U_rec(∅); both ends of the recon
        // table are the true endpoints of training, so the total must be
        // the actual accuracy gain (> 0 on this learnable problem).
        let total: f64 = phi.iter().sum();
        assert!(total > 0.1, "total {total}");
        // IID equal-size clients: no value should dominate absurdly.
        for &v in &phi {
            assert!(v > -0.2 && v < total, "{phi:?}");
        }
    }

    #[test]
    fn or_gives_zero_to_empty_client() {
        let (mut clients, test) = setup(4);
        clients[1] = Dataset::empty(64, 10);
        let spec = ModelSpec::default_mlp();
        let cfg = FedAvgConfig {
            rounds: 2,
            local_epochs: 1,
            ..Default::default()
        };
        let (net, history) = train_with_history(&spec, &clients, 64, 10, &cfg);
        let phi = or_valuation(&history, net, test);
        // A client with no data contributes no update in any reconstruction
        // ⇒ exact null player on the reconstructed game.
        assert!(
            phi[1].abs() < 1e-9,
            "free rider must get zero, got {}",
            phi[1]
        );
    }
}
