//! Experiment problem builders: dataset + partition + model + FedAvg
//! hyper-parameters for each table and figure.

use rand::rngs::StdRng;
use rand::SeedableRng;

use fedval_data::{AdultLike, Dataset, FemnistLike, MnistLike, SyntheticSetup};
use fedval_fl::{FedAvgConfig, FlUtility, GbdtUtility, ModelSpec};
use fedval_gbdt::GbdtParams;

use crate::config;

/// Which neural model family an experiment trains (paper: MLP and CNN).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NeuralModel {
    Mlp,
    Cnn,
}

impl NeuralModel {
    pub fn name(self) -> &'static str {
        match self {
            NeuralModel::Mlp => "MLP",
            NeuralModel::Cnn => "CNN",
        }
    }

    fn spec(self) -> ModelSpec {
        match self {
            NeuralModel::Mlp => ModelSpec::default_mlp(),
            NeuralModel::Cnn => ModelSpec::Cnn { side: 8 },
        }
    }

    fn fedavg(self, seed: u64) -> FedAvgConfig {
        // Enough rounds × epochs to reach the accuracy plateau; frequent
        // averaging keeps FedAvg stable under writer heterogeneity.
        FedAvgConfig {
            rounds: 6,
            local_epochs: match self {
                NeuralModel::Mlp => 2,
                NeuralModel::Cnn => 3, // CNNs need more steps to plateau
            },
            batch_size: 16,
            lr: match self {
                NeuralModel::Mlp => 0.25,
                NeuralModel::Cnn => 0.22,
            },
            seed,
            ..Default::default()
        }
    }
}

/// A fully specified neural FL valuation problem.
pub struct NeuralProblem {
    pub name: String,
    pub clients: Vec<Dataset>,
    pub test: Dataset,
    pub spec: ModelSpec,
    pub fed: FedAvgConfig,
}

impl NeuralProblem {
    pub fn n(&self) -> usize {
        self.clients.len()
    }

    /// A fresh utility over (clones of) this problem's data.
    pub fn utility(&self) -> FlUtility {
        FlUtility::new(
            self.clients.clone(),
            self.test.clone(),
            self.spec.clone(),
            self.fed,
        )
    }
}

/// FEMNIST-like problem: writer-partitioned image classification — the
/// dataset behind Fig. 1, Fig. 4, Table IV and Figs. 7–10.
pub fn femnist(n: usize, model: NeuralModel, seed: u64) -> NeuralProblem {
    // Several writers per client: heterogeneous but not degenerate (real
    // FEMNIST spreads 3500+ writers over a handful of silo clients).
    let gen = FemnistLike::new(seed ^ 0xFE, n * 8);
    let fed_data = gen.generate_federated(
        n,
        config::samples_per_client(),
        config::test_samples(),
        seed ^ 0x01,
    );
    NeuralProblem {
        name: format!("FEMNIST-like/{}/n={n}", model.name()),
        clients: fed_data.clients,
        test: fed_data.test,
        spec: model.spec(),
        fed: model.fedavg(seed),
    }
}

/// Synthetic-MNIST problem under one of the five partition setups of
/// Sec. V-B (Fig. 6).
pub fn mnist_synthetic(
    setup: SyntheticSetup,
    n: usize,
    model: NeuralModel,
    seed: u64,
) -> NeuralProblem {
    let gen = MnistLike::new(seed ^ 0x3A);
    let (train, test) = gen.generate_split(
        config::samples_per_client() * n,
        config::test_samples(),
        seed ^ 0x02,
    );
    let mut rng = StdRng::seed_from_u64(seed ^ 0x03);
    let clients = setup.partition(&train, n, &mut rng);
    NeuralProblem {
        name: format!("MNIST-synth/{}/{}/n={n}", setup.label(), model.name()),
        clients,
        test,
        spec: model.spec(),
        fed: model.fedavg(seed),
    }
}

/// Adult-like problem with an MLP model (Table V, upper half).
pub fn adult_mlp(n: usize, seed: u64) -> NeuralProblem {
    let gen = AdultLike::new(seed ^ 0xAD);
    let fed_data = gen.generate_federated(
        n,
        config::samples_per_client() * n,
        config::test_samples(),
        seed ^ 0x04,
    );
    NeuralProblem {
        name: format!("Adult-like/MLP/n={n}"),
        clients: fed_data.clients,
        test: fed_data.test,
        spec: ModelSpec::Mlp { hidden: vec![16] },
        fed: FedAvgConfig {
            rounds: 4,
            local_epochs: 2,
            batch_size: 16,
            lr: 0.1,
            seed,
            ..Default::default()
        },
    }
}

/// A GBDT valuation problem (Table V, lower half).
pub struct GbdtProblem {
    pub name: String,
    pub clients: Vec<Dataset>,
    pub test: Dataset,
    pub params: GbdtParams,
}

impl GbdtProblem {
    pub fn n(&self) -> usize {
        self.clients.len()
    }

    pub fn utility(&self) -> GbdtUtility {
        GbdtUtility::new(self.clients.clone(), self.test.clone(), self.params)
    }
}

/// Adult-like problem with the XGBoost-style model.
pub fn adult_xgb(n: usize, seed: u64) -> GbdtProblem {
    let gen = AdultLike::new(seed ^ 0xAD);
    let fed_data = gen.generate_federated(
        n,
        config::samples_per_client() * n,
        config::test_samples(),
        seed ^ 0x05,
    );
    GbdtProblem {
        name: format!("Adult-like/XGB/n={n}"),
        clients: fed_data.clients,
        test: fed_data.test,
        params: GbdtParams {
            n_trees: 12,
            ..Default::default()
        },
    }
}

/// The Fig. 9 scalability problem: `n` clients with 5% free riders and 5%
/// duplicated datasets. Returns the problem plus the planted free-rider
/// indices and duplicate pairs.
pub fn scalability(
    n: usize,
    model: NeuralModel,
    seed: u64,
) -> (NeuralProblem, Vec<usize>, Vec<(usize, usize)>) {
    let per_client = if config::quick() { 15 } else { 20 };
    let gen = MnistLike::new(seed ^ 0x5C);
    let (train, test) = gen.generate_split(per_client * n, config::test_samples(), seed ^ 0x06);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x07);
    let mut clients = SyntheticSetup::SameSizeSameDist.partition(&train, n, &mut rng);
    let planted = (n / 20).max(1);
    let (free_riders, duplicate_pairs) =
        fedval_data::plant_scalability_fixtures(&mut clients, planted, planted);
    let problem = NeuralProblem {
        name: format!("Scalability/{}/n={n}", model.name()),
        clients,
        test,
        spec: model.spec(),
        fed: FedAvgConfig {
            rounds: 2,
            local_epochs: 1,
            batch_size: 16,
            lr: 0.1,
            seed,
            ..Default::default()
        },
    };
    (problem, free_riders, duplicate_pairs)
}

#[cfg(test)]
// Tests assert invariants; an unwrap that trips IS the test failing.
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn problem_builders_produce_consistent_shapes() {
        let p = femnist(3, NeuralModel::Mlp, 1);
        assert_eq!(p.n(), 3);
        assert_eq!(p.test.n_features(), 64);
        let q = mnist_synthetic(SyntheticSetup::DiffSizeSameDist, 4, NeuralModel::Cnn, 2);
        assert_eq!(q.n(), 4);
        let sizes: Vec<usize> = q.clients.iter().map(|c| c.n_samples()).collect();
        assert!(sizes[3] > sizes[0], "size-ratio partition: {sizes:?}");
        let a = adult_mlp(3, 3);
        assert_eq!(a.test.n_classes(), 2);
        let x = adult_xgb(3, 3);
        assert_eq!(x.n(), 3);
    }

    #[test]
    fn scalability_problem_has_fixtures() {
        let (p, fr, dups) = scalability(20, NeuralModel::Mlp, 4);
        assert_eq!(p.n(), 20);
        assert_eq!(fr.len(), 1);
        assert_eq!(dups.len(), 1);
        assert!(p.clients[fr[0]].is_empty());
        let (a, b) = dups[0];
        assert_eq!(p.clients[a], p.clients[b]);
    }
}
