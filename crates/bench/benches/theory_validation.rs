//! Theory validation — executable checks of Lemma 1, Theorem 2 and
//! Theorem 3 against the closed-form linear-regression substrate:
//!
//! * Lemma 1: the simulated exact MC-SV on a real OLS utility matches the
//!   closed-form expected value;
//! * Theorem 2: analytic and empirical variance gap between MC-SV and
//!   CC-SV;
//! * Theorem 3: IPSS's truncation error on the linear model vs the bound.

// Bench driver: measurement harness code panics on setup failure by
// design; unwrap/expect are the error mechanism here.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use fedval_bench::{base_seed, quick, Table};
use fedval_core::exact::exact_mc_sv;
use fedval_core::ipss::{compute_k_star, ipss_values, IpssConfig};
use fedval_core::metrics::{l2_relative_error, mean};
use fedval_core::utility::{CachedUtility, TableUtility};
use fedval_theory::{
    analytic_var_cc, analytic_var_mc, expected_coalition_mse, lemma1_expected_sv,
    theorem3_error_bound, truncated_expected_sv, LinRegUtility,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let seed = base_seed();
    let (n, t, x_dim, noise) = (6usize, 40usize, 4usize, 0.5f64);
    let reps = if quick() { 10 } else { 40 };

    // --- Lemma 1: expected SV on the analytic game vs simulation. ---
    // Donahue–Kleinberg's mse(d) = μ_e·|x|/(d−|x|−1) is the *excess* test
    // error of OLS over the irreducible noise floor σ²; the floor cancels
    // in every marginal contribution, so the closed form's m0 is the zero
    // model's excess error ‖β‖² (not its total error ‖β‖² + σ²).
    // β is chosen with ‖β‖² ≥ μ_e·|x| so Theorem 3's bound is in its
    // validity regime (see fedval-theory docs).
    let mu_e = noise * noise; // E[ε²] for centred Gaussian noise
    let beta = vec![1.2f64, 0.9, 0.6, 0.3];
    assert_eq!(beta.len(), x_dim);
    let m0 = beta.iter().map(|b| b * b).sum::<f64>();
    let closed_form = lemma1_expected_sv(n, t, mu_e, x_dim, m0);
    let mut simulated = Vec::with_capacity(reps);
    for rep in 0..reps {
        let u = CachedUtility::new(LinRegUtility::synthetic(
            &beta,
            &vec![t; n],
            4000,
            noise,
            seed ^ (rep as u64) << 9,
        ));
        let phi = exact_mc_sv(&u);
        simulated.push(mean(&phi));
    }
    let sim_mean = mean(&simulated);
    let mut table = Table::new(["Quantity", "Closed form", "Simulated", "Ratio"]);
    table.row([
        "E[ϕ_i] (Lemma 1)".to_string(),
        format!("{closed_form:.5}"),
        format!("{sim_mean:.5}"),
        format!("{:.3}", sim_mean / closed_form),
    ]);
    table.print(&format!(
        "Lemma 1 — n = {n}, t = {t}, |x| = {x_dim}, {reps} dataset draws"
    ));

    // --- Theorem 2: analytic variance gap. ---
    let sizes = vec![t; n];
    let mut table = Table::new(["m per stratum", "Var MC (analytic)", "Var CC (analytic)"]);
    for m in [1usize, 2, 4, 8] {
        table.row([
            m.to_string(),
            format!("{:.4}", analytic_var_mc(n, &sizes, 1.0, m, 0)),
            format!("{:.4}", analytic_var_cc(n, &sizes, 1.0, m, 0)),
        ]);
    }
    table.print("Theorem 2 — analytic variance (Eqs. 9–10); CC must dominate MC");

    // --- Theorem 3: truncation error vs bound on the analytic game. ---
    let mut table = Table::new(["γ", "k*", "Analytic rel-err", "IPSS rel-err (sim)", "Bound"]);
    let analytic_game =
        TableUtility::from_fn(n, |s| -expected_coalition_mse(mu_e, x_dim, t, s.size(), m0));
    let exact_analytic = exact_mc_sv(&analytic_game);
    for gamma in [n + 1, 2 * n + 4, 1 << (n - 1), 1 << n] {
        let k_star = compute_k_star(n, gamma).unwrap();
        let analytic_err = if k_star >= 1 {
            let trunc = truncated_expected_sv(n, t, k_star, mu_e, x_dim, m0);
            let full = lemma1_expected_sv(n, t, mu_e, x_dim, m0);
            ((trunc - full) / full).abs()
        } else {
            f64::NAN
        };
        let mut rng = StdRng::seed_from_u64(seed ^ 0x73);
        let est = ipss_values(&analytic_game, &IpssConfig::new(gamma), &mut rng);
        let sim_err = l2_relative_error(&est, &exact_analytic);
        let bound = if k_star >= 1 {
            theorem3_error_bound(n, t, k_star, x_dim)
        } else {
            f64::NAN
        };
        table.row([
            gamma.to_string(),
            k_star.to_string(),
            format!("{analytic_err:.5}"),
            format!("{sim_err:.5}"),
            format!("{bound:.5}"),
        ]);
    }
    table.print("Theorem 3 — IPSS truncation error vs bound (m0 ≥ μ_e·|x| regime)");
}
