// Fixture: the near-misses — hash containers used in all the ways the
// `hash-order` rule must NOT flag when scanned as crates/core/src/*.
use std::collections::{BTreeMap, HashMap, HashSet};

fn probes_are_free(memo: &mut HashMap<u128, f64>, seen: &HashSet<u128>, mask: u128) -> f64 {
    // get/insert/contains/entry are membership probes, not iteration.
    if seen.contains(&mask) {
        return memo.get(&mask).copied().unwrap_or(0.0);
    }
    *memo.entry(mask).or_insert(0.0)
}

fn sorted_drain(pending: &mut HashMap<u64, f64>) -> Vec<(u64, f64)> {
    // Immediately sorted: the hash order never escapes the statement.
    let mut taken: Vec<(u64, f64)> = pending.drain().collect();
    taken.sort_by_key(|&(k, _)| k);
    taken
}

fn order_free_terminals(memo: &HashMap<u128, f64>) -> (usize, bool) {
    (memo.len(), memo.values().all(|v| v.is_finite()))
}

fn annotated_fold(counts: &HashMap<u64, u64>) -> u64 {
    // lint:order-insensitive(u64 addition commutes exactly; the fold's
    // result is independent of visit order)
    counts.values().sum()
}

fn btree_is_deterministic(entries: &BTreeMap<u64, f64>) -> Vec<f64> {
    entries.values().copied().collect()
}
