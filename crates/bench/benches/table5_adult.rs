//! Table V — end-to-end comparison on Adult-like tabular data:
//! {MLP, XGB} × n ∈ {3, 6, 10}. Gradient-based algorithms are not
//! applicable to the tree model (the "\\" cells).
//!
//! Paper shape: IPSS fastest at n = 10 and lowest error throughout; on
//! XGB it is 10–30× faster than the other sampling baselines at n = 10.

// Bench driver: measurement harness code panics on setup failure by
// design; unwrap/expect are the error mechanism here.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use fedval_bench::{
    adult_mlp, adult_xgb, base_seed, exact_values_gbdt, exact_values_neural, fmt_err, fmt_secs,
    gamma_for, not_applicable, run_gbdt, run_neural, Algorithm, Table,
};
use fedval_core::metrics::l2_relative_error;

fn main() {
    let seed = base_seed();
    let ns = fedval_bench::config::table_client_counts();

    // MLP half.
    let mut table = Table::new(
        ["n", "Metric"]
            .into_iter()
            .map(String::from)
            .chain(Algorithm::ALL.iter().map(|a| a.name().to_string())),
    );
    for &n in &ns {
        let problem = adult_mlp(n, seed.wrapping_add(n as u64));
        let exact = exact_values_neural(&problem);
        let gamma = gamma_for(n);
        let mut times = Vec::new();
        let mut errs = Vec::new();
        for alg in Algorithm::ALL {
            let r = run_neural(alg, &problem, gamma, seed ^ 0x7AB ^ n as u64);
            times.push(fmt_secs(r.seconds()));
            let err = if alg.is_exact() {
                None
            } else {
                Some(l2_relative_error(&r.values, &exact))
            };
            errs.push(fmt_err(err));
        }
        table.row([n.to_string(), "Time(s)".into()].into_iter().chain(times));
        table.row([n.to_string(), "Error(l2)".into()].into_iter().chain(errs));
    }
    table.print("Table V — Adult-like, MLP model");

    // XGB half.
    let mut table = Table::new(
        ["n", "Metric"]
            .into_iter()
            .map(String::from)
            .chain(Algorithm::ALL.iter().map(|a| a.name().to_string())),
    );
    for &n in &ns {
        let problem = adult_xgb(n, seed.wrapping_add(n as u64));
        let exact = exact_values_gbdt(&problem);
        let gamma = gamma_for(n);
        let mut times = Vec::new();
        let mut errs = Vec::new();
        for alg in Algorithm::ALL {
            match run_gbdt(alg, &problem, gamma, seed ^ 0x7AC ^ n as u64) {
                Some(r) => {
                    times.push(fmt_secs(r.seconds()));
                    let err = if alg.is_exact() {
                        None
                    } else {
                        Some(l2_relative_error(&r.values, &exact))
                    };
                    errs.push(fmt_err(err));
                }
                None => {
                    times.push(not_applicable());
                    errs.push(not_applicable());
                }
            }
        }
        table.row([n.to_string(), "Time(s)".into()].into_iter().chain(times));
        table.row([n.to_string(), "Error(l2)".into()].into_iter().chain(errs));
    }
    table.print("Table V — Adult-like, XGB model (\\ = not applicable)");
}
