//! Table IV — end-to-end comparison on FEMNIST-like data: all ten
//! algorithms × {MLP, CNN} × n ∈ {3, 6, 10}, reporting Time(s) and
//! Error(l2) against the exact MC-SV ground truth.
//!
//! Perm-Shapley is executed over the shared utility cache (all 2^n models
//! are trained once); the paper's headline blow-up comes from *uncached*
//! permutation walks, so the table also prints the extrapolated naive time
//! `n!·(n+1)·τ̂`, mirroring the paper's 10⁹-second entries.

// Bench driver: measurement harness code panics on setup failure by
// design; unwrap/expect are the error mechanism here.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use fedval_bench::{
    base_seed, exact_values_neural, femnist, fmt_err, fmt_secs, gamma_for, run_neural, Algorithm,
    NeuralModel, Table,
};
use fedval_core::exact::perm_sv_naive_evaluations;
use fedval_core::metrics::l2_relative_error;

fn main() {
    let seed = base_seed();
    let ns = fedval_bench::config::table_client_counts();
    for model in [NeuralModel::Mlp, NeuralModel::Cnn] {
        let mut table = Table::new(
            ["n", "Metric"]
                .into_iter()
                .map(String::from)
                .chain(Algorithm::ALL.iter().map(|a| a.name().to_string())),
        );
        for &n in &ns {
            let problem = femnist(n, model, seed.wrapping_add(n as u64));
            let exact = exact_values_neural(&problem);
            let gamma = gamma_for(n);
            let results: Vec<_> = Algorithm::ALL
                .iter()
                .map(|&alg| run_neural(alg, &problem, gamma, seed ^ 0xBEEF ^ n as u64))
                .collect();
            let tau_estimate = results
                .iter()
                .find(|r| r.algorithm == Algorithm::McShapley)
                .map(|r| r.seconds() / r.evaluations.max(1) as f64)
                .unwrap_or(0.0);
            let mut time_cells = Vec::with_capacity(results.len());
            let mut err_cells = Vec::with_capacity(results.len());
            for result in &results {
                let time = if result.algorithm == Algorithm::PermShapley {
                    // Extrapolated naive time (no caching across
                    // permutations), as the paper reports for large n.
                    let naive = perm_sv_naive_evaluations(n) * tau_estimate.max(1e-9);
                    format!("{} (naive {:.1e})", fmt_secs(result.seconds()), naive)
                } else {
                    fmt_secs(result.seconds())
                };
                time_cells.push(time);
                let err = if result.algorithm.is_exact() {
                    None
                } else {
                    Some(l2_relative_error(&result.values, &exact))
                };
                err_cells.push(fmt_err(err));
            }
            table.row(
                [n.to_string(), "Time(s)".to_string()]
                    .into_iter()
                    .chain(time_cells),
            );
            table.row(
                [n.to_string(), "Error(l2)".to_string()]
                    .into_iter()
                    .chain(err_cells),
            );
        }
        table.print(&format!(
            "Table IV — FEMNIST-like, {} model (γ per Table III)",
            model.name()
        ));
    }
}
