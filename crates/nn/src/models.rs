//! The model families used in the paper's experiments: multi-layer
//! perceptron (MLP), convolutional neural network (CNN) and a linear
//! softmax model (logistic regression), all built on [`crate::layers`].
//!
//! The XGBoost family lives in `fedval-gbdt`.

use crate::layers::{Conv2d, Dense, DenseRelu, MaxPool2, Relu};
use crate::network::{init_rng, Network};

/// Multi-layer perceptron: `input → hidden₁ → … → classes` with ReLU
/// activations between dense layers.
///
/// Hidden layers use the fused [`DenseRelu`] (bias + activation applied in
/// the matmul write-back) — bit-identical to a `Dense` + `Relu` pair, one
/// fewer traversal and allocation per hidden layer per SGD step.
pub fn mlp(input: usize, hidden: &[usize], classes: usize, seed: u64) -> Network {
    assert!(input > 0 && classes > 0);
    let mut rng = init_rng(seed);
    let mut layers: Vec<Box<dyn crate::layers::Layer>> = Vec::new();
    let mut prev = input;
    for &h in hidden {
        layers.push(Box::new(DenseRelu::new(prev, h, &mut rng)));
        prev = h;
    }
    layers.push(Box::new(Dense::new(prev, classes, &mut rng)));
    Network::new(layers, classes)
}

/// The default MLP of the experiments: one 32-unit hidden layer.
pub fn default_mlp(input: usize, classes: usize, seed: u64) -> Network {
    mlp(input, &[32], classes, seed)
}

/// Convolutional network for `side × side` single-channel images:
/// `conv(1→6, 3×3, pad 1) → ReLU → maxpool2 → conv(6→12, 3×3, pad 1) →
/// ReLU → maxpool2 → dense → classes`.
///
/// Requires `side` divisible by 4 (two pooling stages).
pub fn cnn(side: usize, classes: usize, seed: u64) -> Network {
    assert!(
        side.is_multiple_of(4) && side >= 4,
        "side must be a multiple of 4"
    );
    let mut rng = init_rng(seed);
    let c1 = 6usize;
    let c2 = 12usize;
    let s2 = side / 2;
    let s4 = side / 4;
    let layers: Vec<Box<dyn crate::layers::Layer>> = vec![
        Box::new(Conv2d::new(1, c1, side, side, 3, 1, &mut rng)),
        Box::new(Relu::new(c1 * side * side)),
        Box::new(MaxPool2::new(c1, side, side)),
        Box::new(Conv2d::new(c1, c2, s2, s2, 3, 1, &mut rng)),
        Box::new(Relu::new(c2 * s2 * s2)),
        Box::new(MaxPool2::new(c2, s2, s2)),
        Box::new(Dense::new(c2 * s4 * s4, classes, &mut rng)),
    ];
    Network::new(layers, classes)
}

/// Linear softmax model (multinomial logistic regression).
pub fn linear(input: usize, classes: usize, seed: u64) -> Network {
    let mut rng = init_rng(seed);
    Network::new(
        vec![Box::new(Dense::new(input, classes, &mut rng))],
        classes,
    )
}

#[cfg(test)]
// Tests assert invariants; an unwrap that trips IS the test failing.
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn mlp_shapes() {
        let net = mlp(64, &[32, 16], 10, 0);
        assert_eq!(net.in_len(), 64);
        assert_eq!(net.n_classes(), 10);
        // 64·32+32 + 32·16+16 + 16·10+10 = 2080 + 528 + 170.
        assert_eq!(net.param_count(), 2080 + 528 + 170);
    }

    #[test]
    fn cnn_shapes() {
        let net = cnn(8, 10, 0);
        assert_eq!(net.in_len(), 64);
        assert_eq!(net.n_classes(), 10);
        // conv1: 6·1·9+6 = 60; conv2: 12·6·9+12 = 660; dense: 48·10+10 = 490.
        assert_eq!(net.param_count(), 60 + 660 + 490);
    }

    #[test]
    #[should_panic]
    fn cnn_requires_divisible_side() {
        let _ = cnn(10, 10, 0);
    }

    #[test]
    fn linear_shapes() {
        let net = linear(14, 2, 0);
        assert_eq!(net.param_count(), 14 * 2 + 2);
    }

    #[test]
    fn different_seeds_differ() {
        let a = mlp(8, &[4], 2, 1).params();
        let b = mlp(8, &[4], 2, 2).params();
        assert_ne!(a, b);
        // Same seed reproduces.
        let c = mlp(8, &[4], 2, 1).params();
        assert_eq!(a, c);
    }
}
