//! Fig. 7 — impact of the total sampling rounds γ on the sampling-based
//! algorithms (IPSS, Extended-TMC, Extended-GTB, CC-Shapley), FEMNIST-like
//! with ten clients, MLP and CNN models.
//!
//! Paper shape: as γ grows IPSS's error is lower and more stable than the
//! baselines'; CC-Shapley's error variance is 7.7–50.9× IPSS's.
//!
//! All runs share the ground-truth utility cache (every coalition is
//! already trained for the exact SV), so the sweep measures estimator
//! error, not training time — Fig. 7 plots error only.

// Bench driver: measurement harness code panics on setup failure by
// design; unwrap/expect are the error mechanism here.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use fedval_bench::{base_seed, femnist, parallel_prefill, quick, Algorithm, NeuralModel, Table};
use fedval_core::baselines::{cc_shapley, extended_gtb_values, extended_tmc};
use fedval_core::baselines::{CcShapConfig, GtbConfig, TmcConfig};
use fedval_core::coalition::all_subsets;
use fedval_core::exact::exact_mc_sv;
use fedval_core::ipss::{ipss_values, IpssConfig};
use fedval_core::metrics::{l2_relative_error, mean, variance};
use fedval_core::utility::CachedUtility;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let seed = base_seed();
    let n = if quick() { 6 } else { 10 };
    let gammas: Vec<usize> = if quick() {
        vec![8, 16, 32, 64]
    } else {
        vec![8, 16, 32, 64, 128, 256]
    };
    let reps = if quick() { 5 } else { 20 };
    for model in [NeuralModel::Mlp, NeuralModel::Cnn] {
        let problem = femnist(n, model, seed);
        let u = CachedUtility::new(problem.utility());
        let coalitions: Vec<_> = all_subsets(n).collect();
        parallel_prefill(&u, &coalitions);
        let exact = exact_mc_sv(&u);
        let mut table = Table::new(
            ["γ"].into_iter().map(String::from).chain(
                Algorithm::SAMPLING
                    .iter()
                    .flat_map(|a| [format!("{} err", a.name()), format!("{} var", a.name())]),
            ),
        );
        let mut var_sums = vec![0.0f64; Algorithm::SAMPLING.len()];
        for &gamma in &gammas {
            let mut cells = vec![gamma.to_string()];
            for (ai, &alg) in Algorithm::SAMPLING.iter().enumerate() {
                let errs: Vec<f64> = (0..reps)
                    .map(|rep| {
                        let mut rng =
                            StdRng::seed_from_u64(seed ^ ((rep as u64) << 8) ^ (gamma as u64));
                        let est = match alg {
                            Algorithm::ExtTmc => extended_tmc(&u, &TmcConfig::new(gamma), &mut rng),
                            Algorithm::ExtGtb => {
                                extended_gtb_values(&u, &GtbConfig::new(gamma), &mut rng)
                            }
                            Algorithm::CcShapley => {
                                cc_shapley(&u, &CcShapConfig::new(gamma), &mut rng)
                            }
                            Algorithm::Ipss => ipss_values(&u, &IpssConfig::new(gamma), &mut rng),
                            _ => unreachable!(),
                        };
                        l2_relative_error(&est, &exact)
                    })
                    .collect();
                let v = variance(&errs);
                var_sums[ai] += v;
                cells.push(format!("{:.4}", mean(&errs)));
                cells.push(format!("{v:.6}"));
            }
            table.row(cells);
        }
        table.print(&format!(
            "Fig. 7 — error vs sampling rounds γ, FEMNIST-like, n = {n}, {} ({reps} reps)",
            model.name()
        ));
        let ipss = Algorithm::SAMPLING
            .iter()
            .position(|&a| a == Algorithm::Ipss)
            .unwrap();
        let cc = Algorithm::SAMPLING
            .iter()
            .position(|&a| a == Algorithm::CcShapley)
            .unwrap();
        if var_sums[ipss] > 0.0 {
            println!(
                "Shape check: CC-Shapley error variance is {:.1}x IPSS's (paper: 7.7–50.9x)",
                var_sums[cc] / var_sums[ipss]
            );
        }
    }
}
