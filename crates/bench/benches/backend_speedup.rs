//! backend_speedup — kernel-level throughput of the pluggable linalg
//! backends (`Reference` vs `Simd`) on the shapes the FL hot path
//! actually runs:
//!
//! * **solo** — one coalition model's forward (`matmul_a_bt_bias`, fused
//!   bias+ReLU), weight-gradient (`matmul_at_b_accum`) and input-gradient
//!   (`matmul`) kernels, at the experiments' default-MLP shape and at a
//!   larger production-leaning shape;
//! * **lane** — the lock-step engine's lane-blocked forward and gradient
//!   kernels (`B` parameter lanes over one shared mini-batch, the
//!   batched-GEMM shape a GPU backend would target);
//! * **vector** — `dot` over a parameter-vector-sized operand (the
//!   FedProx/aggregation arithmetic scale).
//!
//! Before timing, each shape's Simd output is checked against Reference
//! (≤ 1e-5 relative), so a broken backend can never record a "speedup".
//! Throughputs (min-time over repetitions) are written to
//! `BENCH_backend.json` at the workspace root, with the machine's
//! `available_parallelism()` and `RAYON_NUM_THREADS` embedded so later
//! multicore re-runs stay comparable. The kernels are single-threaded;
//! the measured ratio composes multiplicatively with `par_speedup`'s
//! thread fan-out and `coalesce_speedup`'s lane coalescing.
//!
//! Knobs: `FEDVAL_QUICK=1` shrinks the repetition counts,
//! `FEDVAL_BACKEND_JSON=<path>` redirects the report.

// Bench driver: measurement harness code panics on setup failure by
// design; unwrap/expect are the error mechanism here.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::io::Write as _;
use std::time::Instant;

use fedval_bench::quick;
use fedval_nn::backend::{rel_close, LinalgBackend, Reference, Simd};

/// Deterministic operand filler (no RNG dependency in the kernel bench).
fn pseudo(seed: u32, len: usize) -> Vec<f32> {
    let mut x = seed;
    (0..len)
        .map(|_| {
            x = x.wrapping_mul(1664525).wrapping_add(1013904223);
            (x >> 8) as f32 / (1u32 << 24) as f32 - 0.5
        })
        .collect()
}

struct KernelResult {
    name: &'static str,
    shape: String,
    flops_per_call: f64,
    reference_secs: f64,
    simd_secs: f64,
}

impl KernelResult {
    fn speedup(&self) -> f64 {
        self.reference_secs / self.simd_secs
    }
    fn gflops(&self, secs: f64) -> f64 {
        self.flops_per_call / secs / 1e9
    }
}

/// Min-time over `reps` repetitions of `calls` kernel invocations;
/// returns seconds per call.
fn time_per_call(mut f: impl FnMut(), calls: usize, reps: usize) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        for _ in 0..calls {
            f();
        }
        best = best.min(start.elapsed().as_secs_f64() / calls as f64);
    }
    best
}

fn assert_close(reference: &[f32], simd: &[f32], what: &str) {
    assert_eq!(reference.len(), simd.len());
    for (&r, &s) in reference.iter().zip(simd) {
        assert!(rel_close(r, s), "{what}: backend disagreement {r} vs {s}");
    }
}

fn main() {
    let (calls, reps) = if quick() { (8, 3) } else { (24, 5) };
    let mut results: Vec<KernelResult> = Vec::new();

    // --- Solo forward: fused bias+ReLU a·bᵀ, two shapes. -----------------
    for (label, m, k, n) in [
        ("solo_forward_mlp", 16usize, 64usize, 32usize),
        ("solo_forward_large", 64, 256, 128),
    ] {
        let a = pseudo(1, m * k);
        let w = pseudo(2, n * k);
        let bias = pseudo(3, n);
        let mut out_r = vec![0.0f32; m * n];
        let mut out_s = vec![0.0f32; m * n];
        let mut mask = Vec::with_capacity(m * n);
        Reference.matmul_a_bt_bias(&a, &w, &bias, m, k, n, &mut out_r, None);
        Simd.matmul_a_bt_bias(&a, &w, &bias, m, k, n, &mut out_s, None);
        assert_close(&out_r, &out_s, label);
        let reference_secs = time_per_call(
            || {
                mask.clear();
                Reference.matmul_a_bt_bias(&a, &w, &bias, m, k, n, &mut out_r, Some(&mut mask));
                std::hint::black_box(&out_r);
            },
            calls,
            reps,
        );
        let simd_secs = time_per_call(
            || {
                mask.clear();
                Simd.matmul_a_bt_bias(&a, &w, &bias, m, k, n, &mut out_s, Some(&mut mask));
                std::hint::black_box(&out_s);
            },
            calls,
            reps,
        );
        results.push(KernelResult {
            name: label,
            shape: format!("{m}x{k}x{n}"),
            flops_per_call: 2.0 * (m * k * n) as f64,
            reference_secs,
            simd_secs,
        });
    }

    // --- Solo gradients: aᵀ·b accumulation + input-gradient matmul. ------
    {
        let (m, k, n) = (64usize, 128usize, 256usize);
        let g = pseudo(4, m * k);
        let x = pseudo(5, m * n);
        let mut acc_r = pseudo(6, k * n);
        let mut acc_s = acc_r.clone();
        Reference.matmul_at_b_accum(&g, &x, m, k, n, &mut acc_r);
        Simd.matmul_at_b_accum(&g, &x, m, k, n, &mut acc_s);
        assert_close(&acc_r, &acc_s, "solo_grad_accum");
        let reference_secs = time_per_call(
            || {
                Reference.matmul_at_b_accum(&g, &x, m, k, n, &mut acc_r);
                std::hint::black_box(&acc_r);
            },
            calls,
            reps,
        );
        let simd_secs = time_per_call(
            || {
                Simd.matmul_at_b_accum(&g, &x, m, k, n, &mut acc_s);
                std::hint::black_box(&acc_s);
            },
            calls,
            reps,
        );
        results.push(KernelResult {
            name: "solo_grad_accum",
            shape: format!("{m}x{k}x{n}"),
            flops_per_call: 2.0 * (m * k * n) as f64,
            reference_secs,
            simd_secs,
        });
    }

    // --- Lane kernels: B lanes over one shared batch (lock-step shape). --
    {
        let (lanes, m, k, n) = (8usize, 16usize, 64usize, 32usize);
        let active = vec![true; lanes];
        let a = pseudo(7, m * k);
        let w = pseudo(8, lanes * n * k);
        let bias = pseudo(9, lanes * n);
        let mut out_r = vec![0.0f32; lanes * m * n];
        let mut out_s = vec![0.0f32; lanes * m * n];
        let mut masks = vec![false; lanes * m * n];
        Reference.lane_matmul_a_bt_bias(
            &a, true, &w, &bias, lanes, &active, m, k, n, &mut out_r, None,
        );
        Simd.lane_matmul_a_bt_bias(
            &a, true, &w, &bias, lanes, &active, m, k, n, &mut out_s, None,
        );
        assert_close(&out_r, &out_s, "lane_forward");
        let reference_secs = time_per_call(
            || {
                Reference.lane_matmul_a_bt_bias(
                    &a,
                    true,
                    &w,
                    &bias,
                    lanes,
                    &active,
                    m,
                    k,
                    n,
                    &mut out_r,
                    Some(&mut masks),
                );
                std::hint::black_box(&out_r);
            },
            calls,
            reps,
        );
        let simd_secs = time_per_call(
            || {
                Simd.lane_matmul_a_bt_bias(
                    &a,
                    true,
                    &w,
                    &bias,
                    lanes,
                    &active,
                    m,
                    k,
                    n,
                    &mut out_s,
                    Some(&mut masks),
                );
                std::hint::black_box(&out_s);
            },
            calls,
            reps,
        );
        results.push(KernelResult {
            name: "lane_forward",
            shape: format!("B{lanes}x{m}x{k}x{n}"),
            flops_per_call: 2.0 * (lanes * m * k * n) as f64,
            reference_secs,
            simd_secs,
        });

        // Lane gradient accumulation over the transposed shape.
        let grad = pseudo(10, lanes * m * n);
        let mut gw_r = vec![0.0f32; lanes * n * k];
        let mut gw_s = vec![0.0f32; lanes * n * k];
        let mut gb_r = vec![0.0f32; lanes * n];
        let mut gb_s = vec![0.0f32; lanes * n];
        Reference.lane_matmul_at_b_accum(
            &grad, &a, true, lanes, &active, m, n, k, &mut gw_r, &mut gb_r,
        );
        Simd.lane_matmul_at_b_accum(
            &grad, &a, true, lanes, &active, m, n, k, &mut gw_s, &mut gb_s,
        );
        assert_close(&gw_r, &gw_s, "lane_grad_accum");
        let reference_secs = time_per_call(
            || {
                Reference.lane_matmul_at_b_accum(
                    &grad, &a, true, lanes, &active, m, n, k, &mut gw_r, &mut gb_r,
                );
                std::hint::black_box(&gw_r);
            },
            calls,
            reps,
        );
        let simd_secs = time_per_call(
            || {
                Simd.lane_matmul_at_b_accum(
                    &grad, &a, true, lanes, &active, m, n, k, &mut gw_s, &mut gb_s,
                );
                std::hint::black_box(&gw_s);
            },
            calls,
            reps,
        );
        results.push(KernelResult {
            name: "lane_grad_accum",
            shape: format!("B{lanes}x{m}x{n}x{k}"),
            flops_per_call: 2.0 * (lanes * m * k * n) as f64,
            reference_secs,
            simd_secs,
        });
    }

    // --- Vector helper: dot at parameter-vector scale. -------------------
    {
        let len = 1 << 16;
        let a = pseudo(11, len);
        let b = pseudo(12, len);
        let r = Reference.dot(&a, &b);
        let s = Simd.dot(&a, &b);
        assert!(rel_close(r, s), "dot disagreement {r} vs {s}");
        let reference_secs = time_per_call(
            || {
                std::hint::black_box(Reference.dot(&a, &b));
            },
            calls * 8,
            reps,
        );
        let simd_secs = time_per_call(
            || {
                std::hint::black_box(Simd.dot(&a, &b));
            },
            calls * 8,
            reps,
        );
        results.push(KernelResult {
            name: "dot_64k",
            shape: format!("{len}"),
            flops_per_call: 2.0 * len as f64,
            reference_secs,
            simd_secs,
        });
    }

    println!(
        "backend_speedup: {} kernel shapes, min-time over {reps} reps x {calls} calls",
        results.len()
    );
    for r in &results {
        println!(
            "{:<20} {:>14}  reference {:7.3} GFLOP/s  simd {:7.3} GFLOP/s  speedup {:5.2}x",
            r.name,
            r.shape,
            r.gflops(r.reference_secs),
            r.gflops(r.simd_secs),
            r.speedup()
        );
    }

    let mut kernels = String::new();
    for (idx, r) in results.iter().enumerate() {
        kernels.push_str(&format!(
            "    {{\"kernel\": \"{}\", \"shape\": \"{}\", \"reference\": {{\"seconds_per_call\": {:.9}, \"gflops\": {:.4}}}, \"simd\": {{\"seconds_per_call\": {:.9}, \"gflops\": {:.4}}}, \"speedup\": {:.4}}}{}\n",
            r.name,
            r.shape,
            r.reference_secs,
            r.gflops(r.reference_secs),
            r.simd_secs,
            r.gflops(r.simd_secs),
            r.speedup(),
            if idx + 1 < results.len() { "," } else { "" }
        ));
    }
    let report = format!(
        "{{\n  \"bench\": \"backend_speedup\",\n  \"scenario\": \"single-threaded linalg kernel throughput, Reference vs Simd backend, on the FL hot-path solo and lane shapes\",\n  {},\n  \"kernels\": [\n{kernels}  ]\n}}\n",
        fedval_bench::parallelism_json_fields(),
    );
    let path = std::env::var("FEDVAL_BACKEND_JSON")
        .unwrap_or_else(|_| format!("{}/../../BENCH_backend.json", env!("CARGO_MANIFEST_DIR")));
    let mut file = std::fs::File::create(&path).expect("create BENCH_backend.json");
    file.write_all(report.as_bytes())
        .expect("write BENCH_backend.json");
    println!("wrote {path}");
}
