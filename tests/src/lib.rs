//! Placeholder.
