//! Coalition utility functions backed by real model training — the
//! `U(M_S)` of Def. 2, with `U` = test accuracy.

use std::sync::Arc;

use fedval_core::coalition::Coalition;
use fedval_core::utility::Utility;
use fedval_data::Dataset;
use fedval_gbdt::{Gbdt, GbdtParams};
use fedval_nn::MultiNetwork;

use crate::config::{init_seed, FedAvgConfig};
use crate::fedavg::{train_coalition, train_coalitions_params_with_cache};
use crate::model::ModelSpec;
use crate::trajcache::TrajectoryCache;

/// Default number of coalition models trained per lock-step lane block by
/// [`FlUtility::eval_batch`]. Eight lanes amortise the shared data pass
/// well while the per-lane parameter/activation working set stays
/// cache-resident for the experiment-sized models. Defined as the
/// parallel adapter's sub-batch size so one stolen work unit is one
/// lock-step block by construction; override both together
/// ([`FlUtility::with_lane_block`] +
/// `fedval_core::utility::ParallelUtility::with_chunk`) when tuning.
pub const DEFAULT_LANE_BLOCK: usize = fedval_core::utility::DEFAULT_PAR_CHUNK;

/// FedAvg-trained neural utility: `U(S)` trains the [`ModelSpec`] on the
/// coalition's datasets with FedAvg and returns test accuracy.
///
/// Single evaluations run the solo reference loop; batches are grouped
/// into size-sorted lane blocks and trained in lock-step by
/// [`crate::fedavg::train_coalitions`] — bit-identical values, one shared
/// data pass per block.
///
/// Wrap in [`fedval_core::utility::CachedUtility`] so each coalition is
/// trained exactly once (the paper's `τ` accounting).
///
/// Below whole-coalition caching sits the *trajectory cache*
/// ([`crate::trajcache`]): `eval_batch` memoises per-client per-round
/// local-training updates across its lane blocks, so e.g. the round-0
/// trainings every coalition shares are paid once per client per
/// `eval_batch` call instead of once per block. On by default
/// ([`FedAvgConfig::traj_cache`], `FEDVAL_TRAJCACHE=0` to disable) with a
/// fresh cache per call; [`FlUtility::with_traj_cache`] installs a shared
/// handle that additionally persists hits across calls — including the
/// sub-batches a `ParallelUtility` fans out — for a whole valuation run.
/// Values are bit-identical in every mode.
///
/// ```
/// use fedval_core::prelude::*;
/// use fedval_data::{MnistLike, SyntheticSetup};
/// use fedval_fl::{FedAvgConfig, FlUtility, ModelSpec};
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// // Three clients over a tiny synthetic split, one FedAvg round.
/// let (train, test) = MnistLike::new(1).generate_split(60, 30, 2);
/// let mut rng = StdRng::seed_from_u64(3);
/// let clients = SyntheticSetup::SameSizeSameDist.partition(&train, 3, &mut rng);
/// let cfg = FedAvgConfig { rounds: 1, local_epochs: 1, ..Default::default() };
/// let utility = FlUtility::new(clients, test, ModelSpec::Linear, cfg);
///
/// // Batches train in lock-step lane blocks — bit-identical to solo.
/// let batch = utility.eval_batch(&[Coalition::singleton(0), Coalition::full(3)]);
/// assert_eq!(batch[1], utility.eval(Coalition::full(3)));
/// assert!((0.0..=1.0).contains(&batch[0]), "accuracy in [0, 1]");
/// ```
pub struct FlUtility {
    clients: Vec<Dataset>,
    test: Dataset,
    spec: ModelSpec,
    cfg: FedAvgConfig,
    lane_block: usize,
    traj_cache: Option<Arc<TrajectoryCache>>,
}

impl FlUtility {
    pub fn new(clients: Vec<Dataset>, test: Dataset, spec: ModelSpec, cfg: FedAvgConfig) -> Self {
        assert!(!clients.is_empty());
        for c in &clients {
            assert_eq!(c.n_features(), test.n_features(), "schema mismatch");
            assert_eq!(c.n_classes(), test.n_classes(), "schema mismatch");
        }
        FlUtility {
            clients,
            test,
            spec,
            cfg,
            lane_block: DEFAULT_LANE_BLOCK,
            traj_cache: None,
        }
    }

    /// Set the lock-step lane-block size `B` used by `eval_batch`
    /// (`1` disables coalescing; values are identical either way).
    pub fn with_lane_block(mut self, lane_block: usize) -> Self {
        assert!(lane_block >= 1);
        self.lane_block = lane_block;
        self
    }

    /// Install a shared trajectory cache: every `eval_batch` call probes
    /// and fills this handle instead of a per-call cache, extending the
    /// per-client per-round memoisation across the whole valuation run
    /// (and across the sub-batches a `ParallelUtility` splits off). The
    /// handle takes precedence over [`FedAvgConfig::traj_cache`] — a
    /// [`TrajectoryCache::counting_only`] handle measures the uncached
    /// baseline. Never share one cache between utilities with different
    /// datasets, specs, configs or backends (see `crate::trajcache`).
    pub fn with_traj_cache(mut self, cache: Arc<TrajectoryCache>) -> Self {
        self.traj_cache = Some(cache);
        self
    }

    /// The shared trajectory cache, if one was installed.
    pub fn traj_cache(&self) -> Option<&Arc<TrajectoryCache>> {
        self.traj_cache.as_ref()
    }

    pub fn lane_block(&self) -> usize {
        self.lane_block
    }

    pub fn clients(&self) -> &[Dataset] {
        &self.clients
    }

    pub fn test_set(&self) -> &Dataset {
        &self.test
    }

    pub fn spec(&self) -> &ModelSpec {
        &self.spec
    }

    pub fn config(&self) -> &FedAvgConfig {
        &self.cfg
    }
}

impl Utility for FlUtility {
    fn n_clients(&self) -> usize {
        self.clients.len()
    }

    /// One full FedAvg train + evaluate cycle. Every mutable piece of
    /// state (the network, RNGs, aggregation buffers) is created inside
    /// this call, so concurrent callers — the `ParallelUtility` fan-out —
    /// share only the immutable datasets and configuration.
    fn eval(&self, s: Coalition) -> f64 {
        let mut net = train_coalition(
            &self.spec,
            &self.clients,
            self.test.n_features(),
            self.test.n_classes(),
            s,
            &self.cfg,
        );
        net.accuracy(&self.test)
    }

    /// Lock-step batched evaluation: pending coalitions are size-sorted
    /// (lanes in one block then share similar member sets, so most clients
    /// a block visits are active in most of its lanes), grouped into
    /// blocks of at most `lane_block`, and each block is trained by one
    /// [`crate::fedavg::train_coalitions`] pass and scored with the test
    /// batches gathered once for all lanes. A trajectory cache — owned by
    /// this call, or the shared [`FlUtility::with_traj_cache`] handle —
    /// spans the blocks, so local trainings bit-equal across blocks
    /// (every round-0 training, and any later-round coincidence) are paid
    /// once. Values are bit-identical to mapping [`FlUtility::eval`] —
    /// per-lane trajectories are bit-identical to solo runs, cache hits
    /// replay the bits training would produce, and accuracy is a pure
    /// per-lane function — so the determinism contract survives any
    /// grouping and any cache state.
    fn eval_batch(&self, coalitions: &[Coalition]) -> Vec<f64> {
        // Per-call cache, created unless a shared handle is installed or
        // the config disables trajectory caching entirely. Within one
        // lock-step block every (round-start params, client, round) key is
        // distinct — classes have distinct bases per round by construction
        // — so a per-call cache can only hit *across* blocks; a batch that
        // fits a single block (notably the sub-batches a ParallelUtility
        // fans out without a shared handle) skips the cache overhead.
        let owned: Option<TrajectoryCache> = match &self.traj_cache {
            Some(_) => None,
            None if self.cfg.traj_cache && coalitions.len() > self.lane_block => {
                Some(match self.cfg.traj_cache_bytes {
                    Some(budget) => TrajectoryCache::with_byte_budget(budget),
                    None => TrajectoryCache::new(),
                })
            }
            None => None,
        };
        let cache: Option<&TrajectoryCache> = self.traj_cache.as_deref().or(owned.as_ref());
        if cache.is_none() && (coalitions.len() <= 1 || self.lane_block == 1) {
            return coalitions.iter().map(|&s| self.eval(s)).collect();
        }
        let mut order: Vec<usize> = (0..coalitions.len()).collect();
        // Stable total order: by size, ties by mask, so block composition
        // is deterministic regardless of input order-of-arrival.
        order.sort_by_key(|&i| (coalitions[i].size(), coalitions[i].0));
        let mut out = vec![0.0f64; coalitions.len()];
        let mut block: Vec<Coalition> = Vec::with_capacity(self.lane_block);
        let mut template = self.spec.build(
            self.test.n_features(),
            self.test.n_classes(),
            init_seed(self.cfg.seed),
        );
        // Lock-step scoring runs on the same backend the lanes trained on.
        template.set_backend(self.cfg.backend);
        for positions in order.chunks(self.lane_block) {
            block.clear();
            block.extend(positions.iter().map(|&i| coalitions[i]));
            let lane_params = train_coalitions_params_with_cache(
                &self.spec,
                &self.clients,
                self.test.n_features(),
                self.test.n_classes(),
                &block,
                &self.cfg,
                cache,
            );
            // Score all lanes against the test set in one shared pass.
            let mut multi = MultiNetwork::from_network(&template, lane_params.len());
            for (l, params) in lane_params.iter().enumerate() {
                multi.set_lane_params(l, params);
            }
            let accs = multi.accuracy_lanes(&self.test);
            for (&pos, acc) in positions.iter().zip(accs) {
                out[pos] = acc;
            }
        }
        out
    }
}

/// Compile-time guarantee that the FL utilities stay safe to share across
/// the parallel evaluation engine's threads: training must keep all
/// mutable state call-local (no interior mutability in these types).
const _: () = {
    const fn assert_sync_send<T: Sync + Send>() {}
    assert_sync_send::<FlUtility>();
    assert_sync_send::<GbdtUtility>();
};

/// Pooled-training GBDT utility: `U(S)` trains a fresh GBDT on
/// `D_S = ∪_{i∈S} D_i` and returns test accuracy.
///
/// Cross-silo federated GBDT (vertical/horizontal tree protocols) produces
/// the same ensemble a centralized training over the pooled data would,
/// up to protocol noise; pooled training is therefore the faithful
/// simulation of `U(M_S)` for the XGB rows of Table V (DESIGN.md §2).
pub struct GbdtUtility {
    clients: Vec<Dataset>,
    test: Dataset,
    params: GbdtParams,
}

impl GbdtUtility {
    pub fn new(clients: Vec<Dataset>, test: Dataset, params: GbdtParams) -> Self {
        assert!(!clients.is_empty());
        assert_eq!(test.n_classes(), 2, "GBDT utility is binary");
        GbdtUtility {
            clients,
            test,
            params,
        }
    }

    pub fn clients(&self) -> &[Dataset] {
        &self.clients
    }

    pub fn test_set(&self) -> &Dataset {
        &self.test
    }
}

impl Utility for GbdtUtility {
    fn n_clients(&self) -> usize {
        self.clients.len()
    }

    fn eval(&self, s: Coalition) -> f64 {
        let parts: Vec<&Dataset> = s.members().map(|i| &self.clients[i]).collect();
        let pooled = match Dataset::union(parts.iter().copied()) {
            Some(ds) if !ds.is_empty() => ds,
            // No data: constant model at the positive rate prior.
            _ => {
                let model = Gbdt::train(&Dataset::empty(self.test.n_features(), 2), &self.params);
                return model.accuracy(&self.test);
            }
        };
        let model = Gbdt::train(&pooled, &self.params);
        model.accuracy(&self.test)
    }
}

#[cfg(test)]
// Tests assert invariants; an unwrap that trips IS the test failing.
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use fedval_core::utility::CachedUtility;
    use fedval_data::{AdultLike, MnistLike, SyntheticSetup};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mlp_utility(n_clients: usize) -> FlUtility {
        let gen = MnistLike::new(1);
        let (train, test) = gen.generate_split(60 * n_clients, 120, 2);
        let mut rng = StdRng::seed_from_u64(3);
        let clients = SyntheticSetup::SameSizeSameDist.partition(&train, n_clients, &mut rng);
        FlUtility::new(
            clients,
            test,
            ModelSpec::default_mlp(),
            FedAvgConfig::default(),
        )
    }

    #[test]
    fn fl_utility_monotone_on_average() {
        let u = mlp_utility(4);
        let empty = u.eval(Coalition::empty());
        let full = u.eval(Coalition::full(4));
        assert!(full > empty + 0.2, "U(∅)={empty}, U(N)={full}");
        // Utility is within [0, 1] (accuracy).
        assert!((0.0..=1.0).contains(&empty) && (0.0..=1.0).contains(&full));
    }

    #[test]
    fn fl_utility_deterministic_and_cacheable() {
        let u = CachedUtility::new(mlp_utility(3));
        let s = Coalition::from_members([0, 2]);
        let a = u.eval(s);
        let b = u.eval(s);
        assert_eq!(a, b);
        assert_eq!(u.stats().evaluations, 1);
        // Direct (uncached) evaluation agrees.
        assert_eq!(u.inner().eval(s), a);
    }

    #[test]
    fn eval_batch_lane_blocks_match_mapped_eval() {
        use fedval_core::coalition::all_subsets;
        let u = mlp_utility(3);
        let coalitions: Vec<Coalition> = all_subsets(3).collect();
        let mapped: Vec<f64> = coalitions.iter().map(|&s| u.eval(s)).collect();
        for lane_block in [1usize, 2, 3, 8, 16] {
            let u = mlp_utility(3).with_lane_block(lane_block);
            assert_eq!(u.eval_batch(&coalitions), mapped, "lane_block {lane_block}");
        }
    }

    #[test]
    fn parallel_fl_evaluation_is_bit_identical_to_serial() {
        use fedval_core::coalition::all_subsets;
        use fedval_core::utility::ParallelUtility;
        // Real FedAvg trainings fanned out across threads must reproduce
        // the serial values exactly (per-coalition determinism makes the
        // result independent of scheduling).
        let serial = mlp_utility(3);
        let coalitions: Vec<Coalition> = all_subsets(3).collect();
        let expected = serial.eval_batch(&coalitions);
        for threads in [2usize, 4] {
            let par = ParallelUtility::with_num_threads(mlp_utility(3), threads);
            assert_eq!(par.eval_batch(&coalitions), expected, "threads={threads}");
        }
    }

    #[test]
    fn gbdt_utility_learns_adult() {
        let gen = AdultLike::new(9);
        let fed = gen.generate_federated(3, 900, 300, 4);
        let u = GbdtUtility::new(
            fed.clients,
            fed.test,
            GbdtParams {
                n_trees: 10,
                ..Default::default()
            },
        );
        let empty = u.eval(Coalition::empty());
        let full = u.eval(Coalition::full(3));
        assert!(full > empty, "U(∅)={empty}, U(N)={full}");
        assert!(full > 0.6);
    }

    #[test]
    fn gbdt_empty_coalition_is_prior_model() {
        let gen = AdultLike::new(10);
        let fed = gen.generate_federated(3, 300, 200, 5);
        let u = GbdtUtility::new(fed.clients, fed.test, GbdtParams::default());
        let empty_acc = u.eval(Coalition::empty());
        // A constant prediction gets the majority-class rate at best.
        assert!((0.0..=1.0).contains(&empty_acc));
    }
}
