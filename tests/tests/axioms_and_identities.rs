//! Cross-crate property tests: the Shapley axioms of Def. 2, the
//! equivalence of the three SV expressions, and the exactness of each
//! estimator at full budget — all driven by proptest over random games.

use fedval_core::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A random utility table over `n` clients with values in [0, 1].
fn arb_game(n: usize) -> impl Strategy<Value = TableUtility> {
    prop::collection::vec(0.0f64..1.0, 1 << n)
        .prop_map(move |values| TableUtility::new(n, values))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn efficiency_axiom_holds(game in arb_game(5)) {
        let phi = exact_mc_sv(&game);
        let total: f64 = phi.iter().sum();
        let expected = game.eval(Coalition::full(5)) - game.eval(Coalition::empty());
        prop_assert!((total - expected).abs() < 1e-9);
    }

    #[test]
    fn three_expressions_agree(game in arb_game(5)) {
        let mc = exact_mc_sv(&game);
        let cc = exact_cc_sv(&game);
        let perm = exact_perm_sv(&game);
        for i in 0..5 {
            prop_assert!((mc[i] - cc[i]).abs() < 1e-9);
            prop_assert!((mc[i] - perm[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn null_player_gets_zero(game in arb_game(4)) {
        // Plant a null player: client 4's presence never changes utility.
        let padded = TableUtility::from_fn(5, |s| game.eval(s.without(4)));
        let phi = exact_mc_sv(&padded);
        prop_assert!(phi[4].abs() < 1e-9);
    }

    #[test]
    fn symmetric_players_get_equal_value(game in arb_game(4)) {
        // Make clients 0 and 1 interchangeable: utility depends only on
        // whether each of them is present, not which.
        let sym = TableUtility::from_fn(4, |s| {
            let both = usize::from(s.contains(0)) + usize::from(s.contains(1));
            let rest = Coalition::from_members(
                s.members().filter(|&i| i >= 2),
            );
            game.eval(rest.union(Coalition::from_members(0..both)))
        });
        let phi = exact_mc_sv(&sym);
        prop_assert!((phi[0] - phi[1]).abs() < 1e-9);
    }

    #[test]
    fn linearity_of_sv(a in arb_game(4), b in arb_game(4), alpha in 0.0f64..3.0) {
        // SV(a + α·b) = SV(a) + α·SV(b).
        let combo = TableUtility::from_fn(4, |s| a.eval(s) + alpha * b.eval(s));
        let pa = exact_mc_sv(&a);
        let pb = exact_mc_sv(&b);
        let pc = exact_mc_sv(&combo);
        for i in 0..4 {
            prop_assert!((pc[i] - (pa[i] + alpha * pb[i])).abs() < 1e-9);
        }
    }

    #[test]
    fn ipss_full_budget_is_exact(game in arb_game(5), seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let est = ipss_values(&game, &IpssConfig::new(1 << 5), &mut rng);
        let exact = exact_mc_sv(&game);
        for i in 0..5 {
            prop_assert!((est[i] - exact[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn kgreedy_full_depth_is_exact(game in arb_game(5)) {
        let est = k_greedy(&game, 5);
        let exact = exact_mc_sv(&game);
        for i in 0..5 {
            prop_assert!((est[i] - exact[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn stratified_full_budget_is_exact_both_schemes(game in arb_game(4), seed in 0u64..1000) {
        let cfg = StratifiedConfig::explicit(vec![4, 6, 4, 1]);
        let exact = exact_mc_sv(&game);
        for scheme in [Scheme::MarginalContribution, Scheme::ComplementaryContribution] {
            let mut rng = StdRng::seed_from_u64(seed);
            let est = stratified_sampling_values(&game, scheme, &cfg, &mut rng);
            for i in 0..4 {
                prop_assert!((est[i] - exact[i]).abs() < 1e-9, "{scheme:?}");
            }
        }
    }

    #[test]
    fn tmc_without_truncation_preserves_efficiency(game in arb_game(4), seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let est = extended_tmc(&game, &TmcConfig::new(5).with_tolerance(0.0), &mut rng);
        let total: f64 = est.iter().sum();
        let expected = game.eval(Coalition::full(4)) - game.eval(Coalition::empty());
        prop_assert!((total - expected).abs() < 1e-9);
    }

    #[test]
    fn gtb_satisfies_efficiency_exactly(game in arb_game(4), seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let est = extended_gtb_values(&game, &GtbConfig::new(40), &mut rng);
        let total: f64 = est.iter().sum();
        let expected = game.eval(Coalition::full(4)) - game.eval(Coalition::empty());
        prop_assert!((total - expected).abs() < 1e-7);
    }
}
