//! Theorem 2: under FL linear regression, the MC-SV scheme has strictly
//! lower variance than the CC-SV scheme inside the stratified framework
//! (Alg. 1) — both analytic formulas (Eqs. 9–11) and Monte-Carlo
//! estimation helpers used by the Fig. 10 bench.
//!
//! The variance in Theorem 2 is over the randomness of *training* (the
//! per-sample errors `e_j` of Eq. 8), with the same `e_j` shared between
//! the two utility evaluations of a pair. MC pairs `(S∪{i}, S)` cancel the
//! shared samples, leaving only `Var[Σ_{j∈Dᵢ} e_j]`; CC pairs
//! `(S∪{i}, N\(S∪{i}))` sum *disjoint* samples and keep both sides'
//! variance — the source of the gap (Eq. 11).

use rand::rngs::StdRng;
use rand::SeedableRng;

use fedval_core::coalition::Coalition;
use fedval_core::metrics::variance;
use fedval_core::stratified::{stratified_sampling_values, Scheme, StratifiedConfig};
use fedval_core::utility::Utility;
use fedval_data::rand_ext::standard_normal;

/// The running per-stratum mean/variance accumulators behind the anytime
/// CI (re-exported from `fedval_core::anytime`, where the streaming
/// estimators consume them — the dependency points core → theory, so the
/// implementation cannot live here).
///
/// Two distinct variances meet in this module and must not be confused:
///
/// * [`analytic_var_mc`]/[`analytic_var_cc`] (Eqs. 9–10) are variances
///   over **training noise** — the `e_j` draws of Eq. 8, with the
///   coalition sample held fixed;
/// * the [`Welford`]/[`component_variance`] accumulators measure the
///   variance over **coalition sampling** — the Alg. 1 draws, with the
///   training realisation held fixed. On one [`TrainingErrorUtility`]
///   realisation the MC scheme's per-pair contribution is *constant*
///   (the additive cancellation that powers Theorem 2), so its sampling
///   variance is exactly zero while Eq. 9 is positive.
pub use fedval_core::anytime::{
    component_variance, halfwidth, ProgressSnapshot, StoppingRule, StreamingOutcome, Welford, Z_95,
};

/// Analytic variance of the MC-SV estimator for client `i` (Eq. 9) under
/// the linear model: each stratum contributes `|D_i|²σ²/(n²·m_{i,k}²)` per
/// sampled pair, i.e. `Σ_k |D_i|²σ²/(n²·m_k)` with `m_k` pairs per stratum.
pub fn analytic_var_mc(
    n: usize,
    sizes: &[usize],
    sigma2: f64,
    m_per_stratum: usize,
    i: usize,
) -> f64 {
    assert_eq!(sizes.len(), n);
    assert!(m_per_stratum >= 1);
    let di2 = (sizes[i] * sizes[i]) as f64;
    (1..=n)
        .map(|_k| di2 * sigma2 / ((n * n * m_per_stratum) as f64))
        .sum()
}

/// Analytic variance of the CC-SV estimator for client `i` (Eq. 10):
/// each stratum-`k` term carries `((|D_S|+|D_i|)² + (|D_N|−|D_S|−|D_i|)²)σ²`
/// with `|D_S∪{i}| = k·t` for equal client sizes `t`.
pub fn analytic_var_cc(
    n: usize,
    sizes: &[usize],
    sigma2: f64,
    m_per_stratum: usize,
    i: usize,
) -> f64 {
    assert_eq!(sizes.len(), n);
    assert!(m_per_stratum >= 1);
    let total: usize = sizes.iter().sum();
    let t = sizes[i];
    (1..=n)
        .map(|k| {
            let side = (k * t) as f64;
            let other = total as f64 - side;
            (side * side + other * other) * sigma2 / ((n * n * m_per_stratum) as f64)
        })
        .sum()
}

/// The Theorem 2 utility model (Eq. 8): `U(M_S) = −Σ_{j∈D_S} e_j`, where
/// the per-sample training errors `e_j` are random draws shared by every
/// coalition containing sample `j`. One instance = one training
/// realisation; redraw per run to estimate variance over training noise.
#[derive(Clone, Debug)]
pub struct TrainingErrorUtility {
    /// Per-client error sums `Σ_{j∈Dᵢ} e_j`.
    client_error_sums: Vec<f64>,
}

impl TrainingErrorUtility {
    /// Draw a fresh realisation: `n` clients with `sizes[i]` samples each,
    /// `e_j = |N(mu_e, sigma²)|` (absolute errors, as in mean absolute
    /// error).
    pub fn draw(sizes: &[usize], mu_e: f64, sigma: f64, rng: &mut StdRng) -> Self {
        let client_error_sums = sizes
            .iter()
            .map(|&t| {
                (0..t)
                    .map(|_| (mu_e + sigma * standard_normal(rng)).abs())
                    .sum()
            })
            .collect();
        TrainingErrorUtility { client_error_sums }
    }
}

impl Utility for TrainingErrorUtility {
    fn n_clients(&self) -> usize {
        self.client_error_sums.len()
    }

    fn eval(&self, s: Coalition) -> f64 {
        -s.members().map(|i| self.client_error_sums[i]).sum::<f64>()
    }
}

/// Monte-Carlo variance of the Alg. 1 estimator over *training noise*:
/// each run draws a fresh utility realisation from `factory(run)` and runs
/// the framework once; returns the per-client variance of the estimates,
/// averaged over clients (the quantity Fig. 10 plots against `γ`).
pub fn estimator_variance_over_runs<U, F>(
    factory: F,
    n: usize,
    scheme: Scheme,
    gamma: usize,
    runs: usize,
    seed: u64,
) -> f64
where
    U: Utility,
    F: Fn(usize) -> U,
{
    assert!(runs >= 2);
    let cfg = StratifiedConfig::uniform(n, gamma);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut estimates: Vec<Vec<f64>> = vec![Vec::with_capacity(runs); n];
    for run in 0..runs {
        let u = factory(run);
        assert_eq!(u.n_clients(), n);
        let values = stratified_sampling_values(&u, scheme, &cfg, &mut rng);
        for (per_client, v) in estimates.iter_mut().zip(values) {
            per_client.push(v);
        }
    }
    estimates.iter().map(|e| variance(e)).sum::<f64>() / n as f64
}

#[cfg(test)]
// Tests assert invariants; an unwrap that trips IS the test failing.
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn analytic_cc_strictly_dominates_mc() {
        // Theorem 2 / Eq. 11: Var_CC − Var_MC ≥ Σ |D_S|²σ²/(n²m²) > 0.
        for n in [3usize, 5, 10] {
            let sizes = vec![20usize; n];
            for m in [1usize, 4, 16] {
                let mc = analytic_var_mc(n, &sizes, 1.0, m, 0);
                let cc = analytic_var_cc(n, &sizes, 1.0, m, 0);
                assert!(
                    cc > mc,
                    "n={n}, m={m}: Var_CC = {cc} must exceed Var_MC = {mc}"
                );
            }
        }
    }

    #[test]
    fn analytic_variance_decreases_with_budget() {
        let sizes = vec![10usize; 6];
        let v1 = analytic_var_mc(6, &sizes, 1.0, 1, 0);
        let v4 = analytic_var_mc(6, &sizes, 1.0, 4, 0);
        assert!((v1 / v4 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn training_error_utility_is_additive_and_negative() {
        let mut rng = StdRng::seed_from_u64(0);
        let u = TrainingErrorUtility::draw(&[10, 20, 30], 1.0, 0.3, &mut rng);
        let v01 = u.eval(Coalition::from_members([0, 1]));
        let v0 = u.eval(Coalition::singleton(0));
        let v1 = u.eval(Coalition::singleton(1));
        assert!((v01 - (v0 + v1)).abs() < 1e-12);
        assert!(v0 < 0.0);
        assert_eq!(u.eval(Coalition::empty()), 0.0);
    }

    #[test]
    fn welford_agrees_with_two_pass_variance_on_estimator_runs() {
        // The running accumulator behind the anytime CI must reproduce
        // the two-pass variance the Fig. 10 bench uses, on real
        // estimator output rather than synthetic sequences.
        let sizes = vec![25usize; 5];
        let cfg = StratifiedConfig::uniform(5, 15);
        let mut rng = StdRng::seed_from_u64(3);
        let mut first_client = Vec::with_capacity(60);
        let mut acc = Welford::new();
        for run in 0..60 {
            let mut draw_rng = StdRng::seed_from_u64(500 + run as u64);
            let u = TrainingErrorUtility::draw(&sizes, 1.0, 0.5, &mut draw_rng);
            let v = stratified_sampling_values(&u, Scheme::MarginalContribution, &cfg, &mut rng)[0];
            first_client.push(v);
            acc.push(v);
        }
        let two_pass = variance(&first_client);
        let running = match acc.sample_variance() {
            Some(v) => v,
            None => panic!("60 pushes must yield a variance"),
        };
        assert!(
            (running - two_pass).abs() <= 1e-12 * two_pass.max(1.0),
            "Welford {running} vs two-pass {two_pass}"
        );
    }

    #[test]
    fn mc_sampling_ci_collapses_to_zero_on_a_training_realisation() {
        // Satellite guard, against the Theorem 2 cancellation: on one
        // TrainingErrorUtility realisation the utility is additive, so
        // every matched MC pair contributes a constant — per-stratum
        // sampling variance is *identically zero*. The CI math must turn
        // that into half-width 0 (never NaN from a 0/0), even though the
        // training-noise variance of Eq. 9 is positive.
        use fedval_core::anytime::Control;
        use fedval_core::stratified::stratified_sampling_streaming;
        let mut rng = StdRng::seed_from_u64(11);
        let u = TrainingErrorUtility::draw(&[10, 20, 30, 40], 1.0, 0.5, &mut rng);
        assert!(analytic_var_mc(4, &[10, 20, 30, 40], 0.25, 2, 0) > 0.0);
        // Full coverage: every stratum of n = 4 fits in 8 rounds.
        let cfg = StratifiedConfig::uniform(4, 32);
        let mut saw_nan = false;
        let out = stratified_sampling_streaming(
            &u,
            Scheme::MarginalContribution,
            &cfg,
            &mut StdRng::seed_from_u64(1),
            |s| {
                saw_nan |= s.ci_halfwidths.iter().any(|h| h.is_nan());
                Control::Continue
            },
        );
        assert!(!saw_nan, "zero-variance strata must not divide 0/0");
        assert_eq!(out.ci_halfwidths, vec![0.0; 4]);
    }

    #[test]
    fn single_sample_strata_keep_the_ci_unbounded_not_nan() {
        // Satellite guard: one sample per stratum (m = 1) cannot bound
        // the stratum's variance — the convention is ∞, never NaN — and
        // the CC scheme keeps a genuinely positive sampling variance on
        // the same realisation where MC's is zero.
        use fedval_core::anytime::Control;
        use fedval_core::stratified::stratified_sampling_streaming;
        let mut rng = StdRng::seed_from_u64(21);
        let sizes = [30usize, 30, 30, 30, 30];
        let u = TrainingErrorUtility::draw(&sizes, 1.0, 0.5, &mut rng);
        let cfg = StratifiedConfig::explicit(vec![1; 5]);
        let out = stratified_sampling_streaming(
            &u,
            Scheme::MarginalContribution,
            &cfg,
            &mut StdRng::seed_from_u64(2),
            |_| Control::Continue,
        );
        assert!(out.ci_halfwidths.iter().all(|&h| h.is_infinite()));
        assert!(out.values.iter().all(|v| v.is_finite()));

        // CC contrast (Theorem 2's ordering, in sampling-CI form): cover
        // strata 1, 4, 5 fully and 9 of 10 coalitions in strata 2 and 3,
        // so every per-client pair count lands in 2..=pop (finite CI)
        // while the one missing coalition keeps some count below its
        // population — a genuinely positive CC term survives the FPC.
        let cfg = StratifiedConfig::explicit(vec![5, 9, 9, 5, 1]);
        let cc = stratified_sampling_streaming(
            &u,
            Scheme::ComplementaryContribution,
            &cfg,
            &mut StdRng::seed_from_u64(3),
            |_| Control::Continue,
        );
        let mc = stratified_sampling_streaming(
            &u,
            Scheme::MarginalContribution,
            &cfg,
            &mut StdRng::seed_from_u64(3),
            |_| Control::Continue,
        );
        for (c, m) in cc.ci_halfwidths.iter().zip(&mc.ci_halfwidths) {
            assert!(!c.is_nan() && !m.is_nan());
            // MC's finite half-widths vanish on an additive game (up to
            // the float rounding of summing the coalition in two orders).
            if m.is_finite() {
                assert!(*m < 1e-9, "MC sampling CI should collapse: {m}");
            }
        }
        let cc_max_finite = cc
            .ci_halfwidths
            .iter()
            .filter(|h| h.is_finite())
            .fold(0.0f64, |a, &b| a.max(b));
        assert!(
            cc_max_finite > 1e-6,
            "CC must see positive sampling variance: {:?}",
            cc.ci_halfwidths
        );
    }

    #[test]
    fn empirical_mc_variance_below_cc_theorem2() {
        // The Theorem 2 / Fig. 10 phenomenon: over training-noise
        // realisations, MC-SV's estimator variance is lower than CC-SV's
        // at the same budget, because MC pairs cancel shared samples.
        let sizes = vec![25usize; 6];
        let var_of = |scheme, seed| {
            estimator_variance_over_runs(
                |run| {
                    let mut rng = StdRng::seed_from_u64(1000 + run as u64);
                    TrainingErrorUtility::draw(&sizes, 1.0, 0.5, &mut rng)
                },
                6,
                scheme,
                12,
                150,
                seed,
            )
        };
        let var_mc = var_of(Scheme::MarginalContribution, 7);
        let var_cc = var_of(Scheme::ComplementaryContribution, 7);
        assert!(
            var_mc < var_cc,
            "empirical Var_MC = {var_mc} should be below Var_CC = {var_cc}"
        );
    }
}
