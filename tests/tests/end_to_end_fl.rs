//! End-to-end integration: real FedAvg training through the whole stack —
//! data generation → partitioning → FL utility → every estimator —
//! cross-checked against the exact MC-SV.

// Driver code: test assertions panic by design, so unwrap/expect are
// the failure mechanism, not a robustness gap.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use fedval_core::prelude::*;
use fedval_data::{Dataset, MnistLike, SyntheticSetup};
use fedval_fl::{
    dig_fl, gtg_shapley, lambda_mr, or_valuation, train_with_history, DigFlConfig, FedAvgConfig,
    FlUtility, GtgConfig, LambdaMrConfig, ModelSpec,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn problem(n: usize, seed: u64) -> FlUtility {
    let gen = MnistLike::new(seed);
    let (train, test) = gen.generate_split(80 * n, 300, seed ^ 1);
    let mut rng = StdRng::seed_from_u64(seed ^ 2);
    let clients = SyntheticSetup::SameSizeSameDist.partition(&train, n, &mut rng);
    FlUtility::new(
        clients,
        test,
        ModelSpec::default_mlp(),
        FedAvgConfig {
            rounds: 5,
            local_epochs: 2,
            batch_size: 16,
            lr: 0.2,
            seed,
            ..Default::default()
        },
    )
}

#[test]
fn sampling_estimators_approach_exact_on_real_fl() {
    let utility = CachedUtility::new(problem(4, 501));
    let exact = exact_mc_sv(&utility);
    let norm: f64 = exact.iter().map(|v| v * v).sum::<f64>().sqrt();
    assert!(
        norm > 0.05,
        "training produced a degenerate game: {exact:?}"
    );

    // Each estimator at a generous budget must land within a loose but
    // meaningful tolerance of the exact values (cache is shared, so no
    // retraining happens).
    let mut rng = StdRng::seed_from_u64(7);
    let ipss = ipss_values(&utility, &IpssConfig::new(16), &mut rng);
    assert!(
        l2_relative_error(&ipss, &exact) < 0.45,
        "IPSS: {ipss:?} vs {exact:?}"
    );

    let mut rng = StdRng::seed_from_u64(8);
    let tmc = extended_tmc(&utility, &TmcConfig::new(60).with_tolerance(0.0), &mut rng);
    assert!(
        l2_relative_error(&tmc, &exact) < 0.45,
        "TMC: {tmc:?} vs {exact:?}"
    );

    let mut rng = StdRng::seed_from_u64(9);
    let cc = cc_shapley(&utility, &CcShapConfig::new(200), &mut rng);
    assert!(
        l2_relative_error(&cc, &exact) < 0.45,
        "CC: {cc:?} vs {exact:?}"
    );
}

#[test]
fn utility_cache_bounds_training_count() {
    let utility = CachedUtility::new(problem(4, 502));
    let mut rng = StdRng::seed_from_u64(3);
    let _ = ipss_values(&utility, &IpssConfig::new(9), &mut rng);
    assert!(utility.stats().evaluations <= 9);
    // Re-running any estimator cannot trigger new training for coalitions
    // already seen.
    let seen = utility.stats().evaluations;
    let mut rng = StdRng::seed_from_u64(3);
    let _ = ipss_values(&utility, &IpssConfig::new(9), &mut rng);
    assert_eq!(utility.stats().evaluations, seen);
}

#[test]
fn gradient_baselines_run_and_respect_structure() {
    let n = 4;
    let gen = MnistLike::new(601);
    let (train, test) = gen.generate_split(80 * n, 300, 602);
    let mut rng = StdRng::seed_from_u64(603);
    let mut clients = SyntheticSetup::SameSizeSameDist.partition(&train, n, &mut rng);
    clients[2] = Dataset::empty(64, 10); // free rider
    let spec = ModelSpec::default_mlp();
    let cfg = FedAvgConfig {
        rounds: 4,
        local_epochs: 1,
        batch_size: 16,
        lr: 0.2,
        seed: 604,
        ..Default::default()
    };
    let (_, history) = train_with_history(&spec, &clients, 64, 10, &cfg);

    let or = or_valuation(&history, spec.build(64, 10, 0), test.clone());
    assert!(or[2].abs() < 1e-9, "OR must zero the free rider: {or:?}");

    let mr = lambda_mr(
        &history,
        spec.build(64, 10, 0),
        test.clone(),
        &LambdaMrConfig::default(),
    );
    assert!(mr[2].abs() < 1e-9, "λ-MR must zero the free rider: {mr:?}");

    let mut rng = StdRng::seed_from_u64(605);
    let gtg = gtg_shapley(
        &history,
        spec.build(64, 10, 0),
        test.clone(),
        &GtgConfig::default(),
        &mut rng,
    );
    assert_eq!(gtg.len(), n);

    let dig = dig_fl(
        &history,
        spec.build(64, 10, 0),
        &test,
        &test,
        &DigFlConfig::default(),
    );
    assert_eq!(dig[2], 0.0, "DIG-FL must zero the free rider: {dig:?}");
}

#[test]
fn label_noise_lowers_value_in_aggregate() {
    // The Sec. V-B(d) story: the three cleanest clients should collectively
    // out-value the three noisiest.
    let n = 6;
    let gen = MnistLike::new(701);
    let (train, test) = gen.generate_split(100 * n, 400, 702);
    let mut rng = StdRng::seed_from_u64(703);
    let clients =
        SyntheticSetup::SameSizeNoisyLabel { max_rate: 0.35 }.partition(&train, n, &mut rng);
    let utility = CachedUtility::new(FlUtility::new(
        clients,
        test,
        ModelSpec::default_mlp(),
        FedAvgConfig {
            rounds: 5,
            local_epochs: 2,
            batch_size: 16,
            lr: 0.2,
            seed: 704,
            ..Default::default()
        },
    ));
    let phi = exact_mc_sv(&utility);
    let clean: f64 = phi[..3].iter().sum();
    let noisy: f64 = phi[3..].iter().sum();
    assert!(
        clean > noisy,
        "clean clients {clean} should out-value noisy ones {noisy}: {phi:?}"
    );
}
