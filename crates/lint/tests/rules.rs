//! Fixture-based rule tests: every rule has a tripping fixture and a
//! near-miss fixture, each scanned under a synthetic workspace-relative
//! path (the fixtures themselves live under `tests/fixtures/`, which
//! [`fedval_lint::classify`] excludes from real scans). The final test
//! runs the full workspace scan and requires it clean — the same gate CI
//! applies.

// Driver code: test assertions panic by design, so unwrap/expect are
// the failure mechanism, not a robustness gap.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::path::{Path, PathBuf};

use fedval_lint::{classify, scan_source, scan_workspace, FileClass, Finding, Rule};

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// Scan a fixture as if it lived at `rel_path` inside the workspace.
fn scan_as(name: &str, rel_path: &str) -> Vec<Finding> {
    scan_source(rel_path, &fixture(name))
}

fn rules_of(findings: &[Finding]) -> Vec<Rule> {
    findings.iter().map(|f| f.rule).collect()
}

// ---------------------------------------------------------------- hash-order

#[test]
fn hash_order_trips_on_order_sensitive_iteration() {
    let findings = scan_as("hash_order_trip.rs", "crates/core/src/fixture.rs");
    assert_eq!(
        rules_of(&findings),
        vec![Rule::HashOrder; 4],
        "fold, drain, iter().next() and the bare for-loop must all trip: {findings:?}"
    );
    // The `for (_k, v) in memo.iter()` fold is the first site.
    assert_eq!(findings[0].line, 8, "{findings:?}");
}

#[test]
fn hash_order_ignores_probes_sorts_annotations_and_btree() {
    let findings = scan_as("hash_order_ok.rs", "crates/core/src/fixture.rs");
    assert!(findings.is_empty(), "near-misses must pass: {findings:?}");
}

#[test]
fn hash_order_only_applies_to_estimator_crates() {
    // The same tripping source is fine in a non-estimator crate (no
    // bit-identity contract covers, say, dataset bookkeeping)…
    let findings = scan_as("hash_order_trip.rs", "crates/data/src/fixture.rs");
    assert!(findings.is_empty(), "{findings:?}");
    // …and in driver code.
    let findings = scan_as("hash_order_trip.rs", "tests/tests/fixture.rs");
    assert!(findings.is_empty(), "{findings:?}");
}

// ---------------------------------------------------------------- wall-clock

#[test]
fn wall_clock_trips_outside_the_whitelist() {
    let findings = scan_as("wall_clock_trip.rs", "crates/data/src/fixture.rs");
    assert_eq!(
        rules_of(&findings),
        vec![Rule::WallClock; 2],
        "Instant::now and SystemTime::now must trip: {findings:?}"
    );
}

#[test]
fn wall_clock_passes_annotated_gauges_and_clock_values() {
    let findings = scan_as("wall_clock_ok.rs", "crates/data/src/fixture.rs");
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn wall_clock_whitelist_covers_service_and_bench() {
    // The service's park-wait accounting is the whitelist…
    let findings = scan_as("wall_clock_trip.rs", "crates/core/src/service.rs");
    assert!(findings.is_empty(), "{findings:?}");
    // …and the bench harness is driver code, where timing is the point.
    let findings = scan_as("wall_clock_trip.rs", "crates/bench/src/fixture.rs");
    assert!(findings.is_empty(), "{findings:?}");
}

// -------------------------------------------------------------- unseeded-rng

#[test]
fn unseeded_rng_trips_on_entropy_and_anonymous_seeds() {
    let findings = scan_as("unseeded_rng_trip.rs", "crates/data/src/fixture.rs");
    assert_eq!(
        rules_of(&findings),
        vec![Rule::UnseededRng; 3],
        "from_entropy, thread_rng and the seedless seed_from_u64 must trip: {findings:?}"
    );
}

#[test]
fn unseeded_rng_passes_seed_flow_and_annotation() {
    let findings = scan_as("unseeded_rng_ok.rs", "crates/data/src/fixture.rs");
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn nondeterministic_constructors_are_banned_even_in_driver_code() {
    // Driver code skips the seed-flow check (fixed literals are fine in
    // tests) but never the constructor ban — a test seeded from entropy
    // is unreproducible by construction.
    let findings = scan_as("unseeded_rng_trip.rs", "tests/tests/fixture.rs");
    assert_eq!(
        rules_of(&findings),
        vec![Rule::UnseededRng; 2],
        "{findings:?}"
    );
}

// ------------------------------------------------------- allow-justification

#[test]
fn allow_justification_trips_on_bare_allows() {
    let findings = scan_as("allow_trip.rs", "crates/data/src/fixture.rs");
    assert_eq!(
        rules_of(&findings),
        vec![Rule::AllowJustification; 2],
        "plain #[allow] and #[cfg_attr(..., allow(...))] must trip: {findings:?}"
    );
}

#[test]
fn allow_justification_passes_commented_and_test_allows() {
    let findings = scan_as("allow_ok.rs", "crates/data/src/fixture.rs");
    assert!(findings.is_empty(), "{findings:?}");
}

// ------------------------------------------------------------ classification

#[test]
fn classification_matches_the_layout() {
    assert_eq!(
        classify("crates/core/src/sampling.rs"),
        Some(FileClass::Library {
            estimator: true,
            timing_whitelisted: false,
        })
    );
    assert_eq!(
        classify("crates/core/src/service.rs"),
        Some(FileClass::Library {
            estimator: true,
            timing_whitelisted: true,
        })
    );
    assert_eq!(
        classify("crates/gbdt/src/tree.rs"),
        Some(FileClass::Library {
            estimator: false,
            timing_whitelisted: false,
        })
    );
    assert_eq!(
        classify("crates/bench/src/runner.rs"),
        Some(FileClass::Driver)
    );
    assert_eq!(
        classify("tests/tests/service_faults.rs"),
        Some(FileClass::Driver)
    );
    assert_eq!(classify("examples/quickstart.rs"), Some(FileClass::Driver));
    // Out of scope: shims (vendored), fixtures (lint inputs), non-Rust.
    assert_eq!(classify("shims/rand/src/lib.rs"), None);
    assert_eq!(classify("crates/lint/tests/fixtures/allow_trip.rs"), None);
    assert_eq!(classify("crates/core/Cargo.toml"), None);
}

// ------------------------------------------------------------ workspace gate

#[test]
fn the_workspace_itself_is_clean() {
    // The same gate CI applies: the real tree must carry zero findings.
    // (A fix or a justified annotation, never an unexplained exception.)
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint sits two levels under the root")
        .to_path_buf();
    assert!(
        root.join("Cargo.toml").exists(),
        "not a workspace root: {root:?}"
    );
    let findings = scan_workspace(&root).expect("workspace scan");
    assert!(
        findings.is_empty(),
        "the tree must stay lint-clean:\n{}",
        findings
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}
