//! The Donahue–Kleinberg linear-regression analysis model (AAAI'21) that
//! the paper's theory builds on, and the closed forms of Lemma 1 and
//! Theorem 3.
//!
//! All data items are drawn from a standard Gaussian; the expected MSE of a
//! linear regression trained on `d` items with `x_dim` input features and
//! noise expectation `mu_e` is `mu_e·x_dim / (d − x_dim − 1)` (Eq. 12).

/// Expected MSE of a linear regression fit on `d` samples (Eq. 12).
///
/// Only defined for `d > x_dim + 1`; below that the regression is
/// under-determined and the paper substitutes the initial-model MSE `m0`.
pub fn expected_mse(mu_e: f64, x_dim: usize, d: usize) -> Option<f64> {
    (d > x_dim + 1).then(|| mu_e * x_dim as f64 / (d as f64 - x_dim as f64 - 1.0))
}

/// Expected MSE of the FL model of a coalition of `s` clients, each with
/// `t` samples (Eq. 13), falling back to `m0` when under-determined
/// (including `s = 0`).
pub fn expected_coalition_mse(mu_e: f64, x_dim: usize, t: usize, s: usize, m0: f64) -> f64 {
    expected_mse(mu_e, x_dim, s * t).unwrap_or(m0)
}

/// Lemma 1: expected data value of any client under negative-MSE utility:
/// `E[ϕ_i] = (1/n)(m0 − mu_e·x_dim/(n·t − x_dim − 1))`.
pub fn lemma1_expected_sv(n: usize, t: usize, mu_e: f64, x_dim: usize, m0: f64) -> f64 {
    assert!(n * t > x_dim + 1, "grand coalition must be determined");
    (m0 - mu_e * x_dim as f64 / ((n * t) as f64 - x_dim as f64 - 1.0)) / n as f64
}

/// Eq. 16: expected data value estimated by IPSS when truncating at `k*`:
/// `E[ϕ̂ᵢ^{k*}] = (1/n)(m0 − mu_e·x_dim/(k*·t − x_dim − 1))`.
pub fn truncated_expected_sv(
    n: usize,
    t: usize,
    k_star: usize,
    mu_e: f64,
    x_dim: usize,
    m0: f64,
) -> f64 {
    assert!(k_star >= 1 && k_star <= n);
    assert!(
        k_star * t > x_dim + 1,
        "truncation level must be determined"
    );
    (m0 - mu_e * x_dim as f64 / ((k_star * t) as f64 - x_dim as f64 - 1.0)) / n as f64
}

/// Theorem 3's bound on the relative truncation error:
/// `|E[ϕ̂^{k*}] − E[ϕ]| / E[ϕ] ≤ (n−k*)·t / ((k*t − |x| − 1)(nt − |x| − 2))`,
/// i.e. `O((n − k*)/(k*·n·t))`.
///
/// Validity: the derivation (Eq. 18) assumes the initial model is no
/// better than a regression fit on `|x| + 2` samples, i.e.
/// `m0 ≥ mse(|x|+2) = μ_e·|x|`. With a better-than-that initial model the
/// bound can be violated (the denominator `E[ϕ]` shrinks).
pub fn theorem3_error_bound(n: usize, t: usize, k_star: usize, x_dim: usize) -> f64 {
    assert!(k_star >= 1 && k_star <= n);
    let kt = (k_star * t) as f64 - x_dim as f64 - 1.0;
    let nt = (n * t) as f64 - x_dim as f64 - 2.0;
    assert!(kt > 0.0 && nt > 0.0);
    ((n - k_star) * t) as f64 / (kt * nt)
}

/// The asymptotic form of Theorem 3's bound: `(n − k*) / (k*·n·t)`.
pub fn theorem3_asymptotic(n: usize, t: usize, k_star: usize) -> f64 {
    (n - k_star) as f64 / (k_star * n * t) as f64
}

#[cfg(test)]
// Tests assert invariants; an unwrap that trips IS the test failing.
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn expected_mse_decreases_in_data() {
        let mut prev = f64::INFINITY;
        for d in 12..200 {
            let m = expected_mse(1.0, 10, d).unwrap();
            assert!(m < prev);
            assert!(m > 0.0);
            prev = m;
        }
        assert!(expected_mse(1.0, 10, 11).is_none());
        assert!(expected_mse(1.0, 10, 5).is_none());
    }

    #[test]
    fn coalition_mse_falls_back_to_m0() {
        assert_eq!(expected_coalition_mse(1.0, 10, 100, 0, 5.0), 5.0);
        let one = expected_coalition_mse(1.0, 10, 100, 1, 5.0);
        assert!((one - 10.0 / 89.0).abs() < 1e-12);
    }

    #[test]
    fn lemma1_matches_direct_mc_sv_computation() {
        // Under the model, U(S) = −E[mse(|S|t)]; the MC-SV telescopes per
        // stratum (Eq. 14), so E[ϕ_i] must equal the direct MC-SV on the
        // expected-utility game.
        use fedval_core::exact::exact_mc_sv;
        use fedval_core::utility::TableUtility;
        let (n, t, mu_e, x_dim, m0) = (6usize, 40usize, 2.0, 5usize, 1.0);
        let u = TableUtility::from_fn(n, |s| -expected_coalition_mse(mu_e, x_dim, t, s.size(), m0));
        let phi = exact_mc_sv(&u);
        let lemma = lemma1_expected_sv(n, t, mu_e, x_dim, m0);
        for v in &phi {
            assert!((v - lemma).abs() < 1e-12, "{phi:?} vs lemma {lemma}");
        }
    }

    #[test]
    fn truncated_sv_underestimates_and_converges() {
        let (n, t, mu_e, x_dim, m0) = (10usize, 50usize, 1.0, 4usize, 0.8);
        let full = lemma1_expected_sv(n, t, mu_e, x_dim, m0);
        let mut prev = f64::NEG_INFINITY;
        for k in 1..=n {
            let trunc = truncated_expected_sv(n, t, k, mu_e, x_dim, m0);
            assert!(trunc <= full + 1e-12);
            assert!(trunc >= prev, "monotone in k*");
            prev = trunc;
        }
        assert!((prev - full).abs() < 1e-12, "k* = n is exact");
    }

    #[test]
    fn theorem3_bound_dominates_actual_error() {
        // m0 must satisfy the bound's validity condition m0 ≥ μ_e·|x| = 4.
        let (n, t, mu_e, x_dim, m0) = (10usize, 60usize, 1.0, 4usize, 5.0);
        let exact = lemma1_expected_sv(n, t, mu_e, x_dim, m0);
        for k in 1..n {
            let approx = truncated_expected_sv(n, t, k, mu_e, x_dim, m0);
            let rel_err = (approx - exact).abs() / exact.abs();
            let bound = theorem3_error_bound(n, t, k, x_dim);
            assert!(
                rel_err <= bound + 1e-12,
                "k*={k}: error {rel_err} exceeds bound {bound}"
            );
        }
    }

    #[test]
    fn theorem3_bound_shrinks_with_t_and_k() {
        // More data per client or a deeper exhaustive phase tighten the
        // bound — the "key combinations" argument of Sec. IV-C.
        assert!(theorem3_error_bound(10, 200, 2, 4) < theorem3_error_bound(10, 50, 2, 4));
        assert!(theorem3_error_bound(10, 50, 4, 4) < theorem3_error_bound(10, 50, 1, 4));
        assert_eq!(theorem3_error_bound(10, 50, 10, 4), 0.0);
        // Asymptotic form agrees on order of magnitude.
        let b = theorem3_error_bound(10, 100, 2, 4);
        let a = theorem3_asymptotic(10, 100, 2);
        assert!(b / a < 10.0 && a / b < 10.0);
    }
}
