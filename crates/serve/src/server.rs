//! The wire server: a `TcpListener` accept loop fronting a
//! [`ValuationServer`], one handler thread per connection, admission
//! control on top of the service's own deadline/budget knobs, and a
//! drain-on-shutdown path that rides the service's typed
//! [`ServerShutdown`](ValuationError::ServerShutdown) error.
//!
//! # Endpoints
//!
//! | method · path | body | response |
//! |---------------|------|----------|
//! | `POST /v1/value` | a [`wire`] valuation request | 200/206 result, or the mapped error status |
//! | `GET /v1/stats` | — | cumulative [`ServiceStats`](fedval_core::service::ServiceStats) |
//! | `GET /v1/healthz` | — | `{"ok": true, "draining": …}` |
//!
//! # Admission control
//!
//! At most [`WireConfig::max_inflight`] valuation requests run at once;
//! request `max_inflight + 1` is rejected *before* it reaches the
//! valuation server with **429** and a `Retry-After` header
//! ([`WireConfig::retry_after_secs`]). Reads are additionally bounded by
//! [`Limits`] (413/431) — saturation never builds an unbounded queue.
//!
//! # Shutdown
//!
//! [`WireServer::begin_shutdown`] (the SIGTERM path in the binary) stops
//! the accept loop and forwards to
//! [`ValuationServer::begin_shutdown`]: in-flight runs abort at their
//! next batch boundary with the typed shutdown error, handlers write the
//! mapped **503** before closing, idle keep-alive connections close at
//! the next poll tick, and a connection mid-upload gets
//! [`WireConfig::drain_grace`] to finish before the socket is dropped.
//! [`WireServer::shutdown`] then joins every thread.

use std::io;
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use fedval_core::service::{ValuationError, ValuationServer};
use fedval_core::utility::Utility;

use crate::http::{Conn, HttpError, Limits, Request, Response};
use crate::json::{self, Json, Num};
use crate::wire;

/// Knobs of the wire transport (the valuation-level knobs — deadlines,
/// budgets, stopping rules — travel per request instead).
#[derive(Clone, Debug)]
pub struct WireConfig {
    /// Address to bind (`0` port picks a free one; see
    /// [`WireServer::addr`]).
    pub addr: String,
    /// Valuation requests allowed in flight at once; the next one is
    /// rejected with 429 + `Retry-After`.
    pub max_inflight: usize,
    /// Per-request read caps (head → 431, body → 413).
    pub limits: Limits,
    /// Value of the `Retry-After` header on 429 responses.
    pub retry_after_secs: u64,
    /// Cadence at which blocked reads and the accept loop re-check the
    /// shutdown flag.
    pub poll: Duration,
    /// After shutdown begins, how long a connection mid-request may keep
    /// reading before its socket is dropped.
    pub drain_grace: Duration,
}

impl Default for WireConfig {
    fn default() -> Self {
        WireConfig {
            addr: "127.0.0.1:0".to_string(),
            max_inflight: 64,
            limits: Limits::default(),
            retry_after_secs: 1,
            poll: Duration::from_millis(2),
            drain_grace: Duration::from_secs(5),
        }
    }
}

struct Inner<U: Utility + Send + Sync + 'static> {
    valuation: ValuationServer<U>,
    cfg: WireConfig,
    stop: AtomicBool,
    inflight: AtomicUsize,
    conns: Mutex<Vec<thread::JoinHandle<()>>>,
}

/// A running wire transport over one [`ValuationServer`].
pub struct WireServer<U: Utility + Send + Sync + 'static> {
    inner: Arc<Inner<U>>,
    accept: Option<thread::JoinHandle<()>>,
    local_addr: SocketAddr,
}

impl<U: Utility + Send + Sync + 'static> WireServer<U> {
    /// Bind `cfg.addr` and start serving `valuation` — the accept loop
    /// and every connection run on their own threads; this returns once
    /// the socket is listening.
    pub fn start(valuation: ValuationServer<U>, cfg: WireConfig) -> io::Result<WireServer<U>> {
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let inner = Arc::new(Inner {
            valuation,
            cfg,
            stop: AtomicBool::new(false),
            inflight: AtomicUsize::new(0),
            conns: Mutex::new(Vec::new()),
        });
        let accept_inner = Arc::clone(&inner);
        let accept = thread::Builder::new()
            .name("fedval-serve-accept".to_string())
            .spawn(move || accept_loop(accept_inner, listener))?;
        Ok(WireServer {
            inner,
            accept: Some(accept),
            local_addr,
        })
    }

    /// The bound address (resolves a `:0` bind).
    pub fn addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The fronted valuation server — lets an owner mix wire and
    /// in-process traffic against the same instance (the bit-identity
    /// suite compares the two).
    pub fn valuation(&self) -> &ValuationServer<U> {
        &self.inner.valuation
    }

    /// Initiate drain without blocking: stop accepting, abort in-flight
    /// valuations with the typed shutdown error (handlers still write
    /// the mapped 503 before closing). Idempotent; [`shutdown`] completes
    /// the join.
    ///
    /// [`shutdown`]: WireServer::shutdown
    pub fn begin_shutdown(&self) {
        self.inner.stop.store(true, Ordering::Release);
        self.inner.valuation.begin_shutdown();
    }

    /// Drain and stop: [`begin_shutdown`], then join the accept loop and
    /// every connection handler. Returns once the port is released and
    /// all threads are gone.
    ///
    /// [`begin_shutdown`]: WireServer::begin_shutdown
    pub fn shutdown(mut self) {
        self.begin_shutdown();
        if let Some(a) = self.accept.take() {
            let _ = a.join();
        }
        let conns = match self.inner.conns.lock() {
            Ok(mut guard) => std::mem::take(&mut *guard),
            Err(poisoned) => std::mem::take(&mut *poisoned.into_inner()),
        };
        for c in conns {
            let _ = c.join();
        }
        // Dropping the last `Inner` handle drops the `ValuationServer`,
        // which joins its dispatcher.
    }
}

impl<U: Utility + Send + Sync + 'static> Drop for WireServer<U> {
    fn drop(&mut self) {
        self.begin_shutdown();
        if let Some(a) = self.accept.take() {
            let _ = a.join();
        }
    }
}

fn accept_loop<U: Utility + Send + Sync + 'static>(inner: Arc<Inner<U>>, listener: TcpListener) {
    while !inner.stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let conn_inner = Arc::clone(&inner);
                let handle = thread::Builder::new()
                    .name("fedval-serve-conn".to_string())
                    .spawn(move || {
                        let poll = conn_inner.cfg.poll;
                        if let Ok(conn) = Conn::new(stream, poll) {
                            serve_connection(conn_inner, conn);
                        }
                    });
                if let Ok(handle) = handle {
                    if let Ok(mut conns) = inner.conns.lock() {
                        conns.retain(|c| !c.is_finished());
                        conns.push(handle);
                    }
                }
            }
            // Nonblocking accept: nothing pending (or a transient
            // per-connection error) — nap one poll tick and re-check the
            // shutdown flag.
            Err(_) => thread::sleep(inner.cfg.poll),
        }
    }
}

/// Serve one connection until it closes, errors, or the drain ends it.
fn serve_connection<U: Utility + Send + Sync + 'static>(inner: Arc<Inner<U>>, mut conn: Conn) {
    // Set when this handler first observes the stop flag mid-request;
    // the connection may keep reading until the grace runs out.
    let mut drain_deadline: Option<Instant> = None;
    loop {
        // Wall-clock is allowed here for the same reason the annotations
        // below state: the drain grace is transport plumbing, never a
        // measured value.
        #[allow(clippy::disallowed_methods)]
        let mut should_abort = |request_pending: bool| {
            if !inner.stop.load(Ordering::Acquire) {
                return false;
            }
            if !request_pending {
                return true;
            }
            let deadline = *drain_deadline.get_or_insert_with(|| {
                // lint:wall-clock(drain grace: a connection caught
                // mid-upload at shutdown gets cfg.drain_grace of wall
                // time to finish the request before its socket is
                // dropped — this is transport plumbing and never feeds
                // a value)
                Instant::now() + inner.cfg.drain_grace
            });
            Instant::now() >= deadline // lint:wall-clock(same drain-grace gauge as above)
        };
        let request = conn.read_request(&inner.cfg.limits, &mut should_abort);
        let response = match request {
            Ok(req) => route(&inner, &req),
            Err(HttpError::Closed) | Err(HttpError::Io(_)) => return,
            // Framing is untrustworthy after a malformed request: answer
            // with the mapped status, then close.
            Err(HttpError::BadRequest(detail)) => Response::json(
                400,
                wire::wire_error_body(400, "bad_request", detail).encode(),
            )
            .closing(),
            Err(HttpError::LengthRequired) => Response::json(
                411,
                wire::wire_error_body(
                    411,
                    "length_required",
                    "body-bearing request without Content-Length".to_string(),
                )
                .encode(),
            )
            .closing(),
            Err(HttpError::PayloadTooLarge { declared, limit }) => Response::json(
                413,
                wire::wire_error_body(
                    413,
                    "payload_too_large",
                    format!("declared Content-Length {declared} exceeds the {limit}-byte cap"),
                )
                .encode(),
            )
            .closing(),
            Err(HttpError::HeadTooLarge { limit }) => Response::json(
                431,
                wire::wire_error_body(
                    431,
                    "head_too_large",
                    format!("request head exceeds the {limit}-byte cap"),
                )
                .encode(),
            )
            .closing(),
        };
        let close = response.close;
        if conn.write_response(&response).is_err() || close {
            return;
        }
    }
}

fn route<U: Utility + Send + Sync + 'static>(inner: &Inner<U>, req: &Request) -> Response {
    let mut resp = match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/v1/value") => handle_value(inner, req),
        ("GET", "/v1/stats") => {
            let stats = wire::encode_service_stats(&inner.valuation.stats());
            Response::json(200, stats.encode())
        }
        ("GET", "/v1/healthz") => {
            let body = Json::obj([
                ("ok", Json::Bool(true)),
                ("draining", Json::Bool(inner.stop.load(Ordering::Acquire))),
                (
                    "inflight",
                    Json::Num(Num::U64(inner.inflight.load(Ordering::Acquire) as u64)),
                ),
            ]);
            Response::json(200, body.encode())
        }
        (method, path @ ("/v1/value" | "/v1/stats" | "/v1/healthz")) => {
            let allow = if path == "/v1/value" { "POST" } else { "GET" };
            Response::json(
                405,
                wire::wire_error_body(
                    405,
                    "method_not_allowed",
                    format!("{method} is not allowed on {path} (allow: {allow})"),
                )
                .encode(),
            )
            .with_header("allow", allow.to_string())
        }
        (_, path) => Response::json(
            404,
            wire::wire_error_body(404, "not_found", format!("no such endpoint: {path}")).encode(),
        ),
    };
    if !req.keep_alive {
        resp = resp.closing();
    }
    resp
}

/// RAII slot of the in-flight gauge: released on every exit path,
/// including a panicking valuation wait.
struct InflightSlot<'a>(&'a AtomicUsize);

impl Drop for InflightSlot<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::AcqRel);
    }
}

fn handle_value<U: Utility + Send + Sync + 'static>(inner: &Inner<U>, req: &Request) -> Response {
    let text = match std::str::from_utf8(&req.body) {
        Ok(t) => t,
        Err(_) => {
            return Response::json(
                400,
                wire::wire_error_body(400, "malformed_json", "body is not UTF-8".to_string())
                    .encode(),
            )
        }
    };
    let doc = match json::parse(text) {
        Ok(doc) => doc,
        Err(e) => {
            return Response::json(
                400,
                wire::wire_error_body(400, "malformed_json", e.to_string()).encode(),
            )
        }
    };
    let request = match wire::parse_valuation_request(&doc) {
        Ok(r) => r,
        Err(e) => {
            return Response::json(
                400,
                wire::wire_error_body(400, "bad_request", e.detail).encode(),
            )
        }
    };
    // Admission: claim a slot before touching the valuation server.
    if inner.inflight.fetch_add(1, Ordering::AcqRel) >= inner.cfg.max_inflight {
        inner.inflight.fetch_sub(1, Ordering::AcqRel);
        let (status, kind) = (429, "saturated");
        return Response::json(
            status,
            wire::wire_error_body(
                status,
                kind,
                format!(
                    "{} valuation requests already in flight",
                    inner.cfg.max_inflight
                ),
            )
            .encode(),
        )
        .with_header("retry-after", inner.cfg.retry_after_secs.to_string());
    }
    let slot = InflightSlot(&inner.inflight);
    let result = if inner.stop.load(Ordering::Acquire) {
        // Drain already began: answer with the same typed error the
        // valuation server would produce, without enqueueing.
        Err(ValuationError::ServerShutdown)
    } else {
        inner.valuation.call(request)
    };
    drop(slot);
    let (status, body) = match result {
        Ok(resp) => wire::encode_response(&resp),
        Err(e) => wire::encode_error(&e),
    };
    Response::json(status, body.encode())
}
