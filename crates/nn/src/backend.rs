//! Pluggable linear-algebra backends.
//!
//! Every FLOP of the FL hot path — solo forward/backward
//! ([`crate::layers::Dense`]/[`crate::layers::DenseRelu`]), the
//! lane-blocked multi-coalition kernels ([`crate::lanes`]) and the FL
//! engine's parameter arithmetic (FedProx proximal pull, update deltas,
//! weighted aggregation) — flows through the [`LinalgBackend`] trait, so a
//! backend chosen once at the utility/config level reaches the innermost
//! loops without per-element dispatch: layers hold a [`Backend`] value and
//! dispatch is one `match` per *kernel call* (a whole `m×k×n` matmul or a
//! whole parameter-vector axpy), amortised over the entire operand.
//!
//! Two backends ship today:
//!
//! * [`Reference`] — the blocked scalar kernels of [`crate::linalg`],
//!   bit-identical to every historical result; the determinism tests pin
//!   this backend's outputs.
//! * [`Simd`] — 8-wide unrolled microkernels (shaped for one AVX2/NEON
//!   f32 vector; the unrolled loops autovectorise on stable Rust without
//!   `std::simd`). Reductions use a **fixed, documented accumulation
//!   order** (see [`Simd`]), so results are deterministic per backend —
//!   independent of threads, lane grouping and batch composition — but
//!   differ from [`Reference`] in the last bits of each reduction.
//!
//! **Determinism contract.** Per backend, every kernel is a pure function
//! of its operands with a fixed accumulation order. Element-wise kernels
//! (`matmul`, `matmul_at_b_accum`, the lane gradient accumulation, `axpy`)
//! are bit-identical *across* backends too — vectorising independent
//! output elements cannot reorder any single element's sum. Only the
//! dot-reduction family (`matmul_a_bt*`, lane forward, `dot`, `norm2`)
//! rounds differently between backends.
//!
//! Adding a third backend (GPU, wider SIMD): implement [`LinalgBackend`],
//! add a [`Backend`] variant, extend [`Backend::from_name`], and run the
//! `backend_equivalence` fuzz suite plus the `backend_speedup` bench
//! against it. The lane kernels are the natural first GPU target — `B`
//! independent models over one batch is a batched-GEMM shape.

use std::sync::OnceLock;

use crate::linalg;

/// The kernel surface every linear-algebra backend implements: the three
/// solo training kernels, their lane-blocked multi-coalition counterparts,
/// and the scalar helpers the FL engine's parameter arithmetic uses.
///
/// Dimensions and layouts mirror the reference kernels in
/// [`crate::linalg`] (row-major, `b` pre-transposed in the `a·bᵀ`
/// family). Implementations must be deterministic: a fixed accumulation
/// order per kernel, documented on the implementing type.
pub trait LinalgBackend {
    /// Backend name as accepted by [`Backend::from_name`].
    fn name(&self) -> &'static str;

    /// `out[m×n] = a[m×k] · b[k×n]`; `out` is overwritten.
    fn matmul(&self, a: &[f32], b: &[f32], m: usize, k: usize, n: usize, out: &mut [f32]);

    /// `out[m×n] = a[m×k] · bᵀ` with `b` stored `n×k`.
    fn matmul_a_bt(&self, a: &[f32], b: &[f32], m: usize, k: usize, n: usize, out: &mut [f32]);

    /// Fused forward: `out = a·bᵀ + bias`, optionally ReLU-clamped with
    /// the positive mask appended to `relu_mask` (see
    /// [`linalg::matmul_a_bt_bias`]).
    #[allow(clippy::too_many_arguments)] // BLAS-style kernel: dims + operands
    fn matmul_a_bt_bias(
        &self,
        a: &[f32],
        b: &[f32],
        bias: &[f32],
        m: usize,
        k: usize,
        n: usize,
        out: &mut [f32],
        relu_mask: Option<&mut Vec<bool>>,
    );

    /// `out[k×n] += aᵀ · b` (gradient accumulation).
    fn matmul_at_b_accum(
        &self,
        a: &[f32],
        b: &[f32],
        m: usize,
        k: usize,
        n: usize,
        out: &mut [f32],
    );

    /// Lane-blocked fused forward over `lanes` parameter lanes (see
    /// [`linalg::lane_matmul_a_bt_bias`]).
    #[allow(clippy::too_many_arguments)] // BLAS-style kernel: dims + operands
    fn lane_matmul_a_bt_bias(
        &self,
        a: &[f32],
        a_shared: bool,
        w: &[f32],
        bias: &[f32],
        lanes: usize,
        active: &[bool],
        m: usize,
        k: usize,
        n: usize,
        out: &mut [f32],
        relu_masks: Option<&mut [bool]>,
    );

    /// Lane-blocked gradient accumulation over `lanes` parameter lanes
    /// (see [`linalg::lane_matmul_at_b_accum`]).
    #[allow(clippy::too_many_arguments)] // BLAS-style kernel: dims + operands
    fn lane_matmul_at_b_accum(
        &self,
        grad_out: &[f32],
        input: &[f32],
        input_shared: bool,
        lanes: usize,
        active: &[bool],
        m: usize,
        k: usize,
        n: usize,
        grad_w: &mut [f32],
        grad_b: &mut [f32],
    );

    /// Dot product.
    fn dot(&self, a: &[f32], b: &[f32]) -> f32;

    /// `y ← y + alpha·x`.
    fn axpy(&self, alpha: f32, x: &[f32], y: &mut [f32]);

    /// Euclidean norm (via this backend's [`LinalgBackend::dot`]).
    fn norm2(&self, x: &[f32]) -> f32 {
        self.dot(x, x).sqrt()
    }
}

/// The blocked scalar kernels of [`crate::linalg`], unchanged: every
/// output is bit-identical to the historical (pre-backend) code paths,
/// which the determinism and lock-step equivalence tests pin.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Reference;

impl LinalgBackend for Reference {
    fn name(&self) -> &'static str {
        "reference"
    }

    fn matmul(&self, a: &[f32], b: &[f32], m: usize, k: usize, n: usize, out: &mut [f32]) {
        linalg::matmul(a, b, m, k, n, out);
    }

    fn matmul_a_bt(&self, a: &[f32], b: &[f32], m: usize, k: usize, n: usize, out: &mut [f32]) {
        linalg::matmul_a_bt(a, b, m, k, n, out);
    }

    fn matmul_a_bt_bias(
        &self,
        a: &[f32],
        b: &[f32],
        bias: &[f32],
        m: usize,
        k: usize,
        n: usize,
        out: &mut [f32],
        relu_mask: Option<&mut Vec<bool>>,
    ) {
        linalg::matmul_a_bt_bias(a, b, bias, m, k, n, out, relu_mask);
    }

    fn matmul_at_b_accum(
        &self,
        a: &[f32],
        b: &[f32],
        m: usize,
        k: usize,
        n: usize,
        out: &mut [f32],
    ) {
        linalg::matmul_at_b_accum(a, b, m, k, n, out);
    }

    fn lane_matmul_a_bt_bias(
        &self,
        a: &[f32],
        a_shared: bool,
        w: &[f32],
        bias: &[f32],
        lanes: usize,
        active: &[bool],
        m: usize,
        k: usize,
        n: usize,
        out: &mut [f32],
        relu_masks: Option<&mut [bool]>,
    ) {
        linalg::lane_matmul_a_bt_bias(
            a, a_shared, w, bias, lanes, active, m, k, n, out, relu_masks,
        );
    }

    fn lane_matmul_at_b_accum(
        &self,
        grad_out: &[f32],
        input: &[f32],
        input_shared: bool,
        lanes: usize,
        active: &[bool],
        m: usize,
        k: usize,
        n: usize,
        grad_w: &mut [f32],
        grad_b: &mut [f32],
    ) {
        linalg::lane_matmul_at_b_accum(
            grad_out,
            input,
            input_shared,
            lanes,
            active,
            m,
            k,
            n,
            grad_w,
            grad_b,
        );
    }

    fn dot(&self, a: &[f32], b: &[f32]) -> f32 {
        linalg::dot(a, b)
    }

    fn axpy(&self, alpha: f32, x: &[f32], y: &mut [f32]) {
        linalg::axpy(alpha, x, y);
    }

    fn norm2(&self, x: &[f32]) -> f32 {
        linalg::norm2(x)
    }
}

/// 8-wide unrolled microkernels.
///
/// **Accumulation order (the backend's determinism contract).** Every
/// length-`k` reduction — each output element of the `a·bᵀ` family (solo
/// and lane), [`LinalgBackend::dot`] and [`LinalgBackend::norm2`] — is
/// computed as:
///
/// 1. eight partial sums `p_t = Σ_c a[8c+t]·b[8c+t]` over the
///    `⌊k/8⌋·8`-element prefix, filled in ascending chunk order;
/// 2. combined pairwise as
///    `((p_0+p_1)+(p_2+p_3)) + ((p_4+p_5)+(p_6+p_7))`;
/// 3. the `k mod 8` tail elements added one by one in ascending index
///    order.
///
/// This order is a function of `k` alone — never of how the call was
/// blocked, which lanes were active, or which columns shared a
/// microkernel — so results are deterministic and the lane path stays
/// bit-identical to this backend's own solo path (the lock-step
/// contract, per backend).
///
/// Element-wise kernels (`matmul`, `matmul_at_b_accum`, their lane
/// counterpart, `axpy`) unroll over *independent* output elements, so
/// they are bit-identical to [`Reference`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Simd;

impl LinalgBackend for Simd {
    fn name(&self) -> &'static str {
        "simd"
    }

    fn matmul(&self, a: &[f32], b: &[f32], m: usize, k: usize, n: usize, out: &mut [f32]) {
        linalg::matmul_with(simd_axpy, a, b, m, k, n, out);
    }

    fn matmul_a_bt(&self, a: &[f32], b: &[f32], m: usize, k: usize, n: usize, out: &mut [f32]) {
        linalg::a_bt_with(simd_a_bt_row, a, b, None, m, k, n, out, None);
    }

    fn matmul_a_bt_bias(
        &self,
        a: &[f32],
        b: &[f32],
        bias: &[f32],
        m: usize,
        k: usize,
        n: usize,
        out: &mut [f32],
        relu_mask: Option<&mut Vec<bool>>,
    ) {
        linalg::a_bt_with(simd_a_bt_row, a, b, Some(bias), m, k, n, out, relu_mask);
    }

    fn matmul_at_b_accum(
        &self,
        a: &[f32],
        b: &[f32],
        m: usize,
        k: usize,
        n: usize,
        out: &mut [f32],
    ) {
        linalg::at_b_accum_with(simd_axpy, a, b, m, k, n, out);
    }

    fn lane_matmul_a_bt_bias(
        &self,
        a: &[f32],
        a_shared: bool,
        w: &[f32],
        bias: &[f32],
        lanes: usize,
        active: &[bool],
        m: usize,
        k: usize,
        n: usize,
        out: &mut [f32],
        relu_masks: Option<&mut [bool]>,
    ) {
        linalg::lane_a_bt_bias_with(
            simd_a_bt_row,
            a,
            a_shared,
            w,
            bias,
            lanes,
            active,
            m,
            k,
            n,
            out,
            relu_masks,
        );
    }

    fn lane_matmul_at_b_accum(
        &self,
        grad_out: &[f32],
        input: &[f32],
        input_shared: bool,
        lanes: usize,
        active: &[bool],
        m: usize,
        k: usize,
        n: usize,
        grad_w: &mut [f32],
        grad_b: &mut [f32],
    ) {
        linalg::lane_at_b_accum_with(
            simd_axpy,
            grad_out,
            input,
            input_shared,
            lanes,
            active,
            m,
            k,
            n,
            grad_w,
            grad_b,
        );
    }

    fn dot(&self, a: &[f32], b: &[f32]) -> f32 {
        simd_dot(a, b)
    }

    fn axpy(&self, alpha: f32, x: &[f32], y: &mut [f32]) {
        simd_axpy(alpha, x, y);
    }
}

/// Pairwise combine of the eight partial sums — step 2 of the [`Simd`]
/// accumulation order.
#[inline]
fn reduce8(acc: [f32; 8]) -> f32 {
    ((acc[0] + acc[1]) + (acc[2] + acc[3])) + ((acc[4] + acc[5]) + (acc[6] + acc[7]))
}

/// 8-wide dot product in the [`Simd`] accumulation order.
#[inline]
fn simd_dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = [0.0f32; 8];
    let mut ca = a.chunks_exact(8);
    let mut cb = b.chunks_exact(8);
    for (xa, xb) in (&mut ca).zip(&mut cb) {
        for t in 0..8 {
            acc[t] += xa[t] * xb[t];
        }
    }
    let mut sum = reduce8(acc);
    for (x, y) in ca.remainder().iter().zip(cb.remainder()) {
        sum += x * y;
    }
    sum
}

/// 8-wide `y ← y + alpha·x`. Element-wise: bit-identical to the scalar
/// [`linalg::axpy`].
#[inline]
fn simd_axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
    debug_assert_eq!(x.len(), y.len());
    let mut cy = y.chunks_exact_mut(8);
    let mut cx = x.chunks_exact(8);
    for (ya, xa) in (&mut cy).zip(&mut cx) {
        for t in 0..8 {
            ya[t] += alpha * xa[t];
        }
    }
    for (o, &v) in cy.into_remainder().iter_mut().zip(cx.remainder()) {
        *o += alpha * v;
    }
}

/// One output row of the [`Simd`] `a·bᵀ (+ bias) (+ ReLU)` family:
/// 4 output columns per microkernel, each with its own 8-wide partial-sum
/// array; remainder columns fall back to [`simd_dot`], which computes the
/// *same* per-column sum (the accumulation order depends on `k` only).
#[inline]
fn simd_a_bt_row(
    a_row: &[f32],
    b: &[f32],
    k: usize,
    n: usize,
    out_row: &mut [f32],
    bias: Option<&[f32]>,
    relu: bool,
) {
    let finish = |acc: f32, j: usize| -> f32 {
        let v = match bias {
            Some(bias) => acc + bias[j],
            None => acc,
        };
        if relu {
            v.max(0.0)
        } else {
            v
        }
    };
    let main = k - k % 8;
    let mut j = 0;
    while j + 4 <= n {
        let b0 = &b[j * k..(j + 1) * k];
        let b1 = &b[(j + 1) * k..(j + 2) * k];
        let b2 = &b[(j + 2) * k..(j + 3) * k];
        let b3 = &b[(j + 3) * k..(j + 4) * k];
        let mut acc0 = [0.0f32; 8];
        let mut acc1 = [0.0f32; 8];
        let mut acc2 = [0.0f32; 8];
        let mut acc3 = [0.0f32; 8];
        let mut p = 0;
        while p < main {
            let xa = &a_row[p..p + 8];
            let x0 = &b0[p..p + 8];
            let x1 = &b1[p..p + 8];
            let x2 = &b2[p..p + 8];
            let x3 = &b3[p..p + 8];
            for t in 0..8 {
                acc0[t] += xa[t] * x0[t];
                acc1[t] += xa[t] * x1[t];
                acc2[t] += xa[t] * x2[t];
                acc3[t] += xa[t] * x3[t];
            }
            p += 8;
        }
        let mut s0 = reduce8(acc0);
        let mut s1 = reduce8(acc1);
        let mut s2 = reduce8(acc2);
        let mut s3 = reduce8(acc3);
        for p in main..k {
            let av = a_row[p];
            s0 += av * b0[p];
            s1 += av * b1[p];
            s2 += av * b2[p];
            s3 += av * b3[p];
        }
        out_row[j] = finish(s0, j);
        out_row[j + 1] = finish(s1, j + 1);
        out_row[j + 2] = finish(s2, j + 2);
        out_row[j + 3] = finish(s3, j + 3);
        j += 4;
    }
    while j < n {
        out_row[j] = finish(simd_dot(a_row, &b[j * k..(j + 1) * k]), j);
        j += 1;
    }
}

/// The backend selector carried by layers, lane layers and
/// `FedAvgConfig`: one `Copy` value, dispatched with a single `match` per
/// kernel call.
///
/// The process-wide default is read once from the `FEDVAL_BACKEND`
/// environment variable (`reference` | `simd`; unset means
/// [`Backend::Reference`]) and cached — set it before the first model is
/// built. Programmatic choices (e.g. `FedAvgConfig { backend, .. }`)
/// override the environment per utility.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Backend {
    Reference,
    Simd,
}

impl Backend {
    /// Parse a backend name (case-insensitive): `reference` | `simd`.
    pub fn from_name(name: &str) -> Option<Backend> {
        match name.trim().to_ascii_lowercase().as_str() {
            "reference" | "ref" => Some(Backend::Reference),
            "simd" => Some(Backend::Simd),
            _ => None,
        }
    }

    /// Read `FEDVAL_BACKEND` (unset ⇒ [`Backend::Reference`]). Panics on
    /// an unknown value — a silently ignored backend request would
    /// invalidate any benchmark run under it.
    pub fn from_env() -> Backend {
        match std::env::var("FEDVAL_BACKEND") {
            Ok(v) => Backend::from_name(&v).unwrap_or_else(|| {
                panic!("FEDVAL_BACKEND must be \"reference\" or \"simd\", got {v:?}")
            }),
            Err(_) => Backend::Reference,
        }
    }

    /// The backend's canonical name (`from_name(name())` round-trips).
    pub fn name(&self) -> &'static str {
        match self {
            Backend::Reference => Reference.name(),
            Backend::Simd => Simd.name(),
        }
    }
}

/// The cross-backend agreement predicate of the determinism contract:
/// ≤ 1e-5 relative tolerance (absolute near zero). One definition shared
/// by the `backend_equivalence` fuzz suite, the `backend_speedup` bench
/// gate and this module's tests, so the gates cannot drift apart.
pub fn rel_close(a: f32, b: f32) -> bool {
    (a - b).abs() <= 1e-5 * a.abs().max(b.abs()).max(1.0)
}

/// Process-wide default, resolved from `FEDVAL_BACKEND` on first use.
static ENV_BACKEND: OnceLock<Backend> = OnceLock::new();

impl Default for Backend {
    fn default() -> Self {
        *ENV_BACKEND.get_or_init(Backend::from_env)
    }
}

macro_rules! dispatch {
    ($self:ident, $method:ident ( $($arg:expr),* $(,)? )) => {
        match $self {
            Backend::Reference => Reference.$method($($arg),*),
            Backend::Simd => Simd.$method($($arg),*),
        }
    };
}

impl LinalgBackend for Backend {
    fn name(&self) -> &'static str {
        Backend::name(self)
    }

    fn matmul(&self, a: &[f32], b: &[f32], m: usize, k: usize, n: usize, out: &mut [f32]) {
        dispatch!(self, matmul(a, b, m, k, n, out))
    }

    fn matmul_a_bt(&self, a: &[f32], b: &[f32], m: usize, k: usize, n: usize, out: &mut [f32]) {
        dispatch!(self, matmul_a_bt(a, b, m, k, n, out))
    }

    fn matmul_a_bt_bias(
        &self,
        a: &[f32],
        b: &[f32],
        bias: &[f32],
        m: usize,
        k: usize,
        n: usize,
        out: &mut [f32],
        relu_mask: Option<&mut Vec<bool>>,
    ) {
        dispatch!(self, matmul_a_bt_bias(a, b, bias, m, k, n, out, relu_mask))
    }

    fn matmul_at_b_accum(
        &self,
        a: &[f32],
        b: &[f32],
        m: usize,
        k: usize,
        n: usize,
        out: &mut [f32],
    ) {
        dispatch!(self, matmul_at_b_accum(a, b, m, k, n, out))
    }

    fn lane_matmul_a_bt_bias(
        &self,
        a: &[f32],
        a_shared: bool,
        w: &[f32],
        bias: &[f32],
        lanes: usize,
        active: &[bool],
        m: usize,
        k: usize,
        n: usize,
        out: &mut [f32],
        relu_masks: Option<&mut [bool]>,
    ) {
        dispatch!(
            self,
            lane_matmul_a_bt_bias(a, a_shared, w, bias, lanes, active, m, k, n, out, relu_masks)
        )
    }

    fn lane_matmul_at_b_accum(
        &self,
        grad_out: &[f32],
        input: &[f32],
        input_shared: bool,
        lanes: usize,
        active: &[bool],
        m: usize,
        k: usize,
        n: usize,
        grad_w: &mut [f32],
        grad_b: &mut [f32],
    ) {
        dispatch!(
            self,
            lane_matmul_at_b_accum(
                grad_out,
                input,
                input_shared,
                lanes,
                active,
                m,
                k,
                n,
                grad_w,
                grad_b
            )
        )
    }

    fn dot(&self, a: &[f32], b: &[f32]) -> f32 {
        dispatch!(self, dot(a, b))
    }

    fn axpy(&self, alpha: f32, x: &[f32], y: &mut [f32]) {
        dispatch!(self, axpy(alpha, x, y))
    }

    fn norm2(&self, x: &[f32]) -> f32 {
        dispatch!(self, norm2(x))
    }
}

#[cfg(test)]
// Tests assert invariants; an unwrap that trips IS the test failing.
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn pseudo(seed: u32, len: usize) -> Vec<f32> {
        let mut x = seed;
        (0..len)
            .map(|_| {
                x = x.wrapping_mul(1664525).wrapping_add(1013904223);
                (x >> 8) as f32 / (1u32 << 24) as f32 - 0.5
            })
            .collect()
    }

    #[test]
    fn backend_names_round_trip() {
        for be in [Backend::Reference, Backend::Simd] {
            assert_eq!(Backend::from_name(be.name()), Some(be));
        }
        assert_eq!(Backend::from_name("REF"), Some(Backend::Reference));
        assert_eq!(Backend::from_name(" Simd "), Some(Backend::Simd));
        assert_eq!(Backend::from_name("gpu"), None);
    }

    #[test]
    fn simd_dot_known_values_and_documented_order() {
        // k < 8: pure tail, ascending order — identical to reference.
        assert_eq!(Simd.dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        // k = 11 exercises one chunk + 3 tail elements; recompute the
        // documented order by hand.
        let a = pseudo(1, 11);
        let b = pseudo(2, 11);
        let mut acc = [0.0f32; 8];
        for t in 0..8 {
            acc[t] = a[t] * b[t];
        }
        let mut expect = reduce8(acc);
        for i in 8..11 {
            expect += a[i] * b[i];
        }
        assert_eq!(Simd.dot(&a, &b), expect);
        assert_eq!(Simd.norm2(&[3.0, 4.0]), 5.0);
    }

    #[test]
    fn elementwise_kernels_are_bit_identical_across_backends() {
        // matmul / at_b_accum / axpy vectorise independent output
        // elements, so Simd must equal Reference exactly.
        let (m, k, n) = (5, 19, 13);
        let a = pseudo(3, m * k);
        let b = pseudo(4, k * n);
        let mut r = vec![0.0f32; m * n];
        let mut s = vec![0.0f32; m * n];
        Reference.matmul(&a, &b, m, k, n, &mut r);
        Simd.matmul(&a, &b, m, k, n, &mut s);
        assert_eq!(r, s);

        let g = pseudo(5, m * k);
        let x = pseudo(6, m * n);
        let mut rw = pseudo(7, k * n);
        let mut sw = rw.clone();
        Reference.matmul_at_b_accum(&g, &x, m, k, n, &mut rw);
        Simd.matmul_at_b_accum(&g, &x, m, k, n, &mut sw);
        assert_eq!(rw, sw);

        let v = pseudo(8, 21);
        let mut ry = pseudo(9, 21);
        let mut sy = ry.clone();
        Reference.axpy(0.37, &v, &mut ry);
        Simd.axpy(0.37, &v, &mut sy);
        assert_eq!(ry, sy);
    }

    #[test]
    fn simd_a_bt_matches_reference_within_tolerance() {
        // Column remainders 0..=3 and k remainders around the 8-wide
        // chunk all exercised.
        for (m, k, n) in [(2, 7, 3), (3, 8, 4), (2, 9, 5), (4, 16, 8), (1, 31, 9)] {
            let a = pseudo(10, m * k);
            let b = pseudo(11, n * k);
            let bias = pseudo(12, n);
            let mut r = vec![0.0f32; m * n];
            let mut s = vec![0.0f32; m * n];
            Reference.matmul_a_bt_bias(&a, &b, &bias, m, k, n, &mut r, None);
            Simd.matmul_a_bt_bias(&a, &b, &bias, m, k, n, &mut s, None);
            for (&rv, &sv) in r.iter().zip(&s) {
                assert!(rel_close(rv, sv), "m={m} k={k} n={n}: {rv} vs {sv}");
            }
        }
    }

    #[test]
    fn simd_lane_forward_is_bit_identical_to_simd_solo() {
        // The per-backend lock-step contract: the lane path must
        // reproduce the same backend's solo path exactly.
        let (lanes, m, k, n) = (3usize, 4usize, 13usize, 6usize);
        let w = pseudo(13, lanes * n * k);
        let bias = pseudo(14, lanes * n);
        let a = pseudo(15, m * k);
        let active = vec![true, false, true];
        let mut out = vec![f32::NAN; lanes * m * n];
        let mut masks = vec![false; lanes * m * n];
        Simd.lane_matmul_a_bt_bias(
            &a,
            true,
            &w,
            &bias,
            lanes,
            &active,
            m,
            k,
            n,
            &mut out,
            Some(&mut masks),
        );
        for l in 0..lanes {
            if !active[l] {
                assert!(out[l * m * n..(l + 1) * m * n].iter().all(|v| v.is_nan()));
                continue;
            }
            let mut expect = vec![0.0f32; m * n];
            let mut expect_mask = Vec::new();
            Simd.matmul_a_bt_bias(
                &a,
                &w[l * n * k..(l + 1) * n * k],
                &bias[l * n..(l + 1) * n],
                m,
                k,
                n,
                &mut expect,
                Some(&mut expect_mask),
            );
            assert_eq!(&out[l * m * n..(l + 1) * m * n], &expect[..]);
            assert_eq!(&masks[l * m * n..(l + 1) * m * n], &expect_mask[..]);
        }
    }

    #[test]
    fn enum_dispatch_matches_struct_backends() {
        let a = pseudo(16, 24);
        let b = pseudo(17, 24);
        assert_eq!(
            LinalgBackend::dot(&Backend::Reference, &a, &b),
            Reference.dot(&a, &b)
        );
        assert_eq!(LinalgBackend::dot(&Backend::Simd, &a, &b), Simd.dot(&a, &b));
    }

    #[test]
    fn degenerate_shapes_are_handled() {
        for be in [Backend::Reference, Backend::Simd] {
            let mut out: Vec<f32> = Vec::new();
            be.matmul(&[], &[], 0, 0, 0, &mut out);
            be.matmul_a_bt(&[], &[], 0, 3, 0, &mut out);
            let mut one = vec![0.0f32];
            be.matmul_a_bt_bias(&[2.0], &[3.0], &[1.0], 1, 1, 1, &mut one, None);
            assert_eq!(one, vec![7.0]);
            assert_eq!(be.dot(&[], &[]), 0.0);
            be.axpy(1.0, &[], &mut []);
            assert_eq!(be.norm2(&[]), 0.0);
        }
    }
}
