//! Source preparation and tokenisation for the determinism lint.
//!
//! The scanner never parses Rust properly — it strips comments, string
//! and char literals out of the source (preserving byte positions, so
//! line numbers survive), remembers the comment text per line (the
//! annotation grammar lives in comments), and cuts the rest into a flat
//! token stream of identifiers, numbers and punctuation. That is enough
//! to recognise the method chains, attribute groups and `#[cfg(test)]`
//! item spans the rules in [`crate::rules`] care about, without a
//! dependency on a real parser (the build environment has no registry
//! access, so the lint is dependency-free by construction).

/// A source file after comment/literal stripping.
pub struct Prepared {
    /// The source with every comment, string literal and char literal
    /// replaced by spaces. Newlines are kept, so byte offset → line
    /// mapping is unchanged from the original text.
    pub clean: String,
    /// Comment text per 1-based line: all comments that *start* on that
    /// line, concatenated. Doc comments count — a justification may live
    /// in either form.
    pub comments: Vec<String>,
}

impl Prepared {
    /// Comment text on 1-based `line` (empty if none).
    pub fn comment_on(&self, line: u32) -> &str {
        self.comments
            .get(line as usize)
            .map(String::as_str)
            .unwrap_or("")
    }
}

/// Strip comments and string/char literals, keeping line structure.
pub fn prepare(source: &str) -> Prepared {
    let bytes = source.as_bytes();
    let n_lines = source.lines().count() + 2;
    let mut comments = vec![String::new(); n_lines];
    let mut clean = String::with_capacity(source.len());
    let mut line: u32 = 1;
    let mut i = 0usize;

    // Push `c` through to the cleaned text, tracking lines.
    macro_rules! keep {
        ($c:expr) => {{
            clean.push($c);
            if $c == '\n' {
                line += 1;
            }
        }};
    }
    // Blank one source char: newlines survive, everything else spaces.
    macro_rules! blank {
        ($c:expr) => {{
            if $c == '\n' {
                clean.push('\n');
                line += 1;
            } else {
                clean.push(' ');
            }
        }};
    }

    while i < bytes.len() {
        let c = bytes[i] as char;
        let next = bytes.get(i + 1).map(|&b| b as char);
        match c {
            '/' if next == Some('/') => {
                // Line comment (incl. /// and //!): record its text.
                let start = i;
                while i < bytes.len() && bytes[i] != b'\n' {
                    blank!(bytes[i] as char);
                    i += 1;
                }
                let text = &source[start..i];
                let slot = &mut comments[line as usize];
                if !slot.is_empty() {
                    slot.push(' ');
                }
                slot.push_str(text);
            }
            '/' if next == Some('*') => {
                // Block comment — nestable in Rust.
                let start = i;
                let start_line = line;
                let mut depth = 0usize;
                while i < bytes.len() {
                    if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        blank!('/');
                        blank!('*');
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        blank!('*');
                        blank!('/');
                        i += 2;
                        if depth == 0 {
                            break;
                        }
                    } else {
                        blank!(bytes[i] as char);
                        i += 1;
                    }
                }
                let slot = &mut comments[start_line as usize];
                if !slot.is_empty() {
                    slot.push(' ');
                }
                slot.push_str(&source[start..i]);
            }
            '"' => {
                i = skip_string(bytes, i, &mut |c| blank!(c));
            }
            'r' | 'b' if is_raw_or_byte_string(bytes, i) => {
                i = skip_prefixed_string(bytes, i, &mut |c| blank!(c));
            }
            '\'' => {
                // Char literal vs lifetime: a literal is '\...' or 'X'
                // (any single char followed by a closing quote); anything
                // else — 'ident — is a lifetime and stays in the stream.
                let is_char_literal = match next {
                    Some('\\') => true,
                    Some(_) => bytes.get(i + 2) == Some(&b'\''),
                    None => false,
                };
                if is_char_literal {
                    blank!('\'');
                    i += 1;
                    if bytes.get(i) == Some(&b'\\') {
                        // Escaped: blank to the closing quote.
                        while i < bytes.len() && bytes[i] != b'\'' {
                            blank!(bytes[i] as char);
                            i += 1;
                        }
                    } else {
                        blank!(bytes[i] as char);
                        i += 1;
                    }
                    if i < bytes.len() {
                        blank!('\'');
                        i += 1;
                    }
                } else {
                    keep!('\'');
                    i += 1;
                }
            }
            _ => {
                keep!(c);
                i += c.len_utf8();
            }
        }
    }
    Prepared { clean, comments }
}

/// Is `bytes[i]` the start of a raw string (`r"`, `r#"`), byte string
/// (`b"`), or raw byte string (`br#"`)?
fn is_raw_or_byte_string(bytes: &[u8], i: usize) -> bool {
    let rest = &bytes[i..];
    match rest {
        [b'r', b'"', ..] | [b'b', b'"', ..] => true,
        [b'r', b'#', ..] => {
            // r##..#" — hashes then a quote.
            let mut j = 1;
            while rest.get(j) == Some(&b'#') {
                j += 1;
            }
            rest.get(j) == Some(&b'"')
        }
        [b'b', b'r', ..] => {
            let mut j = 2;
            while rest.get(j) == Some(&b'#') {
                j += 1;
            }
            rest.get(j) == Some(&b'"')
        }
        _ => false,
    }
}

/// Skip a plain `"..."` string starting at `i`, blanking its contents.
/// Returns the index just past the closing quote.
fn skip_string(bytes: &[u8], mut i: usize, blank: &mut impl FnMut(char)) -> usize {
    blank('"');
    i += 1;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => {
                blank('\\');
                if let Some(&e) = bytes.get(i + 1) {
                    blank(e as char);
                }
                i += 2;
            }
            b'"' => {
                blank('"');
                return i + 1;
            }
            c => {
                blank(c as char);
                i += 1;
            }
        }
    }
    i
}

/// Skip a raw/byte/raw-byte string starting at `i` (`r"`, `b"`, `r#"`,
/// `br##"` …), blanking its contents. The prefix chars are kept blanked
/// too.
fn skip_prefixed_string(bytes: &[u8], mut i: usize, blank: &mut impl FnMut(char)) -> usize {
    let mut raw = false;
    while i < bytes.len() && (bytes[i] == b'r' || bytes[i] == b'b') {
        raw |= bytes[i] == b'r';
        blank(bytes[i] as char);
        i += 1;
    }
    let mut hashes = 0usize;
    while i < bytes.len() && bytes[i] == b'#' {
        hashes += 1;
        blank('#');
        i += 1;
    }
    if i < bytes.len() && bytes[i] == b'"' {
        blank('"');
        i += 1;
    }
    while i < bytes.len() {
        if bytes[i] == b'\\' && !raw {
            blank('\\');
            if let Some(&e) = bytes.get(i + 1) {
                blank(e as char);
            }
            i += 2;
            continue;
        }
        if bytes[i] == b'"' {
            // Closing quote must be followed by `hashes` hash marks.
            let mut j = i + 1;
            let mut h = 0usize;
            while h < hashes && bytes.get(j) == Some(&b'#') {
                h += 1;
                j += 1;
            }
            if h == hashes {
                blank('"');
                for _ in 0..hashes {
                    blank('#');
                }
                return j;
            }
        }
        blank(bytes[i] as char);
        i += 1;
    }
    i
}

/// One lexed token: an identifier/number word or a single punctuation
/// character, with the 1-based line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub text: String,
    pub line: u32,
    pub is_word: bool,
}

/// Tokenise cleaned source: identifier/number words and punctuation.
/// Whitespace is dropped; every remaining byte becomes a token.
pub fn tokenize(clean: &str) -> Vec<Token> {
    let mut toks = Vec::new();
    let mut line: u32 = 1;
    let mut chars = clean.char_indices().peekable();
    while let Some((_, c)) = chars.next() {
        if c == '\n' {
            line += 1;
            continue;
        }
        if c.is_whitespace() {
            continue;
        }
        if c.is_alphanumeric() || c == '_' {
            let mut word = String::new();
            word.push(c);
            while let Some(&(_, d)) = chars.peek() {
                if d.is_alphanumeric() || d == '_' {
                    word.push(d);
                    chars.next();
                } else {
                    break;
                }
            }
            toks.push(Token {
                text: word,
                line,
                is_word: true,
            });
        } else {
            toks.push(Token {
                text: c.to_string(),
                line,
                is_word: false,
            });
        }
    }
    toks
}

#[cfg(test)]
// Tests assert invariants; an unwrap that trips IS the test failing.
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_blanked_but_lines_survive() {
        let src = "let a = \"Instant::now()\"; // trailing HashMap note\nlet b = 2;\n";
        let p = prepare(src);
        assert!(!p.clean.contains("Instant"));
        assert!(!p.clean.contains("HashMap"));
        assert_eq!(p.clean.lines().count(), src.lines().count());
        assert!(p.comment_on(1).contains("HashMap note"));
        assert_eq!(p.comment_on(2), "");
    }

    #[test]
    fn raw_strings_and_char_literals() {
        let src = "let s = r#\"quote \" inside\"#; let c = '\\n'; let l: &'static str = x;\n";
        let p = prepare(src);
        assert!(!p.clean.contains("inside"));
        assert!(p.clean.contains("'static"), "lifetimes survive");
        let toks = tokenize(&p.clean);
        assert!(toks.iter().any(|t| t.text == "static"));
    }

    #[test]
    fn block_comments_nest_and_record_text() {
        let src = "a /* outer /* inner */ still comment */ b\n";
        let p = prepare(src);
        let toks = tokenize(&p.clean);
        let words: Vec<_> = toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(words, vec!["a", "b"]);
        assert!(p.comment_on(1).contains("inner"));
    }

    #[test]
    fn tokens_carry_lines() {
        let src = "foo\nbar.baz()\n";
        let toks = tokenize(&prepare(src).clean);
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2);
        assert_eq!(toks[1].text, "bar");
        assert!(toks.iter().any(|t| t.text == "." && t.line == 2));
    }
}
