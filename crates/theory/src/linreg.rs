//! A concrete FL linear-regression utility matching the assumptions of
//! Theorems 2–3: per-client Gaussian data, pooled ordinary least squares,
//! utility = negative test error.
//!
//! Unlike the neural substrate this solves the model in closed form
//! (normal equations), so tens of thousands of coalition evaluations run in
//! milliseconds — which is what the variance experiments (Fig. 10) and the
//! theorem-validation bench need.

use rand::rngs::StdRng;
use rand::SeedableRng;

use fedval_core::coalition::Coalition;
use fedval_core::utility::Utility;
use fedval_data::rand_ext::standard_normal;

/// Which error metric the utility reports (negated).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorMetric {
    /// Negative mean squared error — the Lemma 1 / Theorem 3 setting.
    NegMse,
    /// Negative mean absolute error — the Theorem 2 setting (Eq. 8).
    NegMae,
}

/// Per-client regression data.
#[derive(Clone, Debug)]
pub struct RegressionData {
    /// Row-major `n × d` design matrix.
    pub xs: Vec<f64>,
    /// Targets.
    pub ys: Vec<f64>,
    pub dim: usize,
}

impl RegressionData {
    pub fn n_samples(&self) -> usize {
        self.ys.len()
    }

    pub fn row(&self, i: usize) -> &[f64] {
        &self.xs[i * self.dim..(i + 1) * self.dim]
    }
}

/// Generate `n` samples of `y = βᵀx + ε` with `x ~ N(0, I)`,
/// `ε ~ N(0, σ²)`.
pub fn generate_regression(
    beta: &[f64],
    n: usize,
    noise_std: f64,
    rng: &mut StdRng,
) -> RegressionData {
    let dim = beta.len();
    let mut xs = Vec::with_capacity(n * dim);
    let mut ys = Vec::with_capacity(n);
    for _ in 0..n {
        let mut y = 0.0;
        for &b in beta {
            let x = standard_normal(rng);
            xs.push(x);
            y += b * x;
        }
        ys.push(y + noise_std * standard_normal(rng));
    }
    RegressionData { xs, ys, dim }
}

/// Solve `A·w = b` for symmetric positive-definite `A` (in-place
/// Gauss–Jordan with partial pivoting; `A` is `d×d` row-major).
fn solve(mut a: Vec<f64>, mut b: Vec<f64>, d: usize) -> Option<Vec<f64>> {
    for col in 0..d {
        // Partial pivot.
        let pivot =
            (col..d).max_by(|&i, &j| a[i * d + col].abs().total_cmp(&a[j * d + col].abs()))?;
        if a[pivot * d + col].abs() < 1e-12 {
            return None;
        }
        if pivot != col {
            for k in 0..d {
                a.swap(col * d + k, pivot * d + k);
            }
            b.swap(col, pivot);
        }
        let diag = a[col * d + col];
        for k in 0..d {
            a[col * d + k] /= diag;
        }
        b[col] /= diag;
        for row in 0..d {
            if row == col {
                continue;
            }
            let factor = a[row * d + col];
            if factor == 0.0 {
                continue;
            }
            for k in 0..d {
                a[row * d + k] -= factor * a[col * d + k];
            }
            b[row] -= factor * b[col];
        }
    }
    Some(b)
}

/// Ordinary least squares with a tiny ridge for numerical stability.
/// Returns `None` when the system is under-determined.
pub fn fit_ols(data: &[&RegressionData]) -> Option<Vec<f64>> {
    let dim = data.first()?.dim;
    let total: usize = data.iter().map(|d| d.n_samples()).sum();
    if total < dim + 2 {
        return None;
    }
    let mut xtx = vec![0.0f64; dim * dim];
    let mut xty = vec![0.0f64; dim];
    for part in data {
        for i in 0..part.n_samples() {
            let row = part.row(i);
            let y = part.ys[i];
            for a in 0..dim {
                xty[a] += row[a] * y;
                for b in a..dim {
                    xtx[a * dim + b] += row[a] * row[b];
                }
            }
        }
    }
    // Mirror the upper triangle and add a whisper of ridge.
    for a in 0..dim {
        for b in 0..a {
            xtx[a * dim + b] = xtx[b * dim + a];
        }
        xtx[a * dim + a] += 1e-9;
    }
    solve(xtx, xty, dim)
}

/// Prediction error of `w` on `test` under the chosen metric.
pub fn prediction_error(w: &[f64], test: &RegressionData, metric: ErrorMetric) -> f64 {
    let n = test.n_samples();
    assert!(n > 0);
    let mut total = 0.0;
    for i in 0..n {
        let pred: f64 = test.row(i).iter().zip(w).map(|(x, w)| x * w).sum();
        let e = pred - test.ys[i];
        total += match metric {
            ErrorMetric::NegMse => e * e,
            ErrorMetric::NegMae => e.abs(),
        };
    }
    total / n as f64
}

/// FL linear-regression utility: `U(S) = −error(OLS(∪_{i∈S} D_i), test)`.
///
/// Coalitions with too little pooled data to determine the regression get
/// the error of the zero (initial) model — the `m0` of Lemma 1.
pub struct LinRegUtility {
    pub clients: Vec<RegressionData>,
    pub test: RegressionData,
    pub metric: ErrorMetric,
}

impl LinRegUtility {
    /// Build a synthetic instance of the Theorem 2 setting: `n` clients
    /// with the given per-client sample counts, all drawn from the same
    /// distribution.
    pub fn synthetic(
        beta: &[f64],
        client_sizes: &[usize],
        n_test: usize,
        noise_std: f64,
        seed: u64,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let clients = client_sizes
            .iter()
            .map(|&s| generate_regression(beta, s, noise_std, &mut rng))
            .collect();
        let test = generate_regression(beta, n_test, noise_std, &mut rng);
        LinRegUtility {
            clients,
            test,
            metric: ErrorMetric::NegMse,
        }
    }

    pub fn with_metric(mut self, metric: ErrorMetric) -> Self {
        self.metric = metric;
        self
    }

    /// Error of the zero model on the test set (`m0`).
    pub fn initial_error(&self) -> f64 {
        let zero = vec![0.0; self.test.dim];
        prediction_error(&zero, &self.test, self.metric)
    }
}

impl Utility for LinRegUtility {
    fn n_clients(&self) -> usize {
        self.clients.len()
    }

    fn eval(&self, s: Coalition) -> f64 {
        let parts: Vec<&RegressionData> = s.members().map(|i| &self.clients[i]).collect();
        match fit_ols(&parts) {
            Some(w) => -prediction_error(&w, &self.test, self.metric),
            None => -self.initial_error(),
        }
    }
}

#[cfg(test)]
// Tests assert invariants; an unwrap that trips IS the test failing.
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use fedval_core::exact::exact_mc_sv;

    #[test]
    fn ols_recovers_true_coefficients() {
        let beta = vec![1.5, -2.0, 0.5];
        let mut rng = StdRng::seed_from_u64(1);
        let data = generate_regression(&beta, 2000, 0.1, &mut rng);
        let w = fit_ols(&[&data]).unwrap();
        for (a, b) in w.iter().zip(&beta) {
            assert!((a - b).abs() < 0.02, "{w:?}");
        }
    }

    #[test]
    fn ols_underdetermined_returns_none() {
        let beta = vec![1.0; 5];
        let mut rng = StdRng::seed_from_u64(2);
        let data = generate_regression(&beta, 4, 0.1, &mut rng);
        assert!(fit_ols(&[&data]).is_none());
        assert!(fit_ols(&[] as &[&RegressionData]).is_none());
    }

    #[test]
    fn solver_agrees_with_known_system() {
        // A = [[2,1],[1,3]], b = [3,5] ⇒ x = [4/5, 7/5].
        let x = solve(vec![2.0, 1.0, 1.0, 3.0], vec![3.0, 5.0], 2).unwrap();
        assert!((x[0] - 0.8).abs() < 1e-12);
        assert!((x[1] - 1.4).abs() < 1e-12);
        // Singular system.
        assert!(solve(vec![1.0, 1.0, 1.0, 1.0], vec![1.0, 2.0], 2).is_none());
    }

    #[test]
    fn utility_is_monotone_in_expectation() {
        let beta = vec![1.0, -1.0, 0.5, 2.0];
        let u = LinRegUtility::synthetic(&beta, &[30; 6], 500, 0.5, 3);
        let one = u.eval(Coalition::singleton(0));
        let all = u.eval(Coalition::full(6));
        assert!(all >= one, "U(N) = {all} < U({{0}}) = {one}");
        // Utility is negative (it is a negated error).
        assert!(all <= 0.0);
    }

    #[test]
    fn empty_coalition_gets_initial_model_error() {
        let beta = vec![1.0, 2.0];
        let u = LinRegUtility::synthetic(&beta, &[20; 3], 200, 0.2, 4);
        let empty = u.eval(Coalition::empty());
        assert!((empty + u.initial_error()).abs() < 1e-12);
    }

    #[test]
    fn equal_clients_get_equal_values_approximately() {
        // Symmetric clients ⇒ near-equal Shapley values.
        let beta = vec![1.0, -0.5, 0.25];
        let u = LinRegUtility::synthetic(&beta, &[40; 5], 2000, 0.3, 5);
        let phi = exact_mc_sv(&u);
        let mean: f64 = phi.iter().sum::<f64>() / phi.len() as f64;
        for v in &phi {
            assert!(
                (v - mean).abs() < 0.15 * mean.abs().max(1e-3),
                "{phi:?} (mean {mean})"
            );
        }
    }

    #[test]
    fn mae_metric_is_supported() {
        let beta = vec![1.0, 1.0];
        let u =
            LinRegUtility::synthetic(&beta, &[25; 4], 300, 0.4, 6).with_metric(ErrorMetric::NegMae);
        let v = u.eval(Coalition::full(4));
        assert!(v < 0.0 && v > -10.0);
    }
}
