//! # fedval-bench
//!
//! The experiment harness regenerating every table and figure of the IPSS
//! paper (per-experiment index in DESIGN.md §4). Each `cargo bench` target
//! under `benches/` is a `harness = false` binary that prints the same
//! rows/series its paper counterpart reports; `criterion_micro` holds
//! Criterion micro-benchmarks of the core operations.
//!
//! Environment knobs: `FEDVAL_QUICK=1` shrinks every experiment,
//! `FEDVAL_SEED=<u64>` changes the base seed.

pub mod config;
pub mod problems;
pub mod report;
pub mod runner;
pub mod table;

pub use config::{base_seed, gamma_for, machine_cores, parallelism_json_fields, quick};
pub use problems::{
    adult_mlp, adult_xgb, femnist, mnist_synthetic, scalability, GbdtProblem, NeuralModel,
    NeuralProblem,
};
pub use report::{ExperimentReport, Measurement};
pub use runner::{
    exact_values_gbdt, exact_values_neural, parallel_prefill, run_gbdt, run_neural, Algorithm,
    RunResult,
};
pub use table::{fmt_err, fmt_secs, not_applicable, Table};
