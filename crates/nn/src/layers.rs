//! Neural-network layers with manual backpropagation.
//!
//! Each layer owns its parameters and gradient accumulators, caches
//! whatever the backward pass needs, and serialises its parameters into a
//! flat `f32` stream — the representation FedAvg aggregates and the
//! gradient-based valuation baselines (OR, λ-MR, GTG-Shapley) reconstruct
//! models from.

use rand::Rng;

use crate::backend::{Backend, LinalgBackend};
use crate::lanes::{LaneLayer, MultiDense, MultiDenseRelu, MultiRelu, PerLane};

/// A differentiable layer processing batches of flattened samples.
pub trait Layer: Send {
    /// Per-sample input length.
    fn in_len(&self) -> usize;
    /// Per-sample output length.
    fn out_len(&self) -> usize;

    /// Forward pass on a batch (`input.len() == batch · in_len()`).
    /// Implementations cache activations needed by [`Layer::backward`].
    fn forward(&mut self, input: &[f32], batch: usize) -> Vec<f32>;

    /// Backward pass: receives `∂L/∂output`, accumulates parameter
    /// gradients and returns `∂L/∂input`. Must be preceded by a matching
    /// [`Layer::forward`] call.
    fn backward(&mut self, grad_out: &[f32], batch: usize) -> Vec<f32>;

    /// Reset gradient accumulators.
    fn zero_grads(&mut self) {}

    /// Plain SGD update: `θ ← θ − lr · ∂L/∂θ`.
    fn sgd_step(&mut self, _lr: f32) {}

    /// Number of scalar parameters.
    fn param_count(&self) -> usize {
        0
    }

    /// Append the parameters to `out` in a stable order.
    fn write_params(&self, _out: &mut Vec<f32>) {}

    /// Read parameters back from the front of `src`, advancing it.
    fn read_params(&mut self, _src: &mut &[f32]) {}

    /// Select the linear-algebra backend this layer's kernels run on.
    /// No-op for layers without matmul kernels (their arithmetic is
    /// backend-independent). Propagated by [`crate::network::Network::set_backend`]
    /// and inherited by [`Layer::to_multi`] lane counterparts.
    fn set_backend(&mut self, _backend: Backend) {}

    /// Replicate this layer's parameters into a multi-lane counterpart
    /// holding `lanes` parameter lanes — the building block of
    /// [`crate::lanes::MultiNetwork`]. Dense-family layers return
    /// lane-blocked implementations; others fall back to a per-lane loop
    /// over clones of the solo layer (bit-identical either way).
    fn to_multi(&self, lanes: usize) -> Box<dyn LaneLayer>;
}

/// Per-lane fallback for layers without a dedicated lane-blocked kernel:
/// `lanes` clones of the solo layer, looped by [`PerLane`].
fn per_lane_fallback<L: Layer + Clone + 'static>(layer: &L, lanes: usize) -> Box<dyn LaneLayer> {
    Box::new(PerLane::new(
        (0..lanes)
            .map(|_| Box::new(layer.clone()) as Box<dyn Layer>)
            .collect(),
    ))
}

/// Kaiming-uniform initialisation bound for a layer with `fan_in` inputs.
fn init_bound(fan_in: usize) -> f32 {
    (1.0 / fan_in as f32).sqrt()
}

/// Fully connected layer: `y = x·Wᵀ + b` with `W: out×in` (row-major).
#[derive(Clone)]
pub struct Dense {
    in_len: usize,
    out_len: usize,
    pub w: Vec<f32>,
    pub b: Vec<f32>,
    grad_w: Vec<f32>,
    grad_b: Vec<f32>,
    cached_input: Vec<f32>,
    backend: Backend,
}

impl Dense {
    pub fn new(in_len: usize, out_len: usize, rng: &mut impl Rng) -> Self {
        assert!(in_len > 0 && out_len > 0);
        let bound = init_bound(in_len);
        let w = (0..in_len * out_len)
            .map(|_| rng.random_range(-bound..bound))
            .collect();
        let b = vec![0.0; out_len];
        Dense {
            in_len,
            out_len,
            w,
            b,
            grad_w: vec![0.0; in_len * out_len],
            grad_b: vec![0.0; out_len],
            cached_input: Vec::new(),
            backend: Backend::default(),
        }
    }
}

impl Layer for Dense {
    fn in_len(&self) -> usize {
        self.in_len
    }
    fn out_len(&self) -> usize {
        self.out_len
    }

    fn forward(&mut self, input: &[f32], batch: usize) -> Vec<f32> {
        assert_eq!(input.len(), batch * self.in_len);
        self.cached_input.clear();
        self.cached_input.extend_from_slice(input);
        let mut out = vec![0.0; batch * self.out_len];
        // out = input(batch×in) · Wᵀ(in×out) + b, bias fused into the
        // kernel's write-back instead of a second pass over `out`.
        self.backend.matmul_a_bt_bias(
            input,
            &self.w,
            &self.b,
            batch,
            self.in_len,
            self.out_len,
            &mut out,
            None,
        );
        out
    }

    fn backward(&mut self, grad_out: &[f32], batch: usize) -> Vec<f32> {
        assert_eq!(grad_out.len(), batch * self.out_len);
        assert_eq!(self.cached_input.len(), batch * self.in_len);
        // grad_w(out×in) += grad_outᵀ(out×batch) · input(batch×in)
        self.backend.matmul_at_b_accum(
            grad_out,
            &self.cached_input,
            batch,
            self.out_len,
            self.in_len,
            &mut self.grad_w,
        );
        for row in grad_out.chunks_exact(self.out_len) {
            for (g, &d) in self.grad_b.iter_mut().zip(row) {
                *g += d;
            }
        }
        // grad_in(batch×in) = grad_out(batch×out) · W(out×in)
        let mut grad_in = vec![0.0; batch * self.in_len];
        self.backend.matmul(
            grad_out,
            &self.w,
            batch,
            self.out_len,
            self.in_len,
            &mut grad_in,
        );
        grad_in
    }

    fn zero_grads(&mut self) {
        self.grad_w.fill(0.0);
        self.grad_b.fill(0.0);
    }

    fn sgd_step(&mut self, lr: f32) {
        for (p, g) in self.w.iter_mut().zip(&self.grad_w) {
            *p -= lr * g;
        }
        for (p, g) in self.b.iter_mut().zip(&self.grad_b) {
            *p -= lr * g;
        }
    }

    fn param_count(&self) -> usize {
        self.w.len() + self.b.len()
    }

    fn write_params(&self, out: &mut Vec<f32>) {
        out.extend_from_slice(&self.w);
        out.extend_from_slice(&self.b);
    }

    fn read_params(&mut self, src: &mut &[f32]) {
        let (w, rest) = src.split_at(self.w.len());
        let (b, rest) = rest.split_at(self.b.len());
        self.w.copy_from_slice(w);
        self.b.copy_from_slice(b);
        *src = rest;
    }

    fn set_backend(&mut self, backend: Backend) {
        self.backend = backend;
    }

    fn to_multi(&self, lanes: usize) -> Box<dyn LaneLayer> {
        Box::new(MultiDense::replicate(
            self.in_len,
            self.out_len,
            &self.w,
            &self.b,
            lanes,
            self.backend,
        ))
    }
}

/// Fused `ReLU(x·Wᵀ + b)` layer: the matmul kernel applies bias and ReLU
/// in its accumulator write-back and records the activation mask in the
/// same pass, so the hidden-layer forward touches the output exactly once
/// (a plain `Dense` + `Relu` pair traverses it three times and allocates
/// an intermediate activation buffer per step).
///
/// Bit-identical to `Dense` followed by `Relu`: parameters, their flat
/// serialisation order (FedAvg's aggregation unit) and all forward/backward
/// values are unchanged — only the traversals are fused.
pub struct DenseRelu {
    dense: Dense,
    mask: Vec<bool>,
}

impl DenseRelu {
    pub fn new(in_len: usize, out_len: usize, rng: &mut impl Rng) -> Self {
        DenseRelu {
            dense: Dense::new(in_len, out_len, rng),
            mask: Vec::new(),
        }
    }
}

impl Layer for DenseRelu {
    fn in_len(&self) -> usize {
        self.dense.in_len
    }
    fn out_len(&self) -> usize {
        self.dense.out_len
    }

    fn forward(&mut self, input: &[f32], batch: usize) -> Vec<f32> {
        let d = &mut self.dense;
        assert_eq!(input.len(), batch * d.in_len);
        d.cached_input.clear();
        d.cached_input.extend_from_slice(input);
        self.mask.clear();
        let mut out = vec![0.0; batch * d.out_len];
        d.backend.matmul_a_bt_bias(
            input,
            &d.w,
            &d.b,
            batch,
            d.in_len,
            d.out_len,
            &mut out,
            Some(&mut self.mask),
        );
        out
    }

    fn backward(&mut self, grad_out: &[f32], batch: usize) -> Vec<f32> {
        assert_eq!(grad_out.len(), batch * self.dense.out_len);
        // Gate the incoming gradient through the recorded ReLU mask, then
        // run the dense backward on the gated signal — exactly what the
        // separate Relu → Dense backward pair computes.
        let gated: Vec<f32> = grad_out
            .iter()
            .zip(&self.mask)
            .map(|(&g, &keep)| if keep { g } else { 0.0 })
            .collect();
        self.dense.backward(&gated, batch)
    }

    fn zero_grads(&mut self) {
        self.dense.zero_grads();
    }

    fn sgd_step(&mut self, lr: f32) {
        self.dense.sgd_step(lr);
    }

    fn param_count(&self) -> usize {
        self.dense.param_count()
    }

    fn write_params(&self, out: &mut Vec<f32>) {
        self.dense.write_params(out);
    }

    fn read_params(&mut self, src: &mut &[f32]) {
        self.dense.read_params(src);
    }

    fn set_backend(&mut self, backend: Backend) {
        self.dense.set_backend(backend);
    }

    fn to_multi(&self, lanes: usize) -> Box<dyn LaneLayer> {
        Box::new(MultiDenseRelu::replicate(
            self.dense.in_len,
            self.dense.out_len,
            &self.dense.w,
            &self.dense.b,
            lanes,
            self.dense.backend,
        ))
    }
}

/// Element-wise rectified linear unit.
#[derive(Clone)]
pub struct Relu {
    len: usize,
    mask: Vec<bool>,
}

impl Relu {
    pub fn new(len: usize) -> Self {
        Relu {
            len,
            mask: Vec::new(),
        }
    }
}

impl Layer for Relu {
    fn in_len(&self) -> usize {
        self.len
    }
    fn out_len(&self) -> usize {
        self.len
    }

    fn forward(&mut self, input: &[f32], batch: usize) -> Vec<f32> {
        assert_eq!(input.len(), batch * self.len);
        self.mask.clear();
        self.mask.reserve(input.len());
        let mut out = Vec::with_capacity(input.len());
        for &v in input {
            let keep = v > 0.0;
            self.mask.push(keep);
            out.push(if keep { v } else { 0.0 });
        }
        out
    }

    fn backward(&mut self, grad_out: &[f32], batch: usize) -> Vec<f32> {
        assert_eq!(grad_out.len(), batch * self.len);
        grad_out
            .iter()
            .zip(&self.mask)
            .map(|(&g, &keep)| if keep { g } else { 0.0 })
            .collect()
    }

    fn to_multi(&self, lanes: usize) -> Box<dyn LaneLayer> {
        Box::new(MultiRelu::replicate(self.len, lanes))
    }
}

/// 2-D convolution over `(channels, height, width)` feature maps with
/// 3×3-style square kernels, stride 1 and symmetric zero padding.
#[derive(Clone)]
pub struct Conv2d {
    in_ch: usize,
    out_ch: usize,
    h: usize,
    w: usize,
    k: usize,
    pad: usize,
    /// Weights: `out_ch × in_ch × k × k`.
    pub weight: Vec<f32>,
    pub bias: Vec<f32>,
    grad_w: Vec<f32>,
    grad_b: Vec<f32>,
    cached_input: Vec<f32>,
}

impl Conv2d {
    /// `pad = (k-1)/2` preserves spatial dimensions for odd `k`.
    pub fn new(
        in_ch: usize,
        out_ch: usize,
        h: usize,
        w: usize,
        k: usize,
        pad: usize,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(k >= 1 && k <= h + 2 * pad && k <= w + 2 * pad);
        let fan_in = in_ch * k * k;
        let bound = init_bound(fan_in);
        let weight = (0..out_ch * fan_in)
            .map(|_| rng.random_range(-bound..bound))
            .collect();
        Conv2d {
            in_ch,
            out_ch,
            h,
            w,
            k,
            pad,
            weight,
            bias: vec![0.0; out_ch],
            grad_w: vec![0.0; out_ch * in_ch * k * k],
            grad_b: vec![0.0; out_ch],
            cached_input: Vec::new(),
        }
    }

    pub fn out_h(&self) -> usize {
        self.h + 2 * self.pad + 1 - self.k
    }

    pub fn out_w(&self) -> usize {
        self.w + 2 * self.pad + 1 - self.k
    }

    #[inline]
    fn widx(&self, oc: usize, ic: usize, ky: usize, kx: usize) -> usize {
        ((oc * self.in_ch + ic) * self.k + ky) * self.k + kx
    }
}

impl Layer for Conv2d {
    fn in_len(&self) -> usize {
        self.in_ch * self.h * self.w
    }
    fn out_len(&self) -> usize {
        self.out_ch * self.out_h() * self.out_w()
    }

    fn forward(&mut self, input: &[f32], batch: usize) -> Vec<f32> {
        assert_eq!(input.len(), batch * self.in_len());
        self.cached_input.clear();
        self.cached_input.extend_from_slice(input);
        let (oh, ow) = (self.out_h(), self.out_w());
        let mut out = vec![0.0f32; batch * self.out_len()];
        for s in 0..batch {
            let x = &input[s * self.in_len()..(s + 1) * self.in_len()];
            let y = &mut out[s * self.out_len()..(s + 1) * self.out_len()];
            for oc in 0..self.out_ch {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = self.bias[oc];
                        for ic in 0..self.in_ch {
                            for ky in 0..self.k {
                                let iy = oy + ky;
                                if iy < self.pad || iy >= self.h + self.pad {
                                    continue;
                                }
                                let iy = iy - self.pad;
                                for kx in 0..self.k {
                                    let ix = ox + kx;
                                    if ix < self.pad || ix >= self.w + self.pad {
                                        continue;
                                    }
                                    let ix = ix - self.pad;
                                    acc += self.weight[self.widx(oc, ic, ky, kx)]
                                        * x[(ic * self.h + iy) * self.w + ix];
                                }
                            }
                        }
                        y[(oc * oh + oy) * ow + ox] = acc;
                    }
                }
            }
        }
        out
    }

    fn backward(&mut self, grad_out: &[f32], batch: usize) -> Vec<f32> {
        assert_eq!(grad_out.len(), batch * self.out_len());
        let (oh, ow) = (self.out_h(), self.out_w());
        let mut grad_in = vec![0.0f32; batch * self.in_len()];
        for s in 0..batch {
            let x = &self.cached_input[s * self.in_len()..(s + 1) * self.in_len()];
            let dy = &grad_out[s * self.out_len()..(s + 1) * self.out_len()];
            let dx = &mut grad_in[s * self.in_len()..(s + 1) * self.in_len()];
            for oc in 0..self.out_ch {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let g = dy[(oc * oh + oy) * ow + ox];
                        if g == 0.0 {
                            continue;
                        }
                        self.grad_b[oc] += g;
                        for ic in 0..self.in_ch {
                            for ky in 0..self.k {
                                let iy = oy + ky;
                                if iy < self.pad || iy >= self.h + self.pad {
                                    continue;
                                }
                                let iy = iy - self.pad;
                                for kx in 0..self.k {
                                    let ix = ox + kx;
                                    if ix < self.pad || ix >= self.w + self.pad {
                                        continue;
                                    }
                                    let ix = ix - self.pad;
                                    let xi = (ic * self.h + iy) * self.w + ix;
                                    let wi = self.widx(oc, ic, ky, kx);
                                    self.grad_w[wi] += g * x[xi];
                                    dx[xi] += g * self.weight[wi];
                                }
                            }
                        }
                    }
                }
            }
        }
        grad_in
    }

    fn zero_grads(&mut self) {
        self.grad_w.fill(0.0);
        self.grad_b.fill(0.0);
    }

    fn sgd_step(&mut self, lr: f32) {
        for (p, g) in self.weight.iter_mut().zip(&self.grad_w) {
            *p -= lr * g;
        }
        for (p, g) in self.bias.iter_mut().zip(&self.grad_b) {
            *p -= lr * g;
        }
    }

    fn param_count(&self) -> usize {
        self.weight.len() + self.bias.len()
    }

    fn write_params(&self, out: &mut Vec<f32>) {
        out.extend_from_slice(&self.weight);
        out.extend_from_slice(&self.bias);
    }

    fn read_params(&mut self, src: &mut &[f32]) {
        let (w, rest) = src.split_at(self.weight.len());
        let (b, rest) = rest.split_at(self.bias.len());
        self.weight.copy_from_slice(w);
        self.bias.copy_from_slice(b);
        *src = rest;
    }

    fn to_multi(&self, lanes: usize) -> Box<dyn LaneLayer> {
        per_lane_fallback(self, lanes)
    }
}

/// 2×2 max pooling with stride 2 over `(channels, height, width)` maps.
/// Odd trailing rows/columns are dropped (floor division), as in common
/// frameworks.
#[derive(Clone)]
pub struct MaxPool2 {
    ch: usize,
    h: usize,
    w: usize,
    argmax: Vec<usize>,
}

impl MaxPool2 {
    pub fn new(ch: usize, h: usize, w: usize) -> Self {
        assert!(h >= 2 && w >= 2);
        MaxPool2 {
            ch,
            h,
            w,
            argmax: Vec::new(),
        }
    }

    pub fn out_h(&self) -> usize {
        self.h / 2
    }

    pub fn out_w(&self) -> usize {
        self.w / 2
    }
}

impl Layer for MaxPool2 {
    fn in_len(&self) -> usize {
        self.ch * self.h * self.w
    }
    fn out_len(&self) -> usize {
        self.ch * self.out_h() * self.out_w()
    }

    fn forward(&mut self, input: &[f32], batch: usize) -> Vec<f32> {
        assert_eq!(input.len(), batch * self.in_len());
        let (oh, ow) = (self.out_h(), self.out_w());
        let mut out = vec![0.0f32; batch * self.out_len()];
        self.argmax.clear();
        self.argmax.resize(out.len(), 0);
        for s in 0..batch {
            let x = &input[s * self.in_len()..(s + 1) * self.in_len()];
            for c in 0..self.ch {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut best = f32::NEG_INFINITY;
                        let mut best_idx = 0usize;
                        for dy in 0..2 {
                            for dx in 0..2 {
                                let iy = oy * 2 + dy;
                                let ix = ox * 2 + dx;
                                let idx = (c * self.h + iy) * self.w + ix;
                                if x[idx] > best {
                                    best = x[idx];
                                    best_idx = idx;
                                }
                            }
                        }
                        let o = s * self.out_len() + (c * oh + oy) * ow + ox;
                        out[o] = best;
                        self.argmax[o] = best_idx;
                    }
                }
            }
        }
        out
    }

    fn backward(&mut self, grad_out: &[f32], batch: usize) -> Vec<f32> {
        assert_eq!(grad_out.len(), batch * self.out_len());
        let mut grad_in = vec![0.0f32; batch * self.in_len()];
        for s in 0..batch {
            for o in 0..self.out_len() {
                let flat = s * self.out_len() + o;
                grad_in[s * self.in_len() + self.argmax[flat]] += grad_out[flat];
            }
        }
        grad_in
    }

    fn to_multi(&self, lanes: usize) -> Box<dyn LaneLayer> {
        per_lane_fallback(self, lanes)
    }
}

#[cfg(test)]
// Tests assert invariants; an unwrap that trips IS the test failing.
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Finite-difference gradient check for a layer with respect to its
    /// input and parameters under an L = Σ out² / 2 objective.
    fn grad_check<L: Layer>(layer: &mut L, batch: usize, seed: u64, tol: f32) {
        let mut rng = StdRng::seed_from_u64(seed);
        let input: Vec<f32> = (0..batch * layer.in_len())
            .map(|_| rng.random_range(-1.0..1.0f32))
            .collect();
        let loss_of = |l: &mut L, x: &[f32]| -> f32 {
            let out = l.forward(x, batch);
            out.iter().map(|v| v * v).sum::<f32>() / 2.0
        };
        // Analytic input gradient: dL/dout = out.
        let out = layer.forward(&input, batch);
        layer.zero_grads();
        let analytic = layer.backward(&out, batch);
        // Numeric check on a sample of input coordinates.
        let eps = 1e-3;
        for idx in [0, input.len() / 2, input.len() - 1] {
            let mut plus = input.clone();
            plus[idx] += eps;
            let mut minus = input.clone();
            minus[idx] -= eps;
            let numeric = (loss_of(layer, &plus) - loss_of(layer, &minus)) / (2.0 * eps);
            assert!(
                (numeric - analytic[idx]).abs() < tol * (1.0 + numeric.abs()),
                "input grad at {idx}: numeric {numeric} vs analytic {}",
                analytic[idx]
            );
        }
        // Numeric check on a sample of parameter coordinates.
        let n_params = layer.param_count();
        if n_params > 0 {
            // Reset cache, recompute gradients analytically.
            let out = layer.forward(&input, batch);
            layer.zero_grads();
            let _ = layer.backward(&out, batch);
            let mut params = Vec::new();
            layer.write_params(&mut params);
            // Extract analytic parameter grads by probing sgd_step with lr=1:
            // θ' = θ − g ⇒ g = θ − θ'.
            let mut probe_params = params.clone();
            layer.sgd_step(1.0);
            let mut after = Vec::new();
            layer.write_params(&mut after);
            let analytic_pg: Vec<f32> = params.iter().zip(&after).map(|(a, b)| a - b).collect();
            // Restore.
            let mut src = probe_params.as_slice();
            layer.read_params(&mut src);
            for idx in [0, n_params / 2, n_params - 1] {
                let orig = probe_params[idx];
                probe_params[idx] = orig + eps;
                let mut src = probe_params.as_slice();
                layer.read_params(&mut src);
                let lp = loss_of(layer, &input);
                probe_params[idx] = orig - eps;
                let mut src = probe_params.as_slice();
                layer.read_params(&mut src);
                let lm = loss_of(layer, &input);
                probe_params[idx] = orig;
                let mut src = probe_params.as_slice();
                layer.read_params(&mut src);
                let numeric = (lp - lm) / (2.0 * eps);
                assert!(
                    (numeric - analytic_pg[idx]).abs() < tol * (1.0 + numeric.abs()),
                    "param grad at {idx}: numeric {numeric} vs analytic {}",
                    analytic_pg[idx]
                );
            }
        }
    }

    #[test]
    fn dense_forward_known_values() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut d = Dense::new(2, 2, &mut rng);
        d.w = vec![1.0, 2.0, 3.0, 4.0]; // W = [[1,2],[3,4]]
        d.b = vec![0.5, -0.5];
        let out = d.forward(&[1.0, 1.0, 0.0, 2.0], 2);
        // Sample 1: [1,1]: [1+2+0.5, 3+4−0.5] = [3.5, 6.5]
        // Sample 2: [0,2]: [4+0.5, 8−0.5] = [4.5, 7.5]
        assert_eq!(out, vec![3.5, 6.5, 4.5, 7.5]);
    }

    #[test]
    fn dense_gradients() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut d = Dense::new(4, 3, &mut rng);
        grad_check(&mut d, 2, 11, 1e-2);
    }

    #[test]
    fn relu_forward_backward() {
        let mut r = Relu::new(3);
        let out = r.forward(&[-1.0, 0.0, 2.0], 1);
        assert_eq!(out, vec![0.0, 0.0, 2.0]);
        let grad = r.backward(&[1.0, 1.0, 1.0], 1);
        assert_eq!(grad, vec![0.0, 0.0, 1.0]);
    }

    #[test]
    fn conv_preserves_dims_with_padding() {
        let mut rng = StdRng::seed_from_u64(2);
        let c = Conv2d::new(1, 4, 8, 8, 3, 1, &mut rng);
        assert_eq!(c.out_h(), 8);
        assert_eq!(c.out_w(), 8);
        assert_eq!(c.in_len(), 64);
        assert_eq!(c.out_len(), 4 * 64);
    }

    #[test]
    fn conv_known_values_identity_kernel() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut c = Conv2d::new(1, 1, 3, 3, 3, 1, &mut rng);
        // Kernel that picks the centre pixel.
        c.weight = vec![0.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 0.0];
        c.bias = vec![0.0];
        let img = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0];
        let out = c.forward(&img, 1);
        assert_eq!(out, img);
    }

    #[test]
    fn conv_gradients() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut c = Conv2d::new(2, 3, 4, 4, 3, 1, &mut rng);
        grad_check(&mut c, 2, 13, 2e-2);
    }

    #[test]
    fn maxpool_forward_backward() {
        let mut p = MaxPool2::new(1, 4, 4);
        assert_eq!(p.out_len(), 4);
        #[rustfmt::skip]
        let img = vec![
            1.0, 2.0, 0.0, 0.0,
            3.0, 4.0, 0.0, 1.0,
            5.0, 1.0, 2.0, 2.0,
            1.0, 1.0, 3.0, 9.0,
        ];
        let out = p.forward(&img, 1);
        assert_eq!(out, vec![4.0, 1.0, 5.0, 9.0]);
        let grad = p.backward(&[1.0, 1.0, 1.0, 1.0], 1);
        // Gradient routed to argmax positions only.
        let mut expect = vec![0.0; 16];
        expect[5] = 1.0; // 4.0
        expect[7] = 1.0; // 1.0
        expect[8] = 1.0; // 5.0
        expect[15] = 1.0; // 9.0
        assert_eq!(grad, expect);
    }

    #[test]
    fn dense_relu_is_bit_identical_to_dense_then_relu() {
        // Same RNG stream ⇒ same initial parameters as a Dense layer.
        let mut fused = DenseRelu::new(5, 7, &mut StdRng::seed_from_u64(21));
        let mut dense = Dense::new(5, 7, &mut StdRng::seed_from_u64(21));
        let mut relu = Relu::new(7);
        let mut fused_params = Vec::new();
        fused.write_params(&mut fused_params);
        let mut dense_params = Vec::new();
        dense.write_params(&mut dense_params);
        assert_eq!(fused_params, dense_params);

        let mut rng = StdRng::seed_from_u64(22);
        for step in 0..5 {
            let batch = 3usize;
            let input: Vec<f32> = (0..batch * 5)
                .map(|_| rng.random_range(-1.0..1.0f32))
                .collect();
            // Forward passes agree exactly.
            let f_out = fused.forward(&input, batch);
            let d_out = relu.forward(&dense.forward(&input, batch), batch);
            assert_eq!(f_out, d_out, "forward step {step}");
            // Backward passes agree exactly (arbitrary upstream gradient).
            let grad: Vec<f32> = (0..batch * 7)
                .map(|_| rng.random_range(-1.0..1.0f32))
                .collect();
            fused.zero_grads();
            dense.zero_grads();
            let f_gin = fused.backward(&grad, batch);
            let d_gin = dense.backward(&relu.backward(&grad, batch), batch);
            assert_eq!(f_gin, d_gin, "backward step {step}");
            // And so do the SGD updates.
            fused.sgd_step(0.05);
            dense.sgd_step(0.05);
            let mut fp = Vec::new();
            fused.write_params(&mut fp);
            let mut dp = Vec::new();
            dense.write_params(&mut dp);
            assert_eq!(fp, dp, "params step {step}");
        }
    }

    #[test]
    fn param_round_trip() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut d = Dense::new(3, 2, &mut rng);
        let mut params = Vec::new();
        d.write_params(&mut params);
        assert_eq!(params.len(), d.param_count());
        let zeros = vec![0.0f32; params.len()];
        let mut src = zeros.as_slice();
        d.read_params(&mut src);
        assert!(src.is_empty());
        let mut after = Vec::new();
        d.write_params(&mut after);
        assert_eq!(after, zeros);
    }
}

/// Element-wise hyperbolic tangent.
#[derive(Clone)]
pub struct Tanh {
    len: usize,
    cached_output: Vec<f32>,
}

impl Tanh {
    pub fn new(len: usize) -> Self {
        Tanh {
            len,
            cached_output: Vec::new(),
        }
    }
}

impl Layer for Tanh {
    fn in_len(&self) -> usize {
        self.len
    }
    fn out_len(&self) -> usize {
        self.len
    }

    fn forward(&mut self, input: &[f32], batch: usize) -> Vec<f32> {
        assert_eq!(input.len(), batch * self.len);
        let out: Vec<f32> = input.iter().map(|v| v.tanh()).collect();
        self.cached_output.clone_from(&out);
        out
    }

    fn backward(&mut self, grad_out: &[f32], batch: usize) -> Vec<f32> {
        assert_eq!(grad_out.len(), batch * self.len);
        // d tanh(x)/dx = 1 − tanh²(x).
        grad_out
            .iter()
            .zip(&self.cached_output)
            .map(|(&g, &y)| g * (1.0 - y * y))
            .collect()
    }

    fn to_multi(&self, lanes: usize) -> Box<dyn LaneLayer> {
        per_lane_fallback(self, lanes)
    }
}

/// Element-wise logistic sigmoid.
#[derive(Clone)]
pub struct Sigmoid {
    len: usize,
    cached_output: Vec<f32>,
}

impl Sigmoid {
    pub fn new(len: usize) -> Self {
        Sigmoid {
            len,
            cached_output: Vec::new(),
        }
    }
}

impl Layer for Sigmoid {
    fn in_len(&self) -> usize {
        self.len
    }
    fn out_len(&self) -> usize {
        self.len
    }

    fn forward(&mut self, input: &[f32], batch: usize) -> Vec<f32> {
        assert_eq!(input.len(), batch * self.len);
        let out: Vec<f32> = input.iter().map(|v| 1.0 / (1.0 + (-v).exp())).collect();
        self.cached_output.clone_from(&out);
        out
    }

    fn backward(&mut self, grad_out: &[f32], batch: usize) -> Vec<f32> {
        assert_eq!(grad_out.len(), batch * self.len);
        // dσ/dx = σ(1 − σ).
        grad_out
            .iter()
            .zip(&self.cached_output)
            .map(|(&g, &y)| g * y * (1.0 - y))
            .collect()
    }

    fn to_multi(&self, lanes: usize) -> Box<dyn LaneLayer> {
        per_lane_fallback(self, lanes)
    }
}

/// Leaky rectified linear unit: `x` for `x > 0`, `α·x` otherwise.
#[derive(Clone)]
pub struct LeakyRelu {
    len: usize,
    alpha: f32,
    mask: Vec<bool>,
}

impl LeakyRelu {
    pub fn new(len: usize, alpha: f32) -> Self {
        assert!((0.0..1.0).contains(&alpha));
        LeakyRelu {
            len,
            alpha,
            mask: Vec::new(),
        }
    }
}

impl Layer for LeakyRelu {
    fn in_len(&self) -> usize {
        self.len
    }
    fn out_len(&self) -> usize {
        self.len
    }

    fn forward(&mut self, input: &[f32], batch: usize) -> Vec<f32> {
        assert_eq!(input.len(), batch * self.len);
        self.mask.clear();
        input
            .iter()
            .map(|&v| {
                let pos = v > 0.0;
                self.mask.push(pos);
                if pos {
                    v
                } else {
                    self.alpha * v
                }
            })
            .collect()
    }

    fn backward(&mut self, grad_out: &[f32], batch: usize) -> Vec<f32> {
        assert_eq!(grad_out.len(), batch * self.len);
        grad_out
            .iter()
            .zip(&self.mask)
            .map(|(&g, &pos)| if pos { g } else { self.alpha * g })
            .collect()
    }

    fn to_multi(&self, lanes: usize) -> Box<dyn LaneLayer> {
        per_lane_fallback(self, lanes)
    }
}

#[cfg(test)]
mod activation_tests {
    use super::*;

    fn numeric_check<L: Layer>(layer: &mut L, input: &[f32], tol: f32) {
        let out = layer.forward(input, 1);
        let grad_in = layer.backward(&vec![1.0; out.len()], 1);
        let eps = 1e-3;
        for i in 0..input.len() {
            let mut plus = input.to_vec();
            plus[i] += eps;
            let mut minus = input.to_vec();
            minus[i] -= eps;
            let lp: f32 = layer.forward(&plus, 1).iter().sum();
            let lm: f32 = layer.forward(&minus, 1).iter().sum();
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (numeric - grad_in[i]).abs() < tol,
                "grad[{i}]: numeric {numeric} vs analytic {}",
                grad_in[i]
            );
        }
    }

    #[test]
    fn tanh_gradient() {
        let mut t = Tanh::new(4);
        numeric_check(&mut t, &[-1.5, -0.2, 0.3, 2.0], 1e-3);
        let mut t1 = Tanh::new(1);
        let out = t1.forward(&[0.0], 1);
        assert_eq!(out, vec![0.0]);
    }

    #[test]
    fn sigmoid_gradient_and_range() {
        let mut s = Sigmoid::new(4);
        numeric_check(&mut s, &[-3.0, -0.5, 0.5, 3.0], 1e-3);
        let mut s3 = Sigmoid::new(3);
        let out = s3.forward(&[-100.0, 0.0, 100.0], 1);
        assert!((out[1] - 0.5).abs() < 1e-6);
        assert!(out[0] >= 0.0 && out[2] <= 1.0);
    }

    #[test]
    fn leaky_relu_gradient() {
        let mut l = LeakyRelu::new(4, 0.1);
        numeric_check(&mut l, &[-2.0, -0.3, 0.4, 1.5], 1e-3);
        let mut l2 = LeakyRelu::new(2, 0.1);
        let out = l2.forward(&[-1.0, 2.0], 1);
        assert_eq!(out, vec![-0.1, 2.0]);
    }
}
