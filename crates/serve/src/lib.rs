//! `fedval-serve`: the HTTP/1.1 + JSON wire transport of the valuation
//! service — the network front of the stack grown in `fedval_core::service`
//! and `fedval_fl::service::serve`.
//!
//! Everything is hand-rolled on `std::net` in the style of the `shims/`
//! crates (the build environment has no registry access): [`json`] is a
//! dependency-free JSON encode/parse module whose float formatting
//! preserves the service's bit-identity contract, [`http`] a minimal
//! HTTP/1.1 server/client pair (keep-alive, pipelining, strict limits),
//! [`wire`] the schema — every [`ValuationError`] variant maps onto a
//! distinct documented status — and [`server`] the accept loop with
//! admission control and drain-on-shutdown.
//!
//! The contract the conformance suite (`tests/tests/wire_*.rs`) pins:
//! a value served over the socket is **byte-identical** to the same
//! request issued in process via [`ValuationServer::call`] — same seeds,
//! same coalesced flushes, same partial prefixes.
//!
//! ```no_run
//! use fedval_core::service::ValuationServer;
//! use fedval_core::utility::HashUtility;
//! use fedval_serve::server::{WireConfig, WireServer};
//!
//! let valuation = ValuationServer::start(HashUtility { n: 6, seed: 42 });
//! let wire = WireServer::start(valuation, WireConfig::default()).expect("bind");
//! println!("listening on http://{}", wire.addr());
//! // … curl -d '{"estimator":"stratified_mc","budget":30,"seed":7}' \
//! //        http://ADDR/v1/value
//! wire.shutdown();
//! ```
//!
//! [`ValuationError`]: fedval_core::service::ValuationError
//! [`ValuationServer::call`]: fedval_core::service::ValuationServer::call

pub mod http;
pub mod json;
pub mod server;
pub mod wire;

pub use server::{WireConfig, WireServer};
