//! `fedval-lint` CLI: scan the workspace (or explicit files) for
//! violations of the determinism contracts. Exit code 0 = clean,
//! 1 = findings, 2 = usage or I/O error.
//!
//! ```text
//! cargo run -p fedval-lint -- --workspace          # scan the whole tree
//! cargo run -p fedval-lint -- crates/core/src/x.rs # scan specific files
//! ```

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use fedval_lint::{find_workspace_root, scan_source, scan_workspace, Finding, ANNOTATION_GRAMMAR};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut workspace = false;
    let mut root_override: Option<PathBuf> = None;
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--workspace" => workspace = true,
            "--root" => match it.next() {
                Some(r) => root_override = Some(PathBuf::from(r)),
                None => return usage("--root needs a directory argument"),
            },
            "--help" | "-h" => {
                eprintln!(
                    "fedval-lint: determinism static analysis\n\n\
                     USAGE: fedval-lint [--workspace] [--root <dir>] [files...]\n\n\
                     --workspace   scan crates/, tests/ and examples/ under the\n\
                                   workspace root (found from --root or the cwd)\n\
                     --root <dir>  use <dir> as the workspace root\n\
                     files         scan specific files (paths are classified\n\
                                   relative to the workspace root)\n\n{ANNOTATION_GRAMMAR}"
                );
                return ExitCode::SUCCESS;
            }
            p if !p.starts_with('-') => paths.push(PathBuf::from(p)),
            other => return usage(&format!("unknown flag `{other}`")),
        }
    }
    if !workspace && paths.is_empty() {
        workspace = true; // default: lint the tree you are standing in
    }

    let cwd = match std::env::current_dir() {
        Ok(d) => d,
        Err(e) => {
            eprintln!("fedval-lint: cannot read current directory: {e}");
            return ExitCode::from(2);
        }
    };
    let root = match root_override.or_else(|| find_workspace_root(&cwd)) {
        Some(r) => r,
        None => {
            eprintln!("fedval-lint: no workspace root found (no Cargo.toml with [workspace])");
            return ExitCode::from(2);
        }
    };

    let mut findings: Vec<Finding> = Vec::new();
    if workspace {
        match scan_workspace(&root) {
            Ok(f) => findings.extend(f),
            Err(e) => {
                eprintln!("fedval-lint: scan failed: {e}");
                return ExitCode::from(2);
            }
        }
    }
    for path in &paths {
        let abs = if path.is_absolute() {
            path.clone()
        } else {
            cwd.join(path)
        };
        let rel = abs
            .strip_prefix(&root)
            .unwrap_or(Path::new(path))
            .to_string_lossy()
            .replace('\\', "/");
        match std::fs::read_to_string(&abs) {
            Ok(source) => findings.extend(scan_source(&rel, &source)),
            Err(e) => {
                eprintln!("fedval-lint: cannot read {}: {e}", path.display());
                return ExitCode::from(2);
            }
        }
    }

    if findings.is_empty() {
        println!("fedval-lint: clean (0 findings)");
        return ExitCode::SUCCESS;
    }
    for f in &findings {
        println!("{f}");
    }
    println!(
        "\nfedval-lint: {} finding{} — each one is a latent break of the\n\
         bit-identity contracts (thread-count / backend-cache / coalescing).\n\
         Fix the site (sorted drain, BTreeMap, explicit seed) or annotate it:\n\n{}",
        findings.len(),
        if findings.len() == 1 { "" } else { "s" },
        ANNOTATION_GRAMMAR
    );
    ExitCode::FAILURE
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("fedval-lint: {msg} (try --help)");
    ExitCode::from(2)
}
