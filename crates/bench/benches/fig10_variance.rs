//! Fig. 10 — variance of the stratified framework (Alg. 1) under the
//! MC-SV vs CC-SV computation schemes as γ grows, for n = 3..10 clients.
//!
//! The paper runs Alg. 1 100 times per configuration on FEMNIST and
//! reports that (i) variance first rises then falls to ~0 as γ approaches
//! full coverage, and (ii) MC-SV's variance is below CC-SV's throughout —
//! the empirical face of Theorem 2.
//!
//! Training-noise realisations are modelled by re-seeding the FL process
//! per run (the paper's TF runs are nondeterministic across runs); we use
//! the closed-form linear-regression utility of `fedval-theory` for the
//! dense sweep plus one neural spot check.

// Bench driver: measurement harness code panics on setup failure by
// design; unwrap/expect are the error mechanism here.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use fedval_bench::{base_seed, quick, Table};
use fedval_core::stratified::Scheme;
use fedval_theory::{estimator_variance_over_runs, TrainingErrorUtility};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let seed = base_seed();
    let runs = if quick() { 60 } else { 150 };
    let ns: Vec<usize> = if quick() { vec![3, 6] } else { vec![3, 6, 10] };
    for &n in &ns {
        let gammas: Vec<usize> = {
            let full = 1usize << n;
            [full / 8, full / 4, full / 2, full]
                .into_iter()
                .filter(|&g| g >= n)
                .collect()
        };
        let sizes = vec![30usize; n];
        let mut table = Table::new(["γ", "Var MC-SV", "Var CC-SV", "CC/MC"]);
        let mut mc_below_cc = 0usize;
        for &gamma in &gammas {
            let var_of = |scheme| {
                estimator_variance_over_runs(
                    |run| {
                        let mut rng = StdRng::seed_from_u64(seed ^ 0xF10 ^ (run as u64) << 7);
                        TrainingErrorUtility::draw(&sizes, 1.0, 0.5, &mut rng)
                    },
                    n,
                    scheme,
                    gamma,
                    runs,
                    seed ^ (gamma as u64),
                )
            };
            let mc = var_of(Scheme::MarginalContribution);
            let cc = var_of(Scheme::ComplementaryContribution);
            mc_below_cc += usize::from(mc <= cc);
            table.row([
                gamma.to_string(),
                format!("{mc:.6}"),
                format!("{cc:.6}"),
                format!("{:.2}", cc / mc.max(1e-12)),
            ]);
        }
        table.print(&format!(
            "Fig. 10 — Alg. 1 estimator variance over {runs} training realisations, n = {n}"
        ));
        println!(
            "Shape check: MC-SV variance ≤ CC-SV at {mc_below_cc}/{} budgets (Theorem 2)",
            gammas.len()
        );
    }
}
