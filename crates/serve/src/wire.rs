//! Wire protocol: translate HTTP/JSON requests into
//! [`ValuationRequest`]s and valuation results back into HTTP statuses
//! plus JSON bodies.
//!
//! # Request schema (`POST /v1/value`)
//!
//! ```json
//! {
//!   "estimator": "stratified_mc",        // required, see table below
//!   "budget": 30,                        // optional, default 0
//!   "seed": 7,                           // optional u64, default 0
//!   "clients": [0, 2, 5],                // optional sub-game subset
//!   "deadline_ms": 250.0,                // optional wall-clock deadline
//!   "max_evals": 500,                    // optional evaluation cap
//!   "on_limit": "partial",               // or "fail"; default "partial"
//!   "stopping": {"ci_at_most": 0.05,     // optional: streaming fold
//!                "max_samples": 100},    //   {} = stream-only
//!   "adaptive": {"round_size": 8,        // optional: Neyman re-planning
//!                "min_observations": 2,  //   {} = AdaptivePolicy default
//!                "floor": 1}
//! }
//! ```
//!
//! Parsing is **strict**: unknown fields anywhere in the document,
//! unknown estimator names, and type mismatches are rejected with a 400
//! before the request reaches the valuation server — a misspelled knob
//! must fail loudly, not silently run with the default.
//!
//! Estimator names: `exact_mc`, `exact_cc`, `ipss`, `stratified_mc`,
//! `stratified_cc`, `owen`, `banzhaf_pruned`, `loo`.
//!
//! # Status codes
//!
//! Every [`ValuationError`] variant maps onto its own status, so a
//! client can dispatch on the status line alone; the body's
//! `error.kind` field repeats the variant name for logs.
//!
//! | status | meaning | source |
//! |--------|---------|--------|
//! | 200    | complete result | success |
//! | 206    | **partial** result (deadline/budget fired under `on_limit: "partial"`; body carries `"partial": true` plus the prefix fold) | success |
//! | 400    | malformed JSON / unknown field / unknown estimator, or [`ValuationError::InvalidRequest`] | wire + service |
//! | 402    | [`ValuationError::BudgetExhausted`] (`on_limit: "fail"`) | service |
//! | 404    | unknown path | wire |
//! | 405    | method not allowed on this path | wire |
//! | 411    | body-bearing request without `Content-Length` | wire |
//! | 413    | body larger than the configured cap | wire |
//! | 429    | admission control: too many requests in flight (`Retry-After` header set) | wire |
//! | 431    | request head larger than the configured cap | wire |
//! | 500    | [`ValuationError::EstimatorPanicked`] | service |
//! | 502    | [`ValuationError::UtilityPanicked`] | service |
//! | 503    | [`ValuationError::ServerShutdown`] (drain in progress) | service |
//! | 504    | [`ValuationError::DeadlineExceeded`] (`on_limit: "fail"`) | service |
//! | 520    | [`ValuationError::WorkerLost`] | service |
//!
//! The conformance suite (`tests/tests/wire_protocol.rs`) pins this
//! table: one test case per variant, asserting the status and the
//! serialized error body.

use std::time::Duration;

use fedval_core::adaptive::AdaptivePolicy;
use fedval_core::anytime::{ProgressSnapshot, StoppingRule};
use fedval_core::coalition::Coalition;
use fedval_core::service::{
    Estimator, LimitPolicy, RunStats, ServiceStats, ValuationError, ValuationRequest,
    ValuationResponse,
};

use crate::json::{Json, Num};

/// A schema violation found while translating a wire request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SchemaError {
    /// What was wrong (field, expectation).
    pub detail: String,
}

impl SchemaError {
    fn new(detail: impl Into<String>) -> SchemaError {
        SchemaError {
            detail: detail.into(),
        }
    }
}

impl std::fmt::Display for SchemaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.detail)
    }
}

impl std::error::Error for SchemaError {}

/// Estimator names as they appear on the wire, paired with the enum.
pub const ESTIMATOR_NAMES: &[(&str, Estimator)] = &[
    ("exact_mc", Estimator::ExactMc),
    ("exact_cc", Estimator::ExactCc),
    ("ipss", Estimator::Ipss),
    ("stratified_mc", Estimator::StratifiedMc),
    ("stratified_cc", Estimator::StratifiedCc),
    ("owen", Estimator::Owen),
    ("banzhaf_pruned", Estimator::BanzhafPruned),
    ("loo", Estimator::Loo),
];

fn estimator_from_name(name: &str) -> Option<Estimator> {
    ESTIMATOR_NAMES
        .iter()
        .find(|(n, _)| *n == name)
        .map(|&(_, e)| e)
}

/// The wire name of an estimator.
pub fn estimator_name(e: Estimator) -> &'static str {
    match ESTIMATOR_NAMES.iter().find(|&&(_, v)| v == e) {
        Some(&(n, _)) => n,
        None => unreachable!("every Estimator variant is in ESTIMATOR_NAMES"),
    }
}

fn check_known_fields(obj: &Json, allowed: &[&str], ctx: &str) -> Result<(), SchemaError> {
    for key in obj.keys() {
        if !allowed.contains(&key) {
            return Err(SchemaError::new(format!(
                "unknown field `{key}` in {ctx} (allowed: {})",
                allowed.join(", ")
            )));
        }
    }
    Ok(())
}

fn field_u64(obj: &Json, key: &str) -> Result<Option<u64>, SchemaError> {
    match obj.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v.as_u64().map(Some).ok_or_else(|| {
            SchemaError::new(format!("field `{key}` must be a non-negative integer"))
        }),
    }
}

fn field_usize(obj: &Json, key: &str) -> Result<Option<usize>, SchemaError> {
    Ok(field_u64(obj, key)?.map(|x| x as usize))
}

fn field_f64(obj: &Json, key: &str) -> Result<Option<f64>, SchemaError> {
    match obj.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => match v.as_f64() {
            Some(x) if x.is_finite() && x >= 0.0 => Ok(Some(x)),
            _ => Err(SchemaError::new(format!(
                "field `{key}` must be a finite non-negative number"
            ))),
        },
    }
}

/// Translate a parsed JSON document into a [`ValuationRequest`].
pub fn parse_valuation_request(doc: &Json) -> Result<ValuationRequest, SchemaError> {
    if !matches!(doc, Json::Obj(_)) {
        return Err(SchemaError::new("request body must be a JSON object"));
    }
    check_known_fields(
        doc,
        &[
            "estimator",
            "budget",
            "seed",
            "clients",
            "deadline_ms",
            "max_evals",
            "on_limit",
            "stopping",
            "adaptive",
        ],
        "the request",
    )?;
    let estimator_name = doc
        .get("estimator")
        .and_then(Json::as_str)
        .ok_or_else(|| SchemaError::new("field `estimator` (string) is required"))?;
    let estimator = estimator_from_name(estimator_name).ok_or_else(|| {
        SchemaError::new(format!(
            "unknown estimator `{estimator_name}` (known: {})",
            ESTIMATOR_NAMES
                .iter()
                .map(|&(n, _)| n)
                .collect::<Vec<_>>()
                .join(", ")
        ))
    })?;
    let mut req = ValuationRequest::new(
        estimator,
        field_usize(doc, "budget")?.unwrap_or(0),
        field_u64(doc, "seed")?.unwrap_or(0),
    );
    if let Some(clients) = doc.get("clients") {
        if !clients.is_null() {
            let members = clients
                .as_array()
                .ok_or_else(|| SchemaError::new("field `clients` must be an array of indices"))?;
            let mut subset = Vec::with_capacity(members.len());
            for m in members {
                let idx = m.as_usize().ok_or_else(|| {
                    SchemaError::new("field `clients` must contain non-negative integers")
                })?;
                if idx >= 128 {
                    return Err(SchemaError::new(format!(
                        "client index {idx} out of range (coalitions hold at most 128 clients)"
                    )));
                }
                subset.push(idx);
            }
            req = req.for_clients(Coalition::from_members(subset));
        }
    }
    if let Some(ms) = field_f64(doc, "deadline_ms")? {
        req = req.with_deadline(Duration::from_secs_f64(ms / 1e3));
    }
    if let Some(cap) = field_usize(doc, "max_evals")? {
        req = req.with_max_evals(cap);
    }
    match doc.get("on_limit").and_then(Json::as_str) {
        None => {
            if doc.get("on_limit").is_some_and(|v| !v.is_null()) {
                return Err(SchemaError::new(
                    "field `on_limit` must be \"partial\" or \"fail\"",
                ));
            }
        }
        Some("partial") => req = req.on_limit(LimitPolicy::Partial),
        Some("fail") => req = req.on_limit(LimitPolicy::Fail),
        Some(other) => {
            return Err(SchemaError::new(format!(
                "field `on_limit` must be \"partial\" or \"fail\", got `{other}`"
            )))
        }
    }
    if let Some(stopping) = doc.get("stopping") {
        if !stopping.is_null() {
            if !matches!(stopping, Json::Obj(_)) {
                return Err(SchemaError::new("field `stopping` must be an object"));
            }
            check_known_fields(stopping, &["ci_at_most", "max_samples"], "`stopping`")?;
            let mut rule = StoppingRule::stream_only();
            if let Some(eps) = field_f64(stopping, "ci_at_most")? {
                rule = rule.and_ci_at_most(eps);
            }
            if let Some(m) = field_usize(stopping, "max_samples")? {
                rule = rule.and_max_samples(m);
            }
            req = req.with_stopping(rule);
        }
    }
    if let Some(adaptive) = doc.get("adaptive") {
        if !adaptive.is_null() {
            if !matches!(adaptive, Json::Obj(_)) {
                return Err(SchemaError::new("field `adaptive` must be an object"));
            }
            check_known_fields(
                adaptive,
                &["round_size", "min_observations", "floor"],
                "`adaptive`",
            )?;
            let mut policy = AdaptivePolicy::default();
            if let Some(r) = field_usize(adaptive, "round_size")? {
                policy.round_size = Some(r);
            }
            if let Some(m) = field_usize(adaptive, "min_observations")? {
                policy.min_observations = m;
            }
            if let Some(f) = field_usize(adaptive, "floor")? {
                policy.floor = f;
            }
            req = req.with_adaptive(policy);
        }
    }
    Ok(req)
}

/// The documented status for a [`ValuationError`] variant (see the
/// [module docs](self) table). Statuses are pairwise distinct — the
/// conformance suite asserts it.
pub fn error_status(err: &ValuationError) -> u16 {
    match err {
        ValuationError::InvalidRequest { .. } => 400,
        ValuationError::BudgetExhausted { .. } => 402,
        ValuationError::EstimatorPanicked { .. } => 500,
        ValuationError::UtilityPanicked { .. } => 502,
        ValuationError::ServerShutdown => 503,
        ValuationError::DeadlineExceeded { .. } => 504,
        ValuationError::WorkerLost => 520,
    }
}

/// The `error.kind` string of a [`ValuationError`] variant.
pub fn error_kind(err: &ValuationError) -> &'static str {
    match err {
        ValuationError::UtilityPanicked { .. } => "utility_panicked",
        ValuationError::EstimatorPanicked { .. } => "estimator_panicked",
        ValuationError::InvalidRequest { .. } => "invalid_request",
        ValuationError::DeadlineExceeded { .. } => "deadline_exceeded",
        ValuationError::BudgetExhausted { .. } => "budget_exhausted",
        ValuationError::ServerShutdown => "server_shutdown",
        ValuationError::WorkerLost => "worker_lost",
    }
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// Encode a [`ValuationError`] as `(status, body)`. The body nests the
/// variant's payload under `error` so clients can log a structured
/// record: `{"error": {"kind": ..., "detail": ..., ...}}`.
pub fn encode_error(err: &ValuationError) -> (u16, Json) {
    let mut fields: Vec<(&'static str, Json)> = vec![("kind", Json::str(error_kind(err)))];
    match err {
        ValuationError::UtilityPanicked { attempts, detail } => {
            fields.push(("detail", Json::str(detail.clone())));
            fields.push(("attempts", Json::Num(Num::U64(*attempts as u64))));
        }
        ValuationError::EstimatorPanicked { detail }
        | ValuationError::InvalidRequest { detail } => {
            fields.push(("detail", Json::str(detail.clone())));
        }
        ValuationError::DeadlineExceeded { deadline, elapsed } => {
            fields.push(("detail", Json::str(err.to_string())));
            fields.push(("deadline_ms", Json::f64(ms(*deadline))));
            fields.push(("elapsed_ms", Json::f64(ms(*elapsed))));
        }
        ValuationError::BudgetExhausted {
            consumed,
            max_evals,
            next_batch,
        } => {
            fields.push(("detail", Json::str(err.to_string())));
            fields.push(("consumed", Json::Num(Num::U64(*consumed as u64))));
            fields.push(("max_evals", Json::Num(Num::U64(*max_evals as u64))));
            fields.push(("next_batch", Json::Num(Num::U64(*next_batch as u64))));
        }
        ValuationError::ServerShutdown | ValuationError::WorkerLost => {
            fields.push(("detail", Json::str(err.to_string())));
        }
    }
    let status = error_status(err);
    (
        status,
        Json::obj([
            ("error", Json::obj(fields)),
            ("status", Json::Num(Num::U64(status as u64))),
        ]),
    )
}

/// A wire-level (pre-service) failure body: same shape as
/// [`encode_error`], with wire-only kinds (`malformed_json`,
/// `bad_request`, `saturated`, …).
pub fn wire_error_body(status: u16, kind: &str, detail: String) -> Json {
    Json::obj([
        (
            "error",
            Json::obj([("kind", Json::str(kind)), ("detail", Json::str(detail))]),
        ),
        ("status", Json::Num(Num::U64(status as u64))),
    ])
}

fn encode_snapshot(s: &ProgressSnapshot) -> Json {
    Json::obj([
        ("values", Json::f64_array(&s.values)),
        ("ci_halfwidths", Json::f64_array(&s.ci_halfwidths)),
        ("samples_used", Json::Num(Num::U64(s.samples_used as u64))),
        ("batches_done", Json::Num(Num::U64(s.batches_done as u64))),
        (
            "allocation",
            match &s.allocation {
                Some(a) => Json::usize_array(a),
                None => Json::Null,
            },
        ),
    ])
}

fn encode_run_stats(r: &RunStats) -> Json {
    Json::obj([
        ("batches", Json::Num(Num::U64(r.batches as u64))),
        ("coalitions", Json::Num(Num::U64(r.coalitions as u64))),
        (
            "coalesced_batches",
            Json::Num(Num::U64(r.coalesced_batches as u64)),
        ),
        ("partial", Json::Bool(r.partial)),
        ("stopped_early", Json::Bool(r.stopped_early)),
        ("retries", Json::Num(Num::U64(r.retries as u64))),
        ("park_wait_max_ms", Json::f64(ms(r.park_wait_max))),
    ])
}

/// Encode cumulative [`ServiceStats`] (the `service` field of value
/// responses, and the whole body of `GET /v1/stats`).
pub fn encode_service_stats(s: &ServiceStats) -> Json {
    let mut fields: Vec<(&'static str, Json)> = vec![
        ("requests", Json::Num(Num::U64(s.requests as u64))),
        ("flushes", Json::Num(Num::U64(s.flushes as u64))),
        (
            "merged_batches",
            Json::Num(Num::U64(s.merged_batches as u64)),
        ),
        (
            "failed_flushes",
            Json::Num(Num::U64(s.failed_flushes as u64)),
        ),
        ("retries", Json::Num(Num::U64(s.retries as u64))),
        (
            "distinct_coalitions",
            Json::Num(Num::U64(s.distinct_coalitions as u64)),
        ),
        (
            "evaluations",
            Json::Num(Num::U64(s.eval.evaluations as u64)),
        ),
        ("lookups", Json::Num(Num::U64(s.eval.lookups as u64))),
    ];
    if let Some(traj) = &s.traj {
        fields.push((
            "traj",
            Json::obj([
                ("probes", Json::Num(Num::U64(traj.probes as u64))),
                ("hits", Json::Num(Num::U64(traj.hits as u64))),
                (
                    "local_trainings",
                    Json::Num(Num::U64(traj.local_trainings as u64)),
                ),
                ("entries", Json::Num(Num::U64(traj.entries as u64))),
                ("bytes", Json::Num(Num::U64(traj.bytes as u64))),
                ("evictions", Json::Num(Num::U64(traj.evictions as u64))),
            ]),
        ));
    }
    Json::obj(fields)
}

/// Encode a successful [`ValuationResponse`] as `(status, body)`:
/// **200** for a complete result, **206 Partial Content** when the run's
/// deadline or evaluation budget fired and the values are the
/// bit-reproducible partial-prefix fold (`"partial": true`, with the
/// run's `RunStats` and any allocation trace alongside).
pub fn encode_response(resp: &ValuationResponse) -> (u16, Json) {
    let status = if resp.run.partial { 206 } else { 200 };
    let body = Json::obj([
        (
            "estimator",
            Json::str(estimator_name(resp.request.estimator)),
        ),
        ("clients", Json::usize_array(&resp.clients)),
        ("values", Json::f64_array(&resp.values)),
        ("partial", Json::Bool(resp.run.partial)),
        ("stopped_early", Json::Bool(resp.run.stopped_early)),
        ("wall_time_ms", Json::f64(ms(resp.wall_time))),
        ("run", encode_run_stats(&resp.run)),
        ("service", encode_service_stats(&resp.service)),
        (
            "progress",
            match &resp.progress {
                Some(s) => encode_snapshot(s),
                None => Json::Null,
            },
        ),
    ]);
    (status, body)
}

#[cfg(test)]
// Tests assert invariants; an unwrap that trips IS the test failing.
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::json::parse;

    #[test]
    fn full_request_surface_round_trips() {
        let doc = parse(
            r#"{"estimator":"stratified_mc","budget":48,"seed":9,
                "clients":[1,3,4],"deadline_ms":250.5,"max_evals":100,
                "on_limit":"fail",
                "stopping":{"ci_at_most":0.05,"max_samples":64},
                "adaptive":{"round_size":8,"min_observations":3,"floor":2}}"#,
        )
        .unwrap();
        let req = parse_valuation_request(&doc).unwrap();
        assert_eq!(req.estimator, Estimator::StratifiedMc);
        assert_eq!(req.budget, 48);
        assert_eq!(req.seed, 9);
        assert_eq!(req.clients, Some(Coalition::from_members([1, 3, 4])));
        assert_eq!(req.deadline, Some(Duration::from_secs_f64(0.2505)));
        assert_eq!(req.max_evals, Some(100));
        assert_eq!(req.on_limit, LimitPolicy::Fail);
        let rule = req.stopping.unwrap();
        assert_eq!(rule.ci_at_most, Some(0.05));
        assert_eq!(rule.max_samples, Some(64));
        let policy = req.adaptive.unwrap();
        assert_eq!(policy.round_size, Some(8));
        assert_eq!(policy.min_observations, 3);
        assert_eq!(policy.floor, 2);
    }

    #[test]
    fn minimal_request_defaults() {
        let req = parse_valuation_request(&parse(r#"{"estimator":"loo"}"#).unwrap()).unwrap();
        assert_eq!(req.estimator, Estimator::Loo);
        assert_eq!(req.budget, 0);
        assert_eq!(req.seed, 0);
        assert!(req.clients.is_none());
        assert!(req.stopping.is_none());
        assert!(req.adaptive.is_none());
        assert_eq!(req.on_limit, LimitPolicy::Partial);
    }

    #[test]
    fn unknown_fields_and_estimators_are_rejected() {
        for doc in [
            r#"{"estimator":"loo","bugdet":3}"#,
            r#"{"estimator":"shapley"}"#,
            r#"{"budget":3}"#,
            r#"{"estimator":"loo","stopping":{"ci":0.1}}"#,
            r#"{"estimator":"loo","adaptive":{"rounds":2}}"#,
            r#"{"estimator":"loo","seed":-1}"#,
            r#"{"estimator":"loo","seed":1.5}"#,
            r#"{"estimator":"loo","clients":"all"}"#,
            r#"{"estimator":"loo","clients":[200]}"#,
            r#"{"estimator":"loo","on_limit":"explode"}"#,
            r#"{"estimator":"loo","deadline_ms":-4}"#,
            r#"{"estimator":"loo","deadline_ms":"Infinity"}"#,
            r#"[1,2,3]"#,
        ] {
            let parsed = parse(doc).unwrap();
            assert!(
                parse_valuation_request(&parsed).is_err(),
                "doc {doc} must be rejected"
            );
        }
    }

    #[test]
    fn every_estimator_name_is_distinct_and_round_trips() {
        for &(name, est) in ESTIMATOR_NAMES {
            assert_eq!(estimator_from_name(name), Some(est));
            assert_eq!(estimator_name(est), name);
        }
        assert_eq!(ESTIMATOR_NAMES.len(), 8);
    }

    #[test]
    fn error_statuses_are_pairwise_distinct() {
        let variants = [
            ValuationError::UtilityPanicked {
                attempts: 3,
                detail: "boom".to_string(),
            },
            ValuationError::EstimatorPanicked {
                detail: "boom".to_string(),
            },
            ValuationError::InvalidRequest {
                detail: "bad".to_string(),
            },
            ValuationError::DeadlineExceeded {
                deadline: Duration::from_millis(5),
                elapsed: Duration::from_millis(6),
            },
            ValuationError::BudgetExhausted {
                consumed: 3,
                max_evals: 4,
                next_batch: 2,
            },
            ValuationError::ServerShutdown,
            ValuationError::WorkerLost,
        ];
        let statuses: Vec<u16> = variants.iter().map(error_status).collect();
        let mut dedup = statuses.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), variants.len(), "statuses: {statuses:?}");
        for (v, s) in variants.iter().zip(&statuses) {
            let (status, body) = encode_error(v);
            assert_eq!(status, *s);
            assert_eq!(
                body.get("error")
                    .and_then(|e| e.get("kind"))
                    .and_then(Json::as_str),
                Some(error_kind(v))
            );
        }
    }
}
