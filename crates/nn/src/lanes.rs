//! Multi-lane parameter representation for lock-step multi-coalition
//! training.
//!
//! A [`MultiNetwork`] holds `B` parameter *lanes* — `B` independent copies
//! of one [`Network`]'s parameters — and advances any active subset of them
//! through the same mini-batch in one pass. The federated engine uses this
//! to train `B` coalition models against a client's data while loading the
//! client's samples once: the batch input is a *shared* [`LaneTensor`]
//! every lane reads, deeper activations are per-lane (the weights differ),
//! and the lane-blocked kernels in [`crate::linalg`] sweep each shared
//! input row across all lanes while it is cache-hot.
//!
//! **Determinism contract.** Per lane, every kernel invocation performs the
//! same floating-point operations in the same order as the corresponding
//! solo [`Network`] pass, so a lane's trajectory is bit-identical to
//! training its coalition alone — regardless of how many other lanes ride
//! in the block or which of them are active. (The one deliberate deviation
//! is *omission*, not reordering: the input-gradient of the first layer,
//! which a solo backward pass computes and discards, is skipped.) The
//! equivalence is asserted layer-by-layer in this module's tests and
//! end-to-end in `tests/tests/lockstep_equivalence.rs`.

use rand::seq::SliceRandom;
use rand::Rng;

use fedval_data::Dataset;

use crate::backend::{Backend, LinalgBackend};
use crate::layers::Layer;
use crate::loss::softmax_cross_entropy;
use crate::network::Network;

/// A batch-shaped value replicated across `lanes` parameter lanes, or
/// shared by all of them.
///
/// Layout is lane-contiguous: lane `l` owns `data[l·lane_len .. (l+1)·lane_len]`.
/// A *shared* tensor stores one lane's worth of data and serves it to every
/// lane — the representation of a mini-batch input that all coalition
/// models consume, letting layer-0 kernels read each sample once.
pub struct LaneTensor {
    data: Vec<f32>,
    lanes: usize,
    lane_len: usize,
    shared: bool,
}

impl LaneTensor {
    /// An empty tensor; [`LaneTensor::reset`] shapes it before use.
    pub fn empty() -> Self {
        LaneTensor {
            data: Vec::new(),
            lanes: 0,
            lane_len: 0,
            shared: false,
        }
    }

    /// Reshape to `lanes × lane_len` (per-lane storage), reusing the
    /// allocation. Contents are unspecified until written.
    pub fn reset(&mut self, lanes: usize, lane_len: usize) {
        self.lanes = lanes;
        self.lane_len = lane_len;
        self.shared = false;
        self.data.resize(lanes * lane_len, 0.0);
    }

    /// Make this tensor the shared value `src` for `lanes` lanes.
    pub fn reset_shared(&mut self, lanes: usize, src: &[f32]) {
        self.lanes = lanes;
        self.lane_len = src.len();
        self.shared = true;
        self.data.clear();
        self.data.extend_from_slice(src);
    }

    pub fn lanes(&self) -> usize {
        self.lanes
    }

    pub fn lane_len(&self) -> usize {
        self.lane_len
    }

    pub fn is_shared(&self) -> bool {
        self.shared
    }

    /// Lane `l`'s view (the common buffer when shared).
    #[inline]
    pub fn lane(&self, l: usize) -> &[f32] {
        debug_assert!(l < self.lanes);
        if self.shared {
            &self.data
        } else {
            &self.data[l * self.lane_len..(l + 1) * self.lane_len]
        }
    }

    /// Mutable view of lane `l`. Panics on shared tensors (their single
    /// buffer backs every lane).
    #[inline]
    pub fn lane_mut(&mut self, l: usize) -> &mut [f32] {
        assert!(!self.shared, "cannot mutate one lane of a shared tensor");
        debug_assert!(l < self.lanes);
        &mut self.data[l * self.lane_len..(l + 1) * self.lane_len]
    }

    /// The full lane-contiguous backing buffer (kernel operand).
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable backing buffer (kernel operand).
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }
}

/// A layer processing `lanes` parameter lanes in lock-step — the
/// multi-lane counterpart of [`Layer`].
///
/// Unlike [`Layer`], forward does not cache its input: the owning
/// [`MultiNetwork`] keeps every activation alive and hands the layer its
/// own input back at backward time, which removes the per-step input
/// copies the solo path pays. `active[l]` gates lane `l`: inactive lanes'
/// activations, gradients and parameters are left untouched.
pub trait LaneLayer: Send {
    /// Per-sample input length (identical across lanes).
    fn in_len(&self) -> usize;
    /// Per-sample output length (identical across lanes).
    fn out_len(&self) -> usize;
    /// Number of parameter lanes.
    fn lanes(&self) -> usize;

    /// Forward the batch for every active lane: reads `input` (shared or
    /// per-lane), writes each active lane of `out` (pre-shaped by the
    /// caller to `lanes × batch·out_len`).
    fn forward(&mut self, input: &LaneTensor, batch: usize, active: &[bool], out: &mut LaneTensor);

    /// Backward for every active lane. `input` is the same tensor `forward`
    /// read; `grad_in`, when present, receives `∂L/∂input` per lane. The
    /// first layer of a network passes `None` — its input gradient has no
    /// consumer, and skipping it is the lane path's main arithmetic saving.
    fn backward(
        &mut self,
        input: &LaneTensor,
        grad_out: &LaneTensor,
        batch: usize,
        active: &[bool],
        grad_in: Option<&mut LaneTensor>,
    );

    /// Reset gradient accumulators of active lanes.
    fn zero_grads(&mut self, _active: &[bool]) {}

    /// SGD update on active lanes.
    fn sgd_step(&mut self, _lr: f32, _active: &[bool]) {}

    /// Scalar parameters per lane.
    fn param_count(&self) -> usize {
        0
    }

    /// Append lane `l`'s parameters to `out` in [`Layer::write_params`]
    /// order.
    fn write_lane_params(&self, _lane: usize, _out: &mut Vec<f32>) {}

    /// Read lane `l`'s parameters from the front of `src`, advancing it.
    fn read_lane_params(&mut self, _lane: usize, _src: &mut &[f32]) {}
}

/// Lane-blocked fully connected layer (the multi-lane [`crate::layers::Dense`]).
pub struct MultiDense {
    in_len: usize,
    out_len: usize,
    lanes: usize,
    /// `lanes × (out×in)`, each lane row-major `W: out×in` (solo layout).
    w: Vec<f32>,
    /// `lanes × out`.
    b: Vec<f32>,
    grad_w: Vec<f32>,
    grad_b: Vec<f32>,
    backend: Backend,
}

impl MultiDense {
    /// Replicate one dense layer's parameters into `lanes` lanes, running
    /// on the same backend as the solo layer it came from (the lock-step
    /// contract is per backend).
    pub(crate) fn replicate(
        in_len: usize,
        out_len: usize,
        w: &[f32],
        b: &[f32],
        lanes: usize,
        backend: Backend,
    ) -> Self {
        assert_eq!(w.len(), in_len * out_len);
        assert_eq!(b.len(), out_len);
        assert!(lanes >= 1);
        MultiDense {
            in_len,
            out_len,
            lanes,
            w: w.iter().copied().cycle().take(lanes * w.len()).collect(),
            b: b.iter().copied().cycle().take(lanes * b.len()).collect(),
            grad_w: vec![0.0; lanes * w.len()],
            grad_b: vec![0.0; lanes * b.len()],
            backend,
        }
    }

    /// Shared forward body for the plain and fused-ReLU variants.
    fn forward_impl(
        &mut self,
        input: &LaneTensor,
        batch: usize,
        active: &[bool],
        out: &mut LaneTensor,
        relu_masks: Option<&mut [bool]>,
    ) {
        assert_eq!(input.lane_len(), batch * self.in_len);
        assert_eq!(out.lane_len(), batch * self.out_len);
        self.backend.lane_matmul_a_bt_bias(
            input.data(),
            input.is_shared(),
            &self.w,
            &self.b,
            self.lanes,
            active,
            batch,
            self.in_len,
            self.out_len,
            out.data_mut(),
            relu_masks,
        );
    }

    /// Shared backward body: accumulates weight/bias gradients (fused
    /// traversal) and optionally the input gradient per active lane.
    fn backward_impl(
        &mut self,
        input: &LaneTensor,
        grad_out: &LaneTensor,
        batch: usize,
        active: &[bool],
        grad_in: Option<&mut LaneTensor>,
    ) {
        assert_eq!(grad_out.lane_len(), batch * self.out_len);
        assert_eq!(input.lane_len(), batch * self.in_len);
        self.backend.lane_matmul_at_b_accum(
            grad_out.data(),
            input.data(),
            input.is_shared(),
            self.lanes,
            active,
            batch,
            self.out_len,
            self.in_len,
            &mut self.grad_w,
            &mut self.grad_b,
        );
        if let Some(grad_in) = grad_in {
            assert_eq!(grad_in.lane_len(), batch * self.in_len);
            for (l, &on) in active.iter().enumerate() {
                if on {
                    self.backend.matmul(
                        grad_out.lane(l),
                        &self.w
                            [l * self.out_len * self.in_len..(l + 1) * self.out_len * self.in_len],
                        batch,
                        self.out_len,
                        self.in_len,
                        grad_in.lane_mut(l),
                    );
                }
            }
        }
    }
}

impl LaneLayer for MultiDense {
    fn in_len(&self) -> usize {
        self.in_len
    }
    fn out_len(&self) -> usize {
        self.out_len
    }
    fn lanes(&self) -> usize {
        self.lanes
    }

    fn forward(&mut self, input: &LaneTensor, batch: usize, active: &[bool], out: &mut LaneTensor) {
        self.forward_impl(input, batch, active, out, None);
    }

    fn backward(
        &mut self,
        input: &LaneTensor,
        grad_out: &LaneTensor,
        batch: usize,
        active: &[bool],
        grad_in: Option<&mut LaneTensor>,
    ) {
        self.backward_impl(input, grad_out, batch, active, grad_in);
    }

    fn zero_grads(&mut self, active: &[bool]) {
        let (wl, bl) = (self.in_len * self.out_len, self.out_len);
        for (l, &on) in active.iter().enumerate() {
            if on {
                self.grad_w[l * wl..(l + 1) * wl].fill(0.0);
                self.grad_b[l * bl..(l + 1) * bl].fill(0.0);
            }
        }
    }

    fn sgd_step(&mut self, lr: f32, active: &[bool]) {
        let (wl, bl) = (self.in_len * self.out_len, self.out_len);
        for (l, &on) in active.iter().enumerate() {
            if on {
                for (p, g) in self.w[l * wl..(l + 1) * wl]
                    .iter_mut()
                    .zip(&self.grad_w[l * wl..(l + 1) * wl])
                {
                    *p -= lr * g;
                }
                for (p, g) in self.b[l * bl..(l + 1) * bl]
                    .iter_mut()
                    .zip(&self.grad_b[l * bl..(l + 1) * bl])
                {
                    *p -= lr * g;
                }
            }
        }
    }

    fn param_count(&self) -> usize {
        self.in_len * self.out_len + self.out_len
    }

    fn write_lane_params(&self, lane: usize, out: &mut Vec<f32>) {
        let (wl, bl) = (self.in_len * self.out_len, self.out_len);
        out.extend_from_slice(&self.w[lane * wl..(lane + 1) * wl]);
        out.extend_from_slice(&self.b[lane * bl..(lane + 1) * bl]);
    }

    fn read_lane_params(&mut self, lane: usize, src: &mut &[f32]) {
        let (wl, bl) = (self.in_len * self.out_len, self.out_len);
        let (w, rest) = src.split_at(wl);
        let (b, rest) = rest.split_at(bl);
        self.w[lane * wl..(lane + 1) * wl].copy_from_slice(w);
        self.b[lane * bl..(lane + 1) * bl].copy_from_slice(b);
        *src = rest;
    }
}

/// Lane-blocked fused `ReLU(x·Wᵀ + b)` (the multi-lane
/// [`crate::layers::DenseRelu`]): bias and activation applied in the
/// kernel write-back, positive mask recorded per lane in the same pass.
pub struct MultiDenseRelu {
    dense: MultiDense,
    /// `lanes × batch·out` activation gates of the last forward.
    mask: Vec<bool>,
    /// Scratch for the gated upstream gradient.
    gated: LaneTensor,
}

impl MultiDenseRelu {
    pub(crate) fn replicate(
        in_len: usize,
        out_len: usize,
        w: &[f32],
        b: &[f32],
        lanes: usize,
        backend: Backend,
    ) -> Self {
        MultiDenseRelu {
            dense: MultiDense::replicate(in_len, out_len, w, b, lanes, backend),
            mask: Vec::new(),
            gated: LaneTensor::empty(),
        }
    }
}

impl LaneLayer for MultiDenseRelu {
    fn in_len(&self) -> usize {
        self.dense.in_len
    }
    fn out_len(&self) -> usize {
        self.dense.out_len
    }
    fn lanes(&self) -> usize {
        self.dense.lanes
    }

    fn forward(&mut self, input: &LaneTensor, batch: usize, active: &[bool], out: &mut LaneTensor) {
        self.mask
            .resize(self.dense.lanes * batch * self.dense.out_len, false);
        let mask = &mut self.mask[..];
        self.dense
            .forward_impl(input, batch, active, out, Some(mask));
    }

    fn backward(
        &mut self,
        input: &LaneTensor,
        grad_out: &LaneTensor,
        batch: usize,
        active: &[bool],
        grad_in: Option<&mut LaneTensor>,
    ) {
        // Gate the upstream gradient through the recorded masks, then run
        // the dense backward on the gated signal — the same composition as
        // the solo `DenseRelu`, with the gate buffer reused across steps.
        let per = batch * self.dense.out_len;
        self.gated.reset(self.dense.lanes, per);
        for (l, &on) in active.iter().enumerate() {
            if on {
                let mask = &self.mask[l * per..(l + 1) * per];
                let dst = self.gated.lane_mut(l);
                for ((d, &g), &keep) in dst.iter_mut().zip(grad_out.lane(l)).zip(mask) {
                    *d = if keep { g } else { 0.0 };
                }
            }
        }
        self.dense
            .backward_impl(input, &self.gated, batch, active, grad_in);
    }

    fn zero_grads(&mut self, active: &[bool]) {
        self.dense.zero_grads(active);
    }

    fn sgd_step(&mut self, lr: f32, active: &[bool]) {
        self.dense.sgd_step(lr, active);
    }

    fn param_count(&self) -> usize {
        self.dense.param_count()
    }

    fn write_lane_params(&self, lane: usize, out: &mut Vec<f32>) {
        self.dense.write_lane_params(lane, out);
    }

    fn read_lane_params(&mut self, lane: usize, src: &mut &[f32]) {
        self.dense.read_lane_params(lane, src);
    }
}

/// Lane-blocked element-wise ReLU (parameter-free; per-lane masks).
pub struct MultiRelu {
    len: usize,
    lanes: usize,
    mask: Vec<bool>,
}

impl MultiRelu {
    pub(crate) fn replicate(len: usize, lanes: usize) -> Self {
        MultiRelu {
            len,
            lanes,
            mask: Vec::new(),
        }
    }
}

impl LaneLayer for MultiRelu {
    fn in_len(&self) -> usize {
        self.len
    }
    fn out_len(&self) -> usize {
        self.len
    }
    fn lanes(&self) -> usize {
        self.lanes
    }

    fn forward(&mut self, input: &LaneTensor, batch: usize, active: &[bool], out: &mut LaneTensor) {
        let per = batch * self.len;
        self.mask.resize(self.lanes * per, false);
        for (l, &on) in active.iter().enumerate() {
            if on {
                let src = input.lane(l);
                let mask = &mut self.mask[l * per..(l + 1) * per];
                let dst = out.lane_mut(l);
                for ((d, m), &v) in dst.iter_mut().zip(mask.iter_mut()).zip(src) {
                    let keep = v > 0.0;
                    *m = keep;
                    *d = if keep { v } else { 0.0 };
                }
            }
        }
    }

    fn backward(
        &mut self,
        _input: &LaneTensor,
        grad_out: &LaneTensor,
        batch: usize,
        active: &[bool],
        grad_in: Option<&mut LaneTensor>,
    ) {
        let Some(grad_in) = grad_in else { return };
        let per = batch * self.len;
        for (l, &on) in active.iter().enumerate() {
            if on {
                let mask = &self.mask[l * per..(l + 1) * per];
                let dst = grad_in.lane_mut(l);
                for ((d, &g), &keep) in dst.iter_mut().zip(grad_out.lane(l)).zip(mask) {
                    *d = if keep { g } else { 0.0 };
                }
            }
        }
    }
}

/// Fallback multi-lane adapter: one boxed solo [`Layer`] per lane, driven
/// in a loop. Used by layers without a dedicated lane-blocked kernel
/// (convolution, pooling, the odd activations); bit-identity per lane is
/// inherited from running the solo layer itself. These layers still gain
/// the engine-level sharing (one data pass, shared shuffles and gathers).
pub struct PerLane {
    layers: Vec<Box<dyn Layer>>,
}

impl PerLane {
    pub(crate) fn new(layers: Vec<Box<dyn Layer>>) -> Self {
        assert!(!layers.is_empty());
        PerLane { layers }
    }
}

impl LaneLayer for PerLane {
    fn in_len(&self) -> usize {
        self.layers[0].in_len()
    }
    fn out_len(&self) -> usize {
        self.layers[0].out_len()
    }
    fn lanes(&self) -> usize {
        self.layers.len()
    }

    fn forward(&mut self, input: &LaneTensor, batch: usize, active: &[bool], out: &mut LaneTensor) {
        for (l, layer) in self.layers.iter_mut().enumerate() {
            if active[l] {
                let v = layer.forward(input.lane(l), batch);
                out.lane_mut(l).copy_from_slice(&v);
            }
        }
    }

    fn backward(
        &mut self,
        _input: &LaneTensor,
        grad_out: &LaneTensor,
        batch: usize,
        active: &[bool],
        mut grad_in: Option<&mut LaneTensor>,
    ) {
        // Solo layers cache their own forward input, so `_input` is unused.
        for (l, layer) in self.layers.iter_mut().enumerate() {
            if active[l] {
                let g = layer.backward(grad_out.lane(l), batch);
                if let Some(gi) = grad_in.as_deref_mut() {
                    gi.lane_mut(l).copy_from_slice(&g);
                }
            }
        }
    }

    fn zero_grads(&mut self, active: &[bool]) {
        for (l, layer) in self.layers.iter_mut().enumerate() {
            if active[l] {
                layer.zero_grads();
            }
        }
    }

    fn sgd_step(&mut self, lr: f32, active: &[bool]) {
        for (l, layer) in self.layers.iter_mut().enumerate() {
            if active[l] {
                layer.sgd_step(lr);
            }
        }
    }

    fn param_count(&self) -> usize {
        self.layers[0].param_count()
    }

    fn write_lane_params(&self, lane: usize, out: &mut Vec<f32>) {
        self.layers[lane].write_params(out);
    }

    fn read_lane_params(&mut self, lane: usize, src: &mut &[f32]) {
        self.layers[lane].read_params(src);
    }
}

/// `B` parameter lanes of one network architecture, trained in lock-step.
///
/// Built from a template [`Network`] whose parameters seed every lane
/// (the FL server's shared initialisation); per-lane parameters are then
/// set and read with [`MultiNetwork::set_lane_params`] /
/// [`MultiNetwork::lane_params`]. All activation and gradient buffers are
/// owned here and reused across steps — the lane hot path performs no
/// per-batch allocation beyond the per-lane softmax gradients.
pub struct MultiNetwork {
    layers: Vec<Box<dyn LaneLayer>>,
    lanes: usize,
    in_len: usize,
    n_classes: usize,
    /// `layers.len() + 1` activation tensors; `acts[0]` is the shared
    /// batch input, `acts[i+1]` the output of layer `i`.
    acts: Vec<LaneTensor>,
    /// Ping-pong gradient buffers for the backward sweep.
    grad_cur: LaneTensor,
    grad_nxt: LaneTensor,
    /// All-lanes-active mask for evaluation paths.
    all_active: Vec<bool>,
}

impl MultiNetwork {
    /// Replicate `net`'s parameters into `lanes` lanes.
    pub fn from_network(net: &Network, lanes: usize) -> Self {
        assert!(lanes >= 1);
        let layers: Vec<Box<dyn LaneLayer>> =
            net.layers().iter().map(|l| l.to_multi(lanes)).collect();
        let acts = (0..layers.len() + 1).map(|_| LaneTensor::empty()).collect();
        MultiNetwork {
            layers,
            lanes,
            in_len: net.in_len(),
            n_classes: net.n_classes(),
            acts,
            grad_cur: LaneTensor::empty(),
            grad_nxt: LaneTensor::empty(),
            all_active: vec![true; lanes],
        }
    }

    pub fn lanes(&self) -> usize {
        self.lanes
    }

    pub fn in_len(&self) -> usize {
        self.in_len
    }

    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Scalar parameters per lane.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(|l| l.param_count()).sum()
    }

    /// Load lane `lane` from a flat vector ([`Network::params`] order).
    pub fn set_lane_params(&mut self, lane: usize, params: &[f32]) {
        assert_eq!(params.len(), self.param_count());
        let mut src = params;
        for layer in &mut self.layers {
            layer.read_lane_params(lane, &mut src);
        }
        debug_assert!(src.is_empty());
    }

    /// Append lane `lane`'s flat parameters to `out` (cleared first).
    pub fn lane_params_into(&self, lane: usize, out: &mut Vec<f32>) {
        out.clear();
        for layer in &self.layers {
            layer.write_lane_params(lane, out);
        }
    }

    /// Lane `lane`'s flat parameters.
    pub fn lane_params(&self, lane: usize) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.param_count());
        self.lane_params_into(lane, &mut out);
        out
    }

    /// Forward the shared batch through every active lane, leaving all
    /// activations in `self.acts`.
    fn forward_shared(&mut self, input: &[f32], batch: usize, active: &[bool]) {
        assert_eq!(input.len(), batch * self.in_len);
        assert_eq!(active.len(), self.lanes);
        self.acts[0].reset_shared(self.lanes, input);
        for (i, layer) in self.layers.iter_mut().enumerate() {
            let (head, tail) = self.acts.split_at_mut(i + 1);
            tail[0].reset(self.lanes, batch * layer.out_len());
            layer.forward(&head[i], batch, active, &mut tail[0]);
        }
    }

    /// One lock-step SGD step on a shared batch: every active lane
    /// performs exactly the forward/backward/update a solo
    /// [`Network::train_batch`] would, while the batch is gathered and
    /// traversed once.
    pub fn train_batch(&mut self, input: &[f32], labels: &[u32], lr: f32, active: &[bool]) {
        let batch = labels.len();
        self.forward_shared(input, batch, active);
        // Per-lane loss gradients from the shared logits tensor
        // (`acts` and `grad_cur` are disjoint fields, so the logits
        // borrow coexists with the per-lane gradient writes).
        self.grad_cur.reset(self.lanes, batch * self.n_classes);
        let Some(logits) = self.acts.last() else {
            unreachable!("acts always holds layers.len() + 1 tensors")
        };
        for (l, &on) in active.iter().enumerate() {
            if on {
                let (_, g) = softmax_cross_entropy(logits.lane(l), labels, self.n_classes);
                self.grad_cur.lane_mut(l).copy_from_slice(&g);
            }
        }
        for layer in &mut self.layers {
            layer.zero_grads(active);
        }
        for i in (0..self.layers.len()).rev() {
            let layer = &mut self.layers[i];
            if i == 0 {
                // First layer: its input gradient has no consumer — skip.
                layer.backward(&self.acts[0], &self.grad_cur, batch, active, None);
            } else {
                self.grad_nxt.reset(self.lanes, batch * layer.in_len());
                layer.backward(
                    &self.acts[i],
                    &self.grad_cur,
                    batch,
                    active,
                    Some(&mut self.grad_nxt),
                );
                std::mem::swap(&mut self.grad_cur, &mut self.grad_nxt);
            }
        }
        for layer in &mut self.layers {
            layer.sgd_step(lr, active);
        }
    }

    /// Train active lanes for `epochs` passes over `data` in mini-batches
    /// of `batch_size`, shuffling each epoch with `rng` — the lock-step
    /// mirror of [`Network::train_epochs`]: the epoch order evolves from
    /// one shared shuffle stream exactly as each solo run's identically
    /// seeded RNG would produce, and each mini-batch is gathered once for
    /// all lanes.
    pub fn train_epochs(
        &mut self,
        data: &Dataset,
        epochs: usize,
        batch_size: usize,
        lr: f32,
        rng: &mut impl Rng,
        active: &[bool],
    ) {
        assert!(batch_size >= 1);
        let n = data.n_samples();
        if n == 0 || !active.iter().any(|&a| a) {
            return;
        }
        assert_eq!(data.n_features(), self.in_len);
        let mut order: Vec<usize> = (0..n).collect();
        let mut xbuf: Vec<f32> = Vec::with_capacity(batch_size * self.in_len);
        let mut ybuf: Vec<u32> = Vec::with_capacity(batch_size);
        for _ in 0..epochs {
            order.shuffle(rng);
            for chunk in order.chunks(batch_size) {
                xbuf.clear();
                ybuf.clear();
                for &i in chunk {
                    xbuf.extend_from_slice(data.row(i));
                    ybuf.push(data.label(i));
                }
                self.train_batch(&xbuf, &ybuf, lr, active);
            }
        }
    }

    /// Classification accuracy of every lane on `data`, with the test
    /// batches gathered once and forwarded through all lanes
    /// (bit-identical per lane to [`Network::accuracy`]).
    pub fn accuracy_lanes(&mut self, data: &Dataset) -> Vec<f64> {
        let n = data.n_samples();
        if n == 0 {
            return vec![0.0; self.lanes];
        }
        let mut correct = vec![0usize; self.lanes];
        let bs = 64usize; // same evaluation batching as Network::predict
        let mut xbuf: Vec<f32> = Vec::with_capacity(bs * self.in_len);
        let active = std::mem::take(&mut self.all_active);
        let mut start = 0;
        while start < n {
            let end = (start + bs).min(n);
            xbuf.clear();
            for i in start..end {
                xbuf.extend_from_slice(data.row(i));
            }
            self.forward_shared(&xbuf, end - start, &active);
            let Some(logits) = self.acts.last() else {
                unreachable!("acts always holds layers.len() + 1 tensors")
            };
            for (l, corr) in correct.iter_mut().enumerate() {
                let rows = logits.lane(l);
                for (r, row) in rows.chunks_exact(self.n_classes).enumerate() {
                    let mut best = 0usize;
                    for (c, &v) in row.iter().enumerate() {
                        if v > row[best] {
                            best = c;
                        }
                    }
                    if best as u32 == data.label(start + r) {
                        *corr += 1;
                    }
                }
            }
            start = end;
        }
        self.all_active = active;
        correct.iter().map(|&c| c as f64 / n as f64).collect()
    }
}

#[cfg(test)]
// Tests assert invariants; an unwrap that trips IS the test failing.
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::models;
    use crate::network::init_rng;
    use fedval_data::MnistLike;

    fn problem() -> (Dataset, Dataset) {
        let gen = MnistLike::new(31);
        gen.generate_split(160, 80, 32)
    }

    /// Lock-step training with a mix of active lanes must reproduce each
    /// lane's solo trajectory bit-for-bit, for every model family.
    #[test]
    fn lanes_are_bit_identical_to_solo_networks() {
        let (train, test) = problem();
        type Builder = Box<dyn Fn(u64) -> Network>;
        let builders: Vec<(&str, Builder)> = vec![
            ("mlp", Box::new(|s| models::mlp(64, &[32], 10, s))),
            ("deep", Box::new(|s| models::mlp(64, &[24, 16], 10, s))),
            ("linear", Box::new(|s| models::linear(64, 10, s))),
            ("cnn", Box::new(|s| models::cnn(8, 10, s))),
        ];
        for (name, build) in &builders {
            let template = build(7);
            let lanes = 3usize;
            let mut multi = MultiNetwork::from_network(&template, lanes);
            assert_eq!(multi.param_count(), template.param_count());
            // Give each lane distinct parameters (different seeds).
            let mut solos: Vec<Network> = (0..lanes).map(|l| build(100 + l as u64)).collect();
            for (l, solo) in solos.iter().enumerate() {
                multi.set_lane_params(l, &solo.params());
            }
            // Two lock-step phases with different active masks; solo runs
            // perform exactly the same steps with identical RNG streams.
            for (phase, active) in [[true, true, true], [true, false, true]].iter().enumerate() {
                let mut rng = init_rng(50 + phase as u64);
                multi.train_epochs(&train, 2, 16, 0.1, &mut rng, active);
                for (l, solo) in solos.iter_mut().enumerate() {
                    if active[l] {
                        let mut rng = init_rng(50 + phase as u64);
                        solo.train_epochs(&train, 2, 16, 0.1, &mut rng);
                    }
                }
            }
            for (l, solo) in solos.iter_mut().enumerate() {
                assert_eq!(
                    multi.lane_params(l),
                    solo.params(),
                    "{name}: lane {l} diverged from its solo run"
                );
                let accs = multi.accuracy_lanes(&test);
                assert_eq!(accs[l], solo.accuracy(&test), "{name}: lane {l} accuracy");
            }
        }
    }

    #[test]
    fn single_lane_matches_network_exactly() {
        let (train, _) = problem();
        let template = models::default_mlp(64, 10, 3);
        let mut multi = MultiNetwork::from_network(&template, 1);
        let mut solo = models::default_mlp(64, 10, 3);
        let mut rng_m = init_rng(9);
        let mut rng_s = init_rng(9);
        multi.train_epochs(&train, 3, 16, 0.05, &mut rng_m, &[true]);
        solo.train_epochs(&train, 3, 16, 0.05, &mut rng_s);
        assert_eq!(multi.lane_params(0), solo.params());
    }

    #[test]
    fn inactive_lanes_stay_frozen() {
        let (train, _) = problem();
        let template = models::default_mlp(64, 10, 11);
        let mut multi = MultiNetwork::from_network(&template, 2);
        let before = multi.lane_params(1);
        let mut rng = init_rng(12);
        multi.train_epochs(&train, 1, 16, 0.1, &mut rng, &[true, false]);
        assert_eq!(multi.lane_params(1), before, "inactive lane must not move");
        assert_ne!(multi.lane_params(0), before, "active lane must train");
    }

    #[test]
    fn lane_params_round_trip() {
        let template = models::mlp(8, &[6], 3, 21);
        let mut multi = MultiNetwork::from_network(&template, 4);
        let p: Vec<f32> = (0..multi.param_count()).map(|i| i as f32 * 0.25).collect();
        multi.set_lane_params(2, &p);
        assert_eq!(multi.lane_params(2), p);
        // Other lanes keep the template parameters.
        assert_eq!(multi.lane_params(1), template.params());
    }
}
