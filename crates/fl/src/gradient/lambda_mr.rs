//! λ-MR (Wei et al., FL-Privacy-Incentive'20): per-round exact MC-SV over
//! round-reconstructed models, aggregated across rounds with weights λₜ.
//!
//! Within each FL round `t`, the utility of a coalition is the accuracy of
//! the actual global model entering the round plus the coalition's recorded
//! round-`t` updates. The per-round Shapley values are computed exactly
//! (2^n reconstructions per round — which is why λ-MR's time in Table IV
//! grows steeply with both `n` and the round count) and summed with
//! exponential round weights.

use fedval_core::exact::exact_mc_sv;
use fedval_core::utility::CachedUtility;
use fedval_data::Dataset;
use fedval_nn::Network;

use crate::gradient::{ParamEvaluator, RoundUtility};
use crate::history::TrainingHistory;

/// Configuration for [`lambda_mr`].
#[derive(Clone, Copy, Debug)]
pub struct LambdaMrConfig {
    /// Round-weight decay: round `t` (0-based) gets weight `λ^(T−1−t)`
    /// normalised to sum `T·mean` — `λ = 1` weights all rounds equally,
    /// `λ > 1` emphasises later rounds.
    pub lambda: f64,
}

impl Default for LambdaMrConfig {
    fn default() -> Self {
        LambdaMrConfig { lambda: 1.0 }
    }
}

/// λ-MR valuation.
pub fn lambda_mr(
    history: &TrainingHistory,
    net: Network,
    test: Dataset,
    cfg: &LambdaMrConfig,
) -> Vec<f64> {
    let n = history.n_clients();
    let t = history.rounds();
    assert!(n <= 20, "λ-MR enumerates 2^n reconstructions per round");
    assert!(t >= 1);
    let evaluator = ParamEvaluator::new(net, test);

    // Unnormalised weights λ^(T−1−t), rescaled to sum to T. With λ = 1
    // every round gets weight 1 — the plain per-round sum, whose total
    // telescopes to the overall accuracy gain.
    let raw: Vec<f64> = (0..t)
        .map(|r| cfg.lambda.powi((t - 1 - r) as i32))
        .collect();
    let scale = t as f64 / raw.iter().sum::<f64>();

    let mut phi = vec![0.0f64; n];
    for (round, raw_w) in raw.iter().enumerate() {
        let ru = CachedUtility::new(RoundUtility::new(history, round, &evaluator));
        let phi_round = exact_mc_sv(&ru);
        let w = raw_w * scale;
        for (acc, v) in phi.iter_mut().zip(&phi_round) {
            *acc += w * v;
        }
    }
    phi
}

#[cfg(test)]
// Tests assert invariants; an unwrap that trips IS the test failing.
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::config::FedAvgConfig;
    use crate::fedavg::train_with_history;
    use crate::model::ModelSpec;
    use fedval_data::{MnistLike, SyntheticSetup};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(n: usize) -> (Vec<Dataset>, Dataset) {
        let gen = MnistLike::new(6);
        let (train, test) = gen.generate_split(60 * n, 100, 7);
        let mut rng = StdRng::seed_from_u64(8);
        let clients = SyntheticSetup::SameSizeSameDist.partition(&train, n, &mut rng);
        (clients, test)
    }

    #[test]
    fn uniform_lambda_telescopes_to_accuracy_gain() {
        let (clients, test) = setup(3);
        let spec = ModelSpec::default_mlp();
        let cfg = FedAvgConfig {
            rounds: 3,
            local_epochs: 1,
            ..Default::default()
        };
        let (net, history) = train_with_history(&spec, &clients, 64, 10, &cfg);
        let evaluator_net = spec.build(64, 10, 0);
        let phi = lambda_mr(
            &history,
            evaluator_net,
            test.clone(),
            &LambdaMrConfig::default(),
        );
        // Per-round efficiency: Σᵢ ϕᵢᵗ = U_t(N) − U_t(∅) = acc(M^{t+1}) −
        // acc(M^t); with λ = 1 the rounds telescope to the overall gain.
        let mut eval_net = net;
        let final_acc = eval_net.accuracy(&test);
        eval_net.set_params(&history.init_params);
        let init_acc = eval_net.accuracy(&test);
        let total: f64 = phi.iter().sum();
        assert!(
            (total - (final_acc - init_acc)).abs() < 1e-9,
            "Σϕ = {total} vs gain {}",
            final_acc - init_acc
        );
    }

    #[test]
    fn decay_changes_weighting() {
        let (clients, test) = setup(3);
        let spec = ModelSpec::default_mlp();
        let cfg = FedAvgConfig {
            rounds: 2,
            local_epochs: 1,
            ..Default::default()
        };
        let (_, history) = train_with_history(&spec, &clients, 64, 10, &cfg);
        let a = lambda_mr(
            &history,
            spec.build(64, 10, 0),
            test.clone(),
            &LambdaMrConfig { lambda: 1.0 },
        );
        let b = lambda_mr(
            &history,
            spec.build(64, 10, 0),
            test,
            &LambdaMrConfig { lambda: 4.0 },
        );
        assert_ne!(a, b);
    }
}
