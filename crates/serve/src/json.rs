//! A minimal, dependency-free JSON encode/parse module, in the style of
//! the workspace's `shims/` (the build environment has no registry
//! access, so the wire format is hand-rolled on `std`).
//!
//! # Why exact float round-trips matter here
//!
//! The transport's contract is that values served over the wire are
//! **bit-identical** to in-process [`ValuationServer::call`] results.
//! JSON is a decimal text format, so that contract rides on two std
//! guarantees: `f64`'s `Display` prints the *shortest* decimal string
//! that parses back to the same bits, and `f64::from_str` is correctly
//! rounded. Encoding with `Display` and decoding with `from_str` is
//! therefore a lossless round-trip for every finite `f64`.
//!
//! Non-finite values appear on the wire too — a streaming snapshot's
//! `ci_halfwidths` are `∞` until a component's variance is certified
//! (see `fedval_core::anytime`). Standard JSON has no literal for them,
//! so this module encodes them as the *strings* `"Infinity"`,
//! `"-Infinity"` and `"NaN"` in number position; [`Json::as_f64`]
//! accepts the same strings back. The documents stay standards-compliant
//! and every consumer keeps a typed escape hatch.
//!
//! Numbers are kept in three lanes ([`Num`]) so a `u64` seed survives
//! the trip without rounding through `f64` (a seed above 2^53 would
//! otherwise silently change the request).
//!
//! [`ValuationServer::call`]: fedval_core::service::ValuationServer::call

use std::fmt;

/// A parsed JSON value. Objects preserve insertion order (encoding is
/// deterministic: what you build is what goes on the wire).
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept integer-exact where the token allows.
    Num(Num),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, as ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

/// Number representation: unsigned and signed integers are kept exact
/// (seeds are `u64`; `f64` only holds 53 bits), everything else is `f64`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Num {
    /// A non-negative integer token that fits `u64`.
    U64(u64),
    /// A negative integer token that fits `i64`.
    I64(i64),
    /// Any other number token.
    F64(f64),
}

/// Where and why parsing failed (byte offset into the input).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub at: usize,
    /// Human-readable reason.
    pub reason: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.at, self.reason)
    }
}

impl std::error::Error for ParseError {}

/// Nesting beyond this depth is rejected — a hostile body must not be
/// able to overflow the connection thread's stack.
const MAX_DEPTH: usize = 64;

impl Json {
    /// Build an object from pairs (the ergonomic constructor the wire
    /// module uses everywhere).
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Build a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Encode an `f64` for number position: finite values go through
    /// `Display` (exact round-trip), non-finite ones become the
    /// documented string forms.
    pub fn f64(x: f64) -> Json {
        if x.is_finite() {
            Json::Num(Num::F64(x))
        } else if x.is_nan() {
            Json::Str("NaN".to_string())
        } else if x > 0.0 {
            Json::Str("Infinity".to_string())
        } else {
            Json::Str("-Infinity".to_string())
        }
    }

    /// An array of floats (values, half-widths) via [`Json::f64`].
    pub fn f64_array(xs: &[f64]) -> Json {
        Json::Arr(xs.iter().map(|&x| Json::f64(x)).collect())
    }

    /// An array of `usize` counts.
    pub fn usize_array(xs: &[usize]) -> Json {
        Json::Arr(xs.iter().map(|&x| Json::Num(Num::U64(x as u64))).collect())
    }

    /// Object member lookup (`None` for non-objects and absent keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The object's keys, in document order (empty for non-objects).
    pub fn keys(&self) -> Vec<&str> {
        match self {
            Json::Obj(pairs) => pairs.iter().map(|(k, _)| k.as_str()).collect(),
            _ => Vec::new(),
        }
    }

    /// `true`/`false`, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// String content, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value as `u64`, if it is a non-negative integer (exact — a
    /// float token like `3.0` is rejected, so seeds cannot round-trip
    /// through `f64` by accident).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(Num::U64(x)) => Some(*x),
            _ => None,
        }
    }

    /// The value as `usize` (via [`Json::as_u64`]).
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().and_then(|x| usize::try_from(x).ok())
    }

    /// The value as `f64`. Accepts every number lane and the documented
    /// non-finite string forms (`"Infinity"`, `"-Infinity"`, `"NaN"`).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(Num::F64(x)) => Some(*x),
            Json::Num(Num::U64(x)) => Some(*x as f64),
            Json::Num(Num::I64(x)) => Some(*x as f64),
            Json::Str(s) => match s.as_str() {
                "Infinity" => Some(f64::INFINITY),
                "-Infinity" => Some(f64::NEG_INFINITY),
                "NaN" => Some(f64::NAN),
                _ => None,
            },
            _ => None,
        }
    }

    /// `true` iff this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// Compact encoding (no whitespace), deterministic in member order.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.encode_into(&mut out);
        out
    }

    fn encode_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(Num::U64(x)) => out.push_str(&x.to_string()),
            Json::Num(Num::I64(x)) => out.push_str(&x.to_string()),
            Json::Num(Num::F64(x)) => {
                debug_assert!(x.is_finite(), "non-finite floats go through Json::f64");
                // Shortest round-trip Display; ensure the token stays a
                // JSON number (Display of a whole float prints no dot,
                // which is still a valid JSON number token).
                out.push_str(&x.to_string());
            }
            Json::Str(s) => encode_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.encode_into(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    encode_string(k, out);
                    out.push(':');
                    v.encode_into(out);
                }
                out.push('}');
            }
        }
    }
}

fn encode_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse a complete JSON document (trailing non-whitespace is an error).
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let bytes = input.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let value = p.parse_value(0)?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(p.err("trailing characters after the document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, reason: impl Into<String>) -> ParseError {
        ParseError {
            at: self.pos,
            reason: reason.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        match self.bump() {
            Some(got) if got == b => Ok(()),
            Some(got) => Err(ParseError {
                at: self.pos - 1,
                reason: format!("expected `{}`, found `{}`", b as char, got as char),
            }),
            None => Err(self.err(format!("expected `{}`, found end of input", b as char))),
        }
    }

    fn parse_value(&mut self, depth: usize) -> Result<Json, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.parse_object(depth),
            Some(b'[') => self.parse_array(depth),
            Some(b'"') => Ok(Json::Str(self.parse_string()?)),
            Some(b't') => self.parse_literal("true", Json::Bool(true)),
            Some(b'f') => self.parse_literal("false", Json::Bool(false)),
            Some(b'n') => self.parse_literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(other) => Err(self.err(format!("unexpected character `{}`", other as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn parse_literal(&mut self, lit: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{lit}`")))
        }
    }

    fn parse_object(&mut self, depth: usize) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            if pairs.iter().any(|(k, _): &(String, Json)| *k == key) {
                return Err(self.err(format!("duplicate object key `{key}`")));
            }
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Json::Obj(pairs)),
                Some(other) => {
                    return Err(ParseError {
                        at: self.pos - 1,
                        reason: format!("expected `,` or `}}`, found `{}`", other as char),
                    })
                }
                None => return Err(self.err("unterminated object")),
            }
        }
    }

    fn parse_array(&mut self, depth: usize) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value(depth + 1)?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Json::Arr(items)),
                Some(other) => {
                    return Err(ParseError {
                        at: self.pos - 1,
                        reason: format!("expected `,` or `]`, found `{}`", other as char),
                    })
                }
                None => return Err(self.err("unterminated array")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: a run of plain (non-escape, non-quote) bytes.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                // The input is valid UTF-8 (it is a &str) and the run
                // breaks only at ASCII bytes, so the slice is char-aligned.
                out.push_str(&String::from_utf8_lossy(&self.bytes[start..self.pos]));
            }
            match self.bump() {
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{08}'),
                    Some(b'f') => out.push('\u{0C}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hi = self.parse_hex4()?;
                        let c = if (0xD800..0xDC00).contains(&hi) {
                            // Surrogate pair: require the low half.
                            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                return Err(self.err("unpaired UTF-16 surrogate"));
                            }
                            let lo = self.parse_hex4()?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err(self.err("invalid low surrogate"));
                            }
                            let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                            char::from_u32(code)
                        } else {
                            char::from_u32(hi)
                        };
                        match c {
                            Some(c) => out.push(c),
                            None => return Err(self.err("invalid unicode escape")),
                        }
                    }
                    Some(other) => {
                        return Err(ParseError {
                            at: self.pos - 1,
                            reason: format!("invalid escape `\\{}`", other as char),
                        })
                    }
                    None => return Err(self.err("unterminated string escape")),
                },
                Some(b) if b < 0x20 => {
                    return Err(ParseError {
                        at: self.pos - 1,
                        reason: "unescaped control character in string".to_string(),
                    })
                }
                Some(_) => unreachable!("fast path consumed plain bytes"),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, ParseError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self
                .bump()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = (b as char)
                .to_digit(16)
                .ok_or_else(|| self.err("invalid hex digit in \\u escape"))?;
            v = (v << 4) | d;
        }
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        let negative = self.peek() == Some(b'-');
        if negative {
            self.pos += 1;
        }
        // Integer part: `0` or a nonzero digit followed by digits.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("invalid number")),
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digit required after decimal point"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digit required in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        // The token is ASCII by construction.
        let token = &String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
        if !is_float {
            if negative {
                // `-0` must stay a float: the integer lane would erase the
                // sign bit and break bit-exact f64 round-trips.
                if token != "-0" {
                    if let Ok(x) = token.parse::<i64>() {
                        return Ok(Json::Num(Num::I64(x)));
                    }
                }
            } else if let Ok(x) = token.parse::<u64>() {
                return Ok(Json::Num(Num::U64(x)));
            }
        }
        match token.parse::<f64>() {
            Ok(x) if x.is_finite() => Ok(Json::Num(Num::F64(x))),
            // Overflowing literals (1e999) parse to ∞; reject rather than
            // smuggle a non-finite through number position.
            Ok(_) => Err(ParseError {
                at: start,
                reason: "number overflows f64".to_string(),
            }),
            Err(_) => Err(ParseError {
                at: start,
                reason: "invalid number".to_string(),
            }),
        }
    }
}

#[cfg(test)]
// Tests assert invariants; an unwrap that trips IS the test failing.
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn floats_round_trip_bit_exactly() {
        for &x in &[
            0.0,
            -0.0,
            1.0,
            -1.5,
            1.0 / 3.0,
            f64::MIN_POSITIVE,
            f64::MAX,
            2.2250738585072014e-308,
            0.1 + 0.2,
            core::f64::consts::PI,
        ] {
            let encoded = Json::f64(x).encode();
            let parsed = parse(&encoded).unwrap().as_f64().unwrap();
            assert_eq!(parsed.to_bits(), x.to_bits(), "token {encoded}");
        }
    }

    #[test]
    fn non_finite_floats_use_the_string_forms() {
        assert_eq!(Json::f64(f64::INFINITY).encode(), "\"Infinity\"");
        assert_eq!(Json::f64(f64::NEG_INFINITY).encode(), "\"-Infinity\"");
        assert_eq!(Json::f64(f64::NAN).encode(), "\"NaN\"");
        assert_eq!(parse("\"Infinity\"").unwrap().as_f64(), Some(f64::INFINITY));
        assert!(parse("\"NaN\"").unwrap().as_f64().unwrap().is_nan());
    }

    #[test]
    fn u64_seeds_survive_above_the_f64_mantissa() {
        let seed = u64::MAX - 1; // not representable as f64
        let doc = Json::obj([("seed", Json::Num(Num::U64(seed)))]).encode();
        let parsed = parse(&doc).unwrap();
        assert_eq!(parsed.get("seed").unwrap().as_u64(), Some(seed));
    }

    #[test]
    fn object_round_trip_preserves_order_and_content() {
        let doc = r#"{"b":[1,2.5,-3],"a":{"nested":true},"s":"q\"\\\n\u00e9","n":null}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.keys(), vec!["b", "a", "s", "n"]);
        assert_eq!(v.get("s").unwrap().as_str(), Some("q\"\\\né"));
        let re = parse(&v.encode()).unwrap();
        assert_eq!(re, v);
    }

    #[test]
    fn malformed_documents_are_rejected_not_panicked() {
        for doc in [
            "",
            "{",
            "}",
            "[1,",
            "{\"a\":}",
            "{\"a\":1,}",
            "{'a':1}",
            "01",
            "1.",
            "1e",
            "+1",
            "nul",
            "\"\\x\"",
            "\"\\u12\"",
            "\"\\ud800\"",
            "\u{1}",
            "1 2",
            "{\"a\":1,\"a\":2}",
            "1e999",
            "\"unterminated",
        ] {
            assert!(parse(doc).is_err(), "doc {doc:?} must be rejected");
        }
    }

    #[test]
    fn nesting_depth_is_bounded() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(parse(&deep).is_err());
        let ok = "[".repeat(MAX_DEPTH) + &"]".repeat(MAX_DEPTH);
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn surrogate_pairs_decode() {
        assert_eq!(parse("\"\\ud83e\\udd80\"").unwrap().as_str(), Some("🦀"));
    }
}
