//! Leave-one-out (LOO) valuation — the classical cheap contribution
//! measure `ϕ_i^LOO = U(N) − U(N\{i})`.
//!
//! LOO needs only `n + 1` model trainings, but unlike the Shapley value it
//! ignores every coalition except the grand one, so it badly misprices
//! redundant data: two clients holding identical datasets each get ~zero
//! LOO value (removing either changes nothing) while their joint
//! contribution may be large. The tests pin down exactly this failure
//! mode, which is the standard motivation for SV-based valuation (Sec. I).

use crate::coalition::Coalition;
use crate::utility::Utility;

/// Leave-one-out values for all clients (`n + 1` utility evaluations,
/// issued as one batch so a parallel utility trains them concurrently).
pub fn leave_one_out<U: Utility + ?Sized>(u: &U) -> Vec<f64> {
    let n = u.n_clients();
    assert!(n >= 1);
    let full = Coalition::full(n);
    let mut batch = Vec::with_capacity(n + 1);
    batch.push(full);
    batch.extend((0..n).map(|i| full.without(i)));
    let values = u.eval_batch(&batch);
    let u_full = values[0];
    (0..n).map(|i| u_full - values[i + 1]).collect()
}

#[cfg(test)]
// Tests assert invariants; an unwrap that trips IS the test failing.
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::exact::exact_mc_sv;
    use crate::utility::{AdditiveUtility, CachedUtility, TableUtility};

    #[test]
    fn additive_game_matches_shapley() {
        // With no interactions LOO and SV agree exactly.
        let w = vec![0.2, 0.5, 0.3];
        let u = AdditiveUtility::new(0.1, w.clone());
        let loo = leave_one_out(&u);
        for (l, e) in loo.iter().zip(&w) {
            assert!((l - e).abs() < 1e-12);
        }
    }

    #[test]
    fn costs_n_plus_one_evaluations() {
        let u = CachedUtility::new(TableUtility::paper_table1());
        let _ = leave_one_out(&u);
        assert_eq!(u.stats().evaluations, 4); // U(N) + three leave-outs
    }

    #[test]
    fn redundant_clients_get_zero_loo_but_positive_sv() {
        // Clients 0 and 1 are perfect substitutes: utility is 1 if either
        // is present. LOO gives both zero; SV splits the credit.
        let u = TableUtility::from_fn(3, |s| {
            let either = s.contains(0) || s.contains(1);
            0.6 * f64::from(either) + 0.4 * f64::from(s.contains(2))
        });
        let loo = leave_one_out(&u);
        assert!(loo[0].abs() < 1e-12 && loo[1].abs() < 1e-12);
        let sv = exact_mc_sv(&u);
        assert!(sv[0] > 0.1 && sv[1] > 0.1, "{sv:?}");
        assert!((sv[0] - sv[1]).abs() < 1e-12, "symmetry");
    }

    #[test]
    fn paper_table_example() {
        let u = TableUtility::paper_table1();
        let loo = leave_one_out(&u);
        // U(N)=0.96; U({2,3})=0.90, U({1,3})=0.90, U({1,2})=0.80.
        assert!((loo[0] - 0.06).abs() < 1e-12);
        assert!((loo[1] - 0.06).abs() < 1e-12);
        assert!((loo[2] - 0.16).abs() < 1e-12);
        // LOO under-credits compared to SV here (Σ LOO < Σ SV).
        let sv = exact_mc_sv(&u);
        assert!(loo.iter().sum::<f64>() < sv.iter().sum::<f64>());
    }
}
