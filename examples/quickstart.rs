//! Quickstart: the paper's three-hospital example (Table I / Example 1).
//!
//! Shows the core API surface in ~40 lines: define a utility, compute the
//! exact Shapley value, then approximate it with IPSS under the paper's
//! γ = 5 budget and compare.
//!
//! Run with: `cargo run -p fedval-examples --bin quickstart`

// Demo driver: service errors surface by panicking with the message;
// a real integration would match on the typed ValuationError.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use fedval_core::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // The utility table of the paper's Table I: model accuracy of every
    // hospital coalition (bit 0 = hospital 1, bit 1 = hospital 2, ...).
    let utility = TableUtility::paper_table1();

    // Exact data values by the MC-SV definition (Def. 3).
    let exact = exact_mc_sv(&utility);
    println!("Exact Shapley values (Example 1):");
    for (i, v) in exact.iter().enumerate() {
        println!("  hospital {}: ϕ = {v:.4}", i + 1);
    }
    // The paper's Example 1 reports ϕ1 = 0.22, ϕ2 ≈ 0.32, ϕ3 = 0.32.
    assert!((exact[0] - 0.22).abs() < 1e-9);

    // All three equivalent computation schemes agree.
    let cc = exact_cc_sv(&utility);
    let perm = exact_perm_sv(&utility);
    for i in 0..3 {
        assert!((exact[i] - cc[i]).abs() < 1e-9);
        assert!((exact[i] - perm[i]).abs() < 1e-9);
    }
    println!("MC-SV ≡ CC-SV ≡ Perm-SV: verified");

    // IPSS (Alg. 3) with the budget Table III pairs with n = 3: γ = 5,
    // i.e. only 5 of the 8 coalitions are ever evaluated.
    let mut rng = StdRng::seed_from_u64(7);
    let outcome = run_valuation(utility, |u| ipss_values(u, &IpssConfig::new(5), &mut rng));
    println!(
        "\nIPSS with γ = 5 ({} model evaluations, {:?}):",
        outcome.model_evaluations, outcome.wall_time
    );
    for (i, v) in outcome.values.iter().enumerate() {
        println!("  hospital {}: ϕ̂ = {v:.4}", i + 1);
    }
    let err = l2_relative_error(&outcome.values, &exact);
    println!("relative error ‖ϕ̂−ϕ‖₂/‖ϕ‖₂ = {err:.4}");
    assert!(outcome.model_evaluations <= 5);
}
