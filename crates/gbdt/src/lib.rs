//! # fedval-gbdt
//!
//! Histogram-based gradient-boosted decision trees — the XGBoost
//! substitute used as the FL model for the tabular experiments of the IPSS
//! paper (Table V). Cross-silo federated training of tree ensembles is
//! simulated by training on the union of the coalition's datasets, which
//! matches the utility semantics `U(M_S)` (see DESIGN.md §2).
//!
//! * [`tree`] — regression trees with histogram split finding;
//! * [`boost::Gbdt`] — binary classifier boosted with logistic loss.

pub mod boost;
pub mod tree;

pub use boost::{Gbdt, GbdtMulti, GbdtParams};
pub use tree::{BinningSpec, Tree, TreeParams};
