//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to a crates.io registry, so this
//! workspace vendors a minimal, dependency-free implementation of exactly
//! the `rand 0.9` API surface the fedval crates use:
//!
//! * [`rngs::StdRng`] + [`SeedableRng::seed_from_u64`] — the only RNG and
//!   the only seeding path in the workspace;
//! * [`Rng::random`] for `bool` / `f32` / `f64` / `u64`;
//! * [`Rng::random_range`] over half-open and inclusive integer ranges and
//!   half-open float ranges;
//! * [`seq::SliceRandom::shuffle`] (Fisher–Yates).
//!
//! The generator is xoshiro256++ seeded via splitmix64 — the same
//! construction the real `rand_chacha`-backed `StdRng` documents as an
//! acceptable statistical substitute for non-cryptographic use. Streams are
//! **not** bit-compatible with upstream `rand`; every consumer in this
//! workspace treats the RNG as an opaque seeded stream, so only statistical
//! quality and in-workspace reproducibility matter.
//!
//! To migrate to the real crate: delete the `rand` entry under
//! `[workspace.dependencies]` pointing at this path and let cargo resolve
//! the registry version; no source changes are required.

/// Core trait: a source of uniformly distributed `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable RNG constructors (subset: `seed_from_u64` only).
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

#[inline]
fn splitmix64(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// xoshiro256++ — fast, high-quality, 256-bit state.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Expand the seed through splitmix64, as recommended by the
            // xoshiro authors (avoids the all-zero state for any seed).
            let mut x = seed;
            StdRng {
                s: [
                    splitmix64(&mut x),
                    splitmix64(&mut x),
                    splitmix64(&mut x),
                    splitmix64(&mut x),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Types sampleable uniformly from an RNG (`rand`'s `StandardUniform`).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::random_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                // Lemire's widening-multiply map; the residual bias is
                // ≤ span / 2^64, far below anything the workspace's
                // statistical tests can resolve.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start.wrapping_add(hi as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range.
                    return rng.next_u64() as $t;
                }
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                start.wrapping_add(hi as $t)
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, u8, i32, i64);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let unit = <$t as Standard>::sample(rng);
                self.start + (self.end - self.start) * unit
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// User-facing RNG extension methods (auto-implemented for every
/// [`RngCore`], mirroring `rand 0.9`).
pub trait Rng: RngCore {
    #[inline]
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    #[inline]
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    #[inline]
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod seq {
    use super::Rng;

    /// Slice shuffling (subset of `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            // Fisher–Yates, iterating from the back as upstream does.
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = rng.random();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn integer_ranges_cover_and_stay_inside() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let k = rng.random_range(3..10usize);
            assert!((3..10).contains(&k));
            seen[k] = true;
            let j = rng.random_range(0..=4usize);
            assert!(j <= 4);
            seen[j] = true;
        }
        assert!(seen[..5].iter().all(|&s| s) && seen[3..].iter().all(|&s| s));
    }

    #[test]
    fn float_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1_000 {
            let x = rng.random_range(-0.25..0.25f32);
            assert!((-0.25..0.25).contains(&x));
        }
    }

    #[test]
    fn uniformity_chi_square_ish() {
        // 10 buckets × 100k draws: each bucket within 2% of 10%.
        let mut rng = StdRng::seed_from_u64(4);
        let mut counts = [0usize; 10];
        let n = 100_000;
        for _ in 0..n {
            counts[rng.random_range(0..10usize)] += 1;
        }
        for c in counts {
            let freq = c as f64 / n as f64;
            assert!((freq - 0.1).abs() < 0.02, "{counts:?}");
        }
    }

    #[test]
    fn shuffle_is_a_permutation_and_mixes() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..50).collect();
        let orig = v.clone();
        v.shuffle(&mut rng);
        assert_ne!(v, orig);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, orig);
    }

    #[test]
    fn works_through_mut_references() {
        // `&mut R` must itself satisfy Rng (the workspace passes RNGs down
        // call chains by reference).
        fn takes<R: Rng + ?Sized>(rng: &mut R) -> u64 {
            rng.random()
        }
        let mut rng = StdRng::seed_from_u64(6);
        let _ = takes(&mut rng);
        let r2 = &mut rng;
        let _ = takes(r2);
    }
}
