// Fixture: order-sensitive hash iteration in an estimator path — every
// site below must trip `hash-order` when scanned as crates/core/src/*.
use std::collections::{HashMap, HashSet};

fn sums(memo: &HashMap<u128, f64>) -> f64 {
    // f64 addition does not commute bitwise: hash order leaks into the sum.
    let mut total = 0.0;
    for (_k, v) in memo.iter() {
        total += v;
    }
    total
}

fn drain_in_hash_order(pending: &mut HashMap<u64, f64>, out: &mut Vec<f64>) {
    out.extend(pending.drain().map(|(_, v)| v));
}

fn first_member(seen: &HashSet<u128>) -> Option<u128> {
    // `iter().next()` picks an arbitrary element.
    seen.iter().next().copied()
}

fn bare_for_loop() {
    let live: HashSet<u64> = HashSet::new();
    for mask in &live {
        let _ = mask;
    }
}
