//! The five synthetic FL setups of Sec. V-B and the noise injectors.
//!
//! Following the experimental setup of the paper (after Song et al. and
//! GTG-Shapley), a centralized dataset is split into per-client partitions
//! that vary in **size**, **distribution** and **quality**:
//!
//! * (a) `same-size-same-distribution` — uniform IID split;
//! * (b) `same-size-different-distribution` — label-skewed split where each
//!   client majority-holds certain labels;
//! * (c) `different-size-same-distribution` — IID split with size ratios
//!   `1 : 2 : … : n`;
//! * (d) `same-size-noisy-label` — IID split, then client `i`'s labels are
//!   flipped with probability ramping from 0% to 20% across clients;
//! * (e) `same-size-noisy-feature` — IID split, then Gaussian noise scaled
//!   from 0.00 to 0.20 is added to client `i`'s features.

use rand::seq::SliceRandom;
use rand::Rng;

use crate::dataset::Dataset;

/// The five synthetic partition setups of Fig. 6.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SyntheticSetup {
    /// (a) Equal sizes, identical label distributions.
    SameSizeSameDist,
    /// (b) Equal sizes, label-skewed: client `i` majority-holds class
    /// `i mod n_classes` with the given proportion (rest uniform).
    SameSizeDiffDist {
        /// Fraction of each client's data drawn from its majority class.
        majority_fraction: f64,
    },
    /// (c) IID distributions, size ratios `1 : 2 : … : n`.
    DiffSizeSameDist,
    /// (d) Equal IID splits, label-flip noise ramping `0 → max_rate`
    /// across clients.
    SameSizeNoisyLabel {
        /// Flip rate of the last (noisiest) client; the paper uses 0.20.
        max_rate: f64,
    },
    /// (e) Equal IID splits, additive `N(0,1)` feature noise with scale
    /// ramping `0 → max_scale` across clients.
    SameSizeNoisyFeature {
        /// Noise scale of the last client; the paper uses 0.20.
        max_scale: f64,
    },
}

impl SyntheticSetup {
    /// Short identifier matching the paper's sub-figure captions.
    pub fn label(&self) -> &'static str {
        match self {
            SyntheticSetup::SameSizeSameDist => "same-size-same-distr.",
            SyntheticSetup::SameSizeDiffDist { .. } => "same-size-diff.-distr.",
            SyntheticSetup::DiffSizeSameDist => "diff.-size-same-distr.",
            SyntheticSetup::SameSizeNoisyLabel { .. } => "same-size-noisy-label",
            SyntheticSetup::SameSizeNoisyFeature { .. } => "same-size-noisy-feature",
        }
    }

    /// Partition `source` into `n_clients` local datasets per this setup.
    pub fn partition<R: Rng + ?Sized>(
        &self,
        source: &Dataset,
        n_clients: usize,
        rng: &mut R,
    ) -> Vec<Dataset> {
        match *self {
            SyntheticSetup::SameSizeSameDist => source.deal(n_clients, rng),
            SyntheticSetup::SameSizeDiffDist { majority_fraction } => {
                partition_label_skew(source, n_clients, majority_fraction, rng)
            }
            SyntheticSetup::DiffSizeSameDist => partition_size_ratio(source, n_clients, rng),
            SyntheticSetup::SameSizeNoisyLabel { max_rate } => {
                let mut parts = source.deal(n_clients, rng);
                for (i, part) in parts.iter_mut().enumerate() {
                    let rate = ramp(i, n_clients) * max_rate;
                    add_label_noise(part, rate, rng);
                }
                parts
            }
            SyntheticSetup::SameSizeNoisyFeature { max_scale } => {
                let mut parts = source.deal(n_clients, rng);
                for (i, part) in parts.iter_mut().enumerate() {
                    let scale = (ramp(i, n_clients) * max_scale) as f32;
                    add_feature_noise(part, scale, rng);
                }
                parts
            }
        }
    }
}

/// Linear ramp over clients: client 0 → 0.0, client n−1 → 1.0.
fn ramp(i: usize, n: usize) -> f64 {
    if n <= 1 {
        1.0
    } else {
        i as f64 / (n - 1) as f64
    }
}

/// Label-skewed equal-size partition (setup (b)).
///
/// Client `i` receives `majority_fraction` of its samples from class
/// `i mod n_classes` (falling back to the general pool when the class is
/// exhausted) and the remainder from the general pool.
pub fn partition_label_skew<R: Rng + ?Sized>(
    source: &Dataset,
    n_clients: usize,
    majority_fraction: f64,
    rng: &mut R,
) -> Vec<Dataset> {
    assert!((0.0..=1.0).contains(&majority_fraction));
    assert!(n_clients >= 1);
    let per_client = source.n_samples() / n_clients;
    // Pools of indices per class, shuffled.
    let mut pools: Vec<Vec<usize>> = (0..source.n_classes())
        .map(|c| source.indices_of_class(c as u32))
        .collect();
    for pool in &mut pools {
        pool.shuffle(rng);
    }
    // Phase 1: reserve every client's majority quota up front so that
    // earlier clients' fill-up draws cannot drain later clients' majority
    // pools.
    let want_major = (per_client as f64 * majority_fraction).round() as usize;
    let mut reserved: Vec<Vec<usize>> = Vec::with_capacity(n_clients);
    for i in 0..n_clients {
        let majority_class = i % source.n_classes();
        let pool = &mut pools[majority_class];
        let take = want_major.min(pool.len());
        reserved.push(pool.split_off(pool.len() - take));
    }
    // Phase 2: fill each client to `per_client` by always drawing from the
    // currently largest remaining pool, keeping leftovers balanced.
    let mut parts = Vec::with_capacity(n_clients);
    for mut indices in reserved {
        while indices.len() < per_client {
            let Some(largest) = (0..pools.len()).max_by_key(|&c| pools[c].len()) else {
                break; // no class pools at all (n_classes == 0 source)
            };
            match pools[largest].pop() {
                Some(idx) => indices.push(idx),
                None => break, // all pools exhausted
            }
        }
        parts.push(source.select(&indices));
    }
    parts
}

/// Size-ratio partition (setup (c)): IID split with `|D_i| ∝ i + 1`.
pub fn partition_size_ratio<R: Rng + ?Sized>(
    source: &Dataset,
    n_clients: usize,
    rng: &mut R,
) -> Vec<Dataset> {
    assert!(n_clients >= 1);
    let total_ratio: usize = (1..=n_clients).sum();
    let n = source.n_samples();
    let mut order: Vec<usize> = (0..n).collect();
    order.shuffle(rng);
    let mut parts = Vec::with_capacity(n_clients);
    let mut offset = 0usize;
    for i in 0..n_clients {
        let take = if i + 1 == n_clients {
            n - offset
        } else {
            n * (i + 1) / total_ratio
        };
        parts.push(source.select(&order[offset..offset + take]));
        offset += take;
    }
    parts
}

/// Flip each label with probability `rate` to a uniformly random *other*
/// label (setup (d); the paper's "change … into one of other labels with
/// equal probability").
pub fn add_label_noise<R: Rng + ?Sized>(ds: &mut Dataset, rate: f64, rng: &mut R) {
    assert!((0.0..=1.0).contains(&rate));
    let n_classes = ds.n_classes() as u32;
    if n_classes < 2 {
        return;
    }
    for i in 0..ds.n_samples() {
        if rng.random::<f64>() < rate {
            let old = ds.label(i);
            let mut new = rng.random_range(0..n_classes - 1);
            if new >= old {
                new += 1;
            }
            ds.set_label(i, new);
        }
    }
}

/// Add `N(0, 1)`-distributed noise scaled by `scale` to every feature
/// (setup (e)).
pub fn add_feature_noise<R: Rng + ?Sized>(ds: &mut Dataset, scale: f32, rng: &mut R) {
    if scale == 0.0 {
        return;
    }
    for i in 0..ds.n_samples() {
        for v in ds.row_mut(i) {
            *v += crate::rand_ext::normal_f32(rng, 0.0, scale);
        }
    }
}

/// Plant the Fig. 9 scalability fixtures into an existing federated split:
/// the first `free_riders` clients get empty datasets and the next
/// `duplicates` clients are made exact copies of their successors.
///
/// Returns the free-rider indices and duplicate pairs for use with
/// `fedval_core::metrics::property_error`.
pub fn plant_scalability_fixtures(
    clients: &mut [Dataset],
    free_riders: usize,
    duplicates: usize,
) -> (Vec<usize>, Vec<(usize, usize)>) {
    let n = clients.len();
    assert!(free_riders + 2 * duplicates <= n, "not enough clients");
    let mut fr = Vec::with_capacity(free_riders);
    for (i, item) in clients.iter_mut().enumerate().take(free_riders) {
        *item = Dataset::empty(item.n_features(), item.n_classes());
        fr.push(i);
    }
    let mut pairs = Vec::with_capacity(duplicates);
    for d in 0..duplicates {
        let a = free_riders + 2 * d;
        let b = a + 1;
        clients[b] = clients[a].clone();
        pairs.push((a, b));
    }
    (fr, pairs)
}

#[cfg(test)]
// Tests assert invariants; an unwrap that trips IS the test failing.
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::synth::MnistLike;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn source() -> Dataset {
        let gen = MnistLike::new(1);
        let mut rng = StdRng::seed_from_u64(0);
        gen.generate(600, &mut rng)
    }

    #[test]
    fn same_size_same_dist() {
        let src = source();
        let mut rng = StdRng::seed_from_u64(1);
        let parts = SyntheticSetup::SameSizeSameDist.partition(&src, 6, &mut rng);
        assert_eq!(parts.len(), 6);
        assert!(parts.iter().all(|p| p.n_samples() == 100));
        // Class distributions roughly uniform within each client.
        for p in &parts {
            let dist = p.class_distribution();
            for &c in &dist {
                assert!(c >= 2, "class too rare: {dist:?}");
            }
        }
    }

    #[test]
    fn label_skew_creates_majorities() {
        let src = source();
        let mut rng = StdRng::seed_from_u64(2);
        let parts = partition_label_skew(&src, 5, 0.5, &mut rng);
        for (i, p) in parts.iter().enumerate() {
            let dist = p.class_distribution();
            let majority = i % 10;
            let frac = dist[majority] as f64 / p.n_samples() as f64;
            assert!(
                frac > 0.3,
                "client {i} majority class fraction {frac} ({dist:?})"
            );
        }
    }

    #[test]
    fn size_ratio_partition() {
        let src = source();
        let mut rng = StdRng::seed_from_u64(3);
        let parts = partition_size_ratio(&src, 3, &mut rng);
        let sizes: Vec<usize> = parts.iter().map(|p| p.n_samples()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 600);
        // Ratios 1:2:3 of 600 = 100, 200, 300.
        assert_eq!(sizes, vec![100, 200, 300]);
    }

    #[test]
    fn label_noise_rate() {
        let src = source();
        let mut noisy = src.clone();
        let mut rng = StdRng::seed_from_u64(4);
        add_label_noise(&mut noisy, 0.2, &mut rng);
        let flipped = (0..src.n_samples())
            .filter(|&i| src.label(i) != noisy.label(i))
            .count();
        let rate = flipped as f64 / src.n_samples() as f64;
        assert!((rate - 0.2).abs() < 0.05, "flip rate {rate}");
        // Zero rate leaves labels untouched.
        let mut clean = src.clone();
        add_label_noise(&mut clean, 0.0, &mut rng);
        assert_eq!(clean.labels(), src.labels());
    }

    #[test]
    fn feature_noise_scale() {
        let src = source();
        let mut noisy = src.clone();
        let mut rng = StdRng::seed_from_u64(5);
        add_feature_noise(&mut noisy, 0.2, &mut rng);
        let mut sq_sum = 0.0f64;
        let mut count = 0usize;
        for i in 0..src.n_samples() {
            for (a, b) in src.row(i).iter().zip(noisy.row(i)) {
                sq_sum += ((b - a) as f64).powi(2);
                count += 1;
            }
        }
        let std = (sq_sum / count as f64).sqrt();
        assert!((std - 0.2).abs() < 0.02, "noise std {std}");
    }

    #[test]
    fn noisy_setups_ramp_across_clients() {
        let src = source();
        let mut rng = StdRng::seed_from_u64(6);
        let setup = SyntheticSetup::SameSizeNoisyLabel { max_rate: 0.2 };
        let parts = setup.partition(&src, 10, &mut rng);
        assert_eq!(parts.len(), 10);
        assert_eq!(setup.label(), "same-size-noisy-label");
        // Client 0 has no noise: its labels must match nearest-template
        // classes as well as the raw data does; we settle for checking the
        // ramp by construction via distribution distance to client 9.
        // (Direct flip counting is impossible post-partition, so check
        // sizes only.)
        assert!(parts.iter().all(|p| p.n_samples() == 60));
    }

    #[test]
    fn scalability_fixtures() {
        let src = source();
        let mut rng = StdRng::seed_from_u64(7);
        let mut parts = SyntheticSetup::SameSizeSameDist.partition(&src, 20, &mut rng);
        let (fr, pairs) = plant_scalability_fixtures(&mut parts, 1, 1);
        assert_eq!(fr, vec![0]);
        assert_eq!(pairs, vec![(1, 2)]);
        assert!(parts[0].is_empty());
        assert_eq!(parts[1], parts[2]);
    }

    #[test]
    #[should_panic]
    fn scalability_fixtures_bounds() {
        let mut parts = vec![Dataset::empty(2, 2); 3];
        let _ = plant_scalability_fixtures(&mut parts, 2, 1);
    }
}
