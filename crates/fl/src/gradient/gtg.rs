//! GTG-Shapley (Liu et al., TIST'22): guided truncated gradient Shapley.
//!
//! Combines gradient-based model reconstruction with Monte-Carlo
//! permutation sampling and two levels of truncation:
//!
//! * **between-round truncation** — rounds whose global model barely moved
//!   the test metric are skipped entirely;
//! * **within-permutation truncation** — once a prefix's utility is within
//!   tolerance of the round's full-coalition utility, the remaining
//!   marginals in that permutation are taken as zero.

use rand::Rng;

use fedval_core::coalition::Coalition;
use fedval_core::sampling::random_permutation;
use fedval_core::utility::{CachedUtility, Utility};
use fedval_data::Dataset;
use fedval_nn::Network;

use crate::gradient::{ParamEvaluator, RoundUtility};
use crate::history::TrainingHistory;

/// Configuration for [`gtg_shapley`].
#[derive(Clone, Copy, Debug)]
pub struct GtgConfig {
    /// Permutations sampled per (non-truncated) round.
    pub permutations_per_round: usize,
    /// Between-round truncation threshold on `|Δaccuracy|`.
    pub round_tolerance: f64,
    /// Within-permutation truncation threshold.
    pub truncation_tolerance: f64,
}

impl Default for GtgConfig {
    fn default() -> Self {
        GtgConfig {
            permutations_per_round: 4,
            round_tolerance: 0.005,
            truncation_tolerance: 0.005,
        }
    }
}

/// GTG-Shapley valuation: per-round truncated permutation sampling over
/// reconstructed models, summed across rounds.
pub fn gtg_shapley<R: Rng + ?Sized>(
    history: &TrainingHistory,
    net: Network,
    test: Dataset,
    cfg: &GtgConfig,
    rng: &mut R,
) -> Vec<f64> {
    let n = history.n_clients();
    let t = history.rounds();
    assert!(cfg.permutations_per_round >= 1);
    let evaluator = ParamEvaluator::new(net, test);
    let mut phi = vec![0.0f64; n];

    for round in 0..t {
        let before = evaluator.accuracy_of(history.global_before(round));
        let after = evaluator.accuracy_of(history.global_after(round));
        if (after - before).abs() < cfg.round_tolerance {
            // Between-round truncation: this round contributed ~nothing.
            continue;
        }
        let ru = CachedUtility::new(RoundUtility::new(history, round, &evaluator));
        let u_full = ru.eval(Coalition::full(n));
        let u_empty = before; // round utility of ∅ is the entering global
        let mut phi_round = vec![0.0f64; n];
        for _ in 0..cfg.permutations_per_round {
            let perm = random_permutation(n, rng);
            let mut prefix = Coalition::empty();
            let mut u_prev = u_empty;
            for &i in &perm {
                if (u_full - u_prev).abs() < cfg.truncation_tolerance {
                    // Within-permutation truncation.
                    continue;
                }
                prefix = prefix.with(i);
                let u_cur = ru.eval(prefix);
                phi_round[i] += u_cur - u_prev;
                u_prev = u_cur;
            }
        }
        let inv = 1.0 / cfg.permutations_per_round as f64;
        for (acc, v) in phi.iter_mut().zip(&phi_round) {
            *acc += v * inv;
        }
    }
    phi
}

#[cfg(test)]
// Tests assert invariants; an unwrap that trips IS the test failing.
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::config::FedAvgConfig;
    use crate::fedavg::train_with_history;
    use crate::model::ModelSpec;
    use fedval_data::{MnistLike, SyntheticSetup};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(n: usize) -> (Vec<Dataset>, Dataset) {
        let gen = MnistLike::new(12);
        let (train, test) = gen.generate_split(60 * n, 100, 13);
        let mut rng = StdRng::seed_from_u64(14);
        let clients = SyntheticSetup::SameSizeSameDist.partition(&train, n, &mut rng);
        (clients, test)
    }

    #[test]
    fn gtg_assigns_positive_total_on_learnable_problem() {
        let (clients, test) = setup(4);
        let spec = ModelSpec::default_mlp();
        let cfg = FedAvgConfig {
            rounds: 3,
            local_epochs: 1,
            ..Default::default()
        };
        let (_, history) = train_with_history(&spec, &clients, 64, 10, &cfg);
        let mut rng = StdRng::seed_from_u64(15);
        let phi = gtg_shapley(
            &history,
            spec.build(64, 10, 0),
            test,
            &GtgConfig::default(),
            &mut rng,
        );
        assert_eq!(phi.len(), 4);
        let total: f64 = phi.iter().sum();
        assert!(total > 0.05, "total {total}");
    }

    #[test]
    fn aggressive_round_truncation_skips_everything() {
        let (clients, test) = setup(3);
        let spec = ModelSpec::default_mlp();
        let cfg = FedAvgConfig {
            rounds: 2,
            local_epochs: 1,
            ..Default::default()
        };
        let (_, history) = train_with_history(&spec, &clients, 64, 10, &cfg);
        let mut rng = StdRng::seed_from_u64(16);
        let phi = gtg_shapley(
            &history,
            spec.build(64, 10, 0),
            test,
            &GtgConfig {
                round_tolerance: 10.0, // every round truncated
                ..Default::default()
            },
            &mut rng,
        );
        assert!(phi.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn deterministic_given_seed() {
        let (clients, test) = setup(3);
        let spec = ModelSpec::default_mlp();
        let cfg = FedAvgConfig {
            rounds: 2,
            local_epochs: 1,
            ..Default::default()
        };
        let (_, history) = train_with_history(&spec, &clients, 64, 10, &cfg);
        let run = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            gtg_shapley(
                &history,
                spec.build(64, 10, 0),
                test.clone(),
                &GtgConfig::default(),
                &mut rng,
            )
        };
        assert_eq!(run(9), run(9));
    }
}
