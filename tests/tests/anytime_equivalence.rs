//! The anytime-valuation determinism contract, end to end:
//!
//! 1. **Prefix bit-identity** — a CI-stopped (or sample-capped) streaming
//!    run's values bit-equal the same-seed full run's recorded snapshot
//!    at the same `samples_used`, at 1/2/4 rayon threads, both when the
//!    estimator is driven directly and through the valuation service.
//! 2. **Thread invariance** — the *whole snapshot stream* (values and CI
//!    half-widths) is identical across thread counts, not just the final
//!    answer.
//! 3. **Real substrate** — the same contract holds over the FL utility,
//!    so the CI matrix exercises it under every `FEDVAL_BACKEND`.
//!
//! The stopping threshold honours `FEDVAL_CI_EPS` when set (the CI
//! matrix sets it); otherwise each test derives a mid-run threshold from
//! the full run's own snapshot stream, which is guaranteed reachable.

// Driver code: test assertions panic by design, so unwrap/expect are
// the failure mechanism, not a robustness gap.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::time::Duration;

use rand::rngs::StdRng;
use rand::SeedableRng;

use fedval_core::anytime::{Control, ProgressSnapshot, StoppingRule, StreamingOutcome};
use fedval_core::owen::{owen_sampling_streaming, OwenConfig};
use fedval_core::prelude::*;
use fedval_core::service::{Estimator, ValuationRequest, ValuationServer};
use fedval_core::stratified::stratified_sampling_streaming;

const THREAD_COUNTS: [usize; 3] = [1, 2, 4];

/// `FEDVAL_CI_EPS` when set and parseable, else `None`.
fn env_eps() -> Option<f64> {
    std::env::var("FEDVAL_CI_EPS").ok()?.parse().ok()
}

/// A threshold the stream is guaranteed to reach: the ambient
/// `FEDVAL_CI_EPS`, or the first *finite* max half-width in the stream
/// (an unbounded width never satisfies `CiAtMost`, so deriving from an
/// ∞ snapshot would make the rule unfireable).
fn reachable_eps(full: &[ProgressSnapshot]) -> f64 {
    env_eps().unwrap_or_else(|| {
        match full
            .iter()
            .filter_map(|s| s.max_halfwidth())
            .find(|h| h.is_finite())
        {
            Some(h) => h,
            None => panic!("stream never reaches a finite CI; pick a bigger budget"),
        }
    })
}

/// Assert the stopped outcome is a bit-identical prefix of the recorded
/// full-run stream: same values and CI half-widths as the snapshot with
/// the same `samples_used`.
fn assert_prefix(label: &str, stopped: &StreamingOutcome, full: &[ProgressSnapshot]) {
    let twin = full
        .iter()
        .find(|s| s.samples_used == stopped.samples_used)
        .unwrap_or_else(|| {
            panic!(
                "{label}: no full-run snapshot at samples_used = {}",
                stopped.samples_used
            )
        });
    assert_eq!(stopped.values, twin.values, "{label}: values prefix");
    assert_eq!(
        stopped.ci_halfwidths, twin.ci_halfwidths,
        "{label}: CI prefix"
    );
}

/// Drive one streaming estimator full-then-stopped at every thread
/// count and check the contract; `run` maps `(utility, observer)` to the
/// streaming outcome and must draw from a fixed seed internally.
fn assert_anytime_contract<F>(label: &str, run: F)
where
    F: Fn(&dyn Utility, &mut dyn FnMut(&ProgressSnapshot) -> Control) -> StreamingOutcome,
{
    let base = HashUtility { n: 9, seed: 0xA11 };
    let mut reference: Option<Vec<ProgressSnapshot>> = None;
    for threads in THREAD_COUNTS {
        let u = ParallelUtility::with_num_threads(base.clone(), threads);

        // Full run, recording every snapshot.
        let mut full: Vec<ProgressSnapshot> = Vec::new();
        let full_out = run(&u, &mut |s| {
            full.push(s.clone());
            Control::Continue
        });
        assert!(full.len() >= 4, "{label}: too few snapshots to stop early");
        match full.last() {
            Some(last) => assert_eq!(last.values, full_out.values, "{label}"),
            None => unreachable!("checked non-empty above"),
        }
        // Config sanity: the CI must go finite before the final snapshot,
        // or the derived CiAtMost threshold below could never stop early.
        let finite_at = full
            .iter()
            .position(|s| s.max_halfwidth().is_some_and(f64::is_finite))
            .unwrap_or(full.len());
        assert!(
            finite_at + 1 < full.len(),
            "{label}: CI goes finite too late (snapshot {finite_at} of {})",
            full.len()
        );

        // The entire stream is thread-invariant.
        match &reference {
            Some(r) => assert_eq!(r, &full, "{label}: stream diverged at {threads} threads"),
            None => reference = Some(full.clone()),
        }

        // Same-seed run stopped by a reachable CI threshold.
        let rule = StoppingRule::ci_at_most(reachable_eps(&full));
        let stopped = run(&u, &mut |s| {
            if rule.should_stop(s) {
                Control::Stop
            } else {
                Control::Continue
            }
        });
        assert_prefix(label, &stopped, &full);
        if stopped.stopped_early {
            let final_samples = full_out.samples_used;
            assert!(
                stopped.samples_used < final_samples,
                "{label}: stopping must save evaluations"
            );
        } else {
            // Only an ambient FEDVAL_CI_EPS below the stream's reach may
            // run to completion; the derived threshold always fires.
            assert!(
                env_eps().is_some(),
                "{label}: derived threshold failed to fire"
            );
        }

        // And a sample-capped run stops at the first boundary past the
        // cap, on the same bit-identical prefix.
        let cap = full[full.len() / 3].samples_used;
        let cap_rule = StoppingRule::max_samples(cap);
        let capped = run(&u, &mut |s| {
            if cap_rule.should_stop(s) {
                Control::Stop
            } else {
                Control::Continue
            }
        });
        assert!(capped.stopped_early, "{label}: cap {cap} must fire");
        assert!(capped.samples_used >= cap, "{label}: fires at a boundary");
        assert_prefix(label, &capped, &full);
    }
}

#[test]
fn owen_ci_stop_is_a_bit_identical_prefix_across_thread_counts() {
    assert_anytime_contract("owen", |u, observe| {
        owen_sampling_streaming(
            u,
            &OwenConfig::new(4, 24),
            &mut StdRng::seed_from_u64(17),
            observe,
        )
    });
}

#[test]
fn stratified_mc_ci_stop_is_a_bit_identical_prefix_across_thread_counts() {
    assert_anytime_contract("stratified-mc", |u, observe| {
        stratified_sampling_streaming(
            u,
            Scheme::MarginalContribution,
            &StratifiedConfig::uniform(9, 504),
            &mut StdRng::seed_from_u64(18),
            observe,
        )
    });
}

#[test]
fn stratified_cc_ci_stop_is_a_bit_identical_prefix_across_thread_counts() {
    assert_anytime_contract("stratified-cc", |u, observe| {
        stratified_sampling_streaming(
            u,
            Scheme::ComplementaryContribution,
            &StratifiedConfig::uniform(9, 504),
            &mut StdRng::seed_from_u64(19),
            observe,
        )
    });
}

/// Collect the full snapshot stream of a streaming service run by
/// polling `wait_timeout` (the ticket's public surface).
fn stream_via_service<U: Utility + Send + Sync + 'static>(
    server: &ValuationServer<U>,
    request: ValuationRequest,
) -> (
    fedval_core::service::ValuationResponse,
    Vec<ProgressSnapshot>,
) {
    let ticket = server.submit(request);
    let mut snapshots = Vec::new();
    let resp = loop {
        snapshots.extend(ticket.progress());
        if let Some(result) = ticket.wait_timeout(Duration::from_millis(20)) {
            break result;
        }
    };
    snapshots.extend(ticket.progress());
    match resp {
        Ok(resp) => (resp, snapshots),
        Err(e) => panic!("healthy run failed: {e}"),
    }
}

#[test]
fn service_ci_stop_is_a_bit_identical_prefix_across_thread_counts() {
    // The same contract through the whole service stack: coalescer,
    // retry facade, progress channel. Each thread count gets its own
    // pair of fresh servers so no cache state leaks between runs.
    let base = HashUtility { n: 8, seed: 0xB22 };
    let request = || ValuationRequest::new(Estimator::Owen, 1440, 23);
    for threads in THREAD_COUNTS {
        let full_server =
            ValuationServer::start(ParallelUtility::with_num_threads(base.clone(), threads));
        let (full_resp, full) = stream_via_service(
            &full_server,
            request().with_stopping(StoppingRule::stream_only()),
        );
        full_server.shutdown();
        assert!(!full_resp.run.stopped_early);
        assert!(full.len() >= 4, "too few snapshots to stop early");

        let server =
            ValuationServer::start(ParallelUtility::with_num_threads(base.clone(), threads));
        let (resp, _) = stream_via_service(
            &server,
            request().with_stopping(StoppingRule::ci_at_most(reachable_eps(&full))),
        );
        server.shutdown();
        let snapshot = match resp.progress.as_ref() {
            Some(s) => s,
            None => panic!("streaming response must carry a snapshot"),
        };
        let stopped = StreamingOutcome::from_snapshot(snapshot.clone(), resp.run.stopped_early);
        assert_eq!(stopped.values, resp.values, "response mirrors snapshot");
        assert_prefix("service-owen", &stopped, &full);
        if env_eps().is_none() {
            assert!(resp.run.stopped_early, "derived threshold must fire");
        }
    }
}

#[test]
fn service_ci_stop_prefix_holds_on_the_fl_substrate() {
    // The contract over real federated training, so the CI matrix's
    // FEDVAL_BACKEND axis exercises the streaming fold over both
    // numeric backends. Small problem: 3 clients, 2 rounds.
    use fedval_data::{MnistLike, SyntheticSetup};
    use fedval_fl::service::{serve, FlServiceConfig};
    use fedval_fl::{FedAvgConfig, FlUtility, ModelSpec};

    let n_clients = 3;
    let fl_utility = || -> FlUtility {
        let gen = MnistLike::new(701);
        let (train, test) = gen.generate_split(18 * n_clients, 48, 702);
        let mut rng = StdRng::seed_from_u64(703);
        let clients = SyntheticSetup::SameSizeSameDist.partition(&train, n_clients, &mut rng);
        FlUtility::new(
            clients,
            test,
            ModelSpec::default_mlp(),
            FedAvgConfig {
                rounds: 2,
                local_epochs: 1,
                seed: 704,
                ..Default::default()
            },
        )
    };
    let request = || ValuationRequest::new(Estimator::StratifiedMc, 18, 31);

    let (full_server, _cache) = serve(fl_utility(), FlServiceConfig::default());
    let (full_resp, full) = stream_via_service(
        &full_server,
        request().with_stopping(StoppingRule::stream_only()),
    );
    full_server.shutdown();
    assert!(full.len() >= 3, "too few snapshots to stop early");

    let cap = full[full.len() / 2].samples_used;
    let (server, _cache) = serve(fl_utility(), FlServiceConfig::default());
    let (resp, _) = stream_via_service(
        &server,
        request().with_stopping(StoppingRule::max_samples(cap)),
    );
    server.shutdown();
    assert!(resp.run.stopped_early, "cap {cap} must fire");
    let snapshot = match resp.progress.as_ref() {
        Some(s) => s,
        None => panic!("streaming response must carry a snapshot"),
    };
    let stopped = StreamingOutcome::from_snapshot(snapshot.clone(), true);
    assert_prefix("service-fl", &stopped, &full);
    assert!(
        stopped.samples_used < full_resp.progress.map(|s| s.samples_used).unwrap_or(0),
        "stopping must save model trainings"
    );
}
