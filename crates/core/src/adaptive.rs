//! Adaptive Neyman budget reallocation: variance-driven sampling.
//!
//! The anytime layer ([`crate::anytime`]) computes per-component Welford
//! variances at every batch boundary but uses them only to *stop*. This
//! module makes them *steer*: an [`AllocationPlanner`] re-plans each
//! round of draws by **Neyman allocation** — `m_k ∝ W_k·σ_k`, the
//! variance-optimal split of a stratified budget, where `W_k` is the
//! weight the component carries in the estimate (the classical
//! `N_k·σ_k` form with the population share normalised out) and `σ_k`
//! the component's observed contribution spread.
//!
//! Allocation is **total-target**: each round the planner apportions the
//! *cumulative* budget (draws already taken plus this round's budget)
//! across components and hands out each component's deficit against its
//! target. Sequential re-planning therefore converges to the same split
//! a one-shot Neyman allocation of the whole budget would pick, instead
//! of compounding per-round rounding bias.
//!
//! A configurable **exploration floor** keeps the plan honest before the
//! variances are known: a component with fewer than
//! [`AdaptivePolicy::min_observations`] observed contributions is
//! guaranteed [`AdaptivePolicy::floor`] draws per round, so a zero- or
//! unknown-variance component is never starved before it has had a
//! chance to reveal its spread.
//!
//! # Determinism contract
//!
//! Planning consumes **no randomness**: [`AllocationPlanner::plan_round`]
//! is a pure function of its inputs, and the inputs (per-component
//! variances and draw counts) are themselves pure functions of the
//! evaluated prefix. An adaptive streaming run's allocation sequence is
//! therefore a pure function of `(seed, snapshot history)` — same-seed
//! same-rule runs are bit-identical at any thread count and under any
//! service coalescing interleaving, exactly like the non-adaptive
//! streaming estimators.
//!
//! # Fallback contract
//!
//! When no component has a known positive variance (nothing observed
//! yet, or a homoscedastic problem where every spread is equal or zero),
//! the plan degenerates to the **uniform split**: the same
//! largest-remainder apportionment as [`StratifiedConfig::uniform`]
//! (earlier components receive the remainder first), and the
//! total-target scheme makes the *cumulative* allocation track
//! `StratifiedConfig::uniform(n, Σ budget)` at every boundary.
//!
//! [`StratifiedConfig::uniform`]: crate::stratified::StratifiedConfig::uniform

use std::cmp::Ordering;

/// How an adaptive streaming estimator re-plans its draws at batch
/// boundaries. Carried by
/// [`ValuationRequest::with_adaptive`](crate::service::ValuationRequest::with_adaptive)
/// and by the `*_streaming_adaptive` estimator entry points.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AdaptivePolicy {
    /// Draws (re-)planned per batch boundary. `None` = the estimator's
    /// natural round: one draw per stratum for Alg. 1 (`n`), one draw
    /// per grid node for Owen (`q_nodes`), one coalition per client for
    /// IPSS phase 2 (`n`) — the same cadence as the uniform streaming
    /// variants.
    pub round_size: Option<usize>,
    /// A component is *under-observed* until it has folded this many
    /// contributions; under-observed components are served by the
    /// exploration floor before Neyman allocation distributes the rest.
    pub min_observations: usize,
    /// Draws guaranteed per under-observed component per round.
    pub floor: usize,
}

impl Default for AdaptivePolicy {
    fn default() -> Self {
        AdaptivePolicy {
            round_size: None,
            min_observations: 2,
            floor: 1,
        }
    }
}

impl AdaptivePolicy {
    /// The policy's round size, or the estimator's `natural` cadence.
    pub fn round(&self, natural: usize) -> usize {
        self.round_size.unwrap_or(natural).max(1)
    }
}

/// What the planner knows about one weighted component (a stratum of
/// Alg. 1, the phase-2 per-client frame of IPSS, or one Owen grid node)
/// at a batch boundary.
#[derive(Clone, Copy, Debug)]
pub struct ComponentState {
    /// Weight the component carries in the estimate (Alg. 1: `1/n`;
    /// Owen: the trapezoid node weight).
    pub weight: f64,
    /// Welford sample variance of the component's observed contributions
    /// (`None` until two have been folded).
    pub variance: Option<f64>,
    /// Contributions folded so far (what the exploration floor counts —
    /// a draw whose pair never matched observes nothing).
    pub observed: usize,
    /// Draws already taken from the component across previous rounds.
    pub drawn: usize,
    /// Distinct draws still available from the component
    /// (`usize::MAX` = unbounded, e.g. Owen's with-replacement nodes).
    pub remaining: usize,
}

/// Re-plans a round of draws from per-component variances by Neyman
/// allocation — see the [module docs](self) for the determinism and
/// fallback contracts.
#[derive(Clone, Copy, Debug)]
pub struct AllocationPlanner {
    policy: AdaptivePolicy,
}

impl AllocationPlanner {
    pub fn new(policy: AdaptivePolicy) -> Self {
        AllocationPlanner { policy }
    }

    /// The policy this planner applies.
    pub fn policy(&self) -> &AdaptivePolicy {
        &self.policy
    }

    /// Neyman scores `W_k·σ_k` per component, with the exploration
    /// conventions: a component whose variance is still unknown scores
    /// as high as the strongest known component (optimistic
    /// exploration), and when *no* component has a known positive
    /// variance every component scores 1 — the uniform fallback.
    ///
    /// The scores are relative steering weights (only ratios matter);
    /// IPSS uses them directly as per-client coverage targets.
    pub fn scores(&self, components: &[ComponentState]) -> Vec<f64> {
        let mut scores: Vec<f64> = components
            .iter()
            .map(|c| match c.variance {
                Some(v) if v > 0.0 => c.weight * v.sqrt(),
                _ => 0.0,
            })
            .collect();
        let known_max = scores.iter().fold(0.0f64, |a, &b| a.max(b));
        if known_max <= 0.0 {
            return vec![1.0; components.len()];
        }
        for (s, c) in scores.iter_mut().zip(components) {
            if c.variance.is_none() {
                *s = known_max;
            }
        }
        scores
    }

    /// Plan the next `round_budget` draws. The exploration floor serves
    /// under-observed components first (in index order); the rest flows
    /// through total-target Neyman allocation: apportion the cumulative
    /// budget (Σ drawn + this round) by score, then hand each component
    /// its deficit against that target, spilling any excess by score.
    /// Ties and remainders go to earlier components, matching
    /// [`StratifiedConfig::uniform`](crate::stratified::StratifiedConfig::uniform).
    ///
    /// Pure function of its inputs — consumes no randomness. The
    /// returned plan sums to `round_budget` unless total remaining
    /// capacity is smaller (then it sums to that capacity).
    pub fn plan_round(&self, round_budget: usize, components: &[ComponentState]) -> Vec<usize> {
        let k = components.len();
        let mut plan = vec![0usize; k];
        if k == 0 || round_budget == 0 {
            return plan;
        }
        let mut left = round_budget;
        // Exploration floor: under-observed components are never starved
        // before `min_observations` contributions have landed.
        for (p, c) in plan.iter_mut().zip(components) {
            if left == 0 {
                break;
            }
            if c.observed < self.policy.min_observations && c.remaining > 0 {
                let give = self.policy.floor.min(c.remaining).min(left);
                *p += give;
                left -= give;
            }
        }
        if left == 0 {
            return plan;
        }
        let scores = self.scores(components);

        // Total-target Neyman: what should each component's *cumulative*
        // draw count be once this round lands?
        let drawn_total = components
            .iter()
            .fold(0usize, |a, c| a.saturating_add(c.drawn));
        let placed: usize = plan.iter().sum();
        let target_total = drawn_total.saturating_add(placed).saturating_add(left);
        let caps: Vec<usize> = components
            .iter()
            .map(|c| c.drawn.saturating_add(c.remaining))
            .collect();
        let mut targets = vec![0usize; k];
        apportion(&mut targets, target_total, &scores, &caps);

        // Each component's deficit against its target, clamped to what
        // it can still absorb this round.
        let deficits: Vec<usize> = (0..k)
            .map(|i| {
                targets[i]
                    .saturating_sub(components[i].drawn.saturating_add(plan[i]))
                    .min(components[i].remaining - plan[i])
            })
            .collect();
        let dsum: usize = deficits.iter().sum();
        if dsum <= left {
            for (p, d) in plan.iter_mut().zip(&deficits) {
                *p += d;
            }
            left -= dsum;
            if left > 0 {
                // Over-drawn components freed budget (or every deficit is
                // met): spill the rest by score over open components.
                let remaining: Vec<usize> = components.iter().map(|c| c.remaining).collect();
                apportion(&mut plan, left, &scores, &remaining);
            }
        } else {
            // More deficit than budget: fill proportionally to deficit.
            let dscores: Vec<f64> = deficits.iter().map(|&d| d as f64).collect();
            let mut fill = vec![0usize; k];
            apportion(&mut fill, left, &dscores, &deficits);
            for (p, f) in plan.iter_mut().zip(&fill) {
                *p += f;
            }
        }
        plan
    }
}

/// Largest-remainder apportionment of `budget` by `scores` into `buf`,
/// never letting `buf[i]` exceed `caps[i]`. When every open component
/// scores 0, the budget spreads uniformly over them rather than being
/// dropped. Remainders and ties go to earlier components. Pure function;
/// stops early only when all capacity is consumed.
fn apportion(buf: &mut [usize], mut budget: usize, scores: &[f64], caps: &[usize]) {
    while budget > 0 {
        let mut open: Vec<usize> = (0..buf.len()).filter(|&i| buf[i] < caps[i]).collect();
        if open.is_empty() {
            return;
        }
        let any_scored = open.iter().any(|&i| scores[i] > 0.0);
        if any_scored {
            open.retain(|&i| scores[i] > 0.0);
        }
        let eff = |i: usize| if any_scored { scores[i] } else { 1.0 };
        let total: f64 = open.iter().map(|&i| eff(i)).sum();
        let mut placed = 0usize;
        let mut fracs: Vec<(usize, f64)> = Vec::with_capacity(open.len());
        for &i in &open {
            let quota = budget as f64 * eff(i) / total;
            let base = (quota.floor() as usize).min(caps[i] - buf[i]);
            buf[i] += base;
            placed += base;
            fracs.push((i, quota - quota.floor()));
        }
        // Rounding remainder by largest fractional part, earlier index
        // on ties.
        fracs.sort_by(|a, b| match b.1.total_cmp(&a.1) {
            Ordering::Equal => a.0.cmp(&b.0),
            other => other,
        });
        let mut rest = budget - placed;
        for (i, _) in fracs {
            if rest == 0 {
                break;
            }
            if buf[i] < caps[i] {
                buf[i] += 1;
                rest -= 1;
            }
        }
        if rest == budget {
            return; // no progress possible (every open slot capped)
        }
        budget = rest;
    }
}

#[cfg(test)]
// Tests assert invariants; an unwrap that trips IS the test failing.
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::stratified::StratifiedConfig;

    fn fresh(n: usize) -> Vec<ComponentState> {
        vec![
            ComponentState {
                weight: 1.0 / n as f64,
                variance: None,
                observed: 0,
                drawn: 0,
                remaining: usize::MAX,
            };
            n
        ]
    }

    fn observed(weight: f64, variance: f64, drawn: usize, remaining: usize) -> ComponentState {
        ComponentState {
            weight,
            variance: Some(variance),
            observed: 8,
            drawn,
            remaining,
        }
    }

    #[test]
    fn unobserved_components_get_the_uniform_split() {
        // The fallback contract, pinned against the uniform seam the
        // planner degenerates to: floor + uniform apportionment equals
        // StratifiedConfig::uniform exactly, for every (n, γ) cell.
        let planner = AllocationPlanner::new(AdaptivePolicy::default());
        for n in 1..=12usize {
            for gamma in 0..=96 {
                let plan = planner.plan_round(gamma, &fresh(n));
                assert_eq!(
                    plan,
                    StratifiedConfig::uniform(n, gamma).rounds_per_stratum,
                    "n={n} γ={gamma}"
                );
            }
        }
    }

    #[test]
    fn homoscedastic_sequential_rounds_track_the_cumulative_uniform_split() {
        // Total-target allocation: re-planning round by round on a
        // homoscedastic problem lands on exactly the split a one-shot
        // uniform allocation of the cumulative budget would pick.
        let planner = AllocationPlanner::new(AdaptivePolicy::default());
        let n = 6usize;
        let mut drawn = vec![0usize; n];
        for round in 0..8usize {
            let comps: Vec<ComponentState> = drawn
                .iter()
                .map(|&d| ComponentState {
                    weight: 1.0 / n as f64,
                    variance: Some(0.25),
                    observed: 8,
                    drawn: d,
                    remaining: usize::MAX,
                })
                .collect();
            let plan = planner.plan_round(4, &comps);
            assert_eq!(plan.iter().sum::<usize>(), 4, "round {round}");
            for (d, p) in drawn.iter_mut().zip(&plan) {
                *d += p;
            }
            assert_eq!(
                drawn,
                StratifiedConfig::uniform(n, 4 * (round + 1)).rounds_per_stratum,
                "round {round}"
            );
        }
    }

    #[test]
    fn neyman_allocation_is_proportional_to_weighted_sigma() {
        // σ = [1, 2, 1] at equal weights ⇒ m ∝ [1, 2, 1] of 16 = [4, 8, 4].
        let planner = AllocationPlanner::new(AdaptivePolicy::default());
        let comps = vec![
            observed(1.0, 1.0, 0, usize::MAX),
            observed(1.0, 4.0, 0, usize::MAX),
            observed(1.0, 1.0, 0, usize::MAX),
        ];
        assert_eq!(planner.plan_round(16, &comps), vec![4, 8, 4]);
        // Weights scale the same way: doubling a weight doubles its share.
        let weighted = vec![
            observed(2.0, 1.0, 0, usize::MAX),
            observed(1.0, 4.0, 0, usize::MAX),
        ];
        assert_eq!(planner.plan_round(12, &weighted), vec![6, 6]);
        // Sequential continuation keeps the same proportions in totals.
        let later = vec![
            observed(1.0, 1.0, 4, usize::MAX),
            observed(1.0, 4.0, 8, usize::MAX),
            observed(1.0, 1.0, 4, usize::MAX),
        ];
        assert_eq!(planner.plan_round(4, &later), vec![1, 2, 1]);
    }

    #[test]
    fn converged_components_are_starved_after_the_floor() {
        // A zero-variance component with enough observations gets no
        // further draws while a noisy one is open.
        let planner = AllocationPlanner::new(AdaptivePolicy::default());
        let comps = vec![
            observed(1.0, 0.0, 5, usize::MAX),
            observed(1.0, 1.0, 5, usize::MAX),
        ];
        assert_eq!(planner.plan_round(10, &comps), vec![0, 10]);
    }

    #[test]
    fn overdrawn_components_cede_their_share() {
        // Component 0 already holds more than its Neyman target: the
        // whole round flows to the others.
        let planner = AllocationPlanner::new(AdaptivePolicy::default());
        let comps = vec![
            observed(1.0, 1.0, 10, usize::MAX),
            observed(1.0, 1.0, 0, usize::MAX),
            observed(1.0, 1.0, 0, usize::MAX),
        ];
        assert_eq!(planner.plan_round(6, &comps), vec![0, 3, 3]);
    }

    #[test]
    fn exploration_floor_protects_under_observed_components() {
        // Component 0 has an unknown variance and almost no observations:
        // the floor keeps feeding it before Neyman pours everything into
        // the noisy component.
        let planner = AllocationPlanner::new(AdaptivePolicy::default());
        let comps = vec![
            ComponentState {
                weight: 1.0,
                variance: None,
                observed: 1,
                drawn: 3,
                remaining: usize::MAX,
            },
            observed(1.0, 1.0, 3, usize::MAX),
        ];
        let plan = planner.plan_round(6, &comps);
        assert!(plan[0] >= 1, "{plan:?}: floor must feed the unknown");
        assert_eq!(plan.iter().sum::<usize>(), 6);
    }

    #[test]
    fn unknown_variance_scores_like_the_strongest_known() {
        let planner = AllocationPlanner::new(AdaptivePolicy::default());
        let comps = vec![
            observed(1.0, 4.0, 0, usize::MAX),
            observed(1.0, 1.0, 0, usize::MAX),
            ComponentState {
                weight: 1.0,
                variance: None,
                observed: 0,
                drawn: 0,
                remaining: usize::MAX,
            },
        ];
        let scores = planner.scores(&comps);
        assert_eq!(scores[2], scores[0], "optimistic exploration");
        assert!(scores[0] > scores[1]);
    }

    #[test]
    fn capacity_caps_are_respected_and_budget_spills() {
        // The noisy component is nearly exhausted: its cap binds and the
        // excess spills to the open (converged) one rather than vanishing.
        let planner = AllocationPlanner::new(AdaptivePolicy::default());
        let comps = vec![observed(1.0, 9.0, 0, 3), observed(1.0, 0.0, 0, 100)];
        let plan = planner.plan_round(10, &comps);
        assert_eq!(plan, vec![3, 7]);
        // Total capacity below the budget: the plan sums to the capacity.
        let tight = vec![observed(1.0, 1.0, 0, 2), observed(1.0, 1.0, 0, 1)];
        assert_eq!(planner.plan_round(10, &tight), vec![2, 1]);
        // Exhausted components take nothing, even under the floor.
        let done = vec![
            ComponentState {
                weight: 1.0,
                variance: None,
                observed: 0,
                drawn: 7,
                remaining: 0,
            },
            observed(1.0, 1.0, 0, usize::MAX),
        ];
        assert_eq!(planner.plan_round(4, &done), vec![0, 4]);
    }

    #[test]
    fn planning_is_deterministic_and_exact() {
        let planner = AllocationPlanner::new(AdaptivePolicy::default());
        let comps = vec![
            observed(0.25, 0.3, 2, 40),
            observed(0.25, 1.1, 5, 40),
            ComponentState {
                weight: 0.25,
                variance: None,
                observed: 1,
                drawn: 1,
                remaining: 40,
            },
            observed(0.25, 0.0, 2, 40),
        ];
        let a = planner.plan_round(23, &comps);
        let b = planner.plan_round(23, &comps);
        assert_eq!(a, b, "pure function of its inputs");
        assert_eq!(a.iter().sum::<usize>(), 23);
    }

    #[test]
    fn empty_and_zero_budget_plans_are_empty() {
        let planner = AllocationPlanner::new(AdaptivePolicy::default());
        assert!(planner.plan_round(5, &[]).is_empty());
        assert_eq!(planner.plan_round(0, &fresh(3)), vec![0, 0, 0]);
    }
}
