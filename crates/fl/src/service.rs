//! FL wiring of the multi-valuation service: one call that stacks the
//! whole engine — `ValuationServer` → shared `CachedUtility` →
//! `ParallelUtility` fan-out → [`FlUtility`] lock-step lane blocks → one
//! shared, optionally byte-budgeted [`TrajectoryCache`] — and hands back
//! the server plus the cache handle.
//!
//! The coalescing server lives in `fedval_core::service` and is
//! substrate-agnostic; what this module adds is the FL-specific sharing:
//! every concurrent run's coalitions end up as lane blocks over **one**
//! trajectory cache, so local trainings bit-equal across runs (all of
//! round 0, plus any later-round coincidence) are paid once per cache
//! lifetime — and, with a byte budget, within a bounded memory envelope.
//! FL training batches are the heaviest in the codebase, so the config
//! also exposes the server's bounded-latency
//! [`FlushWindow`](fedval_core::service::FlushWindow) triggers: a slow FedAvg run then delays a
//! fast peer's parked batch by at most `flush_max_wait`.
//!
//! ```no_run
//! use fedval_core::service::{Estimator, ValuationRequest};
//! use fedval_fl::service::{serve, FlServiceConfig};
//! # use fedval_data::{MnistLike, SyntheticSetup};
//! # use fedval_fl::{FedAvgConfig, FlUtility, ModelSpec};
//! # use rand::rngs::StdRng;
//! # use rand::SeedableRng;
//! # let (train, test) = MnistLike::new(1).generate_split(96, 48, 2);
//! # let mut rng = StdRng::seed_from_u64(3);
//! # let clients = SyntheticSetup::SameSizeSameDist.partition(&train, 4, &mut rng);
//! # let utility = FlUtility::new(clients, test, ModelSpec::Linear, FedAvgConfig::default());
//!
//! // Bound the trajectory cache to ~4 MiB and serve.
//! let (server, cache) = serve(
//!     utility,
//!     FlServiceConfig {
//!         traj_budget_bytes: Some(4 << 20),
//!         ..Default::default()
//!     },
//! );
//! let loo = server.call(ValuationRequest::new(Estimator::Loo, 0, 0)).expect("healthy run");
//! let ipss = server.call(ValuationRequest::new(Estimator::Ipss, 16, 7)).expect("healthy run");
//! println!("LOO {:?} / IPSS {:?}", loo.values, ipss.values);
//! println!("cache occupancy: {} bytes", cache.stats().bytes);
//! server.shutdown();
//! ```

use std::sync::Arc;
use std::time::Duration;

use fedval_core::service::ValuationServer;
use fedval_core::utility::ParallelUtility;

use crate::trajcache::TrajectoryCache;
use crate::utility::FlUtility;

/// A [`ValuationServer`] over the full FL evaluation stack.
pub type FlValuationServer = ValuationServer<ParallelUtility<FlUtility>>;

/// Options of [`serve`].
#[derive(Clone, Copy, Debug, Default)]
pub struct FlServiceConfig {
    /// Byte budget of the shared trajectory cache (`None` = unbounded).
    /// Each cached client-round update costs `p · 4` bytes for a
    /// `p`-parameter model; crossing the budget evicts least-recently-used
    /// entries without changing any value.
    pub traj_budget_bytes: Option<usize>,
    /// Thread count of the server-side `ParallelUtility` fan-out
    /// (`None` = rayon's process-wide default, i.e. all cores).
    pub threads: Option<usize>,
    /// Bound the time a parked batch waits on the coalescing barrier:
    /// flush once the oldest parked batch is this old, even if not every
    /// eligible run has parked (`None` = barrier only). Trades some
    /// cross-run coalescing for a latency cap; never changes a value.
    pub flush_max_wait: Option<Duration>,
    /// Flush as soon as this many batches are parked (`None` = barrier
    /// only; `Some(1)` disables cross-run batching entirely).
    pub flush_after_parked: Option<usize>,
}

impl FlServiceConfig {
    /// Read the config from the environment — the knobs a deployment of
    /// the wire transport (`fedval-serve`, see `crates/serve`) tunes
    /// without a rebuild. Unset or unparsable variables keep the
    /// [`Default`] (`None`): misconfiguration degrades to the unbounded
    /// defaults rather than failing startup.
    ///
    /// | variable | field |
    /// |----------|-------|
    /// | `FEDVAL_TRAJCACHE_BYTES` | `traj_budget_bytes` |
    /// | `FEDVAL_SERVICE_THREADS` | `threads` |
    /// | `FEDVAL_FLUSH_MAX_WAIT_MS` | `flush_max_wait` (milliseconds) |
    /// | `FEDVAL_FLUSH_AFTER_PARKED` | `flush_after_parked` |
    pub fn from_env() -> FlServiceConfig {
        fn env_usize(name: &str) -> Option<usize> {
            std::env::var(name).ok()?.trim().parse().ok()
        }
        FlServiceConfig {
            traj_budget_bytes: env_usize("FEDVAL_TRAJCACHE_BYTES"),
            threads: env_usize("FEDVAL_SERVICE_THREADS"),
            flush_max_wait: env_usize("FEDVAL_FLUSH_MAX_WAIT_MS")
                .map(|ms| Duration::from_millis(ms as u64)),
            flush_after_parked: env_usize("FEDVAL_FLUSH_AFTER_PARKED"),
        }
    }
}

/// Start a multi-valuation server over one [`FlUtility`].
///
/// Installs a fresh shared [`TrajectoryCache`] (budgeted per
/// `cfg.traj_budget_bytes`) on the utility — replacing any handle it
/// already carried — wraps it in a `ParallelUtility` fan-out, and starts
/// a `ValuationServer` whose [`ServiceStats`] report the cache's
/// training-level accounting next to the coalition-level `EvalStats`.
///
/// Returns the server and the cache handle: hold the handle to inspect
/// occupancy ([`TrajectoryCache::stats`]) or release memory between runs
/// ([`TrajectoryCache::clear`]).
///
/// [`ServiceStats`]: fedval_core::service::ServiceStats
pub fn serve(
    utility: FlUtility,
    cfg: FlServiceConfig,
) -> (FlValuationServer, Arc<TrajectoryCache>) {
    let cache = Arc::new(match cfg.traj_budget_bytes {
        Some(budget) => TrajectoryCache::with_byte_budget(budget),
        None => TrajectoryCache::new(),
    });
    let utility = utility.with_traj_cache(Arc::clone(&cache));
    let fan_out = match cfg.threads {
        Some(threads) => ParallelUtility::with_num_threads(utility, threads),
        None => ParallelUtility::new(utility),
    };
    let stats_handle = Arc::clone(&cache);
    let mut builder = ValuationServer::builder(fan_out).traj_stats(move || stats_handle.stats());
    if let Some(max_wait) = cfg.flush_max_wait {
        builder = builder.flush_window(max_wait);
    }
    if let Some(max_parked) = cfg.flush_after_parked {
        builder = builder.flush_after_parked(max_parked);
    }
    (builder.start(), cache)
}

#[cfg(test)]
// Tests assert invariants; an unwrap that trips IS the test failing.
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use fedval_core::coalition::Coalition;
    use fedval_core::service::{Estimator, ValuationError, ValuationRequest, ValuationResponse};
    use fedval_core::utility::Utility;
    use fedval_data::{MnistLike, SyntheticSetup};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    use crate::config::FedAvgConfig;
    use crate::model::ModelSpec;

    /// Unwrap a service result in tests (plain `panic!` keeps the module
    /// clean under `deny(clippy::unwrap_used, clippy::expect_used)`).
    fn ok(result: Result<ValuationResponse, ValuationError>) -> ValuationResponse {
        match result {
            Ok(resp) => resp,
            Err(e) => panic!("request failed: {e}"),
        }
    }

    fn tiny_utility() -> FlUtility {
        let gen = MnistLike::new(21);
        let (train, test) = gen.generate_split(96, 48, 22);
        let mut rng = StdRng::seed_from_u64(23);
        let clients = SyntheticSetup::SameSizeSameDist.partition(&train, 4, &mut rng);
        FlUtility::new(
            clients,
            test,
            ModelSpec::Linear,
            FedAvgConfig {
                rounds: 2,
                local_epochs: 1,
                seed: 24,
                ..Default::default()
            },
        )
    }

    #[test]
    fn served_values_match_direct_evaluation() {
        let expected = {
            let u = tiny_utility();
            let coalitions: Vec<Coalition> = fedval_core::coalition::all_subsets(4).collect();
            u.eval_batch(&coalitions)
        };
        let (server, cache) = serve(tiny_utility(), FlServiceConfig::default());
        let resp = ok(server.call(ValuationRequest::new(Estimator::ExactMc, 0, 0)));
        // The exact sweep touched every subset; spot-check through the
        // exact values instead of raw utilities.
        let direct = fedval_core::exact::exact_mc_sv(&tiny_utility());
        assert_eq!(resp.values, direct);
        assert_eq!(resp.service.eval.evaluations, expected.len());
        let Some(traj) = resp.service.traj else {
            panic!("traj stats wired by serve()")
        };
        assert!(traj.local_trainings > 0);
        assert_eq!(traj.entries, cache.stats().entries);
        server.shutdown();
    }

    #[test]
    fn budgeted_service_reports_occupancy_within_budget() {
        let budget = 6 * 1000; // a handful of Linear-model updates
        let (server, cache) = serve(
            tiny_utility(),
            FlServiceConfig {
                traj_budget_bytes: Some(budget),
                threads: Some(1),
                ..Default::default()
            },
        );
        let resp = ok(server.call(ValuationRequest::new(Estimator::ExactMc, 0, 0)));
        let Some(traj) = resp.service.traj else {
            panic!("traj stats wired by serve()")
        };
        assert!(traj.bytes <= budget, "occupancy {} over budget", traj.bytes);
        assert!(traj.evictions > 0, "a sweep this size must overflow");
        assert_eq!(cache.byte_budget(), Some(budget));
        server.shutdown();
    }

    #[test]
    fn windowed_service_is_bit_identical_to_barrier_mode() {
        let barrier = {
            let (server, _cache) = serve(tiny_utility(), FlServiceConfig::default());
            let v = ok(server.call(ValuationRequest::new(Estimator::Ipss, 8, 5))).values;
            server.shutdown();
            v
        };
        let (server, _cache) = serve(
            tiny_utility(),
            FlServiceConfig {
                flush_max_wait: Some(Duration::from_millis(2)),
                flush_after_parked: Some(1),
                ..Default::default()
            },
        );
        let windowed = ok(server.call(ValuationRequest::new(Estimator::Ipss, 8, 5)));
        assert_eq!(windowed.values, barrier, "flush triggers changed a value");
        server.shutdown();
    }

    #[test]
    fn adaptive_request_over_fl_substrate_carries_the_allocation() {
        use fedval_core::adaptive::AdaptivePolicy;
        // The adaptive schedule composes with real FL training unchanged:
        // same-seed runs agree bit-for-bit and the response exposes the
        // planner's cumulative per-stratum draw counts.
        let (server, _cache) = serve(tiny_utility(), FlServiceConfig::default());
        let req = || {
            ValuationRequest::new(Estimator::StratifiedMc, 12, 31)
                .with_adaptive(AdaptivePolicy::default())
        };
        let first = ok(server.call(req()));
        let alloc = match first.progress.as_ref().and_then(|s| s.allocation.as_ref()) {
            Some(a) => a.clone(),
            None => panic!("adaptive response must carry the allocation"),
        };
        assert_eq!(alloc.iter().sum::<usize>(), 12, "{alloc:?}");
        let again = ok(server.call(req()));
        assert_eq!(again.values, first.values);
        assert_eq!(
            again.progress.as_ref().and_then(|s| s.allocation.as_ref()),
            Some(&alloc)
        );
        server.shutdown();
    }

    #[test]
    fn config_from_env_reads_every_knob_and_tolerates_garbage() {
        // Serialized against nothing: no other test in this binary reads
        // these variables.
        for name in [
            "FEDVAL_TRAJCACHE_BYTES",
            "FEDVAL_SERVICE_THREADS",
            "FEDVAL_FLUSH_MAX_WAIT_MS",
            "FEDVAL_FLUSH_AFTER_PARKED",
        ] {
            std::env::remove_var(name);
        }
        let unset = FlServiceConfig::from_env();
        assert!(unset.traj_budget_bytes.is_none());
        assert!(unset.threads.is_none());
        assert!(unset.flush_max_wait.is_none());
        assert!(unset.flush_after_parked.is_none());

        std::env::set_var("FEDVAL_TRAJCACHE_BYTES", "4194304");
        std::env::set_var("FEDVAL_SERVICE_THREADS", " 2 ");
        std::env::set_var("FEDVAL_FLUSH_MAX_WAIT_MS", "250");
        std::env::set_var("FEDVAL_FLUSH_AFTER_PARKED", "not-a-number");
        let cfg = FlServiceConfig::from_env();
        assert_eq!(cfg.traj_budget_bytes, Some(4 << 20));
        assert_eq!(cfg.threads, Some(2));
        assert_eq!(cfg.flush_max_wait, Some(Duration::from_millis(250)));
        assert_eq!(cfg.flush_after_parked, None, "garbage degrades to default");
        for name in [
            "FEDVAL_TRAJCACHE_BYTES",
            "FEDVAL_SERVICE_THREADS",
            "FEDVAL_FLUSH_MAX_WAIT_MS",
            "FEDVAL_FLUSH_AFTER_PARKED",
        ] {
            std::env::remove_var(name);
        }
    }
}
