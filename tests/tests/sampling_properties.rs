//! Property tests on the sampling machinery: balanced designs, stratified
//! configurations, IPSS budget accounting — the plumbing every estimator
//! stands on.
//!
//! Written as explicit randomised case loops (a seeded RNG drawing 64+
//! parameter combinations per property) because the offline build has no
//! `proptest`; the checked properties are identical.

// Driver code: test assertions panic by design, so unwrap/expect are
// the failure mechanism, not a robustness gap.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use fedval_core::coalition::{binom_u128, subsets_up_to, Coalition};
use fedval_core::ipss::{compute_k_star, ipss, IpssConfig};
use fedval_core::prelude::*;
use fedval_core::sampling::{balanced_subsets_of_size, coverage_counts, distinct_subsets_of_size};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CASES: usize = 64;

#[test]
fn distinct_subsets_are_valid() {
    let mut driver = StdRng::seed_from_u64(0xD157);
    for _ in 0..CASES {
        let n = driver.random_range(2usize..14);
        let k = driver.random_range(1usize..6).min(n);
        let count = driver.random_range(1usize..40);
        let seed = driver.random_range(0u64..10_000);
        let mut rng = StdRng::seed_from_u64(seed);
        let subs = distinct_subsets_of_size(n, k, count, &mut rng);
        let expected = (count as u128).min(binom_u128(n, k)) as usize;
        assert_eq!(subs.len(), expected, "n={n} k={k} count={count}");
        let mut seen = std::collections::HashSet::new();
        for s in &subs {
            assert_eq!(s.size(), k);
            assert!(s.is_subset_of(Coalition::full(n)));
            assert!(seen.insert(s.0), "duplicate coalition");
        }
    }
}

#[test]
fn balanced_designs_have_unit_coverage_spread() {
    let mut driver = StdRng::seed_from_u64(0xBA1A);
    for _ in 0..CASES {
        let n = driver.random_range(2usize..16);
        let k = driver.random_range(1usize..5).min(n);
        let count = driver.random_range(1usize..50);
        let seed = driver.random_range(0u64..10_000);
        let mut rng = StdRng::seed_from_u64(seed);
        let subs = balanced_subsets_of_size(n, k, count, &mut rng);
        if (subs.len() as u128) < binom_u128(n, k) {
            // Only when the stratum is not exhausted is balance promised.
            let cov = coverage_counts(n, &subs);
            let max = *cov.iter().max().unwrap();
            let min = *cov.iter().min().unwrap();
            assert!(
                max - min <= 1,
                "coverage {cov:?} (n={n} k={k} count={count})"
            );
        }
    }
}

#[test]
fn k_star_is_maximal() {
    let mut driver = StdRng::seed_from_u64(0x5AEE);
    for _ in 0..CASES {
        let n = driver.random_range(1usize..20);
        let gamma = driver.random_range(1usize..5_000);
        let k = compute_k_star(n, gamma).unwrap();
        assert!(subsets_up_to(n, k) <= gamma as u128);
        if k < n {
            assert!(subsets_up_to(n, k + 1) > gamma as u128);
        }
    }
}

#[test]
fn ipss_never_exceeds_budget() {
    let mut driver = StdRng::seed_from_u64(0x1B55);
    for _ in 0..CASES {
        let n = driver.random_range(2usize..10);
        let gamma = driver.random_range(2usize..200);
        let seed = driver.random_range(0u64..10_000);
        let u = CachedUtility::new(HashUtility { n, seed });
        let mut rng = StdRng::seed_from_u64(seed ^ 0x1b);
        let out = ipss(&u, &IpssConfig::new(gamma), &mut rng);
        assert!(u.stats().evaluations <= gamma.min(1 << n));
        assert_eq!(out.values.len(), n);
        assert!(out.values.iter().all(|v| v.is_finite()));
    }
}

#[test]
fn stratified_uniform_budget_sums() {
    let mut driver = StdRng::seed_from_u64(0x57A7);
    for _ in 0..CASES {
        let n = driver.random_range(1usize..32);
        let gamma = driver.random_range(0usize..500);
        let cfg = StratifiedConfig::uniform(n, gamma);
        assert_eq!(cfg.total_rounds(), gamma);
        assert_eq!(cfg.rounds_per_stratum.len(), n);
        // Allocation is as even as possible: max − min ≤ 1.
        let max = cfg.rounds_per_stratum.iter().max().unwrap();
        let min = cfg.rounds_per_stratum.iter().min().unwrap();
        assert!(max - min <= 1);
    }
}

#[test]
fn property_error_is_scale_invariant() {
    let mut driver = StdRng::seed_from_u64(0x5CA1);
    for _ in 0..CASES {
        let scale = driver.random_range(0.1f64..100.0);
        let values: Vec<f64> = (0..6).map(|_| driver.random_range(-1.0f64..1.0)).collect();
        let scaled: Vec<f64> = values.iter().map(|v| v * scale).collect();
        let a = property_error(&values, &[0], &[(1, 2)]);
        let b = property_error(&scaled, &[0], &[(1, 2)]);
        if a.is_finite() && b.is_finite() {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }
}
