//! Cross-backend equivalence suite for the pluggable linalg backends.
//!
//! Property-style fuzz over random shapes — including degenerate
//! `m/k/n ∈ {0, 1}` and widths straddling the Simd backend's 8-wide
//! chunks and 4-column microkernel — asserting that every solo and lane
//! kernel of the `Simd` backend agrees with `Reference` to ≤ 1e-5
//! relative tolerance, that element-wise kernels agree *bit-for-bit*
//! (vectorising independent output elements cannot reorder any single
//! element's sum), and that each backend is internally deterministic:
//! the lane path reproduces the same backend's solo path exactly, and an
//! FL utility run under the Simd backend keeps the full
//! cache→parallel→lock-step composition bit-identical.

// Driver code: test assertions panic by design, so unwrap/expect are
// the failure mechanism, not a robustness gap.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use fedval_core::coalition::{all_subsets, Coalition};
use fedval_core::utility::{CachedUtility, ParallelUtility, Utility};
use fedval_data::{MnistLike, SyntheticSetup};
use fedval_fl::{FedAvgConfig, FlUtility, ModelSpec};
use fedval_nn::backend::{rel_close, Backend, LinalgBackend, Reference, Simd};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn assert_all_close(reference: &[f32], simd: &[f32], what: &str) {
    assert_eq!(reference.len(), simd.len(), "{what}: length mismatch");
    for (i, (&r, &s)) in reference.iter().zip(simd).enumerate() {
        assert!(rel_close(r, s), "{what}[{i}]: {r} vs {s}");
    }
}

fn fill(rng: &mut StdRng, len: usize) -> Vec<f32> {
    (0..len).map(|_| rng.random_range(-1.5..1.5f32)).collect()
}

/// Dimension pool: degenerate 0/1, widths around the 4-column register
/// block and the 8-wide Simd chunk, and a KC-straddling length.
const DIMS: [usize; 10] = [0, 1, 2, 3, 5, 7, 8, 9, 16, 33];

/// A second pool for the shared dimension including a KC (128) straddler.
const K_DIMS: [usize; 10] = [0, 1, 4, 7, 8, 9, 15, 31, 64, 130];

#[test]
fn solo_kernels_agree_across_backends_over_random_shapes() {
    let mut rng = StdRng::seed_from_u64(0xBAC0);
    for trial in 0..60 {
        let m = DIMS[rng.random_range(0..DIMS.len())];
        let k = K_DIMS[rng.random_range(0..K_DIMS.len())];
        let n = DIMS[rng.random_range(0..DIMS.len())];
        let label = format!("trial {trial} m={m} k={k} n={n}");

        // matmul: element-wise parallel, must agree bit-for-bit.
        let a = fill(&mut rng, m * k);
        let b = fill(&mut rng, k * n);
        let mut out_r = vec![0.0f32; m * n];
        let mut out_s = vec![0.0f32; m * n];
        Reference.matmul(&a, &b, m, k, n, &mut out_r);
        Simd.matmul(&a, &b, m, k, n, &mut out_s);
        assert_eq!(out_r, out_s, "matmul {label}");

        // matmul_a_bt: reduction family, tolerance-gated.
        let bt = fill(&mut rng, n * k);
        Reference.matmul_a_bt(&a, &bt, m, k, n, &mut out_r);
        Simd.matmul_a_bt(&a, &bt, m, k, n, &mut out_s);
        assert_all_close(&out_r, &out_s, &format!("matmul_a_bt {label}"));

        // matmul_a_bt_bias, with and without fused ReLU.
        let bias = fill(&mut rng, n);
        Reference.matmul_a_bt_bias(&a, &bt, &bias, m, k, n, &mut out_r, None);
        Simd.matmul_a_bt_bias(&a, &bt, &bias, m, k, n, &mut out_s, None);
        assert_all_close(&out_r, &out_s, &format!("matmul_a_bt_bias {label}"));
        let mut mask_r = Vec::new();
        let mut mask_s = Vec::new();
        Reference.matmul_a_bt_bias(&a, &bt, &bias, m, k, n, &mut out_r, Some(&mut mask_r));
        Simd.matmul_a_bt_bias(&a, &bt, &bias, m, k, n, &mut out_s, Some(&mut mask_s));
        // ReLU is 1-Lipschitz: clamped outputs stay within tolerance
        // (masks may legitimately differ at exact-zero crossings).
        assert_all_close(&out_r, &out_s, &format!("matmul_a_bt_bias+relu {label}"));
        assert_eq!(mask_r.len(), m * n);
        assert_eq!(mask_s.len(), m * n);

        // matmul_at_b_accum: element-wise parallel accumulation onto a
        // shared non-zero start, bit-identical.
        let g = fill(&mut rng, m * k);
        let x = fill(&mut rng, m * n);
        let mut acc_r = fill(&mut rng, k * n);
        let mut acc_s = acc_r.clone();
        Reference.matmul_at_b_accum(&g, &x, m, k, n, &mut acc_r);
        Simd.matmul_at_b_accum(&g, &x, m, k, n, &mut acc_s);
        assert_eq!(acc_r, acc_s, "matmul_at_b_accum {label}");
    }
}

#[test]
fn lane_kernels_agree_across_backends_over_random_shapes() {
    let mut rng = StdRng::seed_from_u64(0xBAC1);
    for trial in 0..40 {
        let lanes = rng.random_range(1..5usize);
        let m = DIMS[rng.random_range(0..DIMS.len())];
        let k = K_DIMS[rng.random_range(0..K_DIMS.len())];
        let n = DIMS[rng.random_range(0..DIMS.len())];
        let shared = rng.random_range(0..2u32) == 0;
        let relu = rng.random_range(0..2u32) == 0;
        // Random active mask, at least one lane on.
        let mut active: Vec<bool> = (0..lanes).map(|_| rng.random_range(0..2u32) == 0).collect();
        active[rng.random_range(0..lanes)] = true;
        let label =
            format!("trial {trial} B={lanes} m={m} k={k} n={n} shared={shared} relu={relu}");

        // Lane forward.
        let a = fill(&mut rng, if shared { m * k } else { lanes * m * k });
        let w = fill(&mut rng, lanes * n * k);
        let bias = fill(&mut rng, lanes * n);
        let mut out_r = vec![7.5f32; lanes * m * n];
        let mut out_s = out_r.clone();
        let mut masks_r = vec![false; lanes * m * n];
        let mut masks_s = vec![false; lanes * m * n];
        Reference.lane_matmul_a_bt_bias(
            &a,
            shared,
            &w,
            &bias,
            lanes,
            &active,
            m,
            k,
            n,
            &mut out_r,
            if relu { Some(&mut masks_r) } else { None },
        );
        Simd.lane_matmul_a_bt_bias(
            &a,
            shared,
            &w,
            &bias,
            lanes,
            &active,
            m,
            k,
            n,
            &mut out_s,
            if relu { Some(&mut masks_s) } else { None },
        );
        assert_all_close(&out_r, &out_s, &format!("lane_forward {label}"));
        for l in 0..lanes {
            if !active[l] {
                // Inactive lanes untouched by either backend.
                assert!(out_r[l * m * n..(l + 1) * m * n].iter().all(|&v| v == 7.5));
                assert!(out_s[l * m * n..(l + 1) * m * n].iter().all(|&v| v == 7.5));
            }
        }

        // Lane gradient accumulation (element-wise: bit-identical),
        // onto non-zero accumulators.
        let grad = fill(&mut rng, lanes * m * k);
        let input = fill(&mut rng, if shared { m * n } else { lanes * m * n });
        let mut gw_r = fill(&mut rng, lanes * k * n);
        let mut gw_s = gw_r.clone();
        let mut gb_r = fill(&mut rng, lanes * k);
        let mut gb_s = gb_r.clone();
        Reference.lane_matmul_at_b_accum(
            &grad, &input, shared, lanes, &active, m, k, n, &mut gw_r, &mut gb_r,
        );
        Simd.lane_matmul_at_b_accum(
            &grad, &input, shared, lanes, &active, m, k, n, &mut gw_s, &mut gb_s,
        );
        assert_eq!(gw_r, gw_s, "lane_grad_w {label}");
        assert_eq!(gb_r, gb_s, "lane_grad_b {label}");
    }
}

#[test]
fn scalar_helpers_agree_across_backends() {
    let mut rng = StdRng::seed_from_u64(0xBAC2);
    for &len in &[0usize, 1, 2, 7, 8, 9, 15, 16, 17, 63, 64, 100, 1023] {
        let a = fill(&mut rng, len);
        let b = fill(&mut rng, len);
        assert!(
            rel_close(Reference.dot(&a, &b), Simd.dot(&a, &b)),
            "dot len {len}"
        );
        assert!(
            rel_close(Reference.norm2(&a), Simd.norm2(&a)),
            "norm2 len {len}"
        );
        // axpy is element-wise: bit-identical.
        let mut y_r = fill(&mut rng, len);
        let mut y_s = y_r.clone();
        Reference.axpy(0.731, &a, &mut y_r);
        Simd.axpy(0.731, &a, &mut y_s);
        assert_eq!(y_r, y_s, "axpy len {len}");
    }
}

#[test]
fn each_backend_lane_path_is_bit_identical_to_its_own_solo_path() {
    // The per-backend lock-step contract at the kernel level: whichever
    // backend runs, the lane kernel must reproduce that backend's solo
    // kernel exactly — this is what makes batched FL valuation values
    // independent of lane grouping under *any* backend.
    let mut rng = StdRng::seed_from_u64(0xBAC3);
    let (lanes, m, k, n) = (3usize, 5usize, 19usize, 9usize);
    let a = fill(&mut rng, m * k);
    let w = fill(&mut rng, lanes * n * k);
    let bias = fill(&mut rng, lanes * n);
    let active = vec![true; lanes];
    for backend in [Backend::Reference, Backend::Simd] {
        let mut lane_out = vec![0.0f32; lanes * m * n];
        let mut lane_masks = vec![false; lanes * m * n];
        backend.lane_matmul_a_bt_bias(
            &a,
            true,
            &w,
            &bias,
            lanes,
            &active,
            m,
            k,
            n,
            &mut lane_out,
            Some(&mut lane_masks),
        );
        for l in 0..lanes {
            let mut solo = vec![0.0f32; m * n];
            let mut solo_mask = Vec::new();
            backend.matmul_a_bt_bias(
                &a,
                &w[l * n * k..(l + 1) * n * k],
                &bias[l * n..(l + 1) * n],
                m,
                k,
                n,
                &mut solo,
                Some(&mut solo_mask),
            );
            assert_eq!(
                &lane_out[l * m * n..(l + 1) * m * n],
                &solo[..],
                "{backend:?} lane {l}"
            );
            assert_eq!(&lane_masks[l * m * n..(l + 1) * m * n], &solo_mask[..]);
        }
    }
}

fn fl_utility(backend: Backend) -> FlUtility {
    let gen = MnistLike::new(0xBE);
    let (train, test) = gen.generate_split(180, 90, 0xBF);
    let mut rng = StdRng::seed_from_u64(0xC0);
    let clients = SyntheticSetup::SameSizeSameDist.partition(&train, 3, &mut rng);
    FlUtility::new(
        clients,
        test,
        ModelSpec::default_mlp(),
        FedAvgConfig {
            seed: 11,
            backend,
            ..Default::default()
        },
    )
}

#[test]
fn simd_backend_keeps_the_full_evaluation_stack_deterministic() {
    // Under the Simd backend, the whole cache → parallel → lock-step
    // composition must stay bit-identical to serially mapped solo
    // evaluations — determinism is per backend, not a Reference-only
    // property.
    let coalitions: Vec<Coalition> = all_subsets(3).collect();
    let mapped: Vec<f64> = {
        let u = fl_utility(Backend::Simd);
        coalitions.iter().map(|&s| u.eval(s)).collect()
    };
    for lane_block in [1usize, 2, 8] {
        let u = fl_utility(Backend::Simd).with_lane_block(lane_block);
        assert_eq!(u.eval_batch(&coalitions), mapped, "lane_block {lane_block}");
    }
    for threads in [2usize, 4] {
        let u = CachedUtility::new(ParallelUtility::with_num_threads(
            fl_utility(Backend::Simd),
            threads,
        ));
        assert_eq!(u.eval_batch(&coalitions), mapped, "threads {threads}");
        assert_eq!(u.stats().evaluations, coalitions.len());
    }
}

#[test]
fn backends_train_to_close_but_independent_utilities() {
    // The two backends round reductions differently, so trained models
    // may differ in late digits — but both must learn: the full
    // coalition beats the empty one under each backend, and U(∅)
    // (accuracy of the shared untrained init, a forward-only quantity)
    // agrees closely across backends.
    let reference = fl_utility(Backend::Reference);
    let simd = fl_utility(Backend::Simd);
    let empty_r = reference.eval(Coalition::empty());
    let empty_s = simd.eval(Coalition::empty());
    assert!(
        (empty_r - empty_s).abs() < 0.06,
        "U(∅): {empty_r} vs {empty_s}"
    );
    let full_r = reference.eval(Coalition::full(3));
    let full_s = simd.eval(Coalition::full(3));
    assert!(full_r > empty_r + 0.15, "reference failed to learn");
    assert!(full_s > empty_s + 0.15, "simd failed to learn");
}
