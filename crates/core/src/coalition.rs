//! Coalitions (subsets of FL clients) represented as `u128` bitmasks.
//!
//! The paper's algorithms enumerate and sample *dataset combinations*
//! `S ⊆ N = {1, …, n}`. A bitmask representation makes membership tests,
//! unions and complements O(1) and gives a compact cache key for memoising
//! utility evaluations. `u128` supports the paper's largest experiment
//! (100 clients in the Fig. 9 scalability test) with headroom.

use std::fmt;

/// Maximum number of clients supported by the bitmask representation.
pub const MAX_CLIENTS: usize = 128;

/// A set of FL clients, encoded as a bitmask. Client `i` (0-based) is a
/// member iff bit `i` is set.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Coalition(pub u128);

impl Coalition {
    /// The empty coalition `∅`.
    #[inline]
    pub const fn empty() -> Self {
        Coalition(0)
    }

    /// The grand coalition `N = {0, …, n-1}`.
    #[inline]
    pub fn full(n: usize) -> Self {
        assert!(n <= MAX_CLIENTS, "at most {MAX_CLIENTS} clients supported");
        if n == MAX_CLIENTS {
            Coalition(u128::MAX)
        } else {
            Coalition((1u128 << n) - 1)
        }
    }

    /// Coalition containing exactly one client.
    #[inline]
    pub fn singleton(i: usize) -> Self {
        assert!(i < MAX_CLIENTS);
        Coalition(1u128 << i)
    }

    /// Build a coalition from an iterator of client indices.
    pub fn from_members<I: IntoIterator<Item = usize>>(members: I) -> Self {
        let mut mask = 0u128;
        for i in members {
            assert!(i < MAX_CLIENTS);
            mask |= 1u128 << i;
        }
        Coalition(mask)
    }

    /// Number of clients in the coalition (`|S|`).
    #[inline]
    pub const fn size(self) -> usize {
        self.0.count_ones() as usize
    }

    /// True iff the coalition is empty.
    #[inline]
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Membership test: is client `i` in the coalition?
    #[inline]
    pub const fn contains(self, i: usize) -> bool {
        (self.0 >> i) & 1 == 1
    }

    /// `S ∪ {i}`.
    #[inline]
    pub const fn with(self, i: usize) -> Self {
        Coalition(self.0 | (1u128 << i))
    }

    /// `S \ {i}`.
    #[inline]
    pub const fn without(self, i: usize) -> Self {
        Coalition(self.0 & !(1u128 << i))
    }

    /// Set union.
    #[inline]
    pub const fn union(self, other: Self) -> Self {
        Coalition(self.0 | other.0)
    }

    /// Set intersection.
    #[inline]
    pub const fn intersect(self, other: Self) -> Self {
        Coalition(self.0 & other.0)
    }

    /// `N \ S` with respect to a ground set of `n` clients.
    #[inline]
    pub fn complement(self, n: usize) -> Self {
        Coalition(Self::full(n).0 & !self.0)
    }

    /// True iff `self ⊆ other`.
    #[inline]
    pub const fn is_subset_of(self, other: Self) -> bool {
        self.0 & !other.0 == 0
    }

    /// Iterate over member indices in ascending order.
    #[inline]
    pub fn members(self) -> Members {
        Members(self.0)
    }

    /// Collect the member indices into a `Vec`.
    pub fn to_vec(self) -> Vec<usize> {
        self.members().collect()
    }
}

impl fmt::Debug for Coalition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (idx, m) in self.members().enumerate() {
            if idx > 0 {
                write!(f, ",")?;
            }
            write!(f, "{m}")?;
        }
        write!(f, "}}")
    }
}

impl fmt::Display for Coalition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Iterator over the member indices of a coalition.
pub struct Members(u128);

impl Iterator for Members {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        if self.0 == 0 {
            None
        } else {
            let i = self.0.trailing_zeros() as usize;
            self.0 &= self.0 - 1;
            Some(i)
        }
    }

    #[inline]
    fn size_hint(&self) -> (usize, Option<usize>) {
        let c = self.0.count_ones() as usize;
        (c, Some(c))
    }
}

impl ExactSizeIterator for Members {}

/// Iterator over all `2^n` subsets of `{0, …, n-1}` in mask order
/// (`∅` first, `N` last). Only sensible for small `n`.
pub fn all_subsets(n: usize) -> impl Iterator<Item = Coalition> {
    assert!(n <= 30, "all_subsets is intended for small n (got {n})");
    (0u128..(1u128 << n)).map(Coalition)
}

/// Iterator over all subsets of `{0, …, n-1}` with exactly `k` members, in
/// lexicographically increasing mask order (Gosper's hack).
pub struct SubsetsOfSize {
    current: Option<u128>,
    limit: u128,
}

impl Iterator for SubsetsOfSize {
    type Item = Coalition;

    fn next(&mut self) -> Option<Coalition> {
        let cur = self.current?;
        let result = Coalition(cur);
        // Gosper's hack: next integer with the same popcount. `checked_add`
        // catches the end of iteration at the top of the u128 range
        // (n = 128), where the increment would wrap.
        let c = cur & cur.wrapping_neg();
        self.current = match cur.checked_add(c) {
            // c == 0 ⟺ cur == 0 (the k == 0 case): only the empty set.
            Some(r) if c != 0 => {
                let n = (((r ^ cur) >> 2) / c) | r;
                (n < self.limit).then_some(n)
            }
            _ => None,
        };
        Some(result)
    }
}

/// All subsets of `{0, …, n-1}` of size exactly `k`.
pub fn subsets_of_size(n: usize, k: usize) -> SubsetsOfSize {
    assert!(n <= MAX_CLIENTS);
    assert!(k <= n);
    let limit = if n == MAX_CLIENTS {
        u128::MAX
    } else {
        1u128 << n
    };
    let first = if k == 0 {
        0
    } else if k == MAX_CLIENTS {
        u128::MAX
    } else {
        (1u128 << k) - 1
    };
    SubsetsOfSize {
        current: (first < limit || (k == n && n == MAX_CLIENTS)).then_some(first),
        limit,
    }
}

/// Binomial coefficient `C(n, k)` as `f64`.
///
/// Exact for all values representable in `f64`'s 53-bit mantissa and a
/// monotone, well-conditioned approximation beyond; the paper's weights
/// `1/(n·C(n-1,|S|))` only ever need relative accuracy.
pub fn binom(n: usize, k: usize) -> f64 {
    if k > n {
        return 0.0;
    }
    let k = k.min(n - k);
    let mut acc = 1.0f64;
    for i in 0..k {
        acc = acc * (n - i) as f64 / (i + 1) as f64;
    }
    acc.round()
}

/// Binomial coefficient `C(n, k)` as `u128`, saturating at `u128::MAX`.
///
/// Saturation can trigger slightly before the result itself exceeds
/// `u128::MAX` (the running product momentarily overshoots, e.g. for
/// `C(128, 64)`); every consumer in this crate only compares the result
/// against budgets far below that range.
pub fn binom_u128(n: usize, k: usize) -> u128 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut acc: u128 = 1;
    for i in 0..k {
        let num = (n - i) as u128;
        let den = (i + 1) as u128;
        // acc * num may overflow; do checked arithmetic with gcd-free order:
        // C(n, i+1) = C(n, i) * (n-i) / (i+1) is always exact.
        match acc.checked_mul(num) {
            Some(v) => acc = v / den,
            None => return u128::MAX,
        }
    }
    acc
}

/// Number of subsets of size ≤ `k` of an `n`-element ground set
/// (`Σ_{j=0}^{k} C(n, j)`), saturating.
pub fn subsets_up_to(n: usize, k: usize) -> u128 {
    let mut total: u128 = 0;
    for j in 0..=k.min(n) {
        total = total.saturating_add(binom_u128(n, j));
    }
    total
}

#[cfg(test)]
// Tests assert invariants; an unwrap that trips IS the test failing.
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_full() {
        assert_eq!(Coalition::empty().size(), 0);
        assert!(Coalition::empty().is_empty());
        assert_eq!(Coalition::full(5).size(), 5);
        assert_eq!(Coalition::full(128).size(), 128);
        assert_eq!(Coalition::full(0), Coalition::empty());
    }

    #[test]
    fn membership_and_modification() {
        let s = Coalition::from_members([0, 3, 7]);
        assert_eq!(s.size(), 3);
        assert!(s.contains(0) && s.contains(3) && s.contains(7));
        assert!(!s.contains(1));
        assert_eq!(s.with(1).size(), 4);
        assert_eq!(s.without(3).to_vec(), vec![0, 7]);
        assert_eq!(s.without(5), s, "removing a non-member is a no-op");
        assert_eq!(s.with(3), s, "adding a member is a no-op");
    }

    #[test]
    fn set_algebra() {
        let a = Coalition::from_members([0, 1, 2]);
        let b = Coalition::from_members([2, 3]);
        assert_eq!(a.union(b).to_vec(), vec![0, 1, 2, 3]);
        assert_eq!(a.intersect(b).to_vec(), vec![2]);
        assert_eq!(a.complement(5).to_vec(), vec![3, 4]);
        assert!(Coalition::from_members([1]).is_subset_of(a));
        assert!(!b.is_subset_of(a));
        assert!(Coalition::empty().is_subset_of(b));
    }

    #[test]
    fn complement_round_trip() {
        for n in [1usize, 4, 7, 100, 128] {
            let s = Coalition::from_members((0..n).filter(|i| i % 3 == 0));
            assert_eq!(s.complement(n).complement(n), s);
            assert_eq!(s.union(s.complement(n)), Coalition::full(n));
            assert!(s.intersect(s.complement(n)).is_empty());
        }
    }

    #[test]
    fn members_iterator_sorted() {
        let s = Coalition::from_members([9, 2, 127, 55]);
        assert_eq!(s.to_vec(), vec![2, 9, 55, 127]);
        assert_eq!(s.members().len(), 4);
    }

    #[test]
    fn all_subsets_counts() {
        assert_eq!(all_subsets(0).count(), 1);
        assert_eq!(all_subsets(4).count(), 16);
        let subsets: Vec<_> = all_subsets(2).collect();
        assert_eq!(subsets[0], Coalition::empty());
        assert_eq!(subsets[3], Coalition::full(2));
    }

    #[test]
    fn subsets_of_size_enumerates_combinations() {
        for n in 0..=10usize {
            for k in 0..=n {
                let subs: Vec<_> = subsets_of_size(n, k).collect();
                assert_eq!(subs.len() as u128, binom_u128(n, k), "C({n},{k}) mismatch");
                for s in &subs {
                    assert_eq!(s.size(), k);
                    assert!(s.is_subset_of(Coalition::full(n)));
                }
                // Lexicographically increasing and duplicate-free.
                for w in subs.windows(2) {
                    assert!(w[0].0 < w[1].0);
                }
            }
        }
    }

    #[test]
    fn subsets_of_size_large_n() {
        // n = 100, k = 2 must enumerate C(100, 2) = 4950 subsets.
        assert_eq!(subsets_of_size(100, 2).count(), 4950);
        assert_eq!(subsets_of_size(128, 1).count(), 128);
        assert_eq!(subsets_of_size(128, 0).count(), 1);
    }

    #[test]
    fn binomials() {
        assert_eq!(binom(0, 0), 1.0);
        assert_eq!(binom(5, 2), 10.0);
        assert_eq!(binom(10, 5), 252.0);
        assert_eq!(binom(10, 11), 0.0);
        assert_eq!(binom_u128(100, 2), 4950);
        assert_eq!(binom_u128(100, 50), 100891344545564193334812497256);
        // Intermediate product overflow saturates (documented behaviour).
        assert_eq!(binom_u128(128, 64), u128::MAX);
        assert_eq!(subsets_up_to(4, 1), 5);
        assert_eq!(subsets_up_to(10, 10), 1024);
    }

    #[test]
    fn pascal_identity() {
        for n in 1..40usize {
            for k in 1..n {
                assert_eq!(
                    binom_u128(n, k),
                    binom_u128(n - 1, k - 1) + binom_u128(n - 1, k)
                );
            }
        }
    }

    #[test]
    fn debug_format() {
        assert_eq!(format!("{:?}", Coalition::from_members([1, 3])), "{1,3}");
        assert_eq!(format!("{}", Coalition::empty()), "{}");
    }
}
