//! Fixed-width table printing for the experiment harness — each bench
//! target prints the same rows/series its paper counterpart reports.

/// A simple fixed-width text table.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(headers: I) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Render to a string (column-aligned, markdown-ish separators).
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.chars().count());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::from("|");
            for (cell, w) in cells.iter().zip(&widths) {
                let pad = w - cell.chars().count();
                line.push(' ');
                line.push_str(cell);
                line.extend(std::iter::repeat_n(' ', pad + 1));
                line.push('|');
            }
            line
        };
        let mut out = fmt_row(&self.headers);
        out.push('\n');
        let mut sep = String::from("|");
        for w in &widths {
            sep.extend(std::iter::repeat_n('-', w + 2));
            sep.push('|');
        }
        out.push_str(&sep);
        for row in &self.rows {
            out.push('\n');
            out.push_str(&fmt_row(row));
        }
        out
    }

    /// Print with a title banner.
    pub fn print(&self, title: &str) {
        println!("\n=== {title} ===");
        println!("{}", self.render());
    }
}

/// Format seconds with adaptive precision (as in the paper's Time(s)
/// columns).
pub fn fmt_secs(secs: f64) -> String {
    if secs >= 100.0 {
        format!("{secs:.0}")
    } else if secs >= 1.0 {
        format!("{secs:.2}")
    } else {
        format!("{secs:.4}")
    }
}

/// Format a relative error (the paper's Error(l2) columns); exact methods
/// pass `None` and print "-".
pub fn fmt_err(err: Option<f64>) -> String {
    match err {
        None => "-".to_string(),
        Some(e) if !e.is_finite() => "inf".to_string(),
        Some(e) if e >= 100.0 => format!("{e:.0}"),
        Some(e) => format!("{e:.4}"),
    }
}

/// Format "not applicable" cells (Table V's "\\" for gradient methods on
/// XGB).
pub fn not_applicable() -> String {
    "\\".to_string()
}

#[cfg(test)]
// Tests assert invariants; an unwrap that trips IS the test failing.
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let mut t = Table::new(["Alg", "Time(s)", "Error(l2)"]);
        t.row(["IPSS", "0.12", "0.0210"]);
        t.row(["MC-Shapley", "93.00", "-"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines equal width.
        let w = lines[0].chars().count();
        assert!(lines.iter().all(|l| l.chars().count() == w), "{s}");
        assert!(s.contains("| IPSS"));
    }

    #[test]
    #[should_panic]
    fn row_width_mismatch_panics() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only-one"]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_secs(0.01234), "0.0123");
        assert_eq!(fmt_secs(12.345), "12.35");
        assert_eq!(fmt_secs(1234.5), "1234");
        assert_eq!(fmt_err(None), "-");
        assert_eq!(fmt_err(Some(0.02)), "0.0200");
        assert_eq!(fmt_err(Some(123.0)), "123");
        assert_eq!(fmt_err(Some(f64::INFINITY)), "inf");
        assert_eq!(not_applicable(), "\\");
    }
}
