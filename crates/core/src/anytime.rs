//! Anytime valuation: running confidence intervals and stopping rules.
//!
//! Every sampling estimator in this crate draws its randomness up front
//! and folds evaluated coalitions in a fixed order, so the estimate after
//! any prefix of the schedule is a well-defined, bit-reproducible value.
//! This module supplies the machinery that turns those prefixes into an
//! *anytime* estimator: per-stratum running mean/variance accumulators
//! ([`Welford`]), the confidence-interval half-width over a stratified
//! estimate ([`component_variance`] / [`halfwidth`]), the progress
//! snapshot streamed after each flushed batch ([`ProgressSnapshot`]) and
//! the stopping rule a request can carry ([`StoppingRule`]).
//!
//! # CI conventions
//!
//! The half-width bounds *sampling* noise only, at 95% normal coverage
//! ([`Z_95`]). Per independent component (a stratum of Alg. 1 / IPSS, or
//! one Owen grid node), with `m` observed contributions out of a
//! population of `M` (sampling without replacement), the component's
//! variance term follows these conventions — chosen so the math never
//! divides by zero or produces NaN:
//!
//! * `m ≥ M` (component fully enumerated): the term is **0** — no
//!   sampling randomness remains (the finite-population correction in
//!   the limit).
//! * `m = 0` but the component is scheduled: the term is **unbounded**
//!   (`None`, surfacing as an `∞` half-width) — nothing observed yet.
//! * `m = 1` with `m < M`: **unbounded** — one observation cannot bound
//!   the spread.
//! * zero sample variance: the term is **0** (e.g. an additive utility's
//!   constant marginals).
//! * otherwise: `w²·(s²/m)·(1 − m/M)` — the classical stratum-mean
//!   variance with finite-population correction, scaled by the weight
//!   `w` the component carries in the estimate.
//!
//! Components an estimator never schedules (a zero-budget stratum, the
//! strata above IPSS's `k*`) contribute **0**: their omission is
//! truncation bias, deliberately excluded from a *sampling* CI — the
//! half-width brackets the estimator's own converged value, not the
//! exact Shapley value.
//!
//! # Determinism contract
//!
//! A snapshot is a pure function of the evaluated prefix: the streaming
//! estimators recompute the fold from scratch in the canonical order at
//! every batch boundary, so a run stopped after `b` batches returns
//! values **bit-identical** to the `b`-th snapshot of the same-seed full
//! run — at any thread count, under any coalescing schedule. A run whose
//! schedule completes returns values bit-identical to the non-streaming
//! estimator (the complete prefix folds through the identical code
//! path).

/// 97.5% standard-normal quantile: half-widths are 95% two-sided CIs.
pub const Z_95: f64 = 1.959963984540054;

/// Welford's online mean/variance accumulator — numerically stable
/// running moments over the contributions observed in fold order.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Welford {
    count: usize,
    mean: f64,
    m2: f64,
}

impl Welford {
    pub fn new() -> Self {
        Welford::default()
    }

    /// Fold one observation into the running moments.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Observations folded so far.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Running mean (0 before the first observation).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance `m2/(count−1)`, or `None` with fewer
    /// than two observations (a single sample cannot bound the spread).
    pub fn sample_variance(&self) -> Option<f64> {
        if self.count < 2 {
            return None;
        }
        // m2 is a sum of squares; guard the tiny negative excursions
        // floating-point cancellation can produce.
        Some((self.m2 / (self.count - 1) as f64).max(0.0))
    }
}

/// Variance contribution of one weighted component (stratum / grid node)
/// of a client's estimate, under sampling without replacement from a
/// population of `population` contributions (use `f64::INFINITY` for
/// with-replacement / unbounded frames).
///
/// Returns `None` when the component's spread cannot be bounded yet
/// (`m = 0`, or `m = 1` with the component not fully enumerated) — the
/// caller surfaces this as an infinite half-width. See the
/// [module docs](self) for the full convention table.
pub fn component_variance(acc: &Welford, weight: f64, population: f64) -> Option<f64> {
    let m = acc.count();
    if m == 0 {
        return None;
    }
    let m_f = m as f64;
    if m_f >= population {
        return Some(0.0); // fully enumerated: no sampling noise left
    }
    let s2 = acc.sample_variance()?;
    if s2 == 0.0 {
        return Some(0.0);
    }
    let fpc = (1.0 - m_f / population).max(0.0);
    Some(weight * weight * (s2 / m_f) * fpc)
}

/// Combine a client's per-component variance terms into the 95% CI
/// half-width: `Z_95 · sqrt(Σ terms)`, or `∞` if any scheduled
/// component is still unbounded (`None`).
pub fn halfwidth(terms: impl IntoIterator<Item = Option<f64>>) -> f64 {
    let mut total = 0.0f64;
    for term in terms {
        match term {
            Some(t) => total += t,
            None => return f64::INFINITY,
        }
    }
    Z_95 * total.sqrt()
}

/// One streamed progress event: the estimate and its uncertainty after a
/// flushed batch. A pure function of the evaluated prefix (see the
/// [module docs](self) for the determinism contract).
#[derive(Clone, Debug, PartialEq)]
pub struct ProgressSnapshot {
    /// Value estimates folded from the evaluated prefix, per client.
    pub values: Vec<f64>,
    /// 95% CI half-widths aligned with `values` (`∞` until every
    /// scheduled component of that client has enough observations).
    pub ci_halfwidths: Vec<f64>,
    /// Coalitions evaluated so far (including `∅` where the estimator
    /// evaluates it).
    pub samples_used: usize,
    /// Batches flushed so far.
    pub batches_done: usize,
    /// Cumulative per-component draw counts of an adaptive run (per
    /// stratum for Alg. 1, per grid node for Owen, per client frame for
    /// IPSS phase 2). `None` for fixed-schedule runs. Part of the
    /// adaptive determinism contract: the sequence of allocations is a
    /// pure function of (seed, snapshot history), so it is identical at
    /// any thread count or coalescing interleaving.
    pub allocation: Option<Vec<usize>>,
}

impl ProgressSnapshot {
    /// The widest client CI — what [`StoppingRule::ci_at_most`] tests.
    ///
    /// `None` when the snapshot carries no values at all (nothing to
    /// certify); ∞-propagating otherwise — a single unbounded client
    /// makes the result `∞`. Half-widths are never NaN by construction
    /// ([`halfwidth`] only produces `Z_95·√(Σ terms ≥ 0)` or `∞`), so
    /// the fold never has to arbitrate a NaN comparison.
    pub fn max_halfwidth(&self) -> Option<f64> {
        self.ci_halfwidths
            .iter()
            .copied()
            .fold(None, |acc, h| match acc {
                Some(a) => Some(a.max(h)),
                None => Some(h),
            })
    }
}

/// Whether a streaming estimator continues past a batch boundary.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Control {
    /// Evaluate the next batch.
    Continue,
    /// Stop: return the current snapshot's values (the canonical prefix
    /// fold) as the run's result.
    Stop,
}

/// When to stop a streaming run early, checked at every batch boundary.
/// Conditions compose with OR: the run stops as soon as *either* fires.
/// A rule with no conditions ([`StoppingRule::stream_only`]) never stops
/// the run but still turns on progress streaming in the service.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct StoppingRule {
    /// Stop once every client's CI half-width is at most this ε.
    pub ci_at_most: Option<f64>,
    /// Stop once this many coalitions have been evaluated.
    pub max_samples: Option<usize>,
}

impl StoppingRule {
    /// Stream progress snapshots without ever stopping early.
    pub fn stream_only() -> Self {
        StoppingRule::default()
    }

    /// Stop when the widest client CI half-width drops to `eps`.
    pub fn ci_at_most(eps: f64) -> Self {
        StoppingRule {
            ci_at_most: Some(eps),
            max_samples: None,
        }
    }

    /// Stop after `m` coalition evaluations.
    pub fn max_samples(m: usize) -> Self {
        StoppingRule {
            ci_at_most: None,
            max_samples: Some(m),
        }
    }

    /// Add a CI condition to this rule.
    pub fn and_ci_at_most(mut self, eps: f64) -> Self {
        self.ci_at_most = Some(eps);
        self
    }

    /// Add a sample cap to this rule.
    pub fn and_max_samples(mut self, m: usize) -> Self {
        self.max_samples = Some(m);
        self
    }

    /// Does the rule fire on this snapshot?
    pub fn should_stop(&self, snapshot: &ProgressSnapshot) -> bool {
        if let Some(eps) = self.ci_at_most {
            // An unbounded half-width certifies nothing: it never
            // satisfies a CI target, even ε = ∞. An empty snapshot
            // (no clients) certifies trivially.
            match snapshot.max_halfwidth() {
                Some(h) if h.is_finite() && h <= eps => return true,
                None => return true,
                _ => {}
            }
        }
        if let Some(m) = self.max_samples {
            if snapshot.samples_used >= m {
                return true;
            }
        }
        false
    }
}

/// What a streaming estimator returns: the final estimate plus the
/// anytime bookkeeping. The last snapshot passed to the observer always
/// equals this outcome field-for-field (values bit-identically), so a
/// dashboard's final event and the returned result never disagree.
#[derive(Clone, Debug, PartialEq)]
pub struct StreamingOutcome {
    /// The full fold when the schedule completed (bit-identical to the
    /// non-streaming estimator), or the canonical prefix fold at the
    /// stop point.
    pub values: Vec<f64>,
    /// Final 95% CI half-widths, aligned with `values`.
    pub ci_halfwidths: Vec<f64>,
    /// Coalitions evaluated.
    pub samples_used: usize,
    /// Batches flushed.
    pub batches_done: usize,
    /// Final cumulative per-component draw counts of an adaptive run
    /// (`None` for fixed schedules) — mirrors
    /// [`ProgressSnapshot::allocation`].
    pub allocation: Option<Vec<usize>>,
    /// The stopping rule fired before the schedule completed.
    pub stopped_early: bool,
}

impl StreamingOutcome {
    /// Build the outcome from the snapshot the observer saw last.
    pub fn from_snapshot(snapshot: ProgressSnapshot, stopped_early: bool) -> Self {
        StreamingOutcome {
            values: snapshot.values,
            ci_halfwidths: snapshot.ci_halfwidths,
            samples_used: snapshot.samples_used,
            batches_done: snapshot.batches_done,
            allocation: snapshot.allocation,
            stopped_early,
        }
    }
}

#[cfg(test)]
// Tests assert invariants; an unwrap that trips IS the test failing.
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_two_pass_moments() {
        let xs = [0.3, -1.2, 4.5, 0.0, 2.2, -0.7];
        let mut acc = Welford::new();
        for &x in &xs {
            acc.push(x);
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
        assert!((acc.mean() - mean).abs() < 1e-12);
        let got = match acc.sample_variance() {
            Some(v) => v,
            None => panic!("six observations must yield a variance"),
        };
        assert!((got - var).abs() < 1e-12);
    }

    #[test]
    fn welford_single_sample_has_no_variance() {
        let mut acc = Welford::new();
        assert_eq!(acc.sample_variance(), None);
        acc.push(3.0);
        assert_eq!(acc.sample_variance(), None);
        assert_eq!(acc.count(), 1);
        assert!((acc.mean() - 3.0).abs() < 1e-15);
    }

    #[test]
    fn welford_constant_sequence_has_zero_variance() {
        let mut acc = Welford::new();
        for _ in 0..50 {
            acc.push(0.125);
        }
        assert_eq!(acc.sample_variance(), Some(0.0));
    }

    #[test]
    fn component_variance_conventions() {
        // m = 0: unbounded.
        assert_eq!(component_variance(&Welford::new(), 1.0, 10.0), None);
        // m = 1 < M: unbounded.
        let mut one = Welford::new();
        one.push(2.0);
        assert_eq!(component_variance(&one, 1.0, 10.0), None);
        // m = 1 = M: fully enumerated, zero.
        assert_eq!(component_variance(&one, 1.0, 1.0), Some(0.0));
        // zero variance: zero.
        let mut flat = Welford::new();
        flat.push(5.0);
        flat.push(5.0);
        assert_eq!(component_variance(&flat, 1.0, 100.0), Some(0.0));
        // m = M > 1: fully enumerated, zero even with spread.
        let mut full = Welford::new();
        full.push(1.0);
        full.push(3.0);
        assert_eq!(component_variance(&full, 1.0, 2.0), Some(0.0));
        // The generic case: w²·(s²/m)·(1 − m/M).
        let mut acc = Welford::new();
        for x in [1.0, 2.0, 3.0, 4.0] {
            acc.push(x);
        }
        let s2 = match acc.sample_variance() {
            Some(v) => v,
            None => panic!("four observations"),
        };
        let got = match component_variance(&acc, 0.5, 10.0) {
            Some(v) => v,
            None => panic!("bounded"),
        };
        let want = 0.25 * (s2 / 4.0) * (1.0 - 4.0 / 10.0);
        assert!((got - want).abs() < 1e-15);
        // Infinite population: FPC factor 1, never NaN.
        let inf = match component_variance(&acc, 0.5, f64::INFINITY) {
            Some(v) => v,
            None => panic!("bounded"),
        };
        assert!((inf - 0.25 * (s2 / 4.0)).abs() < 1e-15);
        assert!(!inf.is_nan());
    }

    #[test]
    fn halfwidth_combines_and_propagates_unbounded() {
        assert_eq!(halfwidth([Some(0.0), Some(0.0)]), 0.0);
        let hw = halfwidth([Some(0.04), Some(0.05)]);
        assert!((hw - Z_95 * 0.3).abs() < 1e-12);
        assert!(halfwidth([Some(0.01), None]).is_infinite());
        assert_eq!(halfwidth(std::iter::empty()), 0.0);
        assert!(!halfwidth([Some(0.0)]).is_nan());
    }

    #[test]
    fn stopping_rule_fires_on_either_condition() {
        let snap = ProgressSnapshot {
            values: vec![0.1, 0.2],
            ci_halfwidths: vec![0.03, 0.05],
            samples_used: 40,
            batches_done: 4,
            allocation: None,
        };
        assert_eq!(snap.max_halfwidth(), Some(0.05));
        assert!(!StoppingRule::stream_only().should_stop(&snap));
        assert!(StoppingRule::ci_at_most(0.05).should_stop(&snap));
        assert!(!StoppingRule::ci_at_most(0.04).should_stop(&snap));
        assert!(StoppingRule::max_samples(40).should_stop(&snap));
        assert!(!StoppingRule::max_samples(41).should_stop(&snap));
        assert!(StoppingRule::ci_at_most(0.001)
            .and_max_samples(10)
            .should_stop(&snap));
    }

    #[test]
    fn infinite_halfwidth_never_satisfies_ci_rule() {
        let snap = ProgressSnapshot {
            values: vec![0.0],
            ci_halfwidths: vec![f64::INFINITY],
            samples_used: 1,
            batches_done: 1,
            allocation: None,
        };
        assert!(!StoppingRule::ci_at_most(1e9).should_stop(&snap));
        assert!(
            !StoppingRule::ci_at_most(f64::INFINITY).should_stop(&snap),
            "even ε = ∞ is not certified by an unbounded CI"
        );
        assert!(snap.max_halfwidth().is_some_and(f64::is_infinite));
    }

    #[test]
    fn max_halfwidth_conventions() {
        let snap = |widths: Vec<f64>| ProgressSnapshot {
            values: vec![0.0; widths.len()],
            ci_halfwidths: widths,
            samples_used: 0,
            batches_done: 0,
            allocation: None,
        };
        // Empty values: nothing to certify, `None`.
        assert_eq!(snap(vec![]).max_halfwidth(), None);
        // All-zero widths survive as an exact Some(0.0), not None.
        assert_eq!(snap(vec![0.0, 0.0]).max_halfwidth(), Some(0.0));
        // ∞ propagates over any finite widths.
        let inf = snap(vec![0.01, f64::INFINITY, 0.3]).max_halfwidth();
        assert!(inf.is_some_and(f64::is_infinite));
        // The fold is NaN-free over the values halfwidth() can produce.
        let h = snap(vec![0.0, 0.25, f64::INFINITY]).max_halfwidth();
        assert!(h.is_some_and(|x| !x.is_nan()));
        assert_eq!(snap(vec![0.3, 0.1]).max_halfwidth(), Some(0.3));
    }
}
