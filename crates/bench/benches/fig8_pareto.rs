//! Fig. 8(a–f) — Pareto curves of the time–error trade-off for the
//! sampling-based algorithms across n ∈ {3, 6, 10} and {MLP, CNN}.
//!
//! For each (algorithm, γ) one *fresh-cache, honestly timed* run provides
//! the time coordinate; additional warm-cache repetitions provide the
//! error spread. Paper shape: IPSS attains Pareto optimality across
//! client counts.

// Bench driver: measurement harness code panics on setup failure by
// design; unwrap/expect are the error mechanism here.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use fedval_bench::{
    base_seed, exact_values_neural, femnist, quick, run_neural, Algorithm, NeuralModel, Table,
};
use fedval_core::metrics::{l2_relative_error, pareto_front};

fn main() {
    let seed = base_seed();
    let ns = if quick() { vec![3, 6] } else { vec![3, 6, 10] };
    let models = if quick() {
        vec![NeuralModel::Mlp]
    } else {
        vec![NeuralModel::Mlp, NeuralModel::Cnn]
    };
    for model in models {
        for &n in &ns {
            // CNN at n = 10 is the most expensive cell; trim the sweep.
            if model == NeuralModel::Cnn && n == 10 && !quick() {
                // CNN at n = 10 retrains hundreds of coalitions per point;
                // covered by Table IV instead (deviation in EXPERIMENTS.md).
                continue;
            }
            let gammas: Vec<usize> = if quick() {
                vec![4, 8, 16]
            } else {
                vec![4, 8, 16, 32, 64]
            };
            let reps = if quick() || model == NeuralModel::Cnn {
                2
            } else {
                4
            };
            let problem = femnist(n, model, seed.wrapping_add(n as u64));
            let exact = exact_values_neural(&problem);
            let mut points: Vec<(Algorithm, f64, f64)> = Vec::new();
            for &alg in &Algorithm::SAMPLING {
                for &gamma in &gammas {
                    for rep in 0..reps {
                        let r = run_neural(
                            alg,
                            &problem,
                            gamma,
                            seed ^ ((rep as u64) << 16) ^ ((gamma as u64) << 4),
                        );
                        let err = l2_relative_error(&r.values, &exact);
                        points.push((alg, r.seconds(), err));
                    }
                }
            }
            let coords: Vec<(f64, f64)> = points.iter().map(|&(_, t, e)| (t, e)).collect();
            let front = pareto_front(&coords);
            let mut table = Table::new(["Algorithm", "Time(s)", "Error(l2)"]);
            let mut ipss_on_front = false;
            for &idx in &front {
                let (alg, t, e) = points[idx];
                ipss_on_front |= alg == Algorithm::Ipss;
                table.row([alg.name().to_string(), format!("{t:.4}"), format!("{e:.4}")]);
            }
            table.print(&format!(
                "Fig. 8 — Pareto front, FEMNIST-like, n = {n}, {} ({} points total)",
                model.name(),
                points.len()
            ));
            println!(
                "Shape check: IPSS on the Pareto front: {}",
                if ipss_on_front { "yes" } else { "NO" }
            );
        }
    }
}
