//! # fedval-core
//!
//! Shapley-value data valuation for federated learning — a Rust
//! implementation of *"Efficient Data Valuation Approximation in Federated
//! Learning: A Sampling-based Approach"* (Wei et al., ICDE 2025).
//!
//! The crate provides, over an abstract coalition [`utility::Utility`]:
//!
//! * exact computation under the three equivalent SV expressions
//!   ([`exact::exact_mc_sv`], [`exact::exact_cc_sv`], [`exact::exact_perm_sv`]);
//! * the unified stratified-sampling framework of Alg. 1
//!   ([`stratified::stratified_sampling`]) supporting both the MC-SV and
//!   CC-SV computation schemes;
//! * K-Greedy (Alg. 2, [`kgreedy::k_greedy`]) — the diagnostic that exposes
//!   the *key combinations* phenomenon;
//! * **IPSS** (Alg. 3, [`ipss::ipss`]) — the paper's importance-pruned
//!   stratified sampler;
//! * the sampling baselines of Sec. V ([`baselines`]): Extended-TMC,
//!   Extended-GTB and CC-Shapley;
//! * further valuation notions for cross-checks ([`banzhaf`], [`loo`],
//!   [`owen`]): Data-Banzhaf, leave-one-out and Owen multilinear
//!   sampling;
//! * the evaluation metrics of Sec. V-A ([`metrics`]), including the
//!   `l2` relative error (Eq. 21), property-based proxies (Fig. 9) and
//!   Pareto-front extraction (Fig. 8).
//!
//! Real FL training lives in `fedval-fl`; the closed-form linear-regression
//! analysis (Lemma 1, Theorems 2–3) lives in `fedval-theory`. Everything
//! here is substrate-agnostic.
//!
//! ## Quick example
//!
//! ```
//! use fedval_core::prelude::*;
//! use rand::SeedableRng;
//!
//! // The paper's three-hospital example (Table I).
//! let utility = TableUtility::paper_table1();
//! let exact = exact_mc_sv(&utility);
//! assert!((exact[0] - 0.22).abs() < 1e-9);
//!
//! // IPSS with the budget the paper uses for n = 3 (Table III: γ = 5).
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let approx = ipss_values(&utility, &IpssConfig::new(5), &mut rng);
//! let err = l2_relative_error(&approx, &exact);
//! assert!(err < 0.5);
//! ```

pub mod adaptive;
pub mod anytime;
pub mod banzhaf;
pub mod baselines;
pub mod coalition;
pub mod exact;
pub mod fault;
pub mod ipss;
pub mod kgreedy;
pub mod loo;
pub mod metrics;
pub mod owen;
pub mod sampling;
pub mod service;
pub mod stratified;
pub mod utility;
pub mod valuation;

/// Convenient re-exports of the most commonly used items.
pub mod prelude {
    pub use crate::adaptive::{AdaptivePolicy, AllocationPlanner, ComponentState};
    pub use crate::anytime::{
        Control, ProgressSnapshot, StoppingRule, StreamingOutcome, Welford, Z_95,
    };
    pub use crate::banzhaf::{
        banzhaf_msr, banzhaf_pruned, banzhaf_pruned_streaming, exact_banzhaf, BanzhafConfig,
    };
    pub use crate::baselines::{
        cc_shapley, extended_gtb, extended_gtb_values, extended_tmc, CcShapConfig, GtbConfig,
        TmcConfig,
    };
    pub use crate::coalition::{binom, binom_u128, subsets_up_to, Coalition};
    pub use crate::exact::{exact_cc_sv, exact_mc_sv, exact_mc_sv_streaming, exact_perm_sv};
    pub use crate::fault::{FaultyUtility, InjectedFault, PERSISTENT};
    pub use crate::ipss::{
        compute_k_star, ipss, ipss_adaptive, ipss_streaming, ipss_streaming_adaptive, ipss_values,
        AdaptiveIpssConfig, IpssConfig, IpssWeighting,
    };
    pub use crate::kgreedy::{k_greedy, k_greedy_evaluations};
    pub use crate::loo::leave_one_out;
    pub use crate::metrics::{
        kendall_tau, l2_relative_error, max_abs_error, pareto_front, property_error,
    };
    pub use crate::owen::{
        owen_sampling, owen_sampling_streaming, owen_sampling_streaming_adaptive, OwenConfig,
    };
    pub use crate::service::{
        partial_prefix_fold, Estimator, FlushWindow, LimitPolicy, RetryPolicy, RunStats,
        ServiceStats, Ticket, ValuationError, ValuationRequest, ValuationResponse, ValuationServer,
    };
    pub use crate::stratified::{
        stratified_sampling, stratified_sampling_streaming, stratified_sampling_streaming_adaptive,
        stratified_sampling_values, Scheme, StratifiedConfig,
    };
    pub use crate::utility::{
        AdditiveUtility, CachedUtility, EvalStats, HashUtility, NoisyUtility, ParallelUtility,
        SaturatingUtility, TableUtility, TrajCacheStats, Utility, WeightedMajorityUtility,
    };
    pub use crate::valuation::{run_valuation, ValuationOutcome};
}
