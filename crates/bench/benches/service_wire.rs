//! service_wire — the transport saturation bench: requests/sec vs
//! p50/p99 latency of the HTTP/JSON wire (`fedval-serve`) at increasing
//! client concurrency, solo vs concurrent serving, plus an admission-
//! control section where a deliberately starved server (2 in-flight
//! slots, 8 clients, slowed evaluations) sheds load with 429 +
//! `Retry-After` and every shed request succeeds on retry.
//!
//! The utility under the wire is the hash game, so evaluation cost is
//! negligible and the numbers isolate what this bench tracks: the
//! transport + service-stack overhead per request (parse, translate,
//! coalesce, encode). Values at every concurrency level are asserted
//! **byte-identical** to direct in-process `ValuationServer::call` —
//! the wire must never trade determinism for throughput.
//!
//! Report: `BENCH_transport.json` at the workspace root (override with
//! `FEDVAL_TRANSPORT_JSON=<path>`), extending the percentile format of
//! `BENCH_service.json`. `FEDVAL_QUICK=1` shrinks the sweep.

// Bench driver: measurement harness code panics on setup failure by
// design; unwrap/expect are the error mechanism here.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::io::Write as _;
use std::thread;
use std::time::{Duration, Instant};

use fedval_bench::quick;
use fedval_core::fault::FaultyUtility;
use fedval_core::service::{Estimator, ValuationRequest, ValuationServer};
use fedval_core::utility::HashUtility;
use fedval_serve::http::Client;
use fedval_serve::json::Json;
use fedval_serve::{WireConfig, WireServer};

const N: usize = 8;

fn utility() -> HashUtility {
    HashUtility { n: N, seed: 0xBEE }
}

fn request_body(seed: u64) -> String {
    format!(r#"{{"estimator":"stratified_mc","budget":40,"seed":{seed}}}"#)
}

/// Percentile (0..=100) of a small sample, nearest-rank.
fn percentile(samples: &[f64], p: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let rank = ((p / 100.0 * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn values_bits(body: &Json) -> Vec<u64> {
    body.get("values")
        .and_then(Json::as_array)
        .expect("response has values")
        .iter()
        .map(|v| v.as_f64().expect("value is a number").to_bits())
        .collect()
}

struct Level {
    clients: usize,
    requests: usize,
    secs: f64,
    /// Per-request wall latency, seconds.
    latencies: Vec<f64>,
}

impl Level {
    fn req_per_sec(&self) -> f64 {
        self.requests as f64 / self.secs
    }
}

/// One concurrency level: `clients` keep-alive connections, each firing
/// `per_client` requests back to back against a fresh server. Every
/// response's values are checked byte-identical to the same-seed direct
/// in-process call.
fn run_level(clients: usize, per_client: usize, baselines: &[Vec<u64>]) -> Level {
    let wire =
        WireServer::start(ValuationServer::start(utility()), WireConfig::default()).expect("bind");
    let addr = wire.addr();
    let start = Instant::now();
    let latencies: Vec<f64> = thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    let mut lats = Vec::with_capacity(per_client);
                    for r in 0..per_client {
                        let seed = (c * per_client + r) % baselines.len();
                        let body = request_body(seed as u64);
                        let t = Instant::now();
                        let resp = client.post("/v1/value", &body).expect("roundtrip");
                        lats.push(t.elapsed().as_secs_f64());
                        assert_eq!(resp.status, 200, "{}", String::from_utf8_lossy(&resp.body));
                        assert_eq!(
                            values_bits(&resp.json().expect("JSON body")),
                            baselines[seed],
                            "wire values diverged from in-process call (seed {seed})"
                        );
                    }
                    lats
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread"))
            .collect()
    });
    let secs = start.elapsed().as_secs_f64();
    wire.shutdown();
    Level {
        clients,
        requests: clients * per_client,
        secs,
        latencies,
    }
}

fn print_level(l: &Level) {
    println!(
        "{:2} clients  {:4} requests  {:8.3}s  {:8.1} req/s  latency p50 {:7.3}ms p99 {:7.3}ms",
        l.clients,
        l.requests,
        l.secs,
        l.req_per_sec(),
        percentile(&l.latencies, 50.0) * 1e3,
        percentile(&l.latencies, 99.0) * 1e3,
    );
}

fn level_json(l: &Level) -> String {
    format!(
        "{{\"clients\": {}, \"requests\": {}, \"seconds\": {:.6}, \
         \"requests_per_sec\": {:.4}, \"latency_p50_ms\": {:.4}, \"latency_p99_ms\": {:.4}}}",
        l.clients,
        l.requests,
        l.secs,
        l.req_per_sec(),
        percentile(&l.latencies, 50.0) * 1e3,
        percentile(&l.latencies, 99.0) * 1e3,
    )
}

struct Saturation {
    clients: usize,
    max_inflight: usize,
    completed: usize,
    rejected_429: usize,
    secs: f64,
    /// Latency of *successful* attempts only, seconds.
    latencies: Vec<f64>,
}

/// The saturation section: a starved server (slowed evaluations, 2
/// in-flight slots) against 8 clients. Rejected attempts honour
/// `Retry-After` and retry until they succeed — admission control sheds
/// load without losing work.
fn run_saturation(clients: usize, per_client: usize, max_inflight: usize) -> Saturation {
    let slow = FaultyUtility::new(utility()).delay_every_evals(1, Duration::from_millis(1));
    let wire = WireServer::start(
        ValuationServer::start(slow),
        WireConfig {
            max_inflight,
            ..WireConfig::default()
        },
    )
    .expect("bind");
    let addr = wire.addr();
    let start = Instant::now();
    let per_thread: Vec<(usize, Vec<f64>)> = thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    let mut rejected = 0usize;
                    let mut lats = Vec::with_capacity(per_client);
                    for r in 0..per_client {
                        let body = request_body((c * per_client + r) as u64);
                        loop {
                            let t = Instant::now();
                            let resp = client.post("/v1/value", &body).expect("roundtrip");
                            if resp.status == 429 {
                                rejected += 1;
                                let retry_ms: u64 = resp
                                    .header("retry-after")
                                    .and_then(|v| v.parse::<u64>().ok())
                                    .map(|secs| secs * 1000)
                                    .unwrap_or(100)
                                    // The header's resolution is whole
                                    // seconds; back off a fraction of it
                                    // so the bench stays brisk while
                                    // still honouring the signal's shape.
                                    .min(50);
                                thread::sleep(Duration::from_millis(retry_ms));
                                continue;
                            }
                            assert_eq!(resp.status, 200, "{}", String::from_utf8_lossy(&resp.body));
                            lats.push(t.elapsed().as_secs_f64());
                            break;
                        }
                    }
                    (rejected, lats)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });
    let secs = start.elapsed().as_secs_f64();
    wire.shutdown();
    let rejected_429 = per_thread.iter().map(|(r, _)| r).sum();
    let latencies: Vec<f64> = per_thread.into_iter().flat_map(|(_, l)| l).collect();
    Saturation {
        clients,
        max_inflight,
        completed: latencies.len(),
        rejected_429,
        secs,
        latencies,
    }
}

fn main() {
    let per_client = if quick() { 8 } else { 32 };
    let levels: &[usize] = if quick() { &[1, 4] } else { &[1, 2, 4, 8] };
    println!(
        "service_wire: hash game n = {N}, stratified MC budget 40, {per_client} requests/client"
    );

    // Direct in-process baselines per seed, bit-compared at every level.
    let distinct_seeds = 16.min(levels.iter().max().copied().unwrap_or(1) * per_client);
    let baseline_server = ValuationServer::start(utility());
    let baselines: Vec<Vec<u64>> = (0..distinct_seeds as u64)
        .map(|seed| {
            baseline_server
                .call(ValuationRequest::new(Estimator::StratifiedMc, 40, seed))
                .expect("healthy run")
                .values
                .iter()
                .map(|v| v.to_bits())
                .collect()
        })
        .collect();
    baseline_server.shutdown();

    let results: Vec<Level> = levels
        .iter()
        .map(|&c| {
            let l = run_level(c, per_client, &baselines);
            print_level(&l);
            l
        })
        .collect();

    let sat_clients = if quick() { 4 } else { 8 };
    let sat = run_saturation(sat_clients, per_client.min(8), 2);
    println!(
        "saturation  {:2} clients vs {} slots  {:4} completed  {:4} shed (429)  {:8.3}s  \
         latency p50 {:7.3}ms p99 {:7.3}ms",
        sat.clients,
        sat.max_inflight,
        sat.completed,
        sat.rejected_429,
        sat.secs,
        percentile(&sat.latencies, 50.0) * 1e3,
        percentile(&sat.latencies, 99.0) * 1e3,
    );
    assert_eq!(
        sat.completed,
        sat.clients * per_client.min(8),
        "every shed request must eventually succeed on retry"
    );
    assert!(
        sat.rejected_429 > 0,
        "8 clients against 2 slots with slowed evals must shed load at least once"
    );

    let level_entries: Vec<String> = results.iter().map(level_json).collect();
    let path = std::env::var("FEDVAL_TRANSPORT_JSON")
        .unwrap_or_else(|_| format!("{}/../../BENCH_transport.json", env!("CARGO_MANIFEST_DIR")));
    let report = format!(
        "{{\n  \"bench\": \"service_wire\",\n  \"scenario\": \"HTTP/1.1 keep-alive clients against one fedval-serve instance over the hash game (n = {N}, stratified MC, budget 40): requests/sec and per-request latency percentiles at rising client concurrency (solo = 1 client), every response bit-compared to direct in-process ValuationServer::call; plus a starved server (2 in-flight slots, slowed evaluations) shedding load with 429 + Retry-After and losing no work to retries\",\n  \"n_clients\": {N},\n  \"requests_per_client\": {per_client},\n  {},\n  \"levels\": [\n    {}\n  ],\n  \"saturation\": {{\"clients\": {}, \"max_inflight\": {}, \"completed\": {}, \"rejected_429\": {}, \"seconds\": {:.6}, \"latency_p50_ms\": {:.4}, \"latency_p99_ms\": {:.4}}},\n  \"values_bit_identical\": true\n}}\n",
        fedval_bench::parallelism_json_fields(),
        level_entries.join(",\n    "),
        sat.clients,
        sat.max_inflight,
        sat.completed,
        sat.rejected_429,
        sat.secs,
        percentile(&sat.latencies, 50.0) * 1e3,
        percentile(&sat.latencies, 99.0) * 1e3,
    );
    let mut file = std::fs::File::create(&path).expect("create BENCH_transport.json");
    file.write_all(report.as_bytes())
        .expect("write BENCH_transport.json");
    println!("wrote {path}");
}
