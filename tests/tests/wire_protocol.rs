//! Wire-conformance suite for `fedval-serve`: golden request/response
//! fixtures covering every estimator variant (plus streaming, adaptive,
//! sub-game and partial-response requests), and a table-driven test
//! pinning each [`ValuationError`] variant to its documented status code
//! and serialized error body.
//!
//! Fixtures live in `tests/wire_fixtures/*.json` as
//! `{"request": …, "status": …, "response": …}` documents with the
//! timing-dependent fields (`wall_time_ms`, `park_wait_max_ms`)
//! normalized to `null`. They are generated against
//! `HashUtility { n: 6, seed: 42 }`, whose values are independent of the
//! CI matrix axes (threads, linalg backend, trajectory cache), so the
//! same goldens hold in every cell. Regenerate after an intentional
//! schema change with `FEDVAL_REGEN_WIRE_FIXTURES=1 cargo test -p
//! fedval-tests --test wire_protocol`.

// Driver code: test assertions panic by design, so unwrap/expect are
// the failure mechanism, not a robustness gap.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::time::Duration;

use fedval_core::service::{ValuationError, ValuationServer};
use fedval_core::utility::HashUtility;
use fedval_serve::http::Client;
use fedval_serve::json::{parse, Json};
use fedval_serve::wire::{encode_error, error_kind, error_status, ESTIMATOR_NAMES};
use fedval_serve::{WireConfig, WireServer};

/// The matrix-stable utility every fixture is generated against.
fn golden_server() -> WireServer<HashUtility> {
    let valuation = ValuationServer::start(HashUtility { n: 6, seed: 42 });
    WireServer::start(valuation, WireConfig::default()).expect("bind")
}

fn fixture_dir() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("wire_fixtures")
}

/// Replace timing-dependent leaves with `null`, recursively, so goldens
/// compare structurally.
fn normalize(v: &mut Json) {
    match v {
        Json::Obj(pairs) => {
            for (k, val) in pairs.iter_mut() {
                if k == "wall_time_ms" || k == "park_wait_max_ms" {
                    *val = Json::Null;
                } else {
                    normalize(val);
                }
            }
        }
        Json::Arr(items) => {
            for item in items.iter_mut() {
                normalize(item);
            }
        }
        _ => {}
    }
}

/// The golden request set: one per estimator, plus the request-surface
/// corners (sub-game subset, streaming stop, adaptive allocation,
/// budget-capped partial).
fn golden_requests() -> Vec<(&'static str, String)> {
    vec![
        ("exact_mc", r#"{"estimator":"exact_mc","seed":1}"#.into()),
        ("exact_cc", r#"{"estimator":"exact_cc","seed":1}"#.into()),
        ("loo", r#"{"estimator":"loo"}"#.into()),
        (
            "ipss",
            r#"{"estimator":"ipss","budget":20,"seed":7}"#.into(),
        ),
        (
            "stratified_mc",
            r#"{"estimator":"stratified_mc","budget":30,"seed":7}"#.into(),
        ),
        (
            "stratified_cc",
            r#"{"estimator":"stratified_cc","budget":30,"seed":7}"#.into(),
        ),
        (
            "owen",
            r#"{"estimator":"owen","budget":56,"seed":7}"#.into(),
        ),
        (
            "banzhaf_pruned",
            r#"{"estimator":"banzhaf_pruned","budget":16,"seed":7}"#.into(),
        ),
        (
            "subgame",
            r#"{"estimator":"stratified_mc","budget":24,"seed":9,"clients":[1,3,5]}"#.into(),
        ),
        (
            "streaming_stop",
            r#"{"estimator":"stratified_mc","budget":60,"seed":11,"stopping":{"max_samples":24}}"#
                .into(),
        ),
        (
            "adaptive",
            r#"{"estimator":"stratified_mc","budget":24,"seed":13,"adaptive":{}}"#.into(),
        ),
        (
            "partial_budget",
            r#"{"estimator":"exact_mc","seed":1,"max_evals":16,"on_limit":"partial"}"#.into(),
        ),
    ]
}

#[test]
fn golden_fixtures_cover_every_estimator_and_match() {
    let requests = golden_requests();
    // Every estimator name appears in the fixture set.
    for &(name, _) in ESTIMATOR_NAMES {
        assert!(
            requests.iter().any(|(_, body)| body.contains(name)),
            "estimator {name} has no golden fixture"
        );
    }
    let regen = std::env::var("FEDVAL_REGEN_WIRE_FIXTURES").is_ok();
    let dir = fixture_dir();
    if regen {
        std::fs::create_dir_all(&dir).expect("create fixture dir");
    }
    for (name, body) in requests {
        // A fresh server per fixture keeps the cumulative `service`
        // stats deterministic.
        let wire = golden_server();
        let mut client = Client::connect(wire.addr()).expect("connect");
        let resp = client.post("/v1/value", &body).expect("roundtrip");
        let mut actual = resp.json().unwrap_or_else(|e| {
            panic!("fixture {name}: response is not JSON ({e})");
        });
        normalize(&mut actual);
        let path = dir.join(format!("{name}.json"));
        if regen {
            let doc = Json::obj([
                ("request", parse(&body).expect("fixture request parses")),
                (
                    "status",
                    Json::Num(fedval_serve::json::Num::U64(resp.status as u64)),
                ),
                ("response", actual.clone()),
            ]);
            std::fs::write(&path, doc.encode()).expect("write fixture");
            wire.shutdown();
            continue;
        }
        let golden_text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("fixture {name}: read {path:?} failed ({e}); regenerate with FEDVAL_REGEN_WIRE_FIXTURES=1"));
        let golden = parse(&golden_text).expect("fixture parses");
        assert_eq!(
            golden.get("status").and_then(Json::as_u64),
            Some(resp.status as u64),
            "fixture {name}: status drifted"
        );
        let mut expected = golden
            .get("response")
            .expect("fixture has response")
            .clone();
        normalize(&mut expected);
        assert_eq!(
            actual.encode(),
            expected.encode(),
            "fixture {name}: response drifted"
        );
        wire.shutdown();
    }
}

// ---------------------------------------------------------------------
// The error table: every ValuationError variant → a distinct documented
// status and a serialized body carrying the variant's payload.
// ---------------------------------------------------------------------

#[test]
fn every_valuation_error_variant_maps_to_its_documented_status() {
    let table: Vec<(ValuationError, u16, &str)> = vec![
        (
            ValuationError::InvalidRequest {
                detail: "client 9 out of range".into(),
            },
            400,
            "invalid_request",
        ),
        (
            ValuationError::BudgetExhausted {
                consumed: 12,
                max_evals: 16,
                next_batch: 8,
            },
            402,
            "budget_exhausted",
        ),
        (
            ValuationError::EstimatorPanicked {
                detail: "γ must be positive".into(),
            },
            500,
            "estimator_panicked",
        ),
        (
            ValuationError::UtilityPanicked {
                attempts: 3,
                detail: "injected fault".into(),
            },
            502,
            "utility_panicked",
        ),
        (ValuationError::ServerShutdown, 503, "server_shutdown"),
        (
            ValuationError::DeadlineExceeded {
                deadline: Duration::from_millis(10),
                elapsed: Duration::from_millis(12),
            },
            504,
            "deadline_exceeded",
        ),
        (ValuationError::WorkerLost, 520, "worker_lost"),
    ];
    // The table is exhaustive: a new variant fails this match.
    for (err, _, _) in &table {
        match err {
            ValuationError::InvalidRequest { .. }
            | ValuationError::BudgetExhausted { .. }
            | ValuationError::EstimatorPanicked { .. }
            | ValuationError::UtilityPanicked { .. }
            | ValuationError::ServerShutdown
            | ValuationError::DeadlineExceeded { .. }
            | ValuationError::WorkerLost => {}
        }
    }
    let mut seen = Vec::new();
    for (err, status, kind) in &table {
        assert_eq!(error_status(err), *status, "{kind}");
        assert_eq!(error_kind(err), *kind);
        assert!(!seen.contains(status), "status {status} reused");
        seen.push(*status);
        let (s, body) = encode_error(err);
        assert_eq!(s, *status);
        assert_eq!(
            body.get("status").and_then(Json::as_u64),
            Some(*status as u64)
        );
        let error = body.get("error").expect("body nests under `error`");
        assert_eq!(error.get("kind").and_then(Json::as_str), Some(*kind));
        assert!(
            error.get("detail").and_then(Json::as_str).is_some(),
            "{kind}: every error carries a human-readable detail"
        );
    }
    // Variant payloads survive serialization.
    let (_, body) = encode_error(&ValuationError::BudgetExhausted {
        consumed: 12,
        max_evals: 16,
        next_batch: 8,
    });
    let error = body.get("error").unwrap();
    assert_eq!(error.get("consumed").and_then(Json::as_u64), Some(12));
    assert_eq!(error.get("max_evals").and_then(Json::as_u64), Some(16));
    assert_eq!(error.get("next_batch").and_then(Json::as_u64), Some(8));
    let (_, body) = encode_error(&ValuationError::DeadlineExceeded {
        deadline: Duration::from_millis(10),
        elapsed: Duration::from_millis(12),
    });
    let error = body.get("error").unwrap();
    assert_eq!(error.get("deadline_ms").and_then(Json::as_f64), Some(10.0));
    assert_eq!(error.get("elapsed_ms").and_then(Json::as_f64), Some(12.0));
    let (_, body) = encode_error(&ValuationError::UtilityPanicked {
        attempts: 3,
        detail: "injected fault".into(),
    });
    assert_eq!(
        body.get("error")
            .unwrap()
            .get("attempts")
            .and_then(Json::as_u64),
        Some(3)
    );
}

// ---------------------------------------------------------------------
// The triggerable variants, end to end over the socket.
// ---------------------------------------------------------------------

#[test]
fn service_errors_surface_with_their_documented_status_over_the_wire() {
    let wire = golden_server();
    let mut client = Client::connect(wire.addr()).expect("connect");
    // InvalidRequest → 400: client index past n = 6.
    let resp = client
        .post("/v1/value", r#"{"estimator":"loo","clients":[0,9]}"#)
        .expect("roundtrip");
    assert_eq!(resp.status, 400, "{}", String::from_utf8_lossy(&resp.body));
    assert_eq!(
        resp.json()
            .unwrap()
            .get("error")
            .unwrap()
            .get("kind")
            .and_then(Json::as_str),
        Some("invalid_request")
    );
    // BudgetExhausted → 402: a 1-eval cap the exact sweep must blow
    // through, with on_limit=fail.
    let resp = client
        .post(
            "/v1/value",
            r#"{"estimator":"exact_mc","seed":1,"max_evals":1,"on_limit":"fail"}"#,
        )
        .expect("roundtrip");
    assert_eq!(resp.status, 402, "{}", String::from_utf8_lossy(&resp.body));
    let body = resp.json().unwrap();
    assert_eq!(
        body.get("error")
            .unwrap()
            .get("kind")
            .and_then(Json::as_str),
        Some("budget_exhausted")
    );
    assert_eq!(
        body.get("error")
            .unwrap()
            .get("max_evals")
            .and_then(Json::as_u64),
        Some(1)
    );
    // EstimatorPanicked → 500: IPSS asserts its γ ≥ 1.
    let resp = client
        .post("/v1/value", r#"{"estimator":"ipss","budget":0,"seed":1}"#)
        .expect("roundtrip");
    assert_eq!(resp.status, 500, "{}", String::from_utf8_lossy(&resp.body));
    assert_eq!(
        resp.json()
            .unwrap()
            .get("error")
            .unwrap()
            .get("kind")
            .and_then(Json::as_str),
        Some("estimator_panicked")
    );
    // DeadlineExceeded → 504: an already-expired deadline with
    // on_limit=fail fires at the first batch boundary.
    let resp = client
        .post(
            "/v1/value",
            r#"{"estimator":"stratified_mc","budget":30,"seed":7,"deadline_ms":0,"on_limit":"fail"}"#,
        )
        .expect("roundtrip");
    assert_eq!(resp.status, 504, "{}", String::from_utf8_lossy(&resp.body));
    assert_eq!(
        resp.json()
            .unwrap()
            .get("error")
            .unwrap()
            .get("kind")
            .and_then(Json::as_str),
        Some("deadline_exceeded")
    );
    // ServerShutdown → 503: drain began, new work is refused (the
    // connection still gets its typed answer).
    wire.begin_shutdown();
    let resp = client
        .post("/v1/value", r#"{"estimator":"loo"}"#)
        .expect("roundtrip");
    assert_eq!(resp.status, 503, "{}", String::from_utf8_lossy(&resp.body));
    assert_eq!(
        resp.json()
            .unwrap()
            .get("error")
            .unwrap()
            .get("kind")
            .and_then(Json::as_str),
        Some("server_shutdown")
    );
    wire.shutdown();
}

#[test]
fn stats_and_healthz_round_trip() {
    let wire = golden_server();
    let mut client = Client::connect(wire.addr()).expect("connect");
    let resp = client
        .post("/v1/value", r#"{"estimator":"loo"}"#)
        .expect("roundtrip");
    assert_eq!(resp.status, 200);
    let stats = client.get("/v1/stats").expect("roundtrip");
    assert_eq!(stats.status, 200);
    let body = stats.json().unwrap();
    assert_eq!(body.get("requests").and_then(Json::as_u64), Some(1));
    assert!(body.get("evaluations").and_then(Json::as_u64).unwrap_or(0) > 0);
    let health = client.get("/v1/healthz").expect("roundtrip");
    assert_eq!(health.status, 200);
    assert_eq!(
        health.json().unwrap().get("ok").and_then(|v| v.as_bool()),
        Some(true)
    );
    wire.shutdown();
}
