//! Adversarial wire input: truncated bodies, invalid JSON, unknown
//! estimator/field names, oversized payloads, missing framing headers,
//! and pipelined/keep-alive edge cases all come back as 4xx — and the
//! server keeps serving healthy requests afterwards, never panics.
//!
//! Set `FEDVAL_FAULTS=1` (any value) to additionally run the whole suite
//! over a [`FaultyUtility`] with seeded transient faults: retries heal
//! them, so every "still healthy" assertion holds under injected faults
//! too — CI's fault matrix cell exercises exactly that.

// Driver code: test assertions panic by design, so unwrap/expect are
// the failure mechanism, not a robustness gap.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::time::Duration;

use fedval_core::fault::FaultyUtility;
use fedval_core::service::{RetryPolicy, ValuationServer};
use fedval_core::utility::HashUtility;
use fedval_serve::http::{build_request_bytes, Client, Limits};
use fedval_serve::json::Json;
use fedval_serve::{WireConfig, WireServer};

/// The suite's server: `HashUtility` under the wire, optionally wrapped
/// in seeded *transient* faults (healed by retry, so responses still
/// succeed bit-identically) when `FEDVAL_FAULTS` is set.
fn suite_server(cfg: WireConfig) -> WireServer<FaultyUtility<HashUtility>> {
    let inner = HashUtility { n: 5, seed: 3 };
    let faulty = if std::env::var("FEDVAL_FAULTS").is_ok() {
        FaultyUtility::new(inner).seeded_faults(29, 3)
    } else {
        // A FaultyUtility with no faults configured is a transparent
        // pass-through, keeping one server type for both modes.
        FaultyUtility::new(inner)
    };
    let valuation = ValuationServer::builder(faulty)
        .retry_policy(RetryPolicy {
            max_retries: 2,
            backoff_base: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(4),
        })
        .start();
    WireServer::start(valuation, cfg).expect("bind")
}

fn error_kind(resp: &fedval_serve::http::ClientResponse) -> String {
    resp.json()
        .unwrap_or_else(|e| panic!("error body must be JSON ({e}): {:?}", resp.body))
        .get("error")
        .and_then(|o| o.get("kind"))
        .and_then(Json::as_str)
        .map(str::to_string)
        .unwrap_or_else(|| panic!("error body has no kind: {:?}", resp.body))
}

/// A request that must succeed — the "server is still healthy" probe.
fn assert_healthy(client: &mut Client) {
    let resp = client
        .post("/v1/value", r#"{"estimator":"loo"}"#)
        .expect("healthy probe roundtrip");
    assert_eq!(
        resp.status,
        200,
        "server unhealthy: {}",
        String::from_utf8_lossy(&resp.body)
    );
}

#[test]
fn invalid_json_and_bad_schemas_return_400_and_leave_the_server_up() {
    let wire = suite_server(WireConfig::default());
    let cases: &[(&str, &str)] = &[
        // Body, expected error.kind.
        ("", "malformed_json"),
        ("{", "malformed_json"),
        ("not json at all", "malformed_json"),
        (r#"{"estimator":"loo""#, "malformed_json"),
        (r#"{"estimator":"loo",}"#, "malformed_json"),
        (r#"{"estimator":"loo","seed":1e999}"#, "malformed_json"),
        (r#"{"estimator":"loo","x":0,"x":1}"#, "malformed_json"),
        (r#"\xff\xfe"#, "malformed_json"),
        (r#"{"estimator":"shapley_xl"}"#, "bad_request"),
        (r#"{"estimator":"loo","bugdet":3}"#, "bad_request"),
        (r#"{"estimator":"loo","seed":-4}"#, "bad_request"),
        (r#"{"estimator":"loo","seed":1.5}"#, "bad_request"),
        (r#"{"estimator":"loo","clients":"all"}"#, "bad_request"),
        (r#"{"estimator":"loo","on_limit":"explode"}"#, "bad_request"),
        (r#"{"estimator":"loo","stopping":{"ci":1}}"#, "bad_request"),
        (r#"{"estimator":"loo","deadline_ms":-1}"#, "bad_request"),
        (r#"[1,2,3]"#, "bad_request"),
        (r#"42"#, "bad_request"),
    ];
    for (body, want_kind) in cases {
        // Fresh connection per case: a JSON-level 400 keeps the
        // connection open, but asserting per-case isolation is the point
        // here (reuse is covered below).
        let mut client = Client::connect(wire.addr()).expect("connect");
        let resp = client.post("/v1/value", body).expect("roundtrip");
        assert_eq!(resp.status, 400, "body {body:?}");
        assert_eq!(&error_kind(&resp), want_kind, "body {body:?}");
        assert_healthy(&mut client);
    }
    wire.shutdown();
}

#[test]
fn truncated_body_is_a_400_not_a_hang_or_panic() {
    let wire = suite_server(WireConfig::default());
    let mut client = Client::connect(wire.addr()).expect("connect");
    // Declare 100 bytes, send 10, half-close. The server must answer
    // 400 rather than wait forever or tear down undecorated.
    client
        .send_raw(b"POST /v1/value HTTP/1.1\r\nhost: x\r\ncontent-length: 100\r\n\r\n{\"estimato")
        .expect("send");
    client.shutdown_write().expect("half-close");
    let resp = client.read_response().expect("response");
    assert_eq!(resp.status, 400);
    assert_eq!(error_kind(&resp), "bad_request");
    // Framing is shot: the server closes this connection, and a fresh
    // one works.
    let mut fresh = Client::connect(wire.addr()).expect("connect");
    assert_healthy(&mut fresh);
    wire.shutdown();
}

#[test]
fn missing_content_length_on_post_is_411() {
    let wire = suite_server(WireConfig::default());
    let mut client = Client::connect(wire.addr()).expect("connect");
    client
        .send_raw(b"POST /v1/value HTTP/1.1\r\nhost: x\r\n\r\n")
        .expect("send");
    let resp = client.read_response().expect("response");
    assert_eq!(resp.status, 411);
    assert_eq!(error_kind(&resp), "length_required");
    let mut fresh = Client::connect(wire.addr()).expect("connect");
    assert_healthy(&mut fresh);
    wire.shutdown();
}

#[test]
fn oversized_payload_is_413_without_reading_the_body() {
    let wire = suite_server(WireConfig {
        limits: Limits {
            max_body_bytes: 256,
            ..Limits::default()
        },
        ..WireConfig::default()
    });
    let mut client = Client::connect(wire.addr()).expect("connect");
    // Declare far past the cap; the server must reject on the declared
    // length alone (the body is never transmitted).
    client
        .send_raw(b"POST /v1/value HTTP/1.1\r\nhost: x\r\ncontent-length: 1000000\r\n\r\n")
        .expect("send");
    let resp = client.read_response().expect("response");
    assert_eq!(resp.status, 413);
    assert_eq!(error_kind(&resp), "payload_too_large");
    let mut fresh = Client::connect(wire.addr()).expect("connect");
    assert_healthy(&mut fresh);
    wire.shutdown();
}

#[test]
fn oversized_head_is_431() {
    let wire = suite_server(WireConfig {
        limits: Limits {
            max_head_bytes: 512,
            ..Limits::default()
        },
        ..WireConfig::default()
    });
    let mut client = Client::connect(wire.addr()).expect("connect");
    let huge = format!(
        "GET /v1/healthz HTTP/1.1\r\nhost: x\r\nx-padding: {}\r\n\r\n",
        "a".repeat(2048)
    );
    client.send_raw(huge.as_bytes()).expect("send");
    let resp = client.read_response().expect("response");
    assert_eq!(resp.status, 431);
    assert_eq!(error_kind(&resp), "head_too_large");
    let mut fresh = Client::connect(wire.addr()).expect("connect");
    assert_healthy(&mut fresh);
    wire.shutdown();
}

#[test]
fn unknown_paths_and_methods_map_to_404_and_405() {
    let wire = suite_server(WireConfig::default());
    let mut client = Client::connect(wire.addr()).expect("connect");
    let resp = client.get("/v2/value").expect("roundtrip");
    assert_eq!(resp.status, 404);
    assert_eq!(error_kind(&resp), "not_found");
    let resp = client.get("/v1/value").expect("roundtrip");
    assert_eq!(resp.status, 405);
    assert_eq!(error_kind(&resp), "method_not_allowed");
    assert_eq!(resp.header("allow"), Some("POST"));
    let resp = client
        .request("DELETE", "/v1/stats", Some("{}"))
        .expect("roundtrip");
    assert_eq!(resp.status, 405);
    assert_eq!(resp.header("allow"), Some("GET"));
    assert_healthy(&mut client);
    wire.shutdown();
}

#[test]
fn garbage_request_line_is_400() {
    let wire = suite_server(WireConfig::default());
    for garbage in [
        b"GARBAGE\r\n\r\n".as_slice(),
        b"GET\r\n\r\n".as_slice(),
        b"GET /v1/healthz HTTP/3.0\r\n\r\n".as_slice(),
        b"GET /v1/healthz HTTP/1.1\r\nbroken header line\r\n\r\n".as_slice(),
    ] {
        let mut client = Client::connect(wire.addr()).expect("connect");
        client.send_raw(garbage).expect("send");
        let resp = client.read_response().expect("response");
        assert_eq!(resp.status, 400, "garbage {garbage:?}");
    }
    let mut fresh = Client::connect(wire.addr()).expect("connect");
    assert_healthy(&mut fresh);
    wire.shutdown();
}

#[test]
fn pipelined_requests_answer_in_order_on_one_connection() {
    let wire = suite_server(WireConfig::default());
    let mut client = Client::connect(wire.addr()).expect("connect");
    // Two complete POSTs in a single write; responses must come back in
    // order on the same socket.
    let mut bytes =
        build_request_bytes("POST", "/v1/value", Some(r#"{"estimator":"loo","seed":0}"#));
    bytes.extend_from_slice(&build_request_bytes(
        "POST",
        "/v1/value",
        Some(r#"{"estimator":"ipss","budget":10,"seed":5}"#),
    ));
    client.send_raw(&bytes).expect("send");
    let first = client.read_response().expect("first response");
    let second = client.read_response().expect("second response");
    assert_eq!(
        first.status,
        200,
        "{}",
        String::from_utf8_lossy(&first.body)
    );
    assert_eq!(
        second.status,
        200,
        "{}",
        String::from_utf8_lossy(&second.body)
    );
    assert_eq!(
        first
            .json()
            .unwrap()
            .get("estimator")
            .and_then(Json::as_str),
        Some("loo")
    );
    assert_eq!(
        second
            .json()
            .unwrap()
            .get("estimator")
            .and_then(Json::as_str),
        Some("ipss")
    );
    wire.shutdown();
}

#[test]
fn keep_alive_survives_interleaved_errors() {
    let wire = suite_server(WireConfig::default());
    let mut client = Client::connect(wire.addr()).expect("connect");
    // good → bad JSON (400, stays open) → good → 404 → good, all on one
    // connection.
    assert_healthy(&mut client);
    let resp = client.post("/v1/value", "{oops").expect("roundtrip");
    assert_eq!(resp.status, 400);
    assert_healthy(&mut client);
    let resp = client.get("/nope").expect("roundtrip");
    assert_eq!(resp.status, 404);
    assert_healthy(&mut client);
    wire.shutdown();
}

#[test]
fn connection_close_is_honored() {
    let wire = suite_server(WireConfig::default());
    let mut client = Client::connect(wire.addr()).expect("connect");
    client
        .send_raw(
            b"POST /v1/value HTTP/1.1\r\nhost: x\r\nconnection: close\r\ncontent-length: 19\r\n\r\n{\"estimator\":\"loo\"}",
        )
        .expect("send");
    let resp = client.read_response().expect("response");
    assert_eq!(resp.status, 200);
    assert_eq!(resp.header("connection"), Some("close"));
    wire.shutdown();
}
