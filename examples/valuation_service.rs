//! The multi-valuation service, end to end: three concurrent valuation
//! requests — exact Shapley, IPSS and leave-one-out — served against
//! **one** FL utility, with their coalition evaluations coalesced into
//! shared lock-step lane blocks over one trajectory cache.
//!
//! The example demonstrates (and asserts) the service's two contracts:
//!
//! 1. **Bit-identical results.** Every request returns exactly the values
//!    it would get running alone against a fresh utility.
//! 2. **Sub-additive cost.** The shared caches make the three runs
//!    together cheaper than the sum of the three runs alone: fewer
//!    distinct models trained (`EvalStats.evaluations`) *and* fewer local
//!    trainings underneath (`TrajCacheStats.local_trainings`).
//!
//! ```sh
//! cargo run --release -p fedval-examples --bin valuation_service
//! ```

// Demo driver: service errors surface by panicking with the message;
// a real integration would match on the typed ValuationError.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use fedval_core::service::{Estimator, ValuationRequest, ValuationResponse};
use fedval_data::{MnistLike, SyntheticSetup};
use fedval_fl::service::{serve, FlServiceConfig};
use fedval_fl::{FedAvgConfig, FlUtility, ModelSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;

const N_CLIENTS: usize = 6;

/// One training setup, built fresh per server so runs never share state
/// by accident (every `FlUtility` is a pure function of these inputs).
fn fl_utility() -> FlUtility {
    let gen = MnistLike::new(0x5E1);
    let (train, test) = gen.generate_split(30 * N_CLIENTS, 120, 0x5E2);
    let mut rng = StdRng::seed_from_u64(0x5E3);
    let clients = SyntheticSetup::SameSizeSameDist.partition(&train, N_CLIENTS, &mut rng);
    FlUtility::new(
        clients,
        test,
        ModelSpec::default_mlp(),
        FedAvgConfig {
            rounds: 2,
            local_epochs: 1,
            seed: 0x5E4,
            ..Default::default()
        },
    )
}

/// The workload: three queries a data marketplace would ask about one
/// federation — full payouts, a cheap refresh, and a drop-one audit.
fn requests() -> Vec<ValuationRequest> {
    vec![
        ValuationRequest::new(Estimator::ExactMc, 0, 1),
        ValuationRequest::new(Estimator::Ipss, 24, 2),
        ValuationRequest::new(Estimator::Loo, 0, 3),
    ]
}

/// Serve `reqs` on one server; returns the responses plus the server's
/// final (evaluations, local_trainings) totals.
fn run_server(
    reqs: Vec<ValuationRequest>,
    concurrent: bool,
) -> (Vec<ValuationResponse>, usize, usize) {
    let (server, _cache) = serve(
        fl_utility(),
        FlServiceConfig {
            // Generous budget: big enough to never evict in this demo,
            // present to show where the memory bound plugs in.
            traj_budget_bytes: Some(64 << 20),
            ..Default::default()
        },
    );
    let responses: Vec<ValuationResponse> = if concurrent {
        let tickets: Vec<_> = reqs.into_iter().map(|r| server.submit(r)).collect();
        tickets
            .into_iter()
            .map(|t| t.wait().expect("healthy demo utility"))
            .collect()
    } else {
        reqs.into_iter()
            .map(|r| server.call(r).expect("healthy demo utility"))
            .collect()
    };
    let stats = server.stats();
    let trainings = stats
        .traj
        .expect("FL service wires traj stats")
        .local_trainings;
    let evals = stats.eval.evaluations;
    server.shutdown();
    (responses, evals, trainings)
}

fn main() {
    println!("valuation_service: {N_CLIENTS} clients, FedAvg MLP, 3 valuation requests\n");

    // Solo baselines: each request alone on a fresh server (fresh caches).
    let mut solo_values = Vec::new();
    let mut solo_evals_sum = 0;
    let mut solo_trainings_sum = 0;
    for req in requests() {
        let (resp, evals, trainings) = run_server(vec![req.clone()], false);
        println!(
            "solo {:?}: {} models trained, {} local trainings",
            req.estimator, evals, trainings
        );
        solo_evals_sum += evals;
        solo_trainings_sum += trainings;
        solo_values.push(resp.into_iter().next().expect("one response").values);
    }
    println!("solo total: {solo_evals_sum} models trained, {solo_trainings_sum} local trainings\n");

    // The service: all three concurrently over one utility.
    let (responses, evals, trainings) = run_server(requests(), true);
    for resp in &responses {
        println!(
            "served {:?}: {} batches ({} coalesced with another run), {} coalition values",
            resp.request.estimator,
            resp.run.batches,
            resp.run.coalesced_batches,
            resp.run.coalitions
        );
    }
    println!("service total: {evals} models trained, {trainings} local trainings");

    // Contract 1: bit-identical to solo execution.
    for (resp, solo) in responses.iter().zip(&solo_values) {
        assert_eq!(
            &resp.values, solo,
            "served {:?} diverged from its solo run",
            resp.request.estimator
        );
    }
    println!("values bit-identical to solo execution: true");

    // Contract 2: the shared caches make the joint run strictly cheaper.
    assert!(
        evals < solo_evals_sum,
        "coalition dedup must bite: {evals} served vs {solo_evals_sum} solo"
    );
    assert!(
        trainings < solo_trainings_sum,
        "trajectory dedup must bite: {trainings} served vs {solo_trainings_sum} solo"
    );
    println!(
        "dedup factors: {:.2}x models, {:.2}x local trainings",
        solo_evals_sum as f64 / evals as f64,
        solo_trainings_sum as f64 / trainings as f64
    );

    // The per-client verdict, from the exact run (efficiency: the values
    // sum to U(N) − U(∅), which is small for this two-round demo).
    let exact = &responses[0];
    println!("\nexact Shapley values (sum = U(N) − U(∅) = {:.4}):", {
        exact.values.iter().sum::<f64>()
    });
    for (i, v) in exact.values.iter().enumerate() {
        println!("  client {i}: {v:+.4}");
    }

    // Failure model: a budget-capped request degrades gracefully instead
    // of erroring — it returns the fold of whatever prefix its budget
    // afforded, flagged partial. `Ticket::wait` returns a Result, so a
    // caller handles faults and limits in one match.
    let (server, _cache) = serve(fl_utility(), FlServiceConfig::default());
    let capped =
        server.submit(ValuationRequest::new(Estimator::Ipss, 24, 2).with_max_evals(1 + N_CLIENTS));
    match capped.wait() {
        Ok(resp) if resp.run.partial => println!(
            "\nbudget-capped IPSS: partial after {} batches ({} evals), values {:?}",
            resp.run.batches, resp.run.coalitions, resp.values
        ),
        Ok(resp) => println!("\nbudget-capped IPSS finished in full: {:?}", resp.values),
        Err(e) => println!("\nbudget-capped IPSS failed: {e}"),
    }
    server.shutdown();
}
