//! In-memory classification datasets shared by every FL substrate.
//!
//! Features are stored row-major in a flat `Vec<f32>` (cache-friendly for
//! the dense kernels in `fedval-nn` and the histogram scans in
//! `fedval-gbdt`).

use rand::seq::SliceRandom;
use rand::Rng;

/// A dense classification dataset.
#[derive(Clone, Debug, PartialEq)]
pub struct Dataset {
    /// Row-major feature matrix: `n_samples × n_features`.
    features: Vec<f32>,
    /// Class labels in `0..n_classes`.
    labels: Vec<u32>,
    n_features: usize,
    n_classes: usize,
}

impl Dataset {
    /// Create an empty dataset with the given schema (used for free-rider
    /// clients in the Fig. 9 scalability test).
    pub fn empty(n_features: usize, n_classes: usize) -> Self {
        assert!(n_features > 0 && n_classes > 0);
        Dataset {
            features: Vec::new(),
            labels: Vec::new(),
            n_features,
            n_classes,
        }
    }

    /// Create from parts. Panics if the feature buffer does not tile into
    /// rows or a label is out of range.
    pub fn from_parts(
        features: Vec<f32>,
        labels: Vec<u32>,
        n_features: usize,
        n_classes: usize,
    ) -> Self {
        assert!(n_features > 0 && n_classes > 0);
        assert_eq!(features.len(), labels.len() * n_features);
        assert!(labels.iter().all(|&l| (l as usize) < n_classes));
        Dataset {
            features,
            labels,
            n_features,
            n_classes,
        }
    }

    pub fn n_samples(&self) -> usize {
        self.labels.len()
    }

    pub fn n_features(&self) -> usize {
        self.n_features
    }

    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Feature row of sample `i`.
    pub fn row(&self, i: usize) -> &[f32] {
        &self.features[i * self.n_features..(i + 1) * self.n_features]
    }

    /// Mutable feature row of sample `i`.
    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        &mut self.features[i * self.n_features..(i + 1) * self.n_features]
    }

    /// Label of sample `i`.
    pub fn label(&self, i: usize) -> u32 {
        self.labels[i]
    }

    /// Set the label of sample `i`.
    pub fn set_label(&mut self, i: usize, label: u32) {
        assert!((label as usize) < self.n_classes);
        self.labels[i] = label;
    }

    /// All labels.
    pub fn labels(&self) -> &[u32] {
        &self.labels
    }

    /// The flat feature buffer.
    pub fn features(&self) -> &[f32] {
        &self.features
    }

    /// Append one sample.
    pub fn push(&mut self, row: &[f32], label: u32) {
        assert_eq!(row.len(), self.n_features);
        assert!((label as usize) < self.n_classes);
        self.features.extend_from_slice(row);
        self.labels.push(label);
    }

    /// Rows selected by index (duplicates allowed — used by bootstrap-style
    /// partitioners).
    pub fn select(&self, indices: &[usize]) -> Dataset {
        let mut out = Dataset::empty(self.n_features, self.n_classes);
        out.features.reserve(indices.len() * self.n_features);
        out.labels.reserve(indices.len());
        for &i in indices {
            out.features.extend_from_slice(self.row(i));
            out.labels.push(self.labels[i]);
        }
        out
    }

    /// Concatenate datasets with identical schema. Used to build the
    /// coalition training set `D_S = ∪_{i∈S} D_i`.
    pub fn union<'a, I: IntoIterator<Item = &'a Dataset>>(parts: I) -> Option<Dataset> {
        let mut iter = parts.into_iter();
        let first = iter.next()?;
        let mut out = first.clone();
        for ds in iter {
            assert_eq!(ds.n_features, out.n_features, "schema mismatch");
            assert_eq!(ds.n_classes, out.n_classes, "schema mismatch");
            out.features.extend_from_slice(&ds.features);
            out.labels.extend_from_slice(&ds.labels);
        }
        Some(out)
    }

    /// Shuffle samples in place.
    pub fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        let n = self.n_samples();
        for i in (1..n).rev() {
            let j = rng.random_range(0..=i);
            self.swap(i, j);
        }
    }

    fn swap(&mut self, i: usize, j: usize) {
        if i == j {
            return;
        }
        self.labels.swap(i, j);
        let f = self.n_features;
        let (lo, hi) = if i < j { (i, j) } else { (j, i) };
        let (a, b) = self.features.split_at_mut(hi * f);
        a[lo * f..(lo + 1) * f].swap_with_slice(&mut b[..f]);
    }

    /// Split off the first `k` samples into a new dataset, leaving the rest.
    pub fn split_at(&self, k: usize) -> (Dataset, Dataset) {
        assert!(k <= self.n_samples());
        let head = Dataset {
            features: self.features[..k * self.n_features].to_vec(),
            labels: self.labels[..k].to_vec(),
            n_features: self.n_features,
            n_classes: self.n_classes,
        };
        let tail = Dataset {
            features: self.features[k * self.n_features..].to_vec(),
            labels: self.labels[k..].to_vec(),
            n_features: self.n_features,
            n_classes: self.n_classes,
        };
        (head, tail)
    }

    /// Histogram of labels.
    pub fn class_distribution(&self) -> Vec<usize> {
        let mut hist = vec![0usize; self.n_classes];
        for &l in &self.labels {
            hist[l as usize] += 1;
        }
        hist
    }

    /// Indices of samples with the given label.
    pub fn indices_of_class(&self, class: u32) -> Vec<usize> {
        (0..self.n_samples())
            .filter(|&i| self.labels[i] == class)
            .collect()
    }

    /// Deal samples round-robin into `n` equally sized datasets after an
    /// optional shuffle, preserving the overall class distribution in
    /// expectation.
    pub fn deal<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Vec<Dataset> {
        assert!(n >= 1);
        let mut order: Vec<usize> = (0..self.n_samples()).collect();
        order.shuffle(rng);
        let mut parts = vec![Dataset::empty(self.n_features, self.n_classes); n];
        for (pos, &idx) in order.iter().enumerate() {
            parts[pos % n].push(self.row(idx), self.labels[idx]);
        }
        parts
    }
}

#[cfg(test)]
// Tests assert invariants; an unwrap that trips IS the test failing.
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy() -> Dataset {
        let mut ds = Dataset::empty(2, 3);
        ds.push(&[1.0, 2.0], 0);
        ds.push(&[3.0, 4.0], 1);
        ds.push(&[5.0, 6.0], 2);
        ds.push(&[7.0, 8.0], 1);
        ds
    }

    #[test]
    fn push_and_access() {
        let ds = toy();
        assert_eq!(ds.n_samples(), 4);
        assert_eq!(ds.row(2), &[5.0, 6.0]);
        assert_eq!(ds.label(3), 1);
        assert_eq!(ds.class_distribution(), vec![1, 2, 1]);
        assert_eq!(ds.indices_of_class(1), vec![1, 3]);
    }

    #[test]
    #[should_panic]
    fn label_out_of_range_panics() {
        let mut ds = Dataset::empty(1, 2);
        ds.push(&[0.0], 2);
    }

    #[test]
    fn select_and_union() {
        let ds = toy();
        let sel = ds.select(&[3, 0, 3]);
        assert_eq!(sel.n_samples(), 3);
        assert_eq!(sel.row(0), &[7.0, 8.0]);
        assert_eq!(sel.label(2), 1);
        let merged = Dataset::union([&ds, &sel]).unwrap();
        assert_eq!(merged.n_samples(), 7);
        assert_eq!(merged.row(4), &[7.0, 8.0]);
        assert!(Dataset::union(std::iter::empty()).is_none());
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut ds = toy();
        let before: Vec<(Vec<f32>, u32)> =
            (0..4).map(|i| (ds.row(i).to_vec(), ds.label(i))).collect();
        let mut rng = StdRng::seed_from_u64(3);
        ds.shuffle(&mut rng);
        let mut after: Vec<(Vec<f32>, u32)> =
            (0..4).map(|i| (ds.row(i).to_vec(), ds.label(i))).collect();
        let mut sorted_before = before;
        sorted_before.sort_by(|a, b| a.partial_cmp(b).unwrap());
        after.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(sorted_before, after);
    }

    #[test]
    fn split_preserves_rows() {
        let ds = toy();
        let (head, tail) = ds.split_at(1);
        assert_eq!(head.n_samples(), 1);
        assert_eq!(tail.n_samples(), 3);
        assert_eq!(head.row(0), &[1.0, 2.0]);
        assert_eq!(tail.row(0), &[3.0, 4.0]);
    }

    #[test]
    fn deal_round_robin_sizes() {
        let mut big = Dataset::empty(1, 2);
        for i in 0..103 {
            big.push(&[i as f32], (i % 2) as u32);
        }
        let mut rng = StdRng::seed_from_u64(1);
        let parts = big.deal(4, &mut rng);
        let sizes: Vec<usize> = parts.iter().map(|p| p.n_samples()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 103);
        assert!(sizes.iter().all(|&s| s == 25 || s == 26));
    }

    #[test]
    fn empty_dataset() {
        let ds = Dataset::empty(3, 2);
        assert!(ds.is_empty());
        assert_eq!(ds.n_samples(), 0);
        assert_eq!(ds.class_distribution(), vec![0, 0]);
    }
}

/// Per-feature standardisation statistics fitted on a training set and
/// applicable to any dataset with the same schema (fit on train, apply to
/// test — never the other way round).
#[derive(Clone, Debug)]
pub struct Standardizer {
    means: Vec<f32>,
    stds: Vec<f32>,
}

impl Standardizer {
    /// Fit means and standard deviations per feature. Degenerate features
    /// (zero variance) get `std = 1` so they pass through unchanged.
    pub fn fit(data: &Dataset) -> Self {
        let d = data.n_features();
        let n = data.n_samples().max(1) as f32;
        let mut means = vec![0.0f32; d];
        for i in 0..data.n_samples() {
            for (m, &v) in means.iter_mut().zip(data.row(i)) {
                *m += v;
            }
        }
        for m in &mut means {
            *m /= n;
        }
        let mut vars = vec![0.0f32; d];
        for i in 0..data.n_samples() {
            for ((s, &v), &m) in vars.iter_mut().zip(data.row(i)).zip(&means) {
                *s += (v - m) * (v - m);
            }
        }
        let stds = vars
            .into_iter()
            .map(|v| {
                let s = (v / n).sqrt();
                if s > 1e-8 {
                    s
                } else {
                    1.0
                }
            })
            .collect();
        Standardizer { means, stds }
    }

    /// Standardise a dataset in place: `x ← (x − mean)/std`.
    pub fn apply(&self, data: &mut Dataset) {
        assert_eq!(data.n_features(), self.means.len());
        for i in 0..data.n_samples() {
            for ((v, &m), &s) in data.row_mut(i).iter_mut().zip(&self.means).zip(&self.stds) {
                *v = (*v - m) / s;
            }
        }
    }
}

#[cfg(test)]
mod standardizer_tests {
    use super::*;

    #[test]
    fn standardises_to_zero_mean_unit_variance() {
        let mut ds = Dataset::empty(2, 2);
        ds.push(&[1.0, 10.0], 0);
        ds.push(&[3.0, 30.0], 1);
        ds.push(&[5.0, 50.0], 0);
        let std = Standardizer::fit(&ds);
        std.apply(&mut ds);
        for j in 0..2 {
            let vals: Vec<f32> = (0..3).map(|i| ds.row(i)[j]).collect();
            let mean: f32 = vals.iter().sum::<f32>() / 3.0;
            let var: f32 = vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 3.0;
            assert!(mean.abs() < 1e-6);
            assert!((var - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn degenerate_feature_passes_through() {
        let mut ds = Dataset::empty(1, 2);
        ds.push(&[7.0], 0);
        ds.push(&[7.0], 1);
        let std = Standardizer::fit(&ds);
        std.apply(&mut ds);
        // x − mean = 0, divided by fallback std 1.
        assert_eq!(ds.row(0), &[0.0]);
    }

    #[test]
    fn fit_on_train_apply_to_test() {
        let mut train = Dataset::empty(1, 2);
        train.push(&[0.0], 0);
        train.push(&[2.0], 1);
        let mut test = Dataset::empty(1, 2);
        test.push(&[4.0], 0);
        let std = Standardizer::fit(&train);
        std.apply(&mut test);
        // (4 − 1)/1 = 3.
        assert_eq!(test.row(0), &[3.0]);
    }
}
