//! Loss functions: softmax cross-entropy (classification utility) and mean
//! squared error (regression; the Donahue–Kleinberg analysis in
//! `fedval-theory` uses its closed form).

use crate::backend::{Backend, LinalgBackend};

/// Numerically stable softmax over each row of `logits`
/// (`batch × classes`), in place.
pub fn softmax_in_place(logits: &mut [f32], classes: usize) {
    for row in logits.chunks_exact_mut(classes) {
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        for v in row.iter_mut() {
            *v /= sum;
        }
    }
}

/// Mean cross-entropy loss and its gradient with respect to the logits.
///
/// Returns `(loss, grad)` where `grad = (softmax(z) − onehot(y)) / batch`,
/// so downstream layers can accumulate raw sums.
pub fn softmax_cross_entropy(logits: &[f32], labels: &[u32], classes: usize) -> (f32, Vec<f32>) {
    let batch = labels.len();
    assert_eq!(logits.len(), batch * classes);
    assert!(batch > 0);
    let mut probs = logits.to_vec();
    softmax_in_place(&mut probs, classes);
    let mut loss = 0.0f64;
    let inv_batch = 1.0 / batch as f32;
    for (i, &y) in labels.iter().enumerate() {
        let p = probs[i * classes + y as usize].max(1e-12);
        loss -= (p as f64).ln();
        // Gradient: p − onehot, scaled by 1/batch.
        probs[i * classes + y as usize] -= 1.0;
    }
    for g in &mut probs {
        *g *= inv_batch;
    }
    ((loss / batch as f64) as f32, probs)
}

/// Row-wise argmax predictions from logits.
pub fn argmax_rows(logits: &[f32], classes: usize) -> Vec<u32> {
    logits
        .chunks_exact(classes)
        .map(|row| {
            let mut best = 0usize;
            for (i, &v) in row.iter().enumerate() {
                if v > row[best] {
                    best = i;
                }
            }
            best as u32
        })
        .collect()
}

/// Mean squared error and gradient: `L = Σ (ŷ − y)² / batch`.
///
/// The loss reduction runs through the linalg backend (`Σd² = ⟨d, d⟩`).
/// Loss helpers are free functions with no config handle, so this uses
/// the *process-wide* `FEDVAL_BACKEND` selection — not any per-utility
/// override. Under the (default) reference backend the ascending-index
/// sum is unchanged from the historical inline loop.
pub fn mse(pred: &[f32], target: &[f32]) -> (f32, Vec<f32>) {
    assert_eq!(pred.len(), target.len());
    assert!(!pred.is_empty());
    let n = pred.len() as f32;
    let diff: Vec<f32> = pred.iter().zip(target).map(|(&p, &t)| p - t).collect();
    let loss = Backend::default().dot(&diff, &diff) / n;
    let grad = diff.iter().map(|&d| 2.0 * d / n).collect();
    (loss, grad)
}

#[cfg(test)]
// Tests assert invariants; an unwrap that trips IS the test failing.
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn softmax_rows_sum_to_one() {
        let mut logits = vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0];
        softmax_in_place(&mut logits, 3);
        for row in logits.chunks_exact(3) {
            let sum: f32 = row.iter().sum();
            assert!((sum - 1.0).abs() < 1e-6);
            assert!(row.iter().all(|&p| p > 0.0));
        }
        // Monotone in logits.
        assert!(logits[2] > logits[1] && logits[1] > logits[0]);
    }

    #[test]
    fn softmax_is_shift_invariant_and_stable() {
        let mut a = vec![1000.0, 1001.0];
        softmax_in_place(&mut a, 2);
        let mut b = vec![0.0, 1.0];
        softmax_in_place(&mut b, 2);
        assert!((a[0] - b[0]).abs() < 1e-6);
        assert!(a.iter().all(|p| p.is_finite()));
    }

    #[test]
    fn cross_entropy_perfect_prediction() {
        // Very confident correct logits → near-zero loss.
        let logits = vec![10.0, -10.0, -10.0];
        let (loss, grad) = softmax_cross_entropy(&logits, &[0], 3);
        assert!(loss < 1e-3);
        assert!(grad.iter().all(|g| g.abs() < 1e-3));
    }

    #[test]
    fn cross_entropy_uniform_prediction() {
        let logits = vec![0.0, 0.0];
        let (loss, grad) = softmax_cross_entropy(&logits, &[1], 2);
        assert!((loss - (2.0f32).ln()).abs() < 1e-5);
        // grad = (0.5, −0.5)/1.
        assert!((grad[0] - 0.5).abs() < 1e-6);
        assert!((grad[1] + 0.5).abs() < 1e-6);
    }

    #[test]
    fn cross_entropy_gradient_matches_finite_difference() {
        let logits = vec![0.3, -0.7, 1.1, 0.2, 0.5, -0.1];
        let labels = [2u32, 0];
        let (_, grad) = softmax_cross_entropy(&logits, &labels, 3);
        let eps = 1e-3;
        for i in 0..logits.len() {
            let mut plus = logits.clone();
            plus[i] += eps;
            let mut minus = logits.clone();
            minus[i] -= eps;
            let (lp, _) = softmax_cross_entropy(&plus, &labels, 3);
            let (lm, _) = softmax_cross_entropy(&minus, &labels, 3);
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (numeric - grad[i]).abs() < 1e-3,
                "grad[{i}]: numeric {numeric} vs analytic {}",
                grad[i]
            );
        }
    }

    #[test]
    fn argmax_predictions() {
        let logits = vec![0.1, 0.9, 0.5, 2.0, -1.0, 0.0];
        assert_eq!(argmax_rows(&logits, 3), vec![1, 0]);
    }

    #[test]
    fn mse_basics() {
        let (loss, grad) = mse(&[1.0, 2.0], &[0.0, 2.0]);
        assert!((loss - 0.5).abs() < 1e-6);
        assert!((grad[0] - 1.0).abs() < 1e-6);
        assert_eq!(grad[1], 0.0);
    }
}
