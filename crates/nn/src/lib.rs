//! # fedval-nn
//!
//! Minimal neural-network substrate with manual backpropagation, built for
//! the FL experiments of the IPSS paper. The paper's implementation uses
//! TensorFlow 2.4; mature Rust DL stacks (candle/burn) are not yet suited
//! to these FL experiments, so this crate provides exactly what the
//! experiments need (substitution rationale in DESIGN.md §2):
//!
//! * [`layers`] — `Dense`, `ReLU`, `Conv2d`, `MaxPool2` with hand-written
//!   backward passes (finite-difference-checked in tests);
//! * [`network::Network`] — sequential container with SGD training,
//!   accuracy/loss evaluation and **flat parameter (de)serialisation**, the
//!   representation FedAvg aggregates and the gradient-based valuation
//!   baselines reconstruct models from;
//! * [`lanes`] — [`lanes::MultiNetwork`]: `B` parameter lanes of one
//!   architecture advanced in lock-step through shared mini-batches, each
//!   lane bit-identical to a solo [`network::Network`] run (the substrate
//!   of multi-coalition FedAvg training);
//! * [`backend`] — the [`backend::LinalgBackend`] trait behind every
//!   kernel call, with two implementations: [`backend::Reference`] (the
//!   bit-stable blocked scalar kernels of [`linalg`]) and
//!   [`backend::Simd`] (8-wide unrolled microkernels, deterministic per
//!   backend), selected once via `FEDVAL_BACKEND` or per config;
//! * [`models`] — the experiment model families: `mlp`, `cnn`, `linear`.

pub mod backend;
pub mod lanes;
pub mod layers;
pub mod linalg;
pub mod loss;
pub mod models;
pub mod network;

pub use backend::{Backend, LinalgBackend};
pub use lanes::{LaneLayer, LaneTensor, MultiNetwork};
pub use models::{cnn, default_mlp, linear, mlp};
pub use network::Network;
