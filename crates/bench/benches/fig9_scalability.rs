//! Fig. 9 — scalability to up to 100 FL clients. Exact SV is infeasible
//! (> 10³⁰ coalitions), so 5% of clients are planted free riders (empty
//! datasets) and 5% duplicated datasets; the error proxy measures how
//! well each algorithm satisfies the null-player and symmetric-fairness
//! axioms (Def. 2). Sampling budget: γ = n·ln n.
//!
//! Paper shape: IPSS is the fastest of the sampling algorithms at both 20
//! and 100 clients, its running time grows only ~2.4× from 20 to 100
//! clients, and it attains the lowest property-proxy error.

// Bench driver: measurement harness code panics on setup failure by
// design; unwrap/expect are the error mechanism here.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::collections::HashMap;

use fedval_bench::{
    base_seed, fmt_secs, gamma_for, quick, run_neural, scalability, Algorithm, NeuralModel, Table,
};
use fedval_core::metrics::property_error;

fn main() {
    let seed = base_seed();
    let ns: Vec<usize> = if quick() {
        vec![20, 40]
    } else {
        vec![20, 50, 100]
    };
    let mut times: HashMap<(Algorithm, usize), f64> = HashMap::new();
    for &n in &ns {
        let (problem, free_riders, duplicate_pairs) =
            scalability(n, NeuralModel::Mlp, seed.wrapping_add(n as u64));
        let gamma = gamma_for(n);
        let mut table = Table::new(["Algorithm", "Time(s)", "PropertyError"]);
        for alg in Algorithm::SAMPLING {
            let r = run_neural(alg, &problem, gamma, seed ^ 0x519 ^ (n as u64) << 3);
            let err = property_error(&r.values, &free_riders, &duplicate_pairs);
            times.insert((alg, n), r.seconds());
            table.row([
                alg.name().to_string(),
                fmt_secs(r.seconds()),
                format!("{err:.4}"),
            ]);
        }
        table.print(&format!(
            "Fig. 9 — scalability, n = {n}, γ = {gamma} (5% free riders, 5% duplicates)"
        ));
    }
    let (lo, hi) = (ns[0], *ns.last().unwrap());
    if let (Some(a), Some(b)) = (
        times.get(&(Algorithm::Ipss, lo)),
        times.get(&(Algorithm::Ipss, hi)),
    ) {
        println!(
            "Shape check: IPSS time grows {:.1}x from n={lo} to n={hi} (paper: 2.4x for 20→100)",
            b / a
        );
    }
}
