//! Gradient-based valuation baselines (Sec. V-A, third category):
//! **OR**, **λ-MR**, **GTG-Shapley** and **DIG-FL**.
//!
//! All four avoid retraining FL models per coalition: they reuse the
//! per-round per-client updates recorded in a [`TrainingHistory`] from the
//! single full-coalition run, reconstructing coalition models by replaying
//! those updates. This makes them fast but — as the paper's experiments
//! show — without accuracy guarantees, since a coalition's *actual*
//! training trajectory differs from the replayed one.

mod digfl;
mod gtg;
mod lambda_mr;
mod or;

pub use digfl::{dig_fl, dig_fl_evaluations, dig_fl_free_riders, DigFlConfig};
pub use gtg::{gtg_shapley, GtgConfig};
pub use lambda_mr::{lambda_mr, LambdaMrConfig};
pub use or::or_valuation;

use std::sync::{Mutex, PoisonError};

use fedval_core::coalition::Coalition;
use fedval_core::utility::Utility;
use fedval_data::Dataset;
use fedval_nn::Network;

use crate::history::TrainingHistory;

/// Shared evaluator: loads parameter vectors into a reusable network and
/// measures test accuracy. The network is behind a mutex because
/// [`Utility`] is evaluated through `&self` (and may be driven from the
/// parallel bench harness).
pub(crate) struct ParamEvaluator {
    net: Mutex<Network>,
    test: Dataset,
}

impl ParamEvaluator {
    pub(crate) fn new(net: Network, test: Dataset) -> Self {
        ParamEvaluator {
            net: Mutex::new(net),
            test,
        }
    }

    pub(crate) fn accuracy_of(&self, params: &[f32]) -> f64 {
        // Poison-tolerant: the only state behind the lock is overwritten
        // by set_params before every read.
        let mut net = self.net.lock().unwrap_or_else(PoisonError::into_inner);
        net.set_params(params);
        net.accuracy(&self.test)
    }
}

/// Utility over *OR-reconstructed* models: `U(S)` loads
/// `TrainingHistory::reconstruct(S)` and measures test accuracy. No
/// training happens — this is the entire trick of the OR baseline.
pub struct ReconstructedUtility<'a> {
    history: &'a TrainingHistory,
    evaluator: ParamEvaluator,
}

impl<'a> ReconstructedUtility<'a> {
    pub fn new(history: &'a TrainingHistory, net: Network, test: Dataset) -> Self {
        ReconstructedUtility {
            history,
            evaluator: ParamEvaluator::new(net, test),
        }
    }
}

impl Utility for ReconstructedUtility<'_> {
    fn n_clients(&self) -> usize {
        self.history.n_clients()
    }

    fn eval(&self, s: Coalition) -> f64 {
        self.evaluator.accuracy_of(&self.history.reconstruct(s))
    }
}

/// Utility over *round-`t`* reconstructions: `U_t(S)` applies only round
/// `t`'s updates of the coalition on top of the actual global model
/// entering round `t`. Used by λ-MR and GTG-Shapley.
pub struct RoundUtility<'a> {
    history: &'a TrainingHistory,
    round: usize,
    evaluator: &'a ParamEvaluator,
}

impl<'a> RoundUtility<'a> {
    pub(crate) fn new(
        history: &'a TrainingHistory,
        round: usize,
        evaluator: &'a ParamEvaluator,
    ) -> Self {
        assert!(round < history.rounds());
        RoundUtility {
            history,
            round,
            evaluator,
        }
    }
}

impl Utility for RoundUtility<'_> {
    fn n_clients(&self) -> usize {
        self.history.n_clients()
    }

    fn eval(&self, s: Coalition) -> f64 {
        self.evaluator
            .accuracy_of(&self.history.reconstruct_round(self.round, s))
    }
}
