//! The adaptive-allocation determinism contract, end to end:
//!
//! 1. **Pure-function allocation** — the Neyman re-planned allocation
//!    sequence is a pure function of (seed, snapshot history): the whole
//!    snapshot stream, *including* the cumulative per-component
//!    allocation, is bit-identical at 1/2/4 rayon threads, and a stopped
//!    run is a bit-identical prefix of the full run (values, CI
//!    half-widths and allocation).
//! 2. **Direct ≡ service** — driving an adaptive estimator directly and
//!    through the valuation service (coalescer, retry facade, progress
//!    channel) yields the same snapshot stream, solo or coalesced with a
//!    concurrent twin.
//! 3. **Uniform fallback** — on a homoscedastic problem every planned
//!    round degenerates to the uniform split: at each batch boundary the
//!    cumulative allocation spreads by at most 1 over the strata below
//!    capacity.
//! 4. **Real substrate** — the prefix contract holds over the FL
//!    utility, so the CI matrix exercises it under every
//!    `FEDVAL_BACKEND`.
//!
//! The stopping threshold honours `FEDVAL_CI_EPS` when set (the CI
//! matrix sets it); otherwise each test derives a mid-run threshold from
//! the full run's own snapshot stream, which is guaranteed reachable.

// Driver code: test assertions panic by design, so unwrap/expect are
// the failure mechanism, not a robustness gap.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::time::Duration;

use rand::rngs::StdRng;
use rand::SeedableRng;

use fedval_core::adaptive::AdaptivePolicy;
use fedval_core::anytime::{Control, ProgressSnapshot, StoppingRule, StreamingOutcome};
use fedval_core::coalition::binom_u128;
use fedval_core::owen::{owen_sampling_streaming_adaptive, OwenConfig};
use fedval_core::prelude::*;
use fedval_core::service::{Estimator, ValuationRequest, ValuationServer};
use fedval_core::stratified::stratified_sampling_streaming_adaptive;

const THREAD_COUNTS: [usize; 3] = [1, 2, 4];

/// `FEDVAL_CI_EPS` when set and parseable, else `None`.
fn env_eps() -> Option<f64> {
    std::env::var("FEDVAL_CI_EPS").ok()?.parse().ok()
}

/// A threshold the stream is guaranteed to reach: the ambient
/// `FEDVAL_CI_EPS`, or the first *finite* max half-width in the stream.
fn reachable_eps(full: &[ProgressSnapshot]) -> f64 {
    env_eps().unwrap_or_else(|| {
        match full
            .iter()
            .filter_map(|s| s.max_halfwidth())
            .find(|h| h.is_finite())
        {
            Some(h) => h,
            None => panic!("stream never reaches a finite CI; pick a bigger budget"),
        }
    })
}

/// Assert the stopped outcome is a bit-identical prefix of the recorded
/// full-run stream — values, CI half-widths *and* allocation of the
/// snapshot with the same `samples_used`.
fn assert_prefix(label: &str, stopped: &StreamingOutcome, full: &[ProgressSnapshot]) {
    let twin = full
        .iter()
        .find(|s| s.samples_used == stopped.samples_used)
        .unwrap_or_else(|| {
            panic!(
                "{label}: no full-run snapshot at samples_used = {}",
                stopped.samples_used
            )
        });
    assert_eq!(stopped.values, twin.values, "{label}: values prefix");
    assert_eq!(
        stopped.ci_halfwidths, twin.ci_halfwidths,
        "{label}: CI prefix"
    );
    assert_eq!(
        stopped.allocation, twin.allocation,
        "{label}: allocation prefix"
    );
}

/// Drive one adaptive streaming estimator full-then-stopped at every
/// thread count: every snapshot must carry a monotone cumulative
/// allocation, the whole stream must be thread-invariant, and both a
/// CI-stopped and a sample-capped run must be bit-identical prefixes.
fn assert_adaptive_contract<F>(label: &str, run: F)
where
    F: Fn(&dyn Utility, &mut dyn FnMut(&ProgressSnapshot) -> Control) -> StreamingOutcome,
{
    let base = HashUtility { n: 9, seed: 0xADA };
    let mut reference: Option<Vec<ProgressSnapshot>> = None;
    for threads in THREAD_COUNTS {
        let u = ParallelUtility::with_num_threads(base.clone(), threads);

        // Full run, recording every snapshot.
        let mut full: Vec<ProgressSnapshot> = Vec::new();
        let full_out = run(&u, &mut |s| {
            full.push(s.clone());
            Control::Continue
        });
        assert!(full.len() >= 4, "{label}: too few snapshots to stop early");
        match full.last() {
            Some(last) => assert_eq!(last.values, full_out.values, "{label}"),
            None => unreachable!("checked non-empty above"),
        }
        // Every snapshot carries the allocation, cumulative and monotone.
        assert!(
            full.iter().all(|s| s.allocation.is_some()),
            "{label}: adaptive snapshots must carry the allocation"
        );
        for w in full.windows(2) {
            match (&w[0].allocation, &w[1].allocation) {
                (Some(a), Some(b)) => assert!(
                    a.iter().zip(b).all(|(x, y)| x <= y),
                    "{label}: allocation must be cumulative ({a:?} -> {b:?})"
                ),
                _ => unreachable!("checked Some above"),
            }
        }
        // Config sanity: the CI must go finite before the final snapshot,
        // or the derived CiAtMost threshold below could never stop early.
        let finite_at = full
            .iter()
            .position(|s| s.max_halfwidth().is_some_and(f64::is_finite))
            .unwrap_or(full.len());
        assert!(
            finite_at + 1 < full.len(),
            "{label}: CI goes finite too late (snapshot {finite_at} of {})",
            full.len()
        );

        // The entire stream — allocation included — is thread-invariant.
        match &reference {
            Some(r) => assert_eq!(r, &full, "{label}: stream diverged at {threads} threads"),
            None => reference = Some(full.clone()),
        }

        // Same-seed run stopped by a reachable CI threshold.
        let rule = StoppingRule::ci_at_most(reachable_eps(&full));
        let stopped = run(&u, &mut |s| {
            if rule.should_stop(s) {
                Control::Stop
            } else {
                Control::Continue
            }
        });
        assert_prefix(label, &stopped, &full);
        if !stopped.stopped_early {
            // Only an ambient FEDVAL_CI_EPS below the stream's reach may
            // run to completion; the derived threshold always fires.
            assert!(
                env_eps().is_some(),
                "{label}: derived threshold failed to fire"
            );
        }

        // And a sample-capped run stops at the first boundary past the
        // cap, on the same bit-identical prefix.
        let cap = full[full.len() / 3].samples_used;
        let cap_rule = StoppingRule::max_samples(cap);
        let capped = run(&u, &mut |s| {
            if cap_rule.should_stop(s) {
                Control::Stop
            } else {
                Control::Continue
            }
        });
        assert!(capped.stopped_early, "{label}: cap {cap} must fire");
        assert_prefix(label, &capped, &full);
    }
}

#[test]
fn adaptive_stratified_mc_allocation_is_a_pure_function_of_seed_and_history() {
    assert_adaptive_contract("adaptive-stratified-mc", |u, observe| {
        stratified_sampling_streaming_adaptive(
            u,
            Scheme::MarginalContribution,
            504,
            &AdaptivePolicy::default(),
            &mut StdRng::seed_from_u64(41),
            observe,
        )
    });
}

#[test]
fn adaptive_stratified_cc_allocation_is_a_pure_function_of_seed_and_history() {
    assert_adaptive_contract("adaptive-stratified-cc", |u, observe| {
        stratified_sampling_streaming_adaptive(
            u,
            Scheme::ComplementaryContribution,
            504,
            &AdaptivePolicy::default(),
            &mut StdRng::seed_from_u64(42),
            observe,
        )
    });
}

#[test]
fn adaptive_owen_allocation_is_a_pure_function_of_seed_and_history() {
    assert_adaptive_contract("adaptive-owen", |u, observe| {
        owen_sampling_streaming_adaptive(
            u,
            &OwenConfig::new(4, 24),
            &AdaptivePolicy::default(),
            &mut StdRng::seed_from_u64(43),
            observe,
        )
    });
}

#[test]
fn adaptive_ipss_allocation_is_a_pure_function_of_seed_and_history() {
    assert_adaptive_contract("adaptive-ipss", |u, observe| {
        ipss_streaming_adaptive(
            u,
            &IpssConfig::new(100),
            &AdaptivePolicy::default(),
            &mut StdRng::seed_from_u64(44),
            observe,
        )
    });
}

/// Collect the full snapshot stream of a streaming service run by
/// polling `wait_timeout` (the ticket's public surface).
fn stream_via_service<U: Utility + Send + Sync + 'static>(
    server: &ValuationServer<U>,
    request: ValuationRequest,
) -> (
    fedval_core::service::ValuationResponse,
    Vec<ProgressSnapshot>,
) {
    let ticket = server.submit(request);
    let mut snapshots = Vec::new();
    let resp = loop {
        snapshots.extend(ticket.progress());
        if let Some(result) = ticket.wait_timeout(Duration::from_millis(20)) {
            break result;
        }
    };
    snapshots.extend(ticket.progress());
    match resp {
        Ok(resp) => (resp, snapshots),
        Err(e) => panic!("healthy run failed: {e}"),
    }
}

#[test]
fn adaptive_service_stream_is_bit_identical_to_the_direct_run() {
    // The same (seed, history) purity through the whole service stack:
    // the direct estimator stream and the service stream must agree
    // snapshot for snapshot, solo and coalesced with a concurrent twin.
    let base = HashUtility { n: 8, seed: 0xB5E };
    let policy = AdaptivePolicy::default();
    let gamma = 120;
    let seed = 47;

    let mut direct: Vec<ProgressSnapshot> = Vec::new();
    let direct_out = stratified_sampling_streaming_adaptive(
        &base,
        Scheme::MarginalContribution,
        gamma,
        &policy,
        &mut StdRng::seed_from_u64(seed),
        |s| {
            direct.push(s.clone());
            Control::Continue
        },
    );
    assert!(!direct_out.stopped_early);

    let request =
        || ValuationRequest::new(Estimator::StratifiedMc, gamma, seed).with_adaptive(policy);

    // Solo through the service (adaptive alone turns on streaming).
    let server = ValuationServer::start(base.clone());
    let (solo_resp, solo) = stream_via_service(&server, request());
    server.shutdown();
    assert_eq!(solo, direct, "service stream diverged from the direct run");
    assert_eq!(solo_resp.values, direct_out.values);
    assert_eq!(
        solo_resp
            .progress
            .as_ref()
            .and_then(|s| s.allocation.clone()),
        direct_out.allocation
    );

    // Coalesced with a concurrent twin: interleaving must stay invisible.
    let server = ValuationServer::start(base);
    let t1 = server.submit(request());
    let t2 = server.submit(request());
    let r1 = match t1.wait() {
        Ok(r) => r,
        Err(e) => panic!("healthy run failed: {e}"),
    };
    let r2 = match t2.wait() {
        Ok(r) => r,
        Err(e) => panic!("healthy run failed: {e}"),
    };
    server.shutdown();
    for resp in [r1, r2] {
        assert_eq!(resp.values, direct_out.values, "coalesced run diverged");
        assert_eq!(
            resp.progress.as_ref().and_then(|s| s.allocation.clone()),
            direct_out.allocation,
            "coalesced allocation diverged"
        );
    }
}

#[test]
fn homoscedastic_allocation_degenerates_to_the_uniform_split() {
    // Equal per-client weights make every contribution identical, so all
    // stratum variances are 0 and each planned round must fall back to
    // the uniform split: at every batch boundary the cumulative
    // allocation of the strata below capacity spreads by at most 1, and
    // saturated strata sit exactly at capacity.
    let n = 6;
    let gamma = 24;
    let u = AdditiveUtility::new(0.0, vec![0.125; n]);
    let mut boundaries = 0usize;
    let out = stratified_sampling_streaming_adaptive(
        &u,
        Scheme::MarginalContribution,
        gamma,
        &AdaptivePolicy::default(),
        &mut StdRng::seed_from_u64(53),
        |s| {
            let alloc = match &s.allocation {
                Some(a) => a,
                None => panic!("adaptive snapshots must carry the allocation"),
            };
            let capacity = |k: usize| usize::try_from(binom_u128(n, k + 1)).unwrap_or(usize::MAX);
            let uncapped: Vec<usize> = (0..n)
                .filter(|&k| alloc[k] < capacity(k))
                .map(|k| alloc[k])
                .collect();
            if let (Some(&max), Some(&min)) = (uncapped.iter().max(), uncapped.iter().min()) {
                assert!(
                    max - min <= 1,
                    "homoscedastic rounds must stay uniform: {alloc:?}"
                );
            }
            boundaries += 1;
            Control::Continue
        },
    );
    assert!(boundaries >= 4, "too few boundaries to mean anything");
    match out.allocation {
        Some(alloc) => assert_eq!(alloc.iter().sum::<usize>(), gamma),
        None => panic!("adaptive outcome must carry the allocation"),
    }
}

#[test]
fn adaptive_service_prefix_holds_on_the_fl_substrate() {
    // The contract over real federated training, so the CI matrix's
    // FEDVAL_BACKEND axis exercises the adaptive fold over both numeric
    // backends. Small problem: 3 clients, 2 rounds.
    use fedval_data::{MnistLike, SyntheticSetup};
    use fedval_fl::service::{serve, FlServiceConfig};
    use fedval_fl::{FedAvgConfig, FlUtility, ModelSpec};

    let n_clients = 3;
    let fl_utility = || -> FlUtility {
        let gen = MnistLike::new(701);
        let (train, test) = gen.generate_split(18 * n_clients, 48, 702);
        let mut rng = StdRng::seed_from_u64(703);
        let clients = SyntheticSetup::SameSizeSameDist.partition(&train, n_clients, &mut rng);
        FlUtility::new(
            clients,
            test,
            ModelSpec::default_mlp(),
            FedAvgConfig {
                rounds: 2,
                local_epochs: 1,
                seed: 704,
                ..Default::default()
            },
        )
    };
    let request = || {
        ValuationRequest::new(Estimator::StratifiedMc, 7, 31)
            .with_adaptive(AdaptivePolicy::default())
    };

    let (full_server, _cache) = serve(fl_utility(), FlServiceConfig::default());
    let (full_resp, full) = stream_via_service(&full_server, request());
    full_server.shutdown();
    assert!(full.len() >= 2, "too few snapshots to stop early");
    assert!(full.iter().all(|s| s.allocation.is_some()));

    let cap = full[full.len() / 2].samples_used;
    let (server, _cache) = serve(fl_utility(), FlServiceConfig::default());
    let (resp, _) = stream_via_service(
        &server,
        request().with_stopping(StoppingRule::max_samples(cap)),
    );
    server.shutdown();
    assert!(resp.run.stopped_early, "cap {cap} must fire");
    let snapshot = match resp.progress.as_ref() {
        Some(s) => s,
        None => panic!("streaming response must carry a snapshot"),
    };
    let stopped = StreamingOutcome::from_snapshot(snapshot.clone(), true);
    assert_prefix("service-fl-adaptive", &stopped, &full);
    assert!(
        stopped.samples_used < full_resp.progress.map(|s| s.samples_used).unwrap_or(0),
        "stopping must save model trainings"
    );
}
