//! CC-Shapley: the complementary-contribution sampler of Zhang et al.
//! (SIGMOD'23), the state-of-the-art sampling baseline of Sec. V-A.
//!
//! One evaluation pair `(S, N\S)` yields a complementary contribution for
//! *every* client simultaneously: `U(S) − U(N\S)` for each `i ∈ S` at
//! stratum `|S|`, and the negated difference for each `i ∉ S` at stratum
//! `n − |S|`. Estimates are stratified averages, as in Alg. 1's CC mode,
//! but with the double-sided credit assignment that makes CC sampling
//! competitive.

use rand::Rng;

use crate::sampling::random_subset_of_size;
use crate::utility::Utility;

/// Configuration for [`cc_shapley`].
#[derive(Clone, Debug)]
pub struct CcShapConfig {
    /// Number of sampled `(S, N\S)` pairs (the `γ` for this baseline; each
    /// round costs at most two model evaluations).
    pub rounds: usize,
}

impl CcShapConfig {
    pub fn new(rounds: usize) -> Self {
        CcShapConfig { rounds }
    }
}

/// CC-Shapley estimator.
pub fn cc_shapley<U: Utility + ?Sized, R: Rng + ?Sized>(
    u: &U,
    cfg: &CcShapConfig,
    rng: &mut R,
) -> Vec<f64> {
    let n = u.n_clients();
    assert!(n >= 1);
    assert!(cfg.rounds >= 1);
    // Draw every round's coalition first (identical RNG stream to the
    // historical draw-then-evaluate interleaving), evaluate all (S, N\S)
    // pairs as one batch, then fold in draw order.
    let rounds: Vec<crate::coalition::Coalition> = (0..cfg.rounds)
        .map(|_| {
            let k = rng.random_range(1..=n);
            random_subset_of_size(n, k, rng)
        })
        .collect();
    let mut batch = Vec::with_capacity(rounds.len() * 2);
    for &s in &rounds {
        batch.push(s);
        batch.push(s.complement(n));
    }
    let values = u.eval_batch(&batch);
    // sums[i][k-1], counts[i][k-1]: complementary contributions observed for
    // client i at stratum k (the size of the side containing i).
    let mut sums = vec![vec![0.0f64; n]; n];
    let mut counts = vec![vec![0usize; n]; n];
    for (round, &s) in rounds.iter().enumerate() {
        let k = s.size();
        let comp = s.complement(n);
        let cc = values[round * 2] - values[round * 2 + 1];
        for i in s.members() {
            sums[i][k - 1] += cc;
            counts[i][k - 1] += 1;
        }
        if k < n {
            let k_comp = n - k;
            for i in comp.members() {
                sums[i][k_comp - 1] -= cc;
                counts[i][k_comp - 1] += 1;
            }
        }
    }
    let inv_n = 1.0 / n as f64;
    (0..n)
        .map(|i| {
            let mut acc = 0.0;
            for k in 0..n {
                if counts[i][k] > 0 {
                    acc += sums[i][k] / counts[i][k] as f64;
                }
            }
            acc * inv_n
        })
        .collect()
}

#[cfg(test)]
// Tests assert invariants; an unwrap that trips IS the test failing.
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::exact::exact_mc_sv;
    use crate::metrics::l2_relative_error;
    use crate::utility::{AdditiveUtility, CachedUtility, TableUtility};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn converges_to_exact_sv() {
        let u = TableUtility::paper_table1();
        let exact = exact_mc_sv(&u);
        let mut rng = StdRng::seed_from_u64(1);
        let phi = cc_shapley(&u, &CcShapConfig::new(20_000), &mut rng);
        let err = l2_relative_error(&phi, &exact);
        assert!(err < 0.05, "error {err}: {phi:?} vs {exact:?}");
    }

    #[test]
    fn each_round_costs_at_most_two_evaluations() {
        let u = CachedUtility::new(TableUtility::paper_table1());
        let mut rng = StdRng::seed_from_u64(2);
        let _ = cc_shapley(&u, &CcShapConfig::new(5), &mut rng);
        assert!(u.stats().evaluations <= 10);
    }

    #[test]
    fn additive_utility_close_to_weights() {
        let w = vec![0.1, 0.2, 0.3, 0.4];
        let u = AdditiveUtility::new(0.0, w.clone());
        let mut rng = StdRng::seed_from_u64(3);
        let phi = cc_shapley(&u, &CcShapConfig::new(30_000), &mut rng);
        for (p, e) in phi.iter().zip(&w) {
            assert!((p - e).abs() < 0.05, "{phi:?}");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let u = TableUtility::paper_table1();
        let a = cc_shapley(&u, &CcShapConfig::new(25), &mut StdRng::seed_from_u64(7));
        let b = cc_shapley(&u, &CcShapConfig::new(25), &mut StdRng::seed_from_u64(7));
        assert_eq!(a, b);
    }

    #[test]
    fn single_client() {
        let u = TableUtility::new(1, vec![0.1, 0.8]);
        let mut rng = StdRng::seed_from_u64(4);
        let phi = cc_shapley(&u, &CcShapConfig::new(10), &mut rng);
        // n = 1: S = {0}, complement = ∅, CC = U({0}) − U(∅) = 0.7.
        assert!((phi[0] - 0.7).abs() < 1e-12);
    }
}
