//! Seeded synthetic stand-ins for the paper's benchmark datasets.
//!
//! The experiments of Sec. V manipulate dataset *properties* — size,
//! label distribution, writer heterogeneity, label/feature noise — not the
//! semantics of any particular corpus. Each generator below produces a
//! classification problem with the corresponding knobs (substitution
//! rationale in DESIGN.md §2):
//!
//! * [`MnistLike`] — class-conditional smoothed template images
//!   (MNIST stand-in for the five synthetic setups of Fig. 6);
//! * [`FemnistLike`] — the same, with per-writer distortions and
//!   writer-based partitioning (FEMNIST stand-in for Tables IV, Figs. 1,
//!   4, 7–10);
//! * [`AdultLike`] — tabular census-style data with an `occupation`
//!   attribute used for partitioning (Adult stand-in for Table V);
//! * [`Sent140Like`] — bag-of-words sentiment with per-user vocabulary
//!   bias (Sent-140 stand-in, listed among the paper's datasets).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::dataset::Dataset;
use crate::rand_ext::{categorical, normal_f32};

/// A federated dataset: one local dataset per FL client plus the shared
/// test set `T` the utility function evaluates on.
#[derive(Clone, Debug)]
pub struct FederatedDataset {
    pub clients: Vec<Dataset>,
    pub test: Dataset,
}

impl FederatedDataset {
    pub fn n_clients(&self) -> usize {
        self.clients.len()
    }

    /// Sizes `|D_i|` of the client datasets.
    pub fn client_sizes(&self) -> Vec<usize> {
        self.clients.iter().map(|c| c.n_samples()).collect()
    }
}

fn mix64(x: u64) -> u64 {
    let mut x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn unit(x: u64) -> f32 {
    (x >> 40) as f32 / (1u64 << 24) as f32
}

/// 3×3 box blur on a square image (cheap spatial smoothing so the CNN's
/// convolution has local structure to exploit).
fn box_blur(img: &[f32], side: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; img.len()];
    for y in 0..side {
        for x in 0..side {
            let mut acc = 0.0;
            let mut cnt = 0.0;
            for dy in -1isize..=1 {
                for dx in -1isize..=1 {
                    let ny = y as isize + dy;
                    let nx = x as isize + dx;
                    if ny >= 0 && ny < side as isize && nx >= 0 && nx < side as isize {
                        acc += img[ny as usize * side + nx as usize];
                        cnt += 1.0;
                    }
                }
            }
            out[y * side + x] = acc / cnt;
        }
    }
    out
}

/// MNIST-like generator: `n_classes` smooth template images of
/// `side × side` pixels; each sample is its class template plus pixel
/// noise.
#[derive(Clone, Debug)]
pub struct MnistLike {
    /// Image side length (features = `side²`). Default 8.
    pub side: usize,
    /// Number of classes. Default 10.
    pub n_classes: usize,
    /// Pixel noise standard deviation. Default 0.25.
    pub noise: f32,
    /// Generator seed.
    pub seed: u64,
}

impl Default for MnistLike {
    fn default() -> Self {
        MnistLike {
            side: 8,
            n_classes: 10,
            noise: 0.25,
            seed: 0,
        }
    }
}

impl MnistLike {
    pub fn new(seed: u64) -> Self {
        MnistLike {
            seed,
            ..Default::default()
        }
    }

    /// The class template images (deterministic in the seed).
    pub fn templates(&self) -> Vec<Vec<f32>> {
        let pixels = self.side * self.side;
        (0..self.n_classes)
            .map(|c| {
                let raw: Vec<f32> = (0..pixels)
                    .map(|p| unit(mix64(self.seed ^ ((c as u64) << 32) ^ p as u64)))
                    .collect();
                // Two blur passes: smooth, spatially correlated patterns.
                let mut img = box_blur(&box_blur(&raw, self.side), self.side);
                // Blurring collapses contrast; re-standardise to mean 0.5,
                // std 0.25 so classes stay separable under sample noise.
                let mean = img.iter().sum::<f32>() / pixels as f32;
                let var = img.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / pixels as f32;
                let std = var.sqrt().max(1e-6);
                for v in &mut img {
                    *v = 0.5 + 0.25 * (*v - mean) / std;
                }
                img
            })
            .collect()
    }

    /// Generate `n` labelled samples with uniformly random classes.
    pub fn generate(&self, n: usize, rng: &mut impl Rng) -> Dataset {
        let templates = self.templates();
        let pixels = self.side * self.side;
        let mut ds = Dataset::empty(pixels, self.n_classes);
        let mut row = vec![0.0f32; pixels];
        for _ in 0..n {
            let c = rng.random_range(0..self.n_classes);
            for (r, t) in row.iter_mut().zip(&templates[c]) {
                *r = t + normal_f32(rng, 0.0, self.noise);
            }
            ds.push(&row, c as u32);
        }
        ds
    }

    /// Generate a train/test pair from the same distribution.
    pub fn generate_split(&self, n_train: usize, n_test: usize, seed: u64) -> (Dataset, Dataset) {
        let mut rng = StdRng::seed_from_u64(seed);
        let train = self.generate(n_train, &mut rng);
        let test = self.generate(n_test, &mut rng);
        (train, test)
    }
}

/// FEMNIST-like generator: MNIST-like classes with per-writer style
/// distortions (brightness scale, offset and a circular spatial shift) and
/// writer-based client partitioning, reproducing the user-id partitioning
/// of the LEAF benchmark.
#[derive(Clone, Debug)]
pub struct FemnistLike {
    pub base: MnistLike,
    /// Number of distinct writers.
    pub n_writers: usize,
}

impl FemnistLike {
    pub fn new(seed: u64, n_writers: usize) -> Self {
        assert!(n_writers >= 1);
        FemnistLike {
            base: MnistLike::new(seed),
            n_writers,
        }
    }

    fn writer_style(&self, w: usize) -> (f32, f32, usize, usize) {
        let h = mix64(self.base.seed ^ 0xFE31 ^ (w as u64).rotate_left(13));
        // Mild per-writer style: brightness/contrast drift plus at most a
        // one-pixel shift. Strong distortions would destroy cross-writer
        // generalisation entirely, which real FEMNIST does not do.
        let scale = 0.9 + 0.2 * unit(h);
        let offset = -0.05 + 0.1 * unit(mix64(h ^ 1));
        let dx = (mix64(h ^ 2) % 2) as usize; // 0 or 1 pixel circular shift
        let dy = (mix64(h ^ 3) % 2) as usize;
        (scale, offset, dx, dy)
    }

    /// One sample in writer `w`'s style.
    fn sample(&self, templates: &[Vec<f32>], w: usize, rng: &mut impl Rng) -> (Vec<f32>, u32) {
        let side = self.base.side;
        let c = rng.random_range(0..self.base.n_classes);
        let (scale, offset, dx, dy) = self.writer_style(w);
        let mut row = vec![0.0f32; side * side];
        for y in 0..side {
            for x in 0..side {
                let sy = (y + dy) % side;
                let sx = (x + dx) % side;
                let v = templates[c][sy * side + sx];
                row[y * side + x] = scale * v + offset + normal_f32(rng, 0.0, self.base.noise);
            }
        }
        (row, c as u32)
    }

    /// Build a federated dataset with `n_clients` clients, partitioning the
    /// writers round-robin across clients (each client holds the samples of
    /// its writers only — the LEAF user-id partitioning), plus a test set
    /// mixing all writers.
    pub fn generate_federated(
        &self,
        n_clients: usize,
        samples_per_client: usize,
        n_test: usize,
        seed: u64,
    ) -> FederatedDataset {
        assert!(n_clients >= 1);
        let templates = self.base.templates();
        let pixels = self.base.side * self.base.side;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut clients = Vec::with_capacity(n_clients);
        for client in 0..n_clients {
            // Writers assigned to this client: w ≡ client (mod n_clients).
            let writers: Vec<usize> = (0..self.n_writers)
                .filter(|w| w % n_clients == client)
                .collect();
            let mut ds = Dataset::empty(pixels, self.base.n_classes);
            for s in 0..samples_per_client {
                let w = if writers.is_empty() {
                    client % self.n_writers
                } else {
                    writers[s % writers.len()]
                };
                let (row, label) = self.sample(&templates, w, &mut rng);
                ds.push(&row, label);
            }
            clients.push(ds);
        }
        let mut test = Dataset::empty(pixels, self.base.n_classes);
        for s in 0..n_test {
            let w = s % self.n_writers;
            let (row, label) = self.sample(&templates, w, &mut rng);
            test.push(&row, label);
        }
        FederatedDataset { clients, test }
    }
}

/// Adult-like tabular generator: 14 census-style features (age, education
/// years, weekly hours, capital gain/loss, gender, and an 8-way one-hot
/// occupation block) with a logistic ground truth for the binary
/// income-over-threshold label. The `occupation` attribute drives the
/// client partitioning exactly as the paper partitions Adult.
#[derive(Clone, Debug)]
pub struct AdultLike {
    pub seed: u64,
    /// Number of occupation categories (default 8).
    pub n_occupations: usize,
    /// Label noise: probability of flipping the ground-truth label.
    pub label_flip: f64,
}

/// Number of non-occupation features in [`AdultLike`] rows.
const ADULT_BASE_FEATURES: usize = 6;

impl AdultLike {
    pub fn new(seed: u64) -> Self {
        AdultLike {
            seed,
            n_occupations: 8,
            label_flip: 0.05,
        }
    }

    pub fn n_features(&self) -> usize {
        ADULT_BASE_FEATURES + self.n_occupations
    }

    fn occupation_effect(&self, occ: usize) -> f32 {
        // Deterministic per-occupation income effect in [−1, 1].
        2.0 * unit(mix64(self.seed ^ 0xADu64 ^ (occ as u64) << 7)) - 1.0
    }

    /// Generate one sample; returns (features, label, occupation).
    fn sample(&self, rng: &mut impl Rng) -> (Vec<f32>, u32, usize) {
        let occ = rng.random_range(0..self.n_occupations);
        let age = normal_f32(rng, 0.0, 1.0);
        let edu = normal_f32(rng, 0.0, 1.0);
        let hours = normal_f32(rng, 0.0, 1.0);
        // Capital gain/loss: sparse and skewed like the real Adult columns.
        let cap_gain = if rng.random::<f64>() < 0.1 {
            rng.random::<f32>() * 3.0
        } else {
            0.0
        };
        let cap_loss = if rng.random::<f64>() < 0.05 {
            rng.random::<f32>() * 2.0
        } else {
            0.0
        };
        let gender = if rng.random::<f64>() < 0.5 { 0.0 } else { 1.0 };
        let logit = 0.35 * age + 0.9 * edu + 0.6 * hours + 1.3 * cap_gain - 0.8 * cap_loss
            + 0.2 * gender
            + self.occupation_effect(occ)
            + normal_f32(rng, 0.0, 0.5);
        let mut label = u32::from(logit > 0.0);
        if rng.random::<f64>() < self.label_flip {
            label = 1 - label;
        }
        let mut row = vec![0.0f32; self.n_features()];
        row[0] = age;
        row[1] = edu;
        row[2] = hours;
        row[3] = cap_gain;
        row[4] = cap_loss;
        row[5] = gender;
        row[ADULT_BASE_FEATURES + occ] = 1.0;
        (row, label, occ)
    }

    /// Generate `n` samples along with each sample's occupation index.
    pub fn generate(&self, n: usize, rng: &mut impl Rng) -> (Dataset, Vec<usize>) {
        let mut ds = Dataset::empty(self.n_features(), 2);
        let mut occs = Vec::with_capacity(n);
        for _ in 0..n {
            let (row, label, occ) = self.sample(rng);
            ds.push(&row, label);
            occs.push(occ);
        }
        (ds, occs)
    }

    /// Build a federated dataset partitioned by occupation: occupations are
    /// assigned round-robin to clients and each sample goes to the client
    /// owning its occupation.
    pub fn generate_federated(
        &self,
        n_clients: usize,
        n_train: usize,
        n_test: usize,
        seed: u64,
    ) -> FederatedDataset {
        assert!(n_clients >= 1);
        let mut rng = StdRng::seed_from_u64(seed);
        let (train, occs) = self.generate(n_train, &mut rng);
        let mut clients = vec![Dataset::empty(self.n_features(), 2); n_clients];
        for (i, &occ) in occs.iter().enumerate() {
            clients[occ % n_clients].push(train.row(i), train.label(i));
        }
        let (test, _) = self.generate(n_test, &mut rng);
        FederatedDataset { clients, test }
    }
}

/// Sent140-like generator: bag-of-words binary sentiment. Positive and
/// negative "topics" are word distributions over a shared vocabulary;
/// each user blends the topic with a personal vocabulary bias (non-IID
/// across users, like tweet authors).
#[derive(Clone, Debug)]
pub struct Sent140Like {
    pub seed: u64,
    /// Vocabulary size (= number of features). Default 40.
    pub vocab: usize,
    /// Words drawn per document. Default 20.
    pub doc_len: usize,
    /// Number of users. Default 16.
    pub n_users: usize,
}

impl Sent140Like {
    pub fn new(seed: u64) -> Self {
        Sent140Like {
            seed,
            vocab: 40,
            doc_len: 20,
            n_users: 16,
        }
    }

    fn topic(&self, positive: bool) -> Vec<f64> {
        (0..self.vocab)
            .map(|w| {
                let h = mix64(self.seed ^ u64::from(positive) << 60 ^ (w as u64) << 3);
                (unit(h) as f64).powi(2) + 0.01
            })
            .collect()
    }

    fn user_bias(&self, user: usize) -> Vec<f64> {
        (0..self.vocab)
            .map(|w| {
                let h = mix64(self.seed ^ 0x5E17 ^ ((user as u64) << 24) ^ w as u64);
                (unit(h) as f64).powi(2) + 0.01
            })
            .collect()
    }

    fn document(&self, user: usize, rng: &mut impl Rng) -> (Vec<f32>, u32) {
        let label = rng.random_range(0..2u32);
        let topic = self.topic(label == 1);
        let bias = self.user_bias(user);
        let weights: Vec<f64> = topic
            .iter()
            .zip(&bias)
            .map(|(t, b)| 0.7 * t + 0.3 * b)
            .collect();
        let mut counts = vec![0.0f32; self.vocab];
        for _ in 0..self.doc_len {
            counts[categorical(rng, &weights)] += 1.0;
        }
        let norm = self.doc_len as f32;
        for c in &mut counts {
            *c /= norm;
        }
        (counts, label)
    }

    /// Build a federated dataset partitioned by user (round-robin user →
    /// client assignment) plus an all-users test set.
    pub fn generate_federated(
        &self,
        n_clients: usize,
        samples_per_client: usize,
        n_test: usize,
        seed: u64,
    ) -> FederatedDataset {
        assert!(n_clients >= 1);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut clients = Vec::with_capacity(n_clients);
        for client in 0..n_clients {
            let users: Vec<usize> = (0..self.n_users)
                .filter(|u| u % n_clients == client)
                .collect();
            let mut ds = Dataset::empty(self.vocab, 2);
            for s in 0..samples_per_client {
                let user = if users.is_empty() {
                    client % self.n_users
                } else {
                    users[s % users.len()]
                };
                let (row, label) = self.document(user, &mut rng);
                ds.push(&row, label);
            }
            clients.push(ds);
        }
        let mut test = Dataset::empty(self.vocab, 2);
        for s in 0..n_test {
            let (row, label) = self.document(s % self.n_users, &mut rng);
            test.push(&row, label);
        }
        FederatedDataset { clients, test }
    }
}

#[cfg(test)]
// Tests assert invariants; an unwrap that trips IS the test failing.
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn mnist_like_templates_are_deterministic_and_distinct() {
        let gen = MnistLike::new(7);
        let t1 = gen.templates();
        let t2 = gen.templates();
        assert_eq!(t1, t2);
        assert_eq!(t1.len(), 10);
        // Distinct classes have distinct templates.
        for i in 0..10 {
            for j in (i + 1)..10 {
                assert_ne!(t1[i], t1[j]);
            }
        }
        // A different seed gives different templates.
        assert_ne!(MnistLike::new(8).templates()[0], t1[0]);
    }

    #[test]
    fn mnist_like_generates_learnable_structure() {
        // Samples of the same class must be closer to their own template
        // than to other templates on average (otherwise no model could
        // learn anything).
        let gen = MnistLike::new(1);
        let mut rng = StdRng::seed_from_u64(2);
        let ds = gen.generate(200, &mut rng);
        let templates = gen.templates();
        let mut correct = 0;
        for i in 0..ds.n_samples() {
            let row = ds.row(i);
            let (best, _) = templates
                .iter()
                .enumerate()
                .map(|(c, t)| {
                    let d: f32 = row.iter().zip(t).map(|(a, b)| (a - b) * (a - b)).sum();
                    (c, d)
                })
                .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
                .unwrap();
            if best as u32 == ds.label(i) {
                correct += 1;
            }
        }
        let acc = correct as f64 / ds.n_samples() as f64;
        assert!(acc > 0.9, "nearest-template accuracy {acc}");
    }

    #[test]
    fn mnist_split_shapes() {
        let gen = MnistLike::new(3);
        let (train, test) = gen.generate_split(100, 40, 5);
        assert_eq!(train.n_samples(), 100);
        assert_eq!(test.n_samples(), 40);
        assert_eq!(train.n_features(), 64);
        assert_eq!(train.n_classes(), 10);
    }

    #[test]
    fn femnist_partitions_by_writer() {
        let gen = FemnistLike::new(11, 12);
        let fed = gen.generate_federated(4, 30, 50, 13);
        assert_eq!(fed.n_clients(), 4);
        assert_eq!(fed.client_sizes(), vec![30; 4]);
        assert_eq!(fed.test.n_samples(), 50);
        // Writer styles differ.
        let s0 = gen.writer_style(0);
        let s1 = gen.writer_style(1);
        assert_ne!(s0, s1);
    }

    #[test]
    fn adult_features_and_partition() {
        let gen = AdultLike::new(5);
        assert_eq!(gen.n_features(), 14);
        let mut rng = StdRng::seed_from_u64(1);
        let (ds, occs) = gen.generate(500, &mut rng);
        assert_eq!(ds.n_samples(), 500);
        assert_eq!(occs.len(), 500);
        // Both labels occur.
        let dist = ds.class_distribution();
        assert!(dist[0] > 50 && dist[1] > 50, "{dist:?}");
        // One-hot occupation block is consistent.
        for (i, &occ) in occs.iter().enumerate() {
            let row = ds.row(i);
            let hot: Vec<usize> = (0..8).filter(|&o| row[6 + o] == 1.0).collect();
            assert_eq!(hot, vec![occ]);
        }
        let fed = gen.generate_federated(3, 600, 200, 2);
        assert_eq!(fed.n_clients(), 3);
        assert_eq!(
            fed.client_sizes().iter().sum::<usize>(),
            600,
            "partition covers all train samples"
        );
    }

    #[test]
    fn sent140_document_structure() {
        let gen = Sent140Like::new(9);
        let fed = gen.generate_federated(5, 20, 30, 3);
        assert_eq!(fed.n_clients(), 5);
        assert_eq!(fed.test.n_samples(), 30);
        // Rows are normalised word frequencies.
        for i in 0..fed.test.n_samples() {
            let total: f32 = fed.test.row(i).iter().sum();
            assert!((total - 1.0).abs() < 1e-5);
        }
    }
}
