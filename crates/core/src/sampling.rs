//! Uniform and balanced sampling of coalitions, shared by the stratified
//! framework (Alg. 1), IPSS (Alg. 3) and the sampling baselines.

#![deny(clippy::unwrap_used, clippy::expect_used)]

use std::collections::HashSet;

use rand::seq::SliceRandom;
use rand::Rng;

use crate::coalition::{binom_u128, subsets_of_size, Coalition};

/// Draw one uniformly random coalition of exactly `k` members out of `n`
/// clients (partial Fisher–Yates).
pub fn random_subset_of_size<R: Rng + ?Sized>(n: usize, k: usize, rng: &mut R) -> Coalition {
    assert!(k <= n);
    let mut idx: Vec<usize> = (0..n).collect();
    let mut mask = 0u128;
    for j in 0..k {
        let pick = rng.random_range(j..n);
        idx.swap(j, pick);
        mask |= 1u128 << idx[j];
    }
    Coalition(mask)
}

/// Draw `count` *distinct* uniformly random coalitions of size `k`.
///
/// If `count ≥ C(n, k)` the entire stratum is returned. For dense requests
/// (more than half the stratum, when the stratum is small enough to
/// enumerate) we enumerate-and-shuffle; otherwise rejection sampling is
/// fast because collisions are rare.
pub fn distinct_subsets_of_size<R: Rng + ?Sized>(
    n: usize,
    k: usize,
    count: usize,
    rng: &mut R,
) -> Vec<Coalition> {
    let stratum_size = binom_u128(n, k);
    if count as u128 >= stratum_size {
        return subsets_of_size(n, k).collect();
    }
    // Dense request on an enumerable stratum: shuffle the full enumeration.
    if stratum_size <= 1 << 16 && (count as u128) * 2 >= stratum_size {
        let mut all: Vec<Coalition> = subsets_of_size(n, k).collect();
        all.shuffle(rng);
        all.truncate(count);
        return all;
    }
    let mut seen = HashSet::with_capacity(count * 2);
    let mut out = Vec::with_capacity(count);
    while out.len() < count {
        let s = random_subset_of_size(n, k, rng);
        if seen.insert(s.0) {
            out.push(s);
        }
    }
    out
}

/// Draw `count` distinct coalitions of size `k` such that every client is
/// covered (appears in) as equally as possible — the constraint `C_i = C_j`
/// of Alg. 3 line 11.
///
/// Uses a coverage-greedy design: each coalition takes the `k` clients with
/// the currently lowest coverage, breaking ties uniformly at random. As long
/// as a fresh coalition can be formed this keeps `max_i C_i − min_i C_i ≤ 1`;
/// when `n ∤ count·k` exact equality is impossible, so the ≤ 1 spread is the
/// best achievable (documented deviation in DESIGN.md). Duplicate coalitions
/// are rejected and re-drawn with new tie-breaks; after repeated failures we
/// fall back to any unused coalition so the function always terminates with
/// `min(count, C(n, k))` coalitions.
pub fn balanced_subsets_of_size<R: Rng + ?Sized>(
    n: usize,
    k: usize,
    count: usize,
    rng: &mut R,
) -> Vec<Coalition> {
    // Degenerate strata are answered, not asserted on: `k > n` names an
    // empty stratum (nothing to sample), while `k = 0` — including the
    // `n = 0` corner — has the single member `∅` and obeys the
    // whole-stratum rule below. These arise naturally from callers that
    // derive `k` from a budget (IPSS's `k* + 1` can exceed `n`), and
    // asserting here used to panic the whole valuation run.
    if k > n {
        return Vec::new();
    }
    let stratum_size = binom_u128(n, k);
    if count as u128 >= stratum_size {
        return subsets_of_size(n, k).collect();
    }
    if k == 0 || count == 0 {
        // count < stratum_size with k = 0 means count = 0.
        return Vec::new();
    }
    let mut coverage = vec![0u32; n];
    let mut chosen: HashSet<u128> = HashSet::with_capacity(count * 2);
    let mut out = Vec::with_capacity(count);
    let mut order: Vec<usize> = (0..n).collect();
    'outer: while out.len() < count {
        for _attempt in 0..32 {
            // Sort clients by (coverage, random tie-break).
            let mut keyed: Vec<(u32, u64, usize)> = order
                .iter()
                .map(|&i| (coverage[i], rng.random::<u64>(), i))
                .collect();
            keyed.sort_unstable();
            let members = keyed[..k].iter().map(|&(_, _, i)| i);
            let s = Coalition::from_members(members);
            if chosen.insert(s.0) {
                for i in s.members() {
                    coverage[i] += 1;
                }
                out.push(s);
                continue 'outer;
            }
        }
        // Fallback: any unused subset (can unbalance coverage; repaired
        // below).
        loop {
            let s = random_subset_of_size(n, k, rng);
            if chosen.insert(s.0) {
                for i in s.members() {
                    coverage[i] += 1;
                }
                out.push(s);
                break;
            }
        }
        order.shuffle(rng);
    }
    repair_coverage(n, &mut out, &mut chosen, &mut coverage, rng);
    out
}

/// Post-pass restoring the ≤1 coverage spread after greedy fallbacks:
/// move membership from over-covered to under-covered clients by swapping
/// one member of an existing coalition, keeping all coalitions distinct.
fn repair_coverage<R: Rng + ?Sized>(
    n: usize,
    out: &mut [Coalition],
    chosen: &mut HashSet<u128>,
    coverage: &mut [u32],
    rng: &mut R,
) {
    for _ in 0..out.len() * 4 {
        // Guarded min/max: an empty coverage vector (n = 0, or an empty
        // stratum that produced no coalitions) has nothing to repair and
        // used to panic on `.max().unwrap()`.
        let (Some(&max), Some(&min)) = (coverage.iter().max(), coverage.iter().min()) else {
            return;
        };
        if max - min <= 1 {
            return;
        }
        let over: Vec<usize> = (0..n).filter(|&i| coverage[i] == max).collect();
        let under: Vec<usize> = (0..n).filter(|&i| coverage[i] == min).collect();
        let a = over[rng.random_range(0..over.len())];
        let b = under[rng.random_range(0..under.len())];
        // Find a coalition containing a but not b whose a→b swap is unused.
        let mut swapped = false;
        for slot in out.iter_mut() {
            let s = *slot;
            if s.contains(a) && !s.contains(b) {
                let t = s.without(a).with(b);
                if !chosen.contains(&t.0) {
                    chosen.remove(&s.0);
                    chosen.insert(t.0);
                    *slot = t;
                    coverage[a] -= 1;
                    coverage[b] += 1;
                    swapped = true;
                    break;
                }
            }
        }
        if !swapped {
            // No legal swap for this (a, b) pair — give up; the residual
            // spread is at most the number of fallbacks, which is tiny.
            return;
        }
    }
}

/// Draw one uniformly random permutation of `0..n`.
pub fn random_permutation<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Vec<usize> {
    let mut perm: Vec<usize> = (0..n).collect();
    perm.shuffle(rng);
    perm
}

/// Coverage counts `C_i = Σ_{S∈P} 1[i ∈ S]` of a set of coalitions.
pub fn coverage_counts(n: usize, subsets: &[Coalition]) -> Vec<u32> {
    let mut cov = vec![0u32; n];
    for s in subsets {
        for i in s.members() {
            cov[i] += 1;
        }
    }
    cov
}

/// Coverage spread `max_i C_i − min_i C_i` of a coverage vector, with the
/// empty vector (no clients) defined as perfectly balanced (spread 0) —
/// the guarded form of the `max().unwrap() − min().unwrap()` idiom, which
/// panics on `n = 0` or an empty stratum.
pub fn coverage_spread(cov: &[u32]) -> u32 {
    match (cov.iter().max(), cov.iter().min()) {
        (Some(&max), Some(&min)) => max - min,
        _ => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn random_subset_has_requested_size() {
        let mut rng = StdRng::seed_from_u64(1);
        for n in 1..=12usize {
            for k in 0..=n {
                let s = random_subset_of_size(n, k, &mut rng);
                assert_eq!(s.size(), k);
                assert!(s.is_subset_of(Coalition::full(n)));
            }
        }
    }

    #[test]
    fn random_subset_is_roughly_uniform() {
        // Each of the C(4,2)=6 subsets should appear ~1/6 of the time.
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = std::collections::HashMap::new();
        let trials = 12_000;
        for _ in 0..trials {
            let s = random_subset_of_size(4, 2, &mut rng);
            *counts.entry(s.0).or_insert(0usize) += 1;
        }
        assert_eq!(counts.len(), 6);
        for (_, c) in counts {
            let freq = c as f64 / trials as f64;
            assert!((freq - 1.0 / 6.0).abs() < 0.02, "freq {freq}");
        }
    }

    #[test]
    fn distinct_subsets_are_distinct() {
        let mut rng = StdRng::seed_from_u64(3);
        let subs = distinct_subsets_of_size(10, 3, 50, &mut rng);
        assert_eq!(subs.len(), 50);
        let set: HashSet<u128> = subs.iter().map(|s| s.0).collect();
        assert_eq!(set.len(), 50);
        for s in subs {
            assert_eq!(s.size(), 3);
        }
    }

    #[test]
    fn distinct_subsets_saturate_to_full_stratum() {
        let mut rng = StdRng::seed_from_u64(4);
        let subs = distinct_subsets_of_size(5, 2, 1000, &mut rng);
        assert_eq!(subs.len(), 10); // C(5,2)
    }

    #[test]
    fn distinct_subsets_dense_request() {
        let mut rng = StdRng::seed_from_u64(5);
        // 8 of C(6,3) = 20 triggers the enumerate-and-shuffle path... request
        // 12 (> half) to be sure.
        let subs = distinct_subsets_of_size(6, 3, 12, &mut rng);
        assert_eq!(subs.len(), 12);
        let set: HashSet<u128> = subs.iter().map(|s| s.0).collect();
        assert_eq!(set.len(), 12);
    }

    #[test]
    fn balanced_subsets_have_tight_coverage_spread() {
        let mut rng = StdRng::seed_from_u64(6);
        for (n, k, count) in [(10, 3, 20), (10, 2, 5), (12, 4, 9), (100, 2, 359)] {
            let subs = balanced_subsets_of_size(n, k, count, &mut rng);
            assert_eq!(subs.len(), count);
            let set: HashSet<u128> = subs.iter().map(|s| s.0).collect();
            assert_eq!(set.len(), count, "distinctness");
            let cov = coverage_counts(n, &subs);
            let spread = coverage_spread(&cov);
            assert!(
                spread <= 1,
                "coverage spread {spread} for n={n} k={k} count={count}: {cov:?}"
            );
            let total: u32 = cov.iter().sum();
            assert_eq!(total as usize, count * k);
        }
    }

    #[test]
    fn balanced_subsets_exact_equality_when_divisible() {
        // count·k divisible by n ⇒ every client covered exactly count·k/n times.
        let mut rng = StdRng::seed_from_u64(7);
        let subs = balanced_subsets_of_size(8, 2, 12, &mut rng);
        let cov = coverage_counts(8, &subs);
        assert!(cov.iter().all(|&c| c == 3), "{cov:?}");
    }

    #[test]
    fn balanced_subsets_saturate() {
        let mut rng = StdRng::seed_from_u64(8);
        let subs = balanced_subsets_of_size(5, 2, 100, &mut rng);
        assert_eq!(subs.len(), 10);
    }

    #[test]
    fn balanced_subsets_degenerate_inputs_do_not_panic() {
        // Regression: n = 0 (empty coverage vector) and k > n (empty
        // stratum) used to trip `assert!(k >= 1 && k <= n)` or panic in
        // the coverage-repair pass; they now return sane defaults.
        let mut rng = StdRng::seed_from_u64(10);
        assert!(balanced_subsets_of_size(0, 0, 0, &mut rng).is_empty());
        // n = 0 still has the k = 0 stratum {∅} (whole-stratum rule).
        assert_eq!(
            balanced_subsets_of_size(0, 0, 5, &mut rng),
            vec![Coalition::empty()]
        );
        assert!(balanced_subsets_of_size(0, 3, 5, &mut rng).is_empty());
        assert!(balanced_subsets_of_size(4, 7, 5, &mut rng).is_empty());
        assert!(balanced_subsets_of_size(6, 2, 0, &mut rng).is_empty());
        // k = 0: the stratum is exactly {∅}.
        assert_eq!(
            balanced_subsets_of_size(5, 0, 3, &mut rng),
            vec![Coalition::empty()]
        );
        assert!(balanced_subsets_of_size(5, 0, 0, &mut rng).is_empty());
    }

    #[test]
    fn coverage_spread_handles_empty_vectors() {
        // Regression: the `cov.iter().max().unwrap()` idiom panicked on
        // empty coverage vectors; the helper defines them as balanced.
        assert_eq!(coverage_spread(&[]), 0);
        assert_eq!(coverage_spread(&coverage_counts(0, &[])), 0);
        assert_eq!(coverage_spread(&[3, 3, 3]), 0);
        assert_eq!(coverage_spread(&[1, 4, 2]), 3);
    }

    #[test]
    fn permutations_are_permutations() {
        let mut rng = StdRng::seed_from_u64(9);
        let p = random_permutation(7, &mut rng);
        let mut sorted = p.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..7).collect::<Vec<_>>());
    }
}
