//! The determinism rule set.
//!
//! Four repo-specific rules that clippy cannot express, each mapped onto
//! one of the bit-identity contracts in ARCHITECTURE.md:
//!
//! * **`hash-order`** — in the estimator crates (`fedval-core`,
//!   `fedval-fl`), no order-sensitive iteration of a `HashMap`/`HashSet`:
//!   `for` loops and `.iter()`/`.keys()`/`.values()`/`.drain()`-family
//!   calls on a hash-typed binding are findings unless the site is
//!   immediately sorted, ends in an order-insensitive terminal
//!   (`len`/`count`/`is_empty`/`contains`/`any`/`all`), or carries a
//!   `// lint:order-insensitive(<reason>)` annotation. Membership probes
//!   (`get`/`insert`/`contains`/`entry`) are free.
//! * **`wall-clock`** — no `Instant::now`/`SystemTime` outside the
//!   timing whitelist (`crates/core/src/service.rs` park-wait accounting
//!   and the `crates/bench` harness); stray accounting sites carry
//!   `// lint:wall-clock(<reason>)`.
//! * **`unseeded-rng`** — RNG construction must flow from an explicit
//!   seed: nondeterministic constructors (`thread_rng`, `from_entropy`,
//!   `from_os_rng`) are findings everywhere, and a
//!   `seed_from_u64`/`from_seed` call whose argument names no
//!   seed-carrying identifier needs `// lint:seeded(<reason>)`.
//! * **`allow-justification`** — every `#[allow(...)]` /
//!   `#[cfg_attr(..., allow(...))]` in non-test library code carries a
//!   justification comment (same line or the comment block directly
//!   above).
//!
//! Test code — `#[cfg(test)]` spans, `tests/`, `benches/`, `examples/`
//! — is *driver* code: only the nondeterministic-constructor ban applies
//! there (determinism matters in tests too; the other rules guard
//! value-producing library paths). `shims/` is vendored third-party
//! stand-in code and is not scanned, exactly as a registry dependency
//! would not be.

use crate::lexer::{prepare, tokenize, Prepared, Token};

/// Rule identifiers, as printed in findings and used by the fixtures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rule {
    HashOrder,
    WallClock,
    UnseededRng,
    AllowJustification,
}

impl Rule {
    pub fn id(self) -> &'static str {
        match self {
            Rule::HashOrder => "hash-order",
            Rule::WallClock => "wall-clock",
            Rule::UnseededRng => "unseeded-rng",
            Rule::AllowJustification => "allow-justification",
        }
    }
}

/// One lint finding.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Workspace-relative path (forward slashes).
    pub file: String,
    /// 1-based line.
    pub line: u32,
    pub rule: Rule,
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file,
            self.line,
            self.rule.id(),
            self.message
        )
    }
}

/// How a file is scanned, derived from its workspace-relative path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileClass {
    /// First-party library source under `crates/*/src`.
    Library {
        /// In the estimator crates (`core`, `fl`) the `hash-order` rule
        /// is active; elsewhere hash iteration has no bit-identity
        /// contract to break.
        estimator: bool,
        /// Wall-clock whitelist membership (`crates/core/src/service.rs`
        /// park-wait accounting).
        timing_whitelisted: bool,
    },
    /// Test/bench/example driver code, and the `crates/bench` harness:
    /// only the nondeterministic-constructor ban applies.
    Driver,
}

/// Classify a workspace-relative path; `None` means "do not scan"
/// (non-Rust files, vendored shims, lint fixtures).
pub fn classify(rel_path: &str) -> Option<FileClass> {
    let p = rel_path.replace('\\', "/");
    if !p.ends_with(".rs") {
        return None;
    }
    // Vendored stand-ins for registry crates: out of scope, like any
    // third-party dependency.
    if p.starts_with("shims/") {
        return None;
    }
    // Lint fixtures are rule *inputs* (they trip on purpose).
    if p.contains("/fixtures/") {
        return None;
    }
    if p.starts_with("tests/") || p.starts_with("examples/") {
        return Some(FileClass::Driver);
    }
    // Per-crate test and bench targets.
    if p.contains("/tests/") || p.contains("/benches/") || p.contains("/examples/") {
        return Some(FileClass::Driver);
    }
    // The bench harness: timing is its purpose, fixed literal seeds are
    // its inputs — driver code.
    if p.starts_with("crates/bench/") {
        return Some(FileClass::Driver);
    }
    if p.starts_with("crates/") && p.contains("/src/") {
        let estimator = p.starts_with("crates/core/") || p.starts_with("crates/fl/");
        let timing_whitelisted = p == "crates/core/src/service.rs";
        return Some(FileClass::Library {
            estimator,
            timing_whitelisted,
        });
    }
    None
}

/// Scan one file's source text under the classification its path implies.
/// Returns an empty vec for unscanned paths.
pub fn scan_source(rel_path: &str, source: &str) -> Vec<Finding> {
    let Some(class) = classify(rel_path) else {
        return Vec::new();
    };
    let prep = prepare(source);
    let toks = tokenize(&prep.clean);
    let ctx = FileContext::build(rel_path, class, &prep, &toks);
    let mut findings = Vec::new();
    ctx.check_unseeded_rng(&mut findings);
    if let FileClass::Library {
        estimator,
        timing_whitelisted,
    } = class
    {
        if estimator {
            ctx.check_hash_order(&mut findings);
        }
        if !timing_whitelisted {
            ctx.check_wall_clock(&mut findings);
        }
        ctx.check_allow_justification(&mut findings);
    }
    findings.sort_by_key(|f| f.line);
    findings
}

/// Iteration methods that expose a hash container's arbitrary order.
const ORDER_EXPOSING: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
    "retain",
    "extract_if",
];

/// Chain combinators that preserve "one finding per element" without
/// introducing order sensitivity on their own.
const SHAPE_COMBINATORS: &[&str] = &["copied", "cloned", "by_ref"];

/// Terminal chain calls whose result does not depend on iteration order.
const ORDER_FREE_TERMINALS: &[&str] = &["len", "count", "is_empty", "contains", "any", "all"];

/// Nondeterministic RNG constructors: banned tree-wide, no annotation
/// escape — a value produced from one can never be replayed.
const BANNED_RNG: &[&str] = &["thread_rng", "from_entropy", "from_os_rng"];

/// Seeding constructors whose argument must name a seed.
const SEEDING: &[&str] = &["seed_from_u64", "from_seed"];

/// Per-file scan state shared by the rules.
struct FileContext<'a> {
    rel_path: String,
    class: FileClass,
    prep: &'a Prepared,
    toks: &'a [Token],
    /// 1-based lines inside `#[cfg(test)]` item spans.
    test_lines: Vec<bool>,
    /// 1-based lines that carry attribute tokens (`#[...]`) and nothing
    /// else — transparent when walking up to a justification comment.
    attr_only_lines: Vec<bool>,
    /// 1-based lines that carry any non-attribute code token.
    code_lines: Vec<bool>,
    /// Identifiers known to be bound to `HashMap`/`HashSet` values
    /// (let bindings, fn params, struct fields, via type aliases too).
    hash_idents: Vec<String>,
}

impl<'a> FileContext<'a> {
    fn build(rel_path: &str, class: FileClass, prep: &'a Prepared, toks: &'a [Token]) -> Self {
        let n_lines = prep.comments.len() + 1;
        let mut ctx = FileContext {
            rel_path: rel_path.replace('\\', "/"),
            class,
            prep,
            toks,
            test_lines: vec![false; n_lines],
            attr_only_lines: vec![false; n_lines],
            code_lines: vec![false; n_lines],
            hash_idents: Vec::new(),
        };
        ctx.mark_attributes_and_tests();
        ctx.collect_hash_idents();
        ctx
    }

    fn in_test(&self, line: u32) -> bool {
        self.test_lines.get(line as usize).copied().unwrap_or(false)
    }

    fn finding(&self, out: &mut Vec<Finding>, line: u32, rule: Rule, message: String) {
        out.push(Finding {
            file: self.rel_path.clone(),
            line,
            rule,
            message,
        });
    }

    /// Walk attribute groups once: record which lines are attribute-only,
    /// find `#[cfg(test)]`-gated items and mark their line spans, and
    /// remember every line holding ordinary code.
    fn mark_attributes_and_tests(&mut self) {
        let toks = self.toks;
        let mut attr_token: Vec<bool> = vec![false; toks.len()];
        let mut i = 0usize;
        while i < toks.len() {
            if toks[i].text == "#" {
                // `#[...]` or `#![...]` — find the bracketed group.
                let mut j = i + 1;
                if j < toks.len() && toks[j].text == "!" {
                    j += 1;
                }
                if j < toks.len() && toks[j].text == "[" {
                    let close = match_bracket(toks, j, "[", "]");
                    for t in attr_token.iter_mut().take(close + 1).skip(i) {
                        *t = true;
                    }
                    // cfg(test) / cfg(all(test, ...)): mark the gated
                    // item's span as test code.
                    let is_outer = toks[i + 1].text != "!";
                    let body: Vec<&str> =
                        toks[j + 1..close].iter().map(|t| t.text.as_str()).collect();
                    if is_outer && body.first() == Some(&"cfg") && body.contains(&"test") {
                        let end = self.mark_test_item(close + 1, toks[i].line);
                        i = end;
                        continue;
                    }
                    i = close + 1;
                    continue;
                }
            }
            i += 1;
        }
        // Line bookkeeping from the token/attr classification.
        for (k, t) in toks.iter().enumerate() {
            let l = t.line as usize;
            if attr_token[k] {
                if !self.code_lines[l] {
                    self.attr_only_lines[l] = true;
                }
            } else {
                self.code_lines[l] = true;
                self.attr_only_lines[l] = false;
            }
        }
    }

    /// Starting just past a `#[cfg(test)]` attribute at token `start`,
    /// skip any further attributes, then span the gated item (to its
    /// matching close brace, or to `;` for a brace-less item). Marks the
    /// covered lines as test code and returns the index just past the
    /// item.
    fn mark_test_item(&mut self, mut start: usize, attr_line: u32) -> usize {
        let toks = self.toks;
        // Skip stacked attributes between cfg(test) and the item.
        while start < toks.len() && toks[start].text == "#" {
            let mut j = start + 1;
            if j < toks.len() && toks[j].text == "!" {
                j += 1;
            }
            if j < toks.len() && toks[j].text == "[" {
                start = match_bracket(toks, j, "[", "]") + 1;
            } else {
                break;
            }
        }
        // Find the item's opening `{` or terminating `;` at depth 0.
        let mut depth = 0i32;
        let mut k = start;
        while k < toks.len() {
            match toks[k].text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "{" if depth == 0 => {
                    let close = match_bracket(toks, k, "{", "}");
                    let end_line = toks[close].line;
                    for l in attr_line as usize..=end_line as usize {
                        if l < self.test_lines.len() {
                            self.test_lines[l] = true;
                        }
                    }
                    return close + 1;
                }
                ";" if depth == 0 => {
                    let end_line = toks[k].line;
                    for l in attr_line as usize..=end_line as usize {
                        if l < self.test_lines.len() {
                            self.test_lines[l] = true;
                        }
                    }
                    return k + 1;
                }
                _ => {}
            }
            k += 1;
        }
        toks.len()
    }

    /// Collect identifiers bound to `HashMap`/`HashSet` (directly, or via
    /// a local `type` alias whose right-hand side is one).
    fn collect_hash_idents(&mut self) {
        let toks = self.toks;
        let mut hash_types: Vec<String> = vec!["HashMap".into(), "HashSet".into()];
        // Pass 1: type aliases — `type Name = ... HashMap<...>;`
        for i in 0..toks.len() {
            if toks[i].text == "type" && i + 2 < toks.len() && toks[i + 2].text == "=" {
                let alias = &toks[i + 1];
                let mut j = i + 3;
                while j < toks.len() && toks[j].text != ";" {
                    if toks[j].text == "HashMap" || toks[j].text == "HashSet" {
                        hash_types.push(alias.text.clone());
                        break;
                    }
                    j += 1;
                }
            }
        }
        let is_hash_type = |t: &str| hash_types.iter().any(|h| h == t);

        let mut idents: Vec<String> = Vec::new();
        for i in 0..toks.len() {
            // Typed binding / param / field: `name: [&|&mut|mut|path::]Hash<...>`
            // — the hash type must be the *outermost* type constructor, so
            // `shards: [RwLock<HashMap<..>>; N]` does not mark `shards`.
            if toks[i].text == ":" && i > 0 && toks[i - 1].is_word {
                let name = &toks[i - 1].text;
                let mut j = i + 1;
                while j < toks.len()
                    && matches!(
                        toks[j].text.as_str(),
                        "&" | "mut" | "'" | "std" | "collections" | ":"
                    )
                {
                    j += 1;
                }
                // Skip a lifetime name directly after `'`.
                if j > i + 1 && toks[j - 1].text == "'" {
                    j += 1;
                }
                if j < toks.len() && is_hash_type(&toks[j].text) {
                    idents.push(name.clone());
                }
            }
            // Untyped let with a hash constructor on the RHS:
            // `let [mut] name = [path::]Hash::new()/with_capacity(..)`.
            if toks[i].text == "let" {
                let mut j = i + 1;
                if j < toks.len() && toks[j].text == "mut" {
                    j += 1;
                }
                if j >= toks.len() || !toks[j].is_word {
                    continue;
                }
                let name = &toks[j].text;
                if j + 1 < toks.len() && toks[j + 1].text == "=" {
                    let mut k = j + 2;
                    let limit = (j + 14).min(toks.len());
                    while k < limit && toks[k].text != ";" && toks[k].text != "(" {
                        if is_hash_type(&toks[k].text) {
                            idents.push(name.clone());
                            break;
                        }
                        k += 1;
                    }
                }
            }
        }
        idents.sort();
        idents.dedup();
        self.hash_idents = idents;
    }

    /// Is there a `lint:<kind>(reason)` annotation covering `line`? Looks
    /// at the trailing comment of the line itself, then at the contiguous
    /// block of comment-only and attribute-only lines above it. The block
    /// is joined before matching, so a long reason may wrap across
    /// comment lines.
    fn annotated(&self, line: u32, kind: &str) -> bool {
        let needle = format!("lint:{kind}(");
        // Non-empty reason up to the closing paren, possibly with comment
        // markers interleaved where the reason wrapped.
        let has = |text: &str| {
            if let Some(pos) = text.find(&needle) {
                let rest = &text[pos + needle.len()..];
                return rest
                    .find(')')
                    .is_some_and(|close| rest[..close].chars().any(|c| c.is_alphanumeric()));
            }
            false
        };
        if has(self.prep.comment_on(line)) {
            return true;
        }
        // Collect the comment block directly above (attributes may sit
        // between it and the site) and match against the joined text.
        let mut block: Vec<&str> = Vec::new();
        let mut l = line.saturating_sub(1);
        while l >= 1 {
            let lu = l as usize;
            let code = self.code_lines.get(lu).copied().unwrap_or(false);
            let attr = self.attr_only_lines.get(lu).copied().unwrap_or(false);
            let comment = self.prep.comment_on(l);
            if code && !attr {
                break;
            }
            if !comment.is_empty() {
                block.push(comment);
            } else if !attr {
                break; // blank line ends the block
            }
            l -= 1;
        }
        block.reverse();
        has(&block.join(" "))
    }

    /// `hash-order`: order-sensitive iteration of hash containers.
    fn check_hash_order(&self, out: &mut Vec<Finding>) {
        let toks = self.toks;
        for i in 0..toks.len() {
            // `name.iter()` / `self.name.drain()` … method chains.
            if toks[i].is_word && self.hash_idents.contains(&toks[i].text) {
                let name = &toks[i].text;
                // Direct iteration method on the binding.
                if i + 3 < toks.len()
                    && toks[i + 1].text == "."
                    && ORDER_EXPOSING.contains(&toks[i + 2].text.as_str())
                    && toks[i + 3].text == "("
                {
                    let line = toks[i].line;
                    if self.in_test(line) || self.annotated(line, "order-insensitive") {
                        continue;
                    }
                    if self.chain_is_order_free(i + 2) || self.sorted_nearby(i, line) {
                        continue;
                    }
                    self.finding(
                        out,
                        line,
                        Rule::HashOrder,
                        format!(
                            "`{name}.{}()` iterates a HashMap/HashSet in arbitrary order; \
                             sort the drain, use a BTreeMap, or annotate the site with \
                             `// lint:order-insensitive(<reason>)`",
                            toks[i + 2].text
                        ),
                    );
                }
            }
            // `for x in [&[mut]] name {` — iteration by loop.
            if toks[i].text == "for" {
                // Find `in` at depth 0 (patterns may contain parens).
                let mut depth = 0i32;
                let mut j = i + 1;
                let mut in_idx = None;
                while j < toks.len() && j < i + 40 {
                    match toks[j].text.as_str() {
                        "(" | "[" => depth += 1,
                        ")" | "]" => depth -= 1,
                        "in" if depth == 0 => {
                            in_idx = Some(j);
                            break;
                        }
                        "{" => break,
                        _ => {}
                    }
                    j += 1;
                }
                let Some(ix) = in_idx else { continue };
                // Expression = tokens to the loop `{` at depth 0.
                let mut k = ix + 1;
                let mut expr: Vec<usize> = Vec::new();
                let mut depth = 0i32;
                while k < toks.len() {
                    match toks[k].text.as_str() {
                        "(" | "[" => depth += 1,
                        ")" | "]" => depth -= 1,
                        "{" if depth == 0 => break,
                        _ => {}
                    }
                    expr.push(k);
                    k += 1;
                }
                // Flag only the bare `name` / `&name` / `&mut name` forms;
                // method-call forms are caught by the chain rule above.
                let words: Vec<&str> = expr
                    .iter()
                    .map(|&t| toks[t].text.as_str())
                    .filter(|w| *w != "&" && *w != "mut")
                    .collect();
                if words.len() == 1 && self.hash_idents.iter().any(|h| h == words[0]) {
                    let line = toks[ix].line;
                    if self.in_test(line) || self.annotated(line, "order-insensitive") {
                        continue;
                    }
                    self.finding(
                        out,
                        line,
                        Rule::HashOrder,
                        format!(
                            "`for … in {}` iterates a HashMap/HashSet in arbitrary order; \
                             sort first, use a BTreeMap, or annotate with \
                             `// lint:order-insensitive(<reason>)`",
                            words[0]
                        ),
                    );
                }
            }
        }
    }

    /// Does the method chain starting at the iteration call (token index
    /// of `iter`/`keys`/…) end in an order-insensitive terminal, passing
    /// only through shape-preserving combinators?
    fn chain_is_order_free(&self, mut call: usize) -> bool {
        let toks = self.toks;
        loop {
            // `call` indexes the method name; skip its argument list.
            let open = call + 1;
            if open >= toks.len() || toks[open].text != "(" {
                return false;
            }
            let close = match_bracket(toks, open, "(", ")");
            // Turbofish between name and `(` is not handled — treated as
            // order-sensitive, which is the conservative direction.
            let mut next = close + 1;
            if next >= toks.len() || toks[next].text != "." {
                return false;
            }
            next += 1;
            if next >= toks.len() || !toks[next].is_word {
                return false;
            }
            let m = toks[next].text.as_str();
            if ORDER_FREE_TERMINALS.contains(&m) {
                return true;
            }
            if SHAPE_COMBINATORS.contains(&m) {
                call = next;
                continue;
            }
            return false;
        }
    }

    /// Is the iteration "immediately sorted"? True when the same
    /// statement, or either of the two following lines, sorts the result
    /// or collects it into a `BTreeMap`/`BTreeSet`.
    fn sorted_nearby(&self, site: usize, line: u32) -> bool {
        let toks = self.toks;
        // Same statement: scan forward to `;` (bounded).
        let mut k = site;
        let mut depth = 0i32;
        while k < toks.len() && k < site + 120 {
            match toks[k].text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                ";" if depth <= 0 => break,
                _ => {}
            }
            if toks[k].is_word
                && (toks[k].text.starts_with("sort")
                    || toks[k].text == "BTreeMap"
                    || toks[k].text == "BTreeSet"
                    || toks[k].text == "BinaryHeap")
            {
                return true;
            }
            k += 1;
        }
        // The next two lines (the classic collect-then-sort shape).
        toks.iter()
            .filter(|t| t.line > line && t.line <= line + 2)
            .any(|t| t.is_word && t.text.starts_with("sort"))
    }

    /// `wall-clock`: `Instant::now` / `SystemTime` outside the whitelist.
    fn check_wall_clock(&self, out: &mut Vec<Finding>) {
        let toks = self.toks;
        for i in 0..toks.len() {
            let line = toks[i].line;
            if self.in_test(line) {
                continue;
            }
            let hit = match toks[i].text.as_str() {
                "SystemTime" => Some("SystemTime"),
                "Instant" => (i + 3 < toks.len()
                    && toks[i + 1].text == ":"
                    && toks[i + 2].text == ":"
                    && toks[i + 3].text == "now")
                    .then_some("Instant::now"),
                _ => None,
            };
            // `use std::time::Instant;` imports are fine — only the call
            // sites matter. `SystemTime` has no deterministic use at all,
            // so any mention outside `use` is flagged.
            if let Some(what) = hit {
                if i >= 1 && is_in_use_decl(toks, i) {
                    continue;
                }
                if self.annotated(line, "wall-clock") {
                    continue;
                }
                self.finding(
                    out,
                    line,
                    Rule::WallClock,
                    format!(
                        "`{what}` outside the timing whitelist \
                         (crates/core/src/service.rs, crates/bench); move the \
                         measurement there or annotate with `// lint:wall-clock(<reason>)`"
                    ),
                );
            }
        }
    }

    /// `unseeded-rng`: banned constructors everywhere; seeding calls in
    /// library code must reference a seed-carrying identifier.
    fn check_unseeded_rng(&self, out: &mut Vec<Finding>) {
        let toks = self.toks;
        for i in 0..toks.len() {
            let t = &toks[i];
            if !t.is_word {
                continue;
            }
            if BANNED_RNG.contains(&t.text.as_str())
                && i + 1 < toks.len()
                && toks[i + 1].text == "("
            {
                self.finding(
                    out,
                    t.line,
                    Rule::UnseededRng,
                    format!(
                        "`{}` constructs a nondeterministic RNG; every generator must \
                         be built from an explicit seed (`seed_from_u64`)",
                        t.text
                    ),
                );
                continue;
            }
            if matches!(self.class, FileClass::Library { .. })
                && !self.in_test(t.line)
                && SEEDING.contains(&t.text.as_str())
                && i + 1 < toks.len()
                && toks[i + 1].text == "("
            {
                let close = match_bracket(toks, i + 1, "(", ")");
                let args_name_a_seed = toks[i + 2..close]
                    .iter()
                    .any(|a| a.is_word && a.text.to_ascii_lowercase().contains("seed"));
                if !args_name_a_seed && !self.annotated(t.line, "seeded") {
                    self.finding(
                        out,
                        t.line,
                        Rule::UnseededRng,
                        format!(
                            "`{}` argument does not flow from a seed parameter; thread \
                             an explicit seed through, or annotate with \
                             `// lint:seeded(<reason>)`",
                            t.text
                        ),
                    );
                }
            }
        }
    }

    /// `allow-justification`: every `#[allow(...)]` (or
    /// `#[cfg_attr(..., allow(...))]`) in non-test library code needs a
    /// comment saying why.
    fn check_allow_justification(&self, out: &mut Vec<Finding>) {
        let toks = self.toks;
        let mut i = 0usize;
        while i < toks.len() {
            if toks[i].text != "#" {
                i += 1;
                continue;
            }
            let mut j = i + 1;
            if j < toks.len() && toks[j].text == "!" {
                j += 1;
            }
            if j >= toks.len() || toks[j].text != "[" {
                i += 1;
                continue;
            }
            let close = match_bracket(toks, j, "[", "]");
            let body: Vec<&str> = toks[j + 1..close].iter().map(|t| t.text.as_str()).collect();
            let is_allow = body.first() == Some(&"allow")
                || (body.first() == Some(&"cfg_attr") && body.contains(&"allow"));
            if is_allow {
                let line = toks[i].line;
                let end_line = toks[close].line;
                if !self.in_test(line) {
                    // Justified iff any spanned line has a trailing
                    // comment, or the comment block above explains it.
                    let mut justified =
                        (line..=end_line).any(|l| !self.prep.comment_on(l).is_empty());
                    if !justified {
                        justified = self.comment_block_above(line);
                    }
                    if !justified {
                        self.finding(
                            out,
                            line,
                            Rule::AllowJustification,
                            "`#[allow(...)]` without a justification comment (same line \
                             or the comment block directly above)"
                                .to_string(),
                        );
                    }
                }
            }
            i = close + 1;
        }
    }

    /// Is there a comment in the contiguous comment/attribute block
    /// directly above `line`?
    fn comment_block_above(&self, line: u32) -> bool {
        let mut l = line.saturating_sub(1);
        while l >= 1 {
            let lu = l as usize;
            let comment = !self.prep.comment_on(l).is_empty();
            let code = self.code_lines.get(lu).copied().unwrap_or(false);
            let attr = self.attr_only_lines.get(lu).copied().unwrap_or(false);
            if comment && !code {
                return true;
            }
            if attr && !code {
                l -= 1;
                continue;
            }
            return false;
        }
        false
    }
}

/// Index of the token matching the opener at `open` (`open_sym` …
/// `close_sym`), or the last token if unbalanced.
fn match_bracket(toks: &[Token], open: usize, open_sym: &str, close_sym: &str) -> usize {
    let mut depth = 0i32;
    for (k, t) in toks.iter().enumerate().skip(open) {
        if t.text == open_sym {
            depth += 1;
        } else if t.text == close_sym {
            depth -= 1;
            if depth == 0 {
                return k;
            }
        }
    }
    toks.len().saturating_sub(1)
}

/// Is token `i` part of a `use …;` declaration? Walk back to the start
/// of the statement (`;` always terminates the previous one; braces are
/// allowed through, so `use std::time::{Duration, SystemTime};` counts).
fn is_in_use_decl(toks: &[Token], i: usize) -> bool {
    let mut k = i;
    while k > 0 {
        k -= 1;
        match toks[k].text.as_str() {
            ";" => return false,
            "use" => return true,
            _ => {}
        }
    }
    false
}
