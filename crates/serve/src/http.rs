//! A minimal HTTP/1.1 layer over `std::net::TcpStream` — hand-rolled in
//! the style of the workspace `shims/` (no registry access), covering
//! exactly what the wire transport needs: request parsing with strict
//! limits, keep-alive + pipelining, `Content-Length` bodies, and a small
//! blocking client used by the conformance tests and the `service_wire`
//! bench.
//!
//! The parser is deliberately conservative: anything outside the subset
//! (chunked bodies, multiline headers, absolute-form targets) is a typed
//! [`HttpError`] that the server maps onto a 4xx/5xx response — never a
//! panic. Truncated bodies and oversized payloads are first-class cases,
//! exercised by `tests/tests/wire_malformed.rs`.

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// A parsed request head plus its (fully read) body.
#[derive(Clone, Debug)]
pub struct Request {
    /// Request method, upper-case as received (`GET`, `POST`, …).
    pub method: String,
    /// Origin-form target path, query string stripped.
    pub path: String,
    /// Raw query string (without `?`), empty if absent.
    pub query: String,
    /// Header fields, names lower-cased, in arrival order.
    pub headers: Vec<(String, String)>,
    /// The request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
    /// Whether the connection should stay open after the response
    /// (HTTP/1.1 default, overridden by `Connection: close`).
    pub keep_alive: bool,
}

impl Request {
    /// First value of header `name` (lower-case), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be read. Everything except `Closed`/`Io`
/// still leaves the write side usable, so the server can answer with the
/// mapped status before dropping the connection.
#[derive(Debug)]
pub enum HttpError {
    /// Malformed request line, header, or truncated body — maps to 400.
    BadRequest(String),
    /// Declared `Content-Length` exceeds the configured cap — maps
    /// to 413 (the body is *not* read).
    PayloadTooLarge {
        /// Declared body length.
        declared: usize,
        /// The configured cap.
        limit: usize,
    },
    /// The request head grew past the configured cap — maps to 431.
    HeadTooLarge {
        /// The configured cap.
        limit: usize,
    },
    /// A body-bearing method arrived without `Content-Length` — maps
    /// to 411 (chunked transfer is outside the supported subset).
    LengthRequired,
    /// The peer closed (or the drain deadline passed) between requests —
    /// not an error, just the end of the connection.
    Closed,
    /// Transport failure mid-request; the connection is unusable.
    Io(io::Error),
}

/// Caps on what a single request may occupy.
#[derive(Clone, Copy, Debug)]
pub struct Limits {
    /// Maximum bytes of request line + headers.
    pub max_head_bytes: usize,
    /// Maximum bytes of body.
    pub max_body_bytes: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_head_bytes: 8 * 1024,
            max_body_bytes: 1024 * 1024,
        }
    }
}

/// A connection with its persistent read buffer: keep-alive requests and
/// pipelined bytes carry over between [`Conn::read_request`] calls.
pub struct Conn {
    stream: TcpStream,
    /// Bytes read from the socket but not yet consumed (pipelining).
    buf: Vec<u8>,
}

impl Conn {
    /// Wrap an accepted stream. `poll` is the read timeout granularity:
    /// blocked reads wake at this cadence so the server loop can observe
    /// its shutdown flag between slices.
    pub fn new(stream: TcpStream, poll: Duration) -> io::Result<Conn> {
        stream.set_read_timeout(Some(poll))?;
        stream.set_nodelay(true)?;
        Ok(Conn {
            stream,
            buf: Vec::new(),
        })
    }

    /// Read one request. `should_abort` is polled between read slices;
    /// when it returns true and no request bytes are pending, the
    /// connection reports [`HttpError::Closed`] so the caller can drain
    /// out. A request already in flight keeps reading — the drain path
    /// bounds that with its own deadline around this call.
    pub fn read_request(
        &mut self,
        limits: &Limits,
        should_abort: &mut dyn FnMut(bool) -> bool,
    ) -> Result<Request, HttpError> {
        // Accumulate the head until the blank line.
        let head_end = loop {
            if let Some(pos) = find_head_end(&self.buf) {
                // The cap applies even when the whole head arrived in
                // one read slice.
                if pos > limits.max_head_bytes {
                    return Err(HttpError::HeadTooLarge {
                        limit: limits.max_head_bytes,
                    });
                }
                break pos;
            }
            if self.buf.len() > limits.max_head_bytes {
                return Err(HttpError::HeadTooLarge {
                    limit: limits.max_head_bytes,
                });
            }
            match self.fill() {
                Ok(0) => {
                    return if self.buf.is_empty() {
                        Err(HttpError::Closed)
                    } else {
                        Err(HttpError::BadRequest("truncated request head".to_string()))
                    };
                }
                Ok(_) => continue,
                Err(e) if would_block(&e) => {
                    if should_abort(!self.buf.is_empty()) {
                        return Err(HttpError::Closed);
                    }
                    continue;
                }
                Err(e) => return Err(HttpError::Io(e)),
            }
        };
        let head_bytes = self.buf[..head_end].to_vec();
        let body_start = head_end + 4; // past the \r\n\r\n
        let head = String::from_utf8(head_bytes)
            .map_err(|_| HttpError::BadRequest("request head is not UTF-8".to_string()))?;
        let mut parsed = parse_head(&head)?;

        // Body: exactly Content-Length bytes (the supported subset; a
        // `Transfer-Encoding` header is out of scope and rejected).
        if parsed.header("transfer-encoding").is_some() {
            return Err(HttpError::BadRequest(
                "chunked transfer encoding is not supported".to_string(),
            ));
        }
        let content_length =
            match parsed.header("content-length") {
                Some(v) => Some(v.trim().parse::<usize>().map_err(|_| {
                    HttpError::BadRequest("unparseable Content-Length".to_string())
                })?),
                None => None,
            };
        let body_len = match (parsed.method.as_str(), content_length) {
            (_, Some(len)) => len,
            ("POST" | "PUT" | "PATCH", None) => return Err(HttpError::LengthRequired),
            (_, None) => 0,
        };
        if body_len > limits.max_body_bytes {
            // Leave the unread body on the socket; the server responds
            // 413 and closes the connection.
            self.buf.drain(..body_start.min(self.buf.len()));
            return Err(HttpError::PayloadTooLarge {
                declared: body_len,
                limit: limits.max_body_bytes,
            });
        }
        while self.buf.len() < body_start + body_len {
            match self.fill() {
                Ok(0) => {
                    return Err(HttpError::BadRequest(format!(
                        "truncated body: Content-Length {body_len}, got {}",
                        self.buf.len().saturating_sub(body_start)
                    )));
                }
                Ok(_) => continue,
                Err(e) if would_block(&e) => {
                    if should_abort(true) {
                        return Err(HttpError::Closed);
                    }
                    continue;
                }
                Err(e) => return Err(HttpError::Io(e)),
            }
        }
        parsed.body = self.buf[body_start..body_start + body_len].to_vec();
        // Keep any pipelined follow-up bytes for the next call.
        self.buf.drain(..body_start + body_len);
        Ok(parsed)
    }

    fn fill(&mut self) -> io::Result<usize> {
        let mut chunk = [0u8; 4096];
        let n = self.stream.read(&mut chunk)?;
        self.buf.extend_from_slice(&chunk[..n]);
        Ok(n)
    }

    /// Write a complete response.
    pub fn write_response(&mut self, resp: &Response) -> io::Result<()> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\ncontent-type: application/json\r\ncontent-length: {}\r\n",
            resp.status,
            reason_phrase(resp.status),
            resp.body.len()
        );
        for (k, v) in &resp.headers {
            head.push_str(k);
            head.push_str(": ");
            head.push_str(v);
            head.push_str("\r\n");
        }
        head.push_str(if resp.close {
            "connection: close\r\n\r\n"
        } else {
            "connection: keep-alive\r\n\r\n"
        });
        self.stream.write_all(head.as_bytes())?;
        self.stream.write_all(&resp.body)?;
        self.stream.flush()
    }
}

/// A response the server is about to serialize.
#[derive(Clone, Debug)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Extra headers (content-type/length/connection are added by the
    /// writer).
    pub headers: Vec<(String, String)>,
    /// Body bytes (JSON in this transport).
    pub body: Vec<u8>,
    /// Ask the peer to close after this response.
    pub close: bool,
}

impl Response {
    /// A JSON response with no extra headers.
    pub fn json(status: u16, body: String) -> Response {
        Response {
            status,
            headers: Vec::new(),
            body: body.into_bytes(),
            close: false,
        }
    }

    /// Add a header.
    pub fn with_header(mut self, name: &str, value: String) -> Response {
        self.headers.push((name.to_string(), value));
        self
    }

    /// Mark the connection for closing after this response.
    pub fn closing(mut self) -> Response {
        self.close = true;
        self
    }
}

fn would_block(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut | io::ErrorKind::Interrupted
    )
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

fn parse_head(head: &str) -> Result<Request, HttpError> {
    let mut lines = head.split("\r\n");
    let request_line = lines
        .next()
        .ok_or_else(|| HttpError::BadRequest("empty request".to_string()))?;
    let mut parts = request_line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => {
            return Err(HttpError::BadRequest(format!(
                "malformed request line `{request_line}`"
            )))
        }
    };
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(HttpError::BadRequest(format!(
            "unsupported protocol version `{version}`"
        )));
    }
    if !target.starts_with('/') {
        return Err(HttpError::BadRequest(
            "only origin-form request targets are supported".to_string(),
        ));
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target.to_string(), String::new()),
    };
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::BadRequest(format!(
                "malformed header line `{line}`"
            )));
        };
        if name.is_empty() || name.contains(' ') {
            return Err(HttpError::BadRequest(format!(
                "malformed header name `{name}`"
            )));
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }
    let connection = headers
        .iter()
        .find(|(k, _)| k == "connection")
        .map(|(_, v)| v.to_ascii_lowercase());
    let keep_alive = match (version, connection.as_deref()) {
        (_, Some("close")) => false,
        ("HTTP/1.0", Some("keep-alive")) => true,
        ("HTTP/1.0", _) => false,
        _ => true,
    };
    Ok(Request {
        method: method.to_string(),
        path,
        query,
        headers,
        body: Vec::new(),
        keep_alive,
    })
}

/// Reason phrases for every status the transport emits (plus the
/// generic fallbacks).
pub fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        206 => "Partial Content",
        400 => "Bad Request",
        402 => "Payment Required",
        404 => "Not Found",
        405 => "Method Not Allowed",
        411 => "Length Required",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        502 => "Bad Gateway",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        520 => "Upstream Response Lost",
        s if s < 400 => "OK",
        s if s < 500 => "Client Error",
        _ => "Server Error",
    }
}

/// A small blocking HTTP/1.1 client over one keep-alive connection —
/// enough for the conformance tests, the `service_wire` bench and the
/// `wire_client` example. Not a general client: it expects
/// `Content-Length` responses, as `fedval-serve` always sends.
pub struct Client {
    stream: TcpStream,
    buf: Vec<u8>,
}

/// A client-side view of a response.
#[derive(Clone, Debug)]
pub struct ClientResponse {
    /// Status code.
    pub status: u16,
    /// Headers, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// First value of header `name` (lower-case), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Body parsed as JSON.
    pub fn json(&self) -> Result<crate::json::Json, crate::json::ParseError> {
        let text = String::from_utf8_lossy(&self.body);
        crate::json::parse(&text)
    }
}

impl Client {
    /// Connect to `addr` (e.g. a `SocketAddr` or `"127.0.0.1:8080"`).
    pub fn connect(addr: impl std::net::ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client {
            stream,
            buf: Vec::new(),
        })
    }

    /// Issue `method path` with an optional body and read the response.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> io::Result<ClientResponse> {
        self.send_raw(&build_request_bytes(method, path, body))?;
        self.read_response()
    }

    /// POST a JSON body to `path`.
    pub fn post(&mut self, path: &str, body: &str) -> io::Result<ClientResponse> {
        self.request("POST", path, Some(body))
    }

    /// GET `path`.
    pub fn get(&mut self, path: &str) -> io::Result<ClientResponse> {
        self.request("GET", path, None)
    }

    /// Write raw bytes on the connection (used by the pipelining and
    /// truncation tests to go off-script).
    pub fn send_raw(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.stream.write_all(bytes)?;
        self.stream.flush()
    }

    /// Half-close the write side (simulates a client dying mid-body).
    pub fn shutdown_write(&mut self) -> io::Result<()> {
        self.stream.shutdown(std::net::Shutdown::Write)
    }

    /// Read one response off the connection (supports reading several
    /// pipelined responses back-to-back).
    pub fn read_response(&mut self) -> io::Result<ClientResponse> {
        let head_end = loop {
            if let Some(pos) = find_head_end(&self.buf) {
                break pos;
            }
            let mut chunk = [0u8; 4096];
            let n = self.stream.read(&mut chunk)?;
            if n == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed before a full response head",
                ));
            }
            self.buf.extend_from_slice(&chunk[..n]);
        };
        let head = String::from_utf8_lossy(&self.buf[..head_end]).into_owned();
        let body_start = head_end + 4;
        let mut lines = head.split("\r\n");
        let status_line = lines.next().unwrap_or_default();
        let status: u16 = status_line
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("malformed status line `{status_line}`"),
                )
            })?;
        let mut headers = Vec::new();
        for line in lines {
            if let Some((name, value)) = line.split_once(':') {
                headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
            }
        }
        let content_length: usize = headers
            .iter()
            .find(|(k, _)| k == "content-length")
            .and_then(|(_, v)| v.parse().ok())
            .unwrap_or(0);
        while self.buf.len() < body_start + content_length {
            let mut chunk = [0u8; 4096];
            let n = self.stream.read(&mut chunk)?;
            if n == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-body",
                ));
            }
            self.buf.extend_from_slice(&chunk[..n]);
        }
        let body = self.buf[body_start..body_start + content_length].to_vec();
        self.buf.drain(..body_start + content_length);
        Ok(ClientResponse {
            status,
            headers,
            body,
        })
    }
}

/// Serialize a request for [`Client::request`] (public so tests can
/// build pipelined two-request writes from the same bytes).
pub fn build_request_bytes(method: &str, path: &str, body: Option<&str>) -> Vec<u8> {
    let body = body.unwrap_or_default();
    let mut out = format!("{method} {path} HTTP/1.1\r\nhost: fedval\r\n");
    if !body.is_empty() || method == "POST" {
        out.push_str(&format!(
            "content-type: application/json\r\ncontent-length: {}\r\n",
            body.len()
        ));
    }
    out.push_str("\r\n");
    out.push_str(body);
    out.into_bytes()
}
