//! Minimal dense linear algebra (row-major, no external BLAS).
//!
//! The FL experiments use small models (thousands of parameters), so
//! straightforward loop nests with `#[inline]` helpers are both simple and
//! fast enough; the dominant cost in the paper's accounting is the *number*
//! of coalition trainings `τ`, not the per-training FLOPs.

/// `out[m×n] = a[m×k] · b[k×n]` (row-major). `out` is overwritten.
pub fn matmul(a: &[f32], b: &[f32], m: usize, k: usize, n: usize, out: &mut [f32]) {
    assert_eq!(a.len(), m * k);
    assert_eq!(b.len(), k * n);
    assert_eq!(out.len(), m * n);
    out.fill(0.0);
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let out_row = &mut out[i * n..(i + 1) * n];
        for (p, &av) in a_row.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let b_row = &b[p * n..(p + 1) * n];
            for (o, &bv) in out_row.iter_mut().zip(b_row) {
                *o += av * bv;
            }
        }
    }
}

/// `out[m×n] = a[m×k] · bᵀ` where `b` is `n×k` (row-major).
pub fn matmul_a_bt(a: &[f32], b: &[f32], m: usize, k: usize, n: usize, out: &mut [f32]) {
    assert_eq!(a.len(), m * k);
    assert_eq!(b.len(), n * k);
    assert_eq!(out.len(), m * n);
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        for j in 0..n {
            let b_row = &b[j * k..(j + 1) * k];
            out[i * n + j] = dot(a_row, b_row);
        }
    }
}

/// `out[k×n] += aᵀ · b` where `a` is `m×k` and `b` is `m×n` (row-major).
/// Accumulates into `out` (gradient accumulation).
pub fn matmul_at_b_accum(a: &[f32], b: &[f32], m: usize, k: usize, n: usize, out: &mut [f32]) {
    assert_eq!(a.len(), m * k);
    assert_eq!(b.len(), m * n);
    assert_eq!(out.len(), k * n);
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let b_row = &b[i * n..(i + 1) * n];
        for (p, &av) in a_row.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let out_row = &mut out[p * n..(p + 1) * n];
            for (o, &bv) in out_row.iter_mut().zip(b_row) {
                *o += av * bv;
            }
        }
    }
}

/// Dot product.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// `y ← y + alpha·x`.
#[inline]
pub fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Euclidean norm.
pub fn norm2(x: &[f32]) -> f32 {
    dot(x, x).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_identity() {
        // 2×2 identity times arbitrary.
        let i2 = [1.0, 0.0, 0.0, 1.0];
        let a = [1.0, 2.0, 3.0, 4.0];
        let mut out = [0.0; 4];
        matmul(&i2, &a, 2, 2, 2, &mut out);
        assert_eq!(out, a);
    }

    #[test]
    fn matmul_known_product() {
        // [1 2; 3 4] · [5 6; 7 8] = [19 22; 43 50]
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [5.0, 6.0, 7.0, 8.0];
        let mut out = [0.0; 4];
        matmul(&a, &b, 2, 2, 2, &mut out);
        assert_eq!(out, [19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_rectangular() {
        // (1×3)·(3×2)
        let a = [1.0, 2.0, 3.0];
        let b = [1.0, 4.0, 2.0, 5.0, 3.0, 6.0];
        let mut out = [0.0; 2];
        matmul(&a, &b, 1, 3, 2, &mut out);
        assert_eq!(out, [14.0, 32.0]);
    }

    #[test]
    fn a_bt_matches_explicit_transpose() {
        // a: 2×3, b: 2×3 → a·bᵀ : 2×2.
        let a = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let b = [1.0, 0.0, 1.0, 0.0, 1.0, 0.0];
        let mut out = [0.0; 4];
        matmul_a_bt(&a, &b, 2, 3, 2, &mut out);
        assert_eq!(out, [4.0, 2.0, 10.0, 5.0]);
    }

    #[test]
    fn at_b_accumulates() {
        // a: 2×2, b: 2×2; out starts at ones.
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [1.0, 1.0, 1.0, 1.0];
        let mut out = [1.0; 4];
        matmul_at_b_accum(&a, &b, 2, 2, 2, &mut out);
        // aᵀ·b = [[4,4],[6,6]]; plus ones.
        assert_eq!(out, [5.0, 5.0, 7.0, 7.0]);
    }

    #[test]
    fn vector_helpers() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[1.0, 3.0], &mut y);
        assert_eq!(y, vec![3.0, 7.0]);
        assert_eq!(norm2(&[3.0, 4.0]), 5.0);
    }
}
