//! End-to-end contracts of the wire transport: N concurrent HTTP
//! clients receive values **byte-identical** to direct in-process
//! [`ValuationServer::call`] with the same seeds (coalesced flushes and
//! CI-stopped streaming runs included); injected faults isolate to the
//! failing request's status while concurrent healthy clients stay
//! bit-identical; deadline overruns surface as 206 partial responses;
//! saturation admission-controls with 429 + `Retry-After`; shutdown
//! drains in-flight work onto the typed 503.

// Driver code: test assertions panic by design, so unwrap/expect are
// the failure mechanism, not a robustness gap.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::thread;
use std::time::Duration;

use fedval_core::coalition::Coalition;
use fedval_core::fault::{FaultyUtility, PERSISTENT};
use fedval_core::service::{
    Estimator, RetryPolicy, ValuationError, ValuationRequest, ValuationResponse, ValuationServer,
};
use fedval_core::utility::HashUtility;
use fedval_serve::http::Client;
use fedval_serve::json::Json;
use fedval_serve::{WireConfig, WireServer};

fn ok(result: Result<ValuationResponse, ValuationError>) -> ValuationResponse {
    match result {
        Ok(resp) => resp,
        Err(e) => panic!("request failed: {e}"),
    }
}

/// Values from a wire response body, bit-exact (the JSON module encodes
/// f64 via shortest-round-trip `Display` and parses back correctly
/// rounded, so text survives the trip losslessly).
fn wire_values(body: &Json) -> Vec<f64> {
    body.get("values")
        .and_then(Json::as_array)
        .expect("response has values")
        .iter()
        .map(|v| v.as_f64().expect("value is a number"))
        .collect()
}

fn bits(values: &[f64]) -> Vec<u64> {
    values.iter().map(|v| v.to_bits()).collect()
}

#[test]
fn concurrent_wire_clients_are_bit_identical_to_in_process_calls() {
    // One request per estimator across the surface, all in flight at
    // once so server-side flush coalescing actually happens.
    let requests: Vec<(&str, String, ValuationRequest)> = vec![
        (
            "ipss",
            r#"{"estimator":"ipss","budget":24,"seed":5}"#.into(),
            ValuationRequest::new(Estimator::Ipss, 24, 5),
        ),
        (
            "stratified_mc",
            r#"{"estimator":"stratified_mc","budget":40,"seed":6}"#.into(),
            ValuationRequest::new(Estimator::StratifiedMc, 40, 6),
        ),
        (
            "stratified_cc",
            r#"{"estimator":"stratified_cc","budget":40,"seed":7}"#.into(),
            ValuationRequest::new(Estimator::StratifiedCc, 40, 7),
        ),
        (
            "owen",
            r#"{"estimator":"owen","budget":72,"seed":8}"#.into(),
            ValuationRequest::new(Estimator::Owen, 72, 8),
        ),
        (
            "banzhaf_pruned",
            r#"{"estimator":"banzhaf_pruned","budget":20,"seed":9}"#.into(),
            ValuationRequest::new(Estimator::BanzhafPruned, 20, 9),
        ),
        (
            "subgame",
            r#"{"estimator":"stratified_mc","budget":24,"seed":10,"clients":[0,2,4,6]}"#.into(),
            ValuationRequest::new(Estimator::StratifiedMc, 24, 10)
                .for_clients(Coalition::from_members([0, 2, 4, 6])),
        ),
    ];
    let utility = || HashUtility { n: 8, seed: 77 };
    // Direct in-process baselines, computed sequentially on their own
    // server (values are a pure function of request + utility).
    let baselines: Vec<Vec<f64>> = requests
        .iter()
        .map(|(_, _, req)| {
            let server = ValuationServer::start(utility());
            let values = ok(server.call(req.clone())).values;
            server.shutdown();
            values
        })
        .collect();
    let wire =
        WireServer::start(ValuationServer::start(utility()), WireConfig::default()).expect("bind");
    let addr = wire.addr();
    let results: Vec<(usize, u16, Json)> = thread::scope(|scope| {
        let handles: Vec<_> = requests
            .iter()
            .enumerate()
            .map(|(i, (_, body, _))| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    let resp = client.post("/v1/value", body).expect("roundtrip");
                    (i, resp.status, resp.json().expect("JSON body"))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });
    for (i, status, body) in results {
        let (name, _, _) = &requests[i];
        assert_eq!(status, 200, "{name}: {}", body.encode());
        assert_eq!(
            bits(&wire_values(&body)),
            bits(&baselines[i]),
            "{name}: wire values must be byte-identical to ValuationServer::call"
        );
    }
    // The six concurrent runs shared one server; its cumulative stats
    // must show all of them.
    let mut client = Client::connect(addr).expect("connect");
    let stats = client.get("/v1/stats").expect("roundtrip").json().unwrap();
    assert_eq!(stats.get("requests").and_then(Json::as_u64), Some(6));
    wire.shutdown();
}

#[test]
fn ci_stopped_streaming_run_matches_direct_call_bit_for_bit() {
    let utility = || HashUtility { n: 7, seed: 13 };
    let direct = {
        let server = ValuationServer::start(utility());
        let resp = ok(server.call(
            ValuationRequest::new(Estimator::StratifiedMc, 80, 17).with_stopping(
                fedval_core::anytime::StoppingRule::ci_at_most(0.6).and_max_samples(60),
            ),
        ));
        server.shutdown();
        resp
    };
    let wire =
        WireServer::start(ValuationServer::start(utility()), WireConfig::default()).expect("bind");
    let mut client = Client::connect(wire.addr()).expect("connect");
    let resp = client
        .post(
            "/v1/value",
            r#"{"estimator":"stratified_mc","budget":80,"seed":17,"stopping":{"ci_at_most":0.6,"max_samples":60}}"#,
        )
        .expect("roundtrip");
    assert_eq!(resp.status, 200, "{}", String::from_utf8_lossy(&resp.body));
    let body = resp.json().unwrap();
    assert_eq!(bits(&wire_values(&body)), bits(&direct.values));
    assert_eq!(
        body.get("stopped_early").and_then(|v| v.as_bool()),
        Some(direct.run.stopped_early)
    );
    let progress = body
        .get("progress")
        .expect("streaming response has progress");
    assert_eq!(
        progress.get("samples_used").and_then(Json::as_u64),
        direct.progress.as_ref().map(|s| s.samples_used as u64),
        "final snapshot rides the wire unchanged"
    );
    wire.shutdown();
}

#[test]
fn persistent_faults_isolate_to_the_failing_request_over_the_wire() {
    // The faulty mask has size 7; IPSS with γ = 37 on n = 8 evaluates
    // strata 0..=2 only, so it never touches the mask, while the
    // exhaustive sweep must (same geometry as the in-process fault
    // suite).
    let faulty_mask = Coalition::from_members([0, 1, 2, 3, 4, 5, 6]);
    let inner = || HashUtility { n: 8, seed: 31 };
    let healthy_baseline = {
        let server = ValuationServer::start(inner());
        let values = ok(server.call(ValuationRequest::new(Estimator::Ipss, 37, 2))).values;
        server.shutdown();
        values
    };
    let valuation = ValuationServer::builder(
        FaultyUtility::new(inner()).panic_on_coalition(faulty_mask, PERSISTENT),
    )
    .retry_policy(RetryPolicy {
        max_retries: 2,
        backoff_base: Duration::from_millis(1),
        backoff_cap: Duration::from_millis(4),
    })
    .start();
    let wire = WireServer::start(valuation, WireConfig::default()).expect("bind");
    let addr = wire.addr();
    let (sweep, healthy) = thread::scope(|scope| {
        let sweep = scope.spawn(move || {
            let mut client = Client::connect(addr).expect("connect");
            client
                .post("/v1/value", r#"{"estimator":"exact_mc","seed":1}"#)
                .expect("roundtrip")
        });
        let healthy = scope.spawn(move || {
            let mut client = Client::connect(addr).expect("connect");
            client
                .post("/v1/value", r#"{"estimator":"ipss","budget":37,"seed":2}"#)
                .expect("roundtrip")
        });
        (
            sweep.join().expect("sweep thread"),
            healthy.join().expect("healthy thread"),
        )
    });
    // The faulting request alone gets the utility's 502.
    assert_eq!(
        sweep.status,
        502,
        "{}",
        String::from_utf8_lossy(&sweep.body)
    );
    let error = sweep.json().unwrap().get("error").unwrap().clone();
    assert_eq!(
        error.get("kind").and_then(Json::as_str),
        Some("utility_panicked")
    );
    assert_eq!(
        error.get("attempts").and_then(Json::as_u64),
        Some(3),
        "flushed attempt + 2 retries"
    );
    // Its concurrent peer is untouched and bit-identical to fault-free.
    assert_eq!(healthy.status, 200);
    assert_eq!(
        bits(&wire_values(&healthy.json().unwrap())),
        bits(&healthy_baseline),
        "fault isolation must not perturb the healthy request"
    );
    wire.shutdown();
}

#[test]
fn deadline_overrun_surfaces_as_206_with_partial_true() {
    // 2 ms per evaluation makes each streaming round overrun the 10 ms
    // deadline; the stream-only stopping rule gives the run per-round
    // batch boundaries where the deadline can fire (a non-streaming run
    // parks one batch, so its only boundary is after everything).
    // on_limit defaults to partial.
    let valuation = ValuationServer::start(
        FaultyUtility::new(HashUtility { n: 8, seed: 51 })
            .delay_every_evals(1, Duration::from_millis(2)),
    );
    let wire = WireServer::start(valuation, WireConfig::default()).expect("bind");
    let mut client = Client::connect(wire.addr()).expect("connect");
    let resp = client
        .post(
            "/v1/value",
            r#"{"estimator":"stratified_mc","budget":80,"seed":3,"deadline_ms":10,"stopping":{}}"#,
        )
        .expect("roundtrip");
    assert_eq!(resp.status, 206, "{}", String::from_utf8_lossy(&resp.body));
    let body = resp.json().unwrap();
    assert_eq!(body.get("partial").and_then(|v| v.as_bool()), Some(true));
    assert_eq!(
        body.get("run")
            .unwrap()
            .get("partial")
            .and_then(|v| v.as_bool()),
        Some(true)
    );
    assert_eq!(
        wire_values(&body).len(),
        8,
        "partial fold still reports every client"
    );
    wire.shutdown();
}

#[test]
fn saturation_returns_429_with_retry_after_then_recovers() {
    // One slot only; a slow request (5 ms per eval, 16-coalition exact
    // sweep ≈ 80 ms) holds it while a second client knocks.
    let valuation = ValuationServer::start(
        FaultyUtility::new(HashUtility { n: 4, seed: 61 })
            .delay_every_evals(1, Duration::from_millis(5)),
    );
    let wire = WireServer::start(
        valuation,
        WireConfig {
            max_inflight: 1,
            ..WireConfig::default()
        },
    )
    .expect("bind");
    let addr = wire.addr();
    let slow = thread::spawn(move || {
        let mut client = Client::connect(addr).expect("connect");
        client
            .post("/v1/value", r#"{"estimator":"exact_mc","seed":1}"#)
            .expect("roundtrip")
    });
    // Let the slow request claim the slot.
    thread::sleep(Duration::from_millis(25));
    let mut client = Client::connect(addr).expect("connect");
    let rejected = client
        .post("/v1/value", r#"{"estimator":"loo"}"#)
        .expect("roundtrip");
    assert_eq!(
        rejected.status,
        429,
        "{}",
        String::from_utf8_lossy(&rejected.body)
    );
    assert_eq!(rejected.header("retry-after"), Some("1"));
    assert_eq!(
        rejected
            .json()
            .unwrap()
            .get("error")
            .unwrap()
            .get("kind")
            .and_then(Json::as_str),
        Some("saturated")
    );
    // The slow request is unaffected by the rejection…
    let slow_resp = slow.join().expect("slow thread");
    assert_eq!(slow_resp.status, 200);
    // …and once the slot frees, a retry goes through.
    let retried = client
        .post("/v1/value", r#"{"estimator":"loo"}"#)
        .expect("roundtrip");
    assert_eq!(retried.status, 200);
    wire.shutdown();
}

#[test]
fn shutdown_drains_in_flight_requests_onto_the_typed_503() {
    // Slow evals on a streaming run (per-round batch boundaries) keep
    // the request in flight long enough for shutdown to land mid-run;
    // the client still gets a well-formed 503 response (not a dropped
    // socket).
    let valuation = ValuationServer::start(
        FaultyUtility::new(HashUtility { n: 6, seed: 71 })
            .delay_every_evals(1, Duration::from_millis(4)),
    );
    let wire = WireServer::start(valuation, WireConfig::default()).expect("bind");
    let addr = wire.addr();
    let inflight = thread::spawn(move || {
        let mut client = Client::connect(addr).expect("connect");
        client
            .post(
                "/v1/value",
                r#"{"estimator":"stratified_mc","budget":200,"seed":1,"stopping":{}}"#,
            )
            .expect("roundtrip")
    });
    thread::sleep(Duration::from_millis(30));
    wire.begin_shutdown();
    let resp = inflight.join().expect("in-flight thread");
    assert_eq!(resp.status, 503, "{}", String::from_utf8_lossy(&resp.body));
    assert_eq!(
        resp.json()
            .unwrap()
            .get("error")
            .unwrap()
            .get("kind")
            .and_then(Json::as_str),
        Some("server_shutdown")
    );
    wire.shutdown();
}
