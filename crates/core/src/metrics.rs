//! Evaluation metrics of Sec. V-A plus the property-based proxies used in
//! the Fig. 9 scalability test and Pareto-front extraction for Fig. 8.

/// The paper's approximation-error metric (Eq. 21):
/// `l2(ϕ̂, ϕ) = ‖ϕ̂ − ϕ‖₂ / ‖ϕ‖₂`.
pub fn l2_relative_error(estimate: &[f64], exact: &[f64]) -> f64 {
    assert_eq!(estimate.len(), exact.len());
    let num: f64 = estimate
        .iter()
        .zip(exact)
        .map(|(a, e)| (a - e) * (a - e))
        .sum::<f64>()
        .sqrt();
    let den: f64 = exact.iter().map(|e| e * e).sum::<f64>().sqrt();
    if den == 0.0 {
        if num == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        num / den
    }
}

/// Maximum absolute per-client error `max_i |ϕ̂_i − ϕ_i|`.
pub fn max_abs_error(estimate: &[f64], exact: &[f64]) -> f64 {
    assert_eq!(estimate.len(), exact.len());
    estimate
        .iter()
        .zip(exact)
        .map(|(a, e)| (a - e).abs())
        .fold(0.0, f64::max)
}

/// Kendall rank-correlation coefficient `τ` between two valuations.
///
/// Data markets often care about the *ranking* of providers more than the
/// raw values; `τ = 1` means identical order, `τ = −1` reversed.
pub fn kendall_tau(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    let n = a.len();
    if n < 2 {
        return 1.0;
    }
    let mut concordant = 0i64;
    let mut discordant = 0i64;
    for i in 0..n {
        for j in (i + 1)..n {
            let x = (a[i] - a[j]).signum();
            let y = (b[i] - b[j]).signum();
            let prod = x * y;
            if prod > 0.0 {
                concordant += 1;
            } else if prod < 0.0 {
                discordant += 1;
            }
        }
    }
    let pairs = (n * (n - 1) / 2) as f64;
    (concordant - discordant) as f64 / pairs
}

/// Property-based error proxy for the scalability test (Fig. 9), where the
/// exact SV is incomputable.
///
/// The experiment plants `free_riders` (clients with empty datasets, whose
/// exact value is 0 by the null-player axiom, Eq. 1) and `duplicate_pairs`
/// (clients holding identical datasets, whose exact values are equal by
/// symmetric fairness, Eq. 2). The proxy is the l2 norm of all axiom
/// violations, normalised by the l2 norm of the valuation — the same scale
/// as Eq. 21.
pub fn property_error(
    values: &[f64],
    free_riders: &[usize],
    duplicate_pairs: &[(usize, usize)],
) -> f64 {
    let mut violation = 0.0f64;
    for &i in free_riders {
        violation += values[i] * values[i];
    }
    for &(i, j) in duplicate_pairs {
        let d = values[i] - values[j];
        violation += d * d;
    }
    let norm: f64 = values.iter().map(|v| v * v).sum::<f64>().sqrt();
    if norm == 0.0 {
        return if violation == 0.0 { 0.0 } else { f64::INFINITY };
    }
    violation.sqrt() / norm
}

/// Sample mean.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Unbiased sample variance.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64
}

/// Sample standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Indices of the Pareto-optimal points when minimising both coordinates
/// (time, error), as plotted in Fig. 8. Returned sorted by the first
/// coordinate. A point is kept iff no other point is at least as good in
/// both coordinates and strictly better in one.
pub fn pareto_front(points: &[(f64, f64)]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..points.len()).collect();
    idx.sort_by(|&a, &b| {
        points[a]
            .partial_cmp(&points[b])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut front = Vec::new();
    let mut best_err = f64::INFINITY;
    for &i in &idx {
        let (_, err) = points[i];
        if err < best_err {
            front.push(i);
            best_err = err;
        }
    }
    front
}

#[cfg(test)]
// Tests assert invariants; an unwrap that trips IS the test failing.
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn l2_error_basics() {
        let exact = vec![1.0, 2.0, 2.0];
        assert_eq!(l2_relative_error(&exact, &exact), 0.0);
        let est = vec![1.0, 2.0, 5.0];
        assert!((l2_relative_error(&est, &exact) - 1.0).abs() < 1e-12);
        assert_eq!(l2_relative_error(&[0.0], &[0.0]), 0.0);
        assert_eq!(l2_relative_error(&[1.0], &[0.0]), f64::INFINITY);
    }

    #[test]
    fn max_abs_error_basics() {
        assert_eq!(max_abs_error(&[1.0, 2.0], &[1.5, 2.25]), 0.5);
    }

    #[test]
    fn kendall_tau_extremes() {
        let a = vec![1.0, 2.0, 3.0, 4.0];
        let b = vec![10.0, 20.0, 30.0, 40.0];
        assert_eq!(kendall_tau(&a, &b), 1.0);
        let rev: Vec<f64> = b.iter().rev().copied().collect();
        assert_eq!(kendall_tau(&a, &rev), -1.0);
        assert_eq!(kendall_tau(&[1.0], &[5.0]), 1.0);
    }

    #[test]
    fn property_error_detects_violations() {
        // A perfect valuation: free rider at 0, duplicates equal.
        let good = vec![0.0, 0.5, 0.5, 0.3];
        assert_eq!(property_error(&good, &[0], &[(1, 2)]), 0.0);
        // A violating valuation.
        let bad = vec![0.2, 0.5, 0.1, 0.3];
        let err = property_error(&bad, &[0], &[(1, 2)]);
        let expect =
            ((0.2f64 * 0.2) + (0.4f64 * 0.4)).sqrt() / (0.04f64 + 0.25 + 0.01 + 0.09).sqrt();
        assert!((err - expect).abs() < 1e-12);
    }

    #[test]
    fn stats_helpers() {
        let xs = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(mean(&xs), 2.5);
        assert!((variance(&xs) - 5.0 / 3.0).abs() < 1e-12);
        assert!((std_dev(&xs) - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[1.0]), 0.0);
    }

    #[test]
    fn pareto_front_extraction() {
        // (time, error) points; indices 0 and 3 dominate.
        let pts = vec![(1.0, 0.5), (2.0, 0.6), (3.0, 0.4), (4.0, 0.1), (5.0, 0.2)];
        assert_eq!(pareto_front(&pts), vec![0, 2, 3]);
        assert_eq!(pareto_front(&[]), Vec::<usize>::new());
        // Duplicate points: only the first survives.
        let dup = vec![(1.0, 1.0), (1.0, 1.0)];
        assert_eq!(pareto_front(&dup).len(), 1);
    }
}
