//! IPSS — Importance-Pruned Stratified Sampling (Alg. 3), the paper's main
//! contribution.
//!
//! Given a total budget of `γ` utility evaluations, IPSS exploits the *key
//! combinations* phenomenon (Sec. IV-A): coalitions with few clients carry
//! almost all of the information in the MC-SV, both because marginal utility
//! saturates (observation (i)) and because mid-size strata carry tiny
//! `1/C(n−1,|S|)` weights (observation (ii)).
//!
//! Phase 1 (lines 1–7): exhaustively evaluate every coalition of size
//! `≤ k*`, where `k* = max{k : Σ_{j≤k} C(n,j) ≤ γ}`.
//! Phase 2 (lines 8–14): spend the remaining budget on a *balanced* sample
//! `P` of coalitions of size `k*+1` (every client covered equally often —
//! constraint (3) of line 11).
//! Estimation (lines 15–17): MC-SV restricted to the evaluated coalitions.
//!
//! Theorem 3 bounds the relative error by `O((n−k*)/(k*·n·t))` under the FL
//! linear-regression model — see `fedval-theory` for the closed forms.

use std::collections::HashMap;

use rand::Rng;

use crate::adaptive::{AdaptivePolicy, AllocationPlanner, ComponentState};
use crate::anytime::{
    component_variance, halfwidth, Control, ProgressSnapshot, StreamingOutcome, Welford,
};
use crate::coalition::{binom, binom_u128, subsets_of_size, subsets_up_to, Coalition};
use crate::sampling::{balanced_subsets_of_size, weighted_balanced_subsets_extending};
use crate::utility::{eval_batch_into_memo, Utility};

/// Internal memo of evaluated coalition values, keyed by mask.
///
/// IPSS holds the values it paid for instead of re-asking the utility:
/// the estimation pass (lines 15–17) touches every phase-1 coalition
/// `n`-ish times, which against a *non-cached* utility used to silently
/// re-train models far past the `γ` budget. With the memo, exactly `γ`
/// evaluations reach the utility whether or not it is wrapped in a
/// [`crate::utility::CachedUtility`].
type ValueMemo = HashMap<u128, f64>;

/// How the partially-sampled stratum `k*` is normalised (DESIGN.md §3).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum IpssWeighting {
    /// Stratified mean over the sampled pairs — unbiased for the stratum
    /// and identical to the paper's formula whenever the stratum is fully
    /// covered (as in the paper's Example 3). Default.
    #[default]
    StratifiedMean,
    /// The literal line-16 weight `1/C(n−1, k*)` applied to the partial
    /// stratum sum; underestimates the stratum when coverage is partial.
    PaperLiteral,
}

/// Configuration for [`ipss`].
#[derive(Clone, Debug)]
pub struct IpssConfig {
    /// Total sampling rounds `γ` — the budget of distinct FL train+evaluate
    /// cycles. Must be at least 1 (`∅` alone) and is typically chosen per
    /// Table III (`n=3→5`, `n=6→8`, `n=10→32`) or `n·log n` at scale.
    pub gamma: usize,
    /// Normalisation of the sampled stratum.
    pub weighting: IpssWeighting,
}

impl IpssConfig {
    pub fn new(gamma: usize) -> Self {
        IpssConfig {
            gamma,
            weighting: IpssWeighting::StratifiedMean,
        }
    }

    pub fn with_weighting(mut self, weighting: IpssWeighting) -> Self {
        self.weighting = weighting;
        self
    }
}

/// Detailed outcome of an IPSS run.
#[derive(Clone, Debug)]
pub struct IpssOutcome {
    /// Estimated data values `ϕ̂_1..ϕ̂_n`.
    pub values: Vec<f64>,
    /// The exhaustive-phase cut-off `k*` (line 1).
    pub k_star: usize,
    /// Coalitions evaluated in phase 1 (`Σ_{j≤k*} C(n,j)`).
    pub exhaustive_evaluations: u128,
    /// The balanced sample `P` of size-(k*+1) coalitions (line 8).
    pub sampled: Vec<Coalition>,
}

/// Compute `k* = max{k ∈ ℕ : Σ_{j=0}^{k} C(n, j) ≤ γ}` (Alg. 3 line 1).
///
/// Returns `None` when even `∅` does not fit the budget (`γ = 0`).
pub fn compute_k_star(n: usize, gamma: usize) -> Option<usize> {
    if gamma == 0 {
        return None;
    }
    let mut k_star = None;
    for k in 0..=n {
        if subsets_up_to(n, k) <= gamma as u128 {
            k_star = Some(k);
        } else {
            break;
        }
    }
    k_star
}

/// Alg. 3 — Importance-Pruned Stratified Sampling.
pub fn ipss<U: Utility + ?Sized, R: Rng + ?Sized>(
    u: &U,
    cfg: &IpssConfig,
    rng: &mut R,
) -> IpssOutcome {
    let n = u.n_clients();
    assert!(n >= 1);
    let k_star = compute_k_star(n, cfg.gamma)
        .unwrap_or_else(|| panic!("γ = {} cannot even afford U(∅)", cfg.gamma));

    // Phase 1 (lines 2-7): evaluate all coalitions of size ≤ k*, one batch
    // per stratum, so a parallel utility trains each stratum concurrently.
    let mut memo = ValueMemo::new();
    let exhaustive = subsets_up_to(n, k_star);
    for size in 0..=k_star {
        let stratum: Vec<Coalition> = subsets_of_size(n, size).collect();
        eval_batch_into_memo(u, &stratum, &mut memo);
    }

    // Phase 2 (lines 8-14): balanced sample P of size-(k*+1) coalitions,
    // evaluated as one batch.
    let sampled = if k_star < n {
        let remaining = (cfg.gamma as u128 - exhaustive).min(binom_u128(n, k_star + 1));
        let p = balanced_subsets_of_size(n, k_star + 1, remaining as usize, rng);
        eval_batch_into_memo(u, &p, &mut memo);
        p
    } else {
        Vec::new()
    };

    // Lines 15-17: MC-SV over the evaluated coalitions (memo reads only —
    // no further utility evaluations).
    let values = estimate(n, k_star, &sampled, cfg.weighting, &memo);
    IpssOutcome {
        values,
        k_star,
        exhaustive_evaluations: exhaustive,
        sampled,
    }
}

/// Convenience wrapper returning only the estimated values.
pub fn ipss_values<U: Utility + ?Sized, R: Rng + ?Sized>(
    u: &U,
    cfg: &IpssConfig,
    rng: &mut R,
) -> Vec<f64> {
    ipss(u, cfg, rng).values
}

/// Anytime Alg. 3 — the streaming variant of [`ipss`].
///
/// The batch schedule is the legacy one: each exhaustive stratum of size
/// `0..=k*` is one batch, then the balanced phase-2 sample is evaluated
/// in chunks of `n` coalitions (the legacy run evaluates it as a single
/// batch; chunking changes batch composition only, and evaluation is
/// pure per coalition mask, so every value is unchanged). The RNG stream
/// is identical to [`ipss`] with the same seed.
///
/// After each batch the prefix estimate is recomputed from scratch with
/// the lines-15–17 fold restricted to completed strata plus the
/// evaluated phase-2 prefix — so a completed schedule is bit-identical
/// to [`ipss`] and a stopped run bit-equals the same-seed full run's
/// snapshot at the same batch count (the determinism contract).
///
/// CI terms: a completed exhaustive stratum is enumerated, not sampled
/// — its term is exactly 0; a *scheduled but pending* stratum is
/// unbounded (`∞`, never NaN), which deliberately prevents a
/// `CiAtMost` rule from firing mid-phase-1; the phase-2 stratum gets a
/// per-client [`Welford`] accumulator with finite-population correction
/// over its `C(n−1, k*)` pairs. Truncated strata above `k*+1` are out
/// of scope by construction (the pruning bias of Theorem 3) and
/// contribute no term.
pub fn ipss_streaming<U, R, F>(
    u: &U,
    cfg: &IpssConfig,
    rng: &mut R,
    mut observe: F,
) -> StreamingOutcome
where
    U: Utility + ?Sized,
    R: Rng + ?Sized,
    F: FnMut(&ProgressSnapshot) -> Control,
{
    let n = u.n_clients();
    assert!(n >= 1);
    let k_star = compute_k_star(n, cfg.gamma)
        .unwrap_or_else(|| panic!("γ = {} cannot even afford U(∅)", cfg.gamma));
    let exhaustive = subsets_up_to(n, k_star);
    // The phase-2 draw is the only consumer of randomness, so drawing it
    // up front leaves the RNG stream identical to the legacy run.
    let sampled = if k_star < n {
        let remaining = (cfg.gamma as u128 - exhaustive).min(binom_u128(n, k_star + 1));
        balanced_subsets_of_size(n, k_star + 1, remaining as usize, rng)
    } else {
        Vec::new()
    };

    let chunk = n.max(1);
    let phase2_batches = sampled.len().div_ceil(chunk);
    let total_batches = (k_star + 1) + phase2_batches;

    let mut memo = ValueMemo::new();
    let mut samples_used = 0usize;
    let mut batches_done = 0usize;
    for b in 0..total_batches {
        let (batch, done_size, sampled_prefix) = if b <= k_star {
            (subsets_of_size(n, b).collect::<Vec<_>>(), b, 0usize)
        } else {
            let start = (b - k_star - 1) * chunk;
            let end = (start + chunk).min(sampled.len());
            (sampled[start..end].to_vec(), k_star, end)
        };
        eval_batch_into_memo(u, &batch, &mut memo);
        samples_used += batch.len();
        batches_done += 1;
        let (snapshot, _accs) = ipss_prefix_snapshot(
            n,
            k_star,
            done_size,
            &sampled,
            sampled_prefix,
            sampled.len(),
            cfg.weighting,
            &memo,
            samples_used,
            batches_done,
        );
        let control = observe(&snapshot);
        let complete = b + 1 == total_batches;
        if complete || control == Control::Stop {
            return StreamingOutcome::from_snapshot(snapshot, !complete);
        }
    }
    unreachable!("the final batch always returns")
}

/// Adaptive Alg. 3 — [`ipss_streaming`] with the phase-2 coverage
/// re-planned at every round by Neyman allocation instead of spreading
/// it uniformly over the clients.
///
/// Phase 1 is untouched (it is exhaustive — there is nothing to steer).
/// Phase 2 draws its `γ − Σ_{j≤k*} C(n,j)` coalitions of size `k*+1` in
/// rounds of [`AdaptivePolicy::round`]`(n)`: each round an
/// [`AllocationPlanner`] turns the pooled per-client contribution
/// variances into per-client coverage targets (`w_i·σ_i` with
/// `w_i = 1/n`; unknown variances score optimistically), and
/// [`weighted_balanced_subsets_extending`] grows the balanced sample so
/// coverage tracks those targets — high-variance clients land in more
/// coalitions. With homoscedastic contributions the targets are equal
/// and the draw degenerates to the coverage-balanced rule of
/// [`balanced_subsets_of_size`].
///
/// Snapshots carry [`ProgressSnapshot::allocation`] — cumulative
/// per-client phase-2 coverage counts (all zeros during phase 1).
///
/// Determinism contract: planning consumes no randomness and draws
/// consume RNG in round order, so the allocation sequence is a pure
/// function of (seed, snapshot history): same-seed runs are
/// bit-identical at any thread count, and a stopped run bit-equals the
/// same-seed full run's snapshot at the same batch count.
pub fn ipss_streaming_adaptive<U, R, F>(
    u: &U,
    cfg: &IpssConfig,
    policy: &AdaptivePolicy,
    rng: &mut R,
    mut observe: F,
) -> StreamingOutcome
where
    U: Utility + ?Sized,
    R: Rng + ?Sized,
    F: FnMut(&ProgressSnapshot) -> Control,
{
    let n = u.n_clients();
    assert!(n >= 1);
    let k_star = compute_k_star(n, cfg.gamma)
        .unwrap_or_else(|| panic!("γ = {} cannot even afford U(∅)", cfg.gamma));
    let exhaustive = subsets_up_to(n, k_star);
    let phase2_total = if k_star < n {
        ((cfg.gamma as u128 - exhaustive).min(binom_u128(n, k_star + 1))) as usize
    } else {
        0
    };

    let planner = AllocationPlanner::new(*policy);
    let round_size = policy.round(n);
    let mut memo = ValueMemo::new();
    let mut samples_used = 0usize;
    let mut batches_done = 0usize;
    let mut sampled: Vec<Coalition> = Vec::new();
    let mut chosen: std::collections::HashSet<u128> = std::collections::HashSet::new();
    let mut coverage = vec![0u32; n];
    let allocation = |coverage: &[u32]| coverage.iter().map(|&c| c as usize).collect::<Vec<_>>();

    // Phase 1: one batch per exhaustive stratum, exactly as the fixed
    // schedule runs it.
    for size in 0..=k_star {
        let batch: Vec<Coalition> = subsets_of_size(n, size).collect();
        eval_batch_into_memo(u, &batch, &mut memo);
        samples_used += batch.len();
        batches_done += 1;
        let (mut snapshot, _accs) = ipss_prefix_snapshot(
            n,
            k_star,
            size,
            &sampled,
            0,
            phase2_total,
            cfg.weighting,
            &memo,
            samples_used,
            batches_done,
        );
        snapshot.allocation = Some(allocation(&coverage));
        let complete = size == k_star && phase2_total == 0;
        let control = observe(&snapshot);
        if complete || control == Control::Stop {
            return StreamingOutcome::from_snapshot(snapshot, !complete);
        }
    }

    // Phase 2: variance-steered rounds over the sampled stratum.
    let mut accs: Vec<Welford> = vec![Welford::new(); n];
    loop {
        let components: Vec<ComponentState> = (0..n)
            .map(|i| ComponentState {
                weight: 1.0 / n as f64,
                variance: accs[i].sample_variance(),
                observed: accs[i].count(),
                drawn: coverage[i] as usize,
                remaining: usize::MAX,
            })
            .collect();
        let targets = planner.scores(&components);
        let want = round_size.min(phase2_total - sampled.len());
        let new = weighted_balanced_subsets_extending(
            n,
            k_star + 1,
            want,
            &targets,
            &mut chosen,
            &mut coverage,
            rng,
        );
        let exhausted = new.is_empty();
        eval_batch_into_memo(u, &new, &mut memo);
        samples_used += new.len();
        batches_done += 1;
        sampled.extend(new);
        let (mut snapshot, new_accs) = ipss_prefix_snapshot(
            n,
            k_star,
            k_star,
            &sampled,
            sampled.len(),
            phase2_total,
            cfg.weighting,
            &memo,
            samples_used,
            batches_done,
        );
        snapshot.allocation = Some(allocation(&coverage));
        accs = new_accs;
        let complete = sampled.len() >= phase2_total || exhausted;
        let control = observe(&snapshot);
        if complete || control == Control::Stop {
            return StreamingOutcome::from_snapshot(snapshot, !complete);
        }
    }
}

/// The canonical prefix fold of Alg. 3 lines 15–17 plus its CI,
/// restricted to the `done_size` completed exhaustive strata and the
/// first `sampled_prefix` phase-2 coalitions. Over the complete
/// schedule this is bit-identical to [`estimate`] (same pairs, same
/// accumulation order).
///
/// `phase2_planned` is the total phase-2 draw the schedule intends
/// (`sampled.len()` for the fixed schedule): while it is positive the
/// phase-2 CI term is emitted even before any coalition lands, keeping
/// the halfwidth at ∞ until the sampled stratum has observations.
///
/// Also returns the per-client phase-2 [`Welford`] accumulators — the
/// `σ_i` estimates the adaptive planner steers by.
#[allow(clippy::too_many_arguments)]
fn ipss_prefix_snapshot(
    n: usize,
    k_star: usize,
    done_size: usize,
    sampled: &[Coalition],
    sampled_prefix: usize,
    phase2_planned: usize,
    weighting: IpssWeighting,
    memo: &ValueMemo,
    samples_used: usize,
    batches_done: usize,
) -> (ProgressSnapshot, Vec<Welford>) {
    let value = |s: Coalition| -> f64 { memo[&s.0] };
    let mut phi = vec![0.0f64; n];
    let inv_n = 1.0 / n as f64;
    let inv_binom: Vec<f64> = (0..n).map(|s| 1.0 / binom(n - 1, s)).collect();

    // Completed exhaustive strata — the lines 15-17 loop, verbatim.
    for t_size in 1..=done_size {
        for t in subsets_of_size(n, t_size) {
            let ut = value(t);
            let w = inv_n * inv_binom[t_size - 1];
            for i in t.members() {
                phi[i] += (ut - value(t.without(i))) * w;
            }
        }
    }

    // Evaluated phase-2 prefix (the schedule guarantees phase 1 is
    // complete before any of it lands).
    let mut accs: Vec<Welford> = vec![Welford::new(); n];
    let prefix = &sampled[..sampled_prefix];
    if !prefix.is_empty() {
        let mut sums = vec![0.0f64; n];
        let mut counts = vec![0usize; n];
        for &t in prefix {
            let ut = value(t);
            for i in t.members() {
                let contribution = ut - value(t.without(i));
                sums[i] += contribution;
                counts[i] += 1;
                accs[i].push(contribution);
            }
        }
        match weighting {
            IpssWeighting::StratifiedMean => {
                for i in 0..n {
                    if counts[i] > 0 {
                        phi[i] += inv_n * sums[i] / counts[i] as f64;
                    }
                }
            }
            IpssWeighting::PaperLiteral => {
                let w = inv_n * inv_binom[k_star];
                for i in 0..n {
                    phi[i] += sums[i] * w;
                }
            }
        }
    }

    let population_p2 = binom(n - 1, k_star); // pairs t ∋ i, |t| = k*+1
    let ci_halfwidths: Vec<f64> = (0..n)
        .map(|i| {
            halfwidth(
                (1..=k_star)
                    .map(|t_size| if t_size <= done_size { Some(0.0) } else { None })
                    .chain((phase2_planned > 0).then(|| {
                        let weight = match weighting {
                            IpssWeighting::StratifiedMean => inv_n,
                            // var(w'·Σ) = (w'·m)²·s²/m — the estimator is a
                            // weighted *sum*, not a mean.
                            IpssWeighting::PaperLiteral => {
                                inv_n * inv_binom[k_star] * accs[i].count() as f64
                            }
                        };
                        component_variance(&accs[i], weight, population_p2)
                    })),
            )
        })
        .collect();

    (
        ProgressSnapshot {
            values: phi,
            ci_halfwidths,
            samples_used,
            batches_done,
            allocation: None,
        },
        accs,
    )
}

/// Lines 15–17: MC-SV restricted to the evaluated coalitions.
///
/// Reads exclusively from the memo — the budget was spent during the
/// sampling phases. The fold order matches the historical serial
/// implementation (strata in ascending size, masks in enumeration order),
/// so estimates are bit-identical to the serial path at any thread count.
fn estimate(
    n: usize,
    k_star: usize,
    sampled: &[Coalition],
    weighting: IpssWeighting,
    memo: &ValueMemo,
) -> Vec<f64> {
    let value = |s: Coalition| -> f64 {
        memo[&s.0] // every pair member was evaluated in phase 1/2
    };
    let mut phi = vec![0.0f64; n];
    let inv_n = 1.0 / n as f64;
    let inv_binom: Vec<f64> = (0..n).map(|s| 1.0 / binom(n - 1, s)).collect();

    // Exhaustively covered strata: pairs (S, S∪{i}) with |S∪{i}| ≤ k*.
    // Each full stratum s contributes its exact average marginal
    // contribution Σ_S (U(S∪{i})−U(S))/C(n−1,s).
    for t_size in 1..=k_star {
        for t in subsets_of_size(n, t_size) {
            let ut = value(t);
            let w = inv_n * inv_binom[t_size - 1];
            for i in t.members() {
                phi[i] += (ut - value(t.without(i))) * w;
            }
        }
    }

    // Sampled stratum k*: pairs (S, S∪{i}) with S∪{i} ∈ P, |S| = k*.
    // U(S) is known from phase 1.
    if !sampled.is_empty() {
        let mut sums = vec![0.0f64; n];
        let mut counts = vec![0usize; n];
        for &t in sampled {
            let ut = value(t);
            for i in t.members() {
                sums[i] += ut - value(t.without(i));
                counts[i] += 1;
            }
        }
        match weighting {
            IpssWeighting::StratifiedMean => {
                for i in 0..n {
                    if counts[i] > 0 {
                        phi[i] += inv_n * sums[i] / counts[i] as f64;
                    }
                }
            }
            IpssWeighting::PaperLiteral => {
                let w = inv_n * inv_binom[k_star];
                for i in 0..n {
                    phi[i] += sums[i] * w;
                }
            }
        }
    }
    phi
}

/// Configuration for [`ipss_adaptive`].
#[derive(Clone, Debug)]
pub struct AdaptiveIpssConfig {
    /// Hard ceiling on utility evaluations.
    pub max_gamma: usize,
    /// Stop deepening once a stratum's mean |marginal contribution| falls
    /// below this fraction of the first stratum's. The paper's Fig. 3
    /// observation (i): marginal utility decays as coalitions grow — this
    /// detects the plateau instead of committing to a fixed `γ` upfront.
    pub plateau_fraction: f64,
}

impl Default for AdaptiveIpssConfig {
    fn default() -> Self {
        AdaptiveIpssConfig {
            max_gamma: 1 << 14,
            plateau_fraction: 0.05,
        }
    }
}

/// Adaptive-cutoff IPSS (an extension beyond the paper): instead of
/// deriving `k*` from a fixed budget, deepen the exhaustive phase stratum
/// by stratum until the observed marginal utilities plateau, then stop.
///
/// Returns the outcome together with the number of evaluations spent.
/// Cheaper than fixed-γ IPSS on fast-saturating games and more accurate
/// on slow-saturating ones at equal spend.
pub fn ipss_adaptive<U: Utility + ?Sized>(u: &U, cfg: &AdaptiveIpssConfig) -> IpssOutcome {
    let n = u.n_clients();
    assert!(n >= 1);
    assert!(cfg.max_gamma as u128 > n as u128, "budget too small");
    assert!((0.0..1.0).contains(&cfg.plateau_fraction));

    let mut memo = ValueMemo::new();
    let mut spent: u128 = 1; // ∅
    eval_batch_into_memo(u, &[Coalition::empty()], &mut memo);
    let mut k_star = 0usize;
    let mut first_stratum_mean: Option<f64> = None;
    for k in 1..=n {
        let cost = binom_u128(n, k);
        if spent + cost > cfg.max_gamma as u128 {
            break;
        }
        // Evaluate the stratum as one batch, then measure its mean
        // |marginal| from the memo (the size-(k−1) stratum is already
        // memoised).
        let stratum: Vec<Coalition> = subsets_of_size(n, k).collect();
        eval_batch_into_memo(u, &stratum, &mut memo);
        let mut abs_sum = 0.0f64;
        let mut pairs = 0usize;
        for &t in &stratum {
            let ut = memo[&t.0];
            for i in t.members() {
                abs_sum += (ut - memo[&t.without(i).0]).abs();
                pairs += 1;
            }
        }
        spent += cost;
        k_star = k;
        let mean_abs = abs_sum / pairs.max(1) as f64;
        match first_stratum_mean {
            None => first_stratum_mean = Some(mean_abs.max(f64::MIN_POSITIVE)),
            Some(first) => {
                if mean_abs < cfg.plateau_fraction * first {
                    break; // marginals have plateaued — stop deepening
                }
            }
        }
    }
    let values = estimate(n, k_star, &[], IpssWeighting::StratifiedMean, &memo);
    IpssOutcome {
        values,
        k_star,
        exhaustive_evaluations: spent,
        sampled: Vec::new(),
    }
}

#[cfg(test)]
// Tests assert invariants; an unwrap that trips IS the test failing.
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::exact::exact_mc_sv;
    use crate::metrics::l2_relative_error;
    use crate::sampling::coverage_counts;
    use crate::utility::{CachedUtility, HashUtility, SaturatingUtility, TableUtility};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn k_star_matches_definition() {
        // n = 4, γ = 10: Σ_{j≤1} C(4,j) = 5 ≤ 10 < Σ_{j≤2} = 11 ⇒ k* = 1
        // (the paper's Example 3).
        assert_eq!(compute_k_star(4, 10), Some(1));
        assert_eq!(compute_k_star(4, 11), Some(2));
        assert_eq!(compute_k_star(4, 16), Some(4));
        assert_eq!(compute_k_star(4, 1), Some(0));
        assert_eq!(compute_k_star(4, 0), None);
        assert_eq!(compute_k_star(10, 32), Some(1)); // Table III: n=10, γ=32
        assert_eq!(compute_k_star(3, 5), Some(1)); // Table III: n=3, γ=5
        assert_eq!(compute_k_star(6, 8), Some(1)); // Table III: n=6, γ=8
    }

    #[test]
    fn example3_structure() {
        // Reproduce Example 3's phase structure: n = 4, γ = 10, k* = 1,
        // 5 exhaustive evaluations and 5 sampled pairs of size 2.
        let u = CachedUtility::new(TableUtility::from_fn(4, |s| {
            0.1 + 0.85 * (1.0 - (-0.9 * s.size() as f64).exp())
        }));
        let mut rng = StdRng::seed_from_u64(7);
        let out = ipss(&u, &IpssConfig::new(10), &mut rng);
        assert_eq!(out.k_star, 1);
        assert_eq!(out.exhaustive_evaluations, 5);
        assert_eq!(out.sampled.len(), 5);
        assert!(out.sampled.iter().all(|s| s.size() == 2));
        assert_eq!(u.stats().evaluations, 10, "exactly γ evaluations");
        // Balanced coverage: 5 pairs over 4 clients ⇒ spread ≤ 1.
        let cov = coverage_counts(4, &out.sampled);
        assert!(crate::sampling::coverage_spread(&cov) <= 1);
    }

    #[test]
    fn budget_is_respected() {
        for gamma in [1usize, 5, 17, 64, 200] {
            let u = CachedUtility::new(HashUtility { n: 8, seed: 2 });
            let mut rng = StdRng::seed_from_u64(3);
            let _ = ipss(&u, &IpssConfig::new(gamma), &mut rng);
            assert!(
                u.stats().evaluations <= gamma.min(256),
                "γ={gamma}: {} evals",
                u.stats().evaluations
            );
        }
    }

    #[test]
    fn full_budget_is_exact() {
        let u = TableUtility::paper_table1();
        let mut rng = StdRng::seed_from_u64(5);
        let out = ipss(&u, &IpssConfig::new(8), &mut rng);
        assert_eq!(out.k_star, 3);
        let exact = exact_mc_sv(&u);
        for (a, e) in out.values.iter().zip(&exact) {
            assert!((a - e).abs() < 1e-12);
        }
    }

    #[test]
    fn ipss_beats_truncation_error_bound_on_saturating_utility() {
        // On a concave utility with 10 clients and γ = 32 (Table III), the
        // error should be small — the key-combinations phenomenon. The
        // truncated strata s ≥ 2 together carry only gain·e^{−2·rate} of
        // the total value, ≈ 9% at rate = 1.2.
        let u = SaturatingUtility::uniform(10, 0.1, 0.85, 1.2);
        let exact = exact_mc_sv(&u);
        let mut rng = StdRng::seed_from_u64(11);
        let approx = ipss_values(&u, &IpssConfig::new(32), &mut rng);
        let err = l2_relative_error(&approx, &exact);
        assert!(err < 0.12, "relative error {err} too large");
    }

    #[test]
    fn weighting_modes_agree_when_stratum_fully_covered() {
        // γ large enough that the (k*+1) stratum is fully sampled: the
        // stratified mean equals the paper-literal weight.
        let u = TableUtility::paper_table1();
        // n=3: Σ_{j≤1} = 4; γ = 7 covers all C(3,2)=3 pairs of size 2.
        let mut r1 = StdRng::seed_from_u64(1);
        let mut r2 = StdRng::seed_from_u64(1);
        let a = ipss_values(&u, &IpssConfig::new(7), &mut r1);
        let b = ipss_values(
            &u,
            &IpssConfig::new(7).with_weighting(IpssWeighting::PaperLiteral),
            &mut r2,
        );
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-12, "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let u = HashUtility { n: 9, seed: 4 };
        let a = ipss_values(&u, &IpssConfig::new(20), &mut StdRng::seed_from_u64(42));
        let b = ipss_values(&u, &IpssConfig::new(20), &mut StdRng::seed_from_u64(42));
        assert_eq!(a, b);
    }

    #[test]
    fn uncached_utility_sees_exactly_gamma_evaluations() {
        // Regression: the estimation pass used to re-evaluate every
        // phase-1 coalition through the utility, so a *plain* (uncached)
        // utility was silently trained far past the γ budget. The internal
        // memo must hold the count to exactly γ.
        use std::sync::atomic::{AtomicUsize, Ordering};
        struct Counting {
            inner: HashUtility,
            calls: AtomicUsize,
        }
        impl crate::utility::Utility for Counting {
            fn n_clients(&self) -> usize {
                self.inner.n
            }
            fn eval(&self, s: crate::coalition::Coalition) -> f64 {
                self.calls.fetch_add(1, Ordering::Relaxed);
                self.inner.eval(s)
            }
        }
        // k* < n for every γ here, so the budget is consumed in full:
        // phase 1 spends Σ_{j≤k*} C(8,j) and phase 2 exactly the rest.
        for gamma in [1usize, 5, 9, 10, 36, 37, 40, 93, 200] {
            let u = Counting {
                inner: HashUtility { n: 8, seed: 6 },
                calls: AtomicUsize::new(0),
            };
            let mut rng = StdRng::seed_from_u64(13);
            let _ = ipss(&u, &IpssConfig::new(gamma), &mut rng);
            assert_eq!(
                u.calls.load(Ordering::Relaxed),
                gamma,
                "γ = {gamma} must hit the utility exactly γ times"
            );
        }
    }

    #[test]
    fn parallel_fan_out_is_bit_identical_to_serial() {
        // Same seed ⇒ identical estimates with 1, 2 and 8 rayon threads,
        // and identical to the plain serial utility.
        use crate::utility::ParallelUtility;
        let base = HashUtility { n: 10, seed: 21 };
        let cfg = IpssConfig::new(40);
        let serial = ipss_values(&base, &cfg, &mut StdRng::seed_from_u64(77));
        for threads in [1usize, 2, 8] {
            let par = ParallelUtility::with_num_threads(base.clone(), threads);
            let got = ipss_values(&par, &cfg, &mut StdRng::seed_from_u64(77));
            assert_eq!(got, serial, "thread count {threads}");
        }
    }

    #[test]
    fn streaming_complete_run_is_bit_identical_to_legacy() {
        use crate::anytime::Control;
        let u = HashUtility { n: 8, seed: 5 };
        for (gamma, weighting) in [
            (40usize, IpssWeighting::StratifiedMean),
            (40, IpssWeighting::PaperLiteral),
            (9, IpssWeighting::StratifiedMean), // phase 1 exactly exhausts γ
            (1, IpssWeighting::StratifiedMean), // ∅ only
        ] {
            let cfg = IpssConfig::new(gamma).with_weighting(weighting);
            let legacy = ipss_values(&u, &cfg, &mut StdRng::seed_from_u64(31));
            let mut snapshots = Vec::new();
            let out = ipss_streaming(&u, &cfg, &mut StdRng::seed_from_u64(31), |s| {
                snapshots.push(s.clone());
                Control::Continue
            });
            assert_eq!(out.values, legacy, "γ={gamma} {weighting:?}");
            assert!(!out.stopped_early);
            for w in snapshots.windows(2) {
                assert!(w[0].samples_used <= w[1].samples_used);
            }
        }
    }

    #[test]
    fn streaming_stopped_run_equals_full_run_prefix() {
        use crate::anytime::Control;
        let u = HashUtility { n: 8, seed: 7 };
        let cfg = IpssConfig::new(60);
        let mut snapshots = Vec::new();
        let _ = ipss_streaming(&u, &cfg, &mut StdRng::seed_from_u64(2), |s| {
            snapshots.push(s.clone());
            Control::Continue
        });
        for stop_after in [1usize, 3, snapshots.len() - 1] {
            let out = ipss_streaming(&u, &cfg, &mut StdRng::seed_from_u64(2), |s| {
                if s.batches_done >= stop_after {
                    Control::Stop
                } else {
                    Control::Continue
                }
            });
            assert!(out.stopped_early);
            let want = &snapshots[stop_after - 1];
            assert_eq!(out.values, want.values, "stop_after={stop_after}");
            assert_eq!(out.ci_halfwidths, want.ci_halfwidths);
            assert_eq!(out.samples_used, want.samples_used);
        }
    }

    #[test]
    fn streaming_ci_is_unbounded_during_phase_one_and_finite_in_phase_two() {
        use crate::anytime::Control;
        let u = HashUtility { n: 8, seed: 9 };
        // γ = 92: k* = 2 (1+8+28 = 37 ≤ 92 < 93), 55 phase-2 samples of
        // size 3 in chunks of n = 8.
        let cfg = IpssConfig::new(92);
        let mut widths = Vec::new();
        let out = ipss_streaming(&u, &cfg, &mut StdRng::seed_from_u64(6), |s| {
            widths.push(s.max_halfwidth().unwrap_or(f64::INFINITY));
            Control::Continue
        });
        // Phase-1 batches (strata 0, 1, 2): pending strata keep CI at ∞.
        assert!(widths[..3].iter().all(|w| w.is_infinite()), "{widths:?}");
        // The first phase-2 chunk covers every client 3 times (balanced
        // draw), so the CI is already finite there, and near-complete
        // coverage shrinks it further through the finite-population
        // correction.
        assert!(widths[3].is_finite(), "{widths:?}");
        let last = out.ci_halfwidths.iter().cloned().fold(0.0f64, f64::max);
        assert!(last.is_finite() && last < widths[3], "{widths:?}");
        assert!(widths.iter().all(|w| !w.is_nan()));
    }

    #[test]
    fn adaptive_streaming_exposes_coverage_and_spends_the_budget() {
        use crate::anytime::Control;
        let u = CachedUtility::new(HashUtility { n: 8, seed: 5 });
        // γ = 60: k* = 2 (37 ≤ 60 < 93), 23 phase-2 coalitions of size 3.
        let cfg = IpssConfig::new(60);
        let policy = AdaptivePolicy::default();
        let mut allocations = Vec::new();
        let out = ipss_streaming_adaptive(&u, &cfg, &policy, &mut StdRng::seed_from_u64(19), |s| {
            let alloc = match &s.allocation {
                Some(a) => a.clone(),
                None => panic!("adaptive snapshots must carry the allocation"),
            };
            allocations.push(alloc);
            Control::Continue
        });
        assert!(!out.stopped_early);
        assert_eq!(u.stats().evaluations, 60, "exactly γ evaluations");
        // Phase-1 snapshots report zero coverage; phase 2 grows monotonically
        // to 23 coalitions × 3 members = 69 total coverage.
        assert!(allocations[..3].iter().all(|a| a.iter().all(|&c| c == 0)));
        for w in allocations.windows(2) {
            assert!(w[0].iter().zip(&w[1]).all(|(a, b)| a <= b));
        }
        let last = match allocations.last() {
            Some(a) => a,
            None => panic!("no snapshots observed"),
        };
        assert_eq!(last.iter().sum::<usize>(), 23 * 3);
        assert_eq!(out.allocation.as_ref(), Some(last));
    }

    #[test]
    fn adaptive_streaming_stopped_run_equals_full_run_prefix() {
        use crate::anytime::Control;
        let u = HashUtility { n: 8, seed: 7 };
        let cfg = IpssConfig::new(60);
        let policy = AdaptivePolicy::default();
        let mut snapshots = Vec::new();
        let _ = ipss_streaming_adaptive(&u, &cfg, &policy, &mut StdRng::seed_from_u64(2), |s| {
            snapshots.push(s.clone());
            Control::Continue
        });
        for stop_after in [1usize, 4, snapshots.len() - 1] {
            let out =
                ipss_streaming_adaptive(&u, &cfg, &policy, &mut StdRng::seed_from_u64(2), |s| {
                    if s.batches_done >= stop_after {
                        Control::Stop
                    } else {
                        Control::Continue
                    }
                });
            assert!(out.stopped_early);
            let want = &snapshots[stop_after - 1];
            assert_eq!(out.values, want.values, "stop_after={stop_after}");
            assert_eq!(out.ci_halfwidths, want.ci_halfwidths);
            assert_eq!(out.allocation, want.allocation);
        }
    }

    #[test]
    fn adaptive_stops_early_on_fast_saturating_utility() {
        // rate = 2.5: marginals collapse after the first stratum.
        let fast = CachedUtility::new(SaturatingUtility::uniform(10, 0.1, 0.85, 2.5));
        let out = ipss_adaptive(&fast, &AdaptiveIpssConfig::default());
        assert!(out.k_star <= 3, "k* = {} should be small", out.k_star);
        // And still accurate: the ignored strata carry < 1% of the value.
        let exact = exact_mc_sv(&fast);
        let err = crate::metrics::l2_relative_error(&out.values, &exact);
        assert!(err < 0.05, "err {err}");
    }

    #[test]
    fn adaptive_goes_deeper_on_slow_saturating_utility() {
        let fast = CachedUtility::new(SaturatingUtility::uniform(10, 0.1, 0.85, 2.5));
        let slow = CachedUtility::new(SaturatingUtility::uniform(10, 0.1, 0.85, 0.15));
        let k_fast = ipss_adaptive(&fast, &AdaptiveIpssConfig::default()).k_star;
        let k_slow = ipss_adaptive(&slow, &AdaptiveIpssConfig::default()).k_star;
        assert!(
            k_slow > k_fast,
            "slow-saturating game should deepen further ({k_slow} vs {k_fast})"
        );
    }

    #[test]
    fn adaptive_respects_budget_ceiling() {
        let u = CachedUtility::new(SaturatingUtility::uniform(12, 0.1, 0.85, 0.05));
        let cfg = AdaptiveIpssConfig {
            max_gamma: 100,
            plateau_fraction: 0.0001,
        };
        let out = ipss_adaptive(&u, &cfg);
        assert!(u.stats().evaluations <= 100);
        assert!(out.exhaustive_evaluations <= 100);
    }

    #[test]
    fn large_n_small_budget() {
        // The Fig. 9 regime: n = 100, γ = n·log₂(n) ≈ 664 ⇒ k* = 1.
        let u = CachedUtility::new(SaturatingUtility::uniform(100, 0.1, 0.85, 0.1));
        let gamma = (100.0 * (100.0f64).ln()) as usize; // ≈ 460
        let mut rng = StdRng::seed_from_u64(8);
        let out = ipss(&u, &IpssConfig::new(gamma), &mut rng);
        assert_eq!(out.k_star, 1);
        assert_eq!(u.stats().evaluations, gamma);
        assert_eq!(out.values.len(), 100);
        // Every client must receive a positive value on a monotone utility.
        assert!(out.values.iter().all(|&v| v > 0.0));
    }
}
