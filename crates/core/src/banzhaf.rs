//! Banzhaf-value data valuation — the robust alternative of *Data Banzhaf*
//! (Wang & Jia, AISTATS'23), cited by the paper as \[21\].
//!
//! The Banzhaf value replaces the Shapley value's stratified weights with a
//! uniform average over all coalitions:
//! `ψ_i = (1/2^{n−1}) Σ_{S ⊆ N\{i}} (U(S∪{i}) − U(S))`.
//! It keeps null-player and symmetry but trades the efficiency axiom for
//! robustness to utility noise — a useful cross-check on FL valuations,
//! and its maximum-sample-reuse estimator makes every sampled coalition
//! inform *every* client's value.

use rand::Rng;

use crate::anytime::{
    component_variance, halfwidth, Control, ProgressSnapshot, StreamingOutcome, Welford,
};
use crate::coalition::{all_subsets, Coalition};
use crate::utility::Utility;

/// Exact Banzhaf value via full enumeration (small `n` only).
///
/// Batched like `exact_mc_sv`: one `eval_batch` sweep over all `2^n`
/// coalitions (parallelisable, one evaluation per coalition even without a
/// cache), then a serial fold in mask order.
pub fn exact_banzhaf<U: Utility + ?Sized>(u: &U) -> Vec<f64> {
    let n = u.n_clients();
    assert!(n >= 1);
    assert!(n <= 24, "exact Banzhaf enumerates 2^n coalitions");
    let table = crate::exact::full_value_table(u, n);
    let mut phi = vec![0.0; n];
    let scale = 1.0 / (1u64 << (n - 1)) as f64;
    for t in all_subsets(n) {
        if t.is_empty() {
            continue;
        }
        let ut = table[t.0 as usize];
        for i in t.members() {
            phi[i] += (ut - table[t.without(i).0 as usize]) * scale;
        }
    }
    phi
}

/// Configuration for [`banzhaf_msr`].
#[derive(Clone, Debug)]
pub struct BanzhafConfig {
    /// Number of uniformly sampled coalitions.
    pub samples: usize,
}

impl BanzhafConfig {
    pub fn new(samples: usize) -> Self {
        BanzhafConfig { samples }
    }
}

/// Maximum-sample-reuse (MSR) Banzhaf estimator:
/// `ψ̂_i = mean{U(S) : i ∈ S} − mean{U(S) : i ∉ S}` over coalitions drawn
/// uniformly from `2^N`. Every sample updates every client — the property
/// that makes Data Banzhaf sample-efficient.
pub fn banzhaf_msr<U: Utility + ?Sized, R: Rng + ?Sized>(
    u: &U,
    cfg: &BanzhafConfig,
    rng: &mut R,
) -> Vec<f64> {
    let n = u.n_clients();
    assert!(n >= 1);
    assert!(cfg.samples >= 1);
    // Draw all coalitions first (identical RNG stream to the historical
    // draw-then-evaluate interleaving), evaluate them as one batch, then
    // fold in draw order.
    let samples: Vec<Coalition> = (0..cfg.samples)
        .map(|_| {
            // Uniform coalition: include each client independently w.p. 1/2.
            let mut mask = 0u128;
            for i in 0..n {
                if rng.random::<bool>() {
                    mask |= 1 << i;
                }
            }
            Coalition(mask)
        })
        .collect();
    let values = u.eval_batch(&samples);
    let mut sum_in = vec![0.0f64; n];
    let mut cnt_in = vec![0usize; n];
    let mut sum_out = vec![0.0f64; n];
    let mut cnt_out = vec![0usize; n];
    for (&s, &us) in samples.iter().zip(&values) {
        for i in 0..n {
            if s.contains(i) {
                sum_in[i] += us;
                cnt_in[i] += 1;
            } else {
                sum_out[i] += us;
                cnt_out[i] += 1;
            }
        }
    }
    (0..n)
        .map(|i| {
            if cnt_in[i] == 0 || cnt_out[i] == 0 {
                0.0
            } else {
                sum_in[i] / cnt_in[i] as f64 - sum_out[i] / cnt_out[i] as f64
            }
        })
        .collect()
}

/// Stratified Banzhaf sampling reusing the IPSS insight: evaluate all
/// coalitions of size ≤ k* plus a balanced sample of the next stratum,
/// and estimate the Banzhaf value from the evaluated marginal pairs with
/// size-binomial weights `C(n−1, |S|)/2^{n−1}`.
///
/// Caveat (and an instructive contrast with IPSS): the Banzhaf value has
/// *no* `1/C(n−1,|S|)` down-weighting of mid-size strata — observation
/// (ii) of Sec. IV-A does not apply — so importance pruning is sound only
/// when the utility saturates fast enough that marginal decay beats the
/// binomial growth of stratum mass (roughly `e^{−rate} < 1/n`).
pub fn banzhaf_pruned<U: Utility + ?Sized, R: Rng + ?Sized>(
    u: &U,
    gamma: usize,
    rng: &mut R,
) -> Vec<f64> {
    use std::collections::HashMap;

    use crate::coalition::{binom, subsets_of_size, subsets_up_to};
    use crate::sampling::balanced_subsets_of_size;
    use crate::utility::eval_batch_into_memo;
    let n = u.n_clients();
    let k_star = crate::ipss::compute_k_star(n, gamma)
        .unwrap_or_else(|| panic!("γ = {gamma} cannot even afford U(∅)"));
    let denom = (1u128 << (n - 1)) as f64;
    let mut phi = vec![0.0f64; n];
    // Internal memo, mirroring IPSS: each stratum is evaluated as one
    // batch and the pairing pass reads the memo, so even an uncached
    // utility sees at most γ evaluations.
    let mut memo: HashMap<u128, f64> = HashMap::new();
    eval_batch_into_memo(u, &[Coalition::empty()], &mut memo);
    for t_size in 1..=k_star {
        let stratum: Vec<Coalition> = subsets_of_size(n, t_size).collect();
        eval_batch_into_memo(u, &stratum, &mut memo);
        // Exact stratum sums, weighted by the full binomial mass of the
        // stratum relative to 2^{n−1}.
        for &t in &stratum {
            let ut = memo[&t.0];
            for i in t.members() {
                phi[i] += (ut - memo[&t.without(i).0]) / denom;
            }
        }
    }
    if k_star < n {
        let remaining = (gamma as u128).saturating_sub(subsets_up_to(n, k_star));
        let count = remaining.min(crate::coalition::binom_u128(n, k_star + 1)) as usize;
        if count > 0 {
            let sampled = balanced_subsets_of_size(n, k_star + 1, count, rng);
            eval_batch_into_memo(u, &sampled, &mut memo);
            let mut sums = vec![0.0f64; n];
            let mut cnts = vec![0usize; n];
            for &t in &sampled {
                let ut = memo[&t.0];
                for i in t.members() {
                    sums[i] += ut - memo[&t.without(i).0];
                    cnts[i] += 1;
                }
            }
            // Scale the stratum mean by the stratum's coalition count so
            // the estimate matches the exact stratum sum in expectation.
            let stratum_mass = binom(n - 1, k_star);
            for i in 0..n {
                if cnts[i] > 0 {
                    phi[i] += stratum_mass * (sums[i] / cnts[i] as f64) / denom;
                }
            }
        }
    }
    phi
}

/// Anytime [`banzhaf_pruned`] — the streaming variant, mirroring
/// [`crate::ipss::ipss_streaming`]: one batch per exhaustive stratum
/// (`∅` first), then the balanced next-stratum sample in chunks of `n`.
/// The RNG stream, the evaluated coalitions and the fold order are those
/// of the legacy run, so a completed schedule is bit-identical to
/// [`banzhaf_pruned`] and a stopped run bit-equals the same-seed full
/// run's snapshot at the same batch count.
///
/// CI terms follow the IPSS conventions: completed strata are exact
/// (term 0), scheduled-but-pending strata are unbounded (`∞`), and the
/// sampled stratum gets per-client [`Welford`] accumulators with weight
/// `C(n−1, k*)/2^{n−1}` (the estimator scales the stratum *mean* by the
/// stratum mass) and pair population `C(n−1, k*)`. Truncated strata
/// contribute no term — and carry far more mass than under Shapley
/// weights (see the [`banzhaf_pruned`] caveat), so a tight `CiAtMost`
/// here bounds sampling noise, not truncation bias.
pub fn banzhaf_pruned_streaming<U, R, F>(
    u: &U,
    gamma: usize,
    rng: &mut R,
    mut observe: F,
) -> StreamingOutcome
where
    U: Utility + ?Sized,
    R: Rng + ?Sized,
    F: FnMut(&ProgressSnapshot) -> Control,
{
    use std::collections::HashMap;

    use crate::coalition::{binom, subsets_of_size, subsets_up_to};
    use crate::sampling::balanced_subsets_of_size;
    use crate::utility::eval_batch_into_memo;
    let n = u.n_clients();
    let k_star = crate::ipss::compute_k_star(n, gamma)
        .unwrap_or_else(|| panic!("γ = {gamma} cannot even afford U(∅)"));
    // Phase-2 draw up front — evaluation consumes no randomness, so the
    // stream is identical to the legacy interleaving.
    let sampled = if k_star < n {
        let remaining = (gamma as u128).saturating_sub(subsets_up_to(n, k_star));
        let count = remaining.min(crate::coalition::binom_u128(n, k_star + 1)) as usize;
        balanced_subsets_of_size(n, k_star + 1, count, rng)
    } else {
        Vec::new()
    };

    let chunk = n.max(1);
    let phase2_batches = sampled.len().div_ceil(chunk);
    let total_batches = (k_star + 1) + phase2_batches;

    let mut memo: HashMap<u128, f64> = HashMap::new();
    let mut samples_used = 0usize;
    for b in 0..total_batches {
        let (batch, done_size, sampled_prefix) = if b <= k_star {
            (subsets_of_size(n, b).collect::<Vec<_>>(), b, 0usize)
        } else {
            let start = (b - k_star - 1) * chunk;
            let end = (start + chunk).min(sampled.len());
            (sampled[start..end].to_vec(), k_star, end)
        };
        eval_batch_into_memo(u, &batch, &mut memo);
        samples_used += batch.len();
        let batches_done = b + 1;

        // Prefix fold — the legacy accumulation order over completed
        // strata, then the evaluated sampled prefix.
        let denom = (1u128 << (n - 1)) as f64;
        let mut phi = vec![0.0f64; n];
        for t_size in 1..=done_size {
            for t in subsets_of_size(n, t_size) {
                let ut = memo[&t.0];
                for i in t.members() {
                    phi[i] += (ut - memo[&t.without(i).0]) / denom;
                }
            }
        }
        let stratum_mass = if k_star < n {
            binom(n - 1, k_star)
        } else {
            0.0
        };
        let mut accs: Vec<Welford> = vec![Welford::new(); n];
        let prefix = &sampled[..sampled_prefix];
        if !prefix.is_empty() {
            let mut sums = vec![0.0f64; n];
            let mut cnts = vec![0usize; n];
            for &t in prefix {
                let ut = memo[&t.0];
                for i in t.members() {
                    let contribution = ut - memo[&t.without(i).0];
                    sums[i] += contribution;
                    cnts[i] += 1;
                    accs[i].push(contribution);
                }
            }
            for i in 0..n {
                if cnts[i] > 0 {
                    phi[i] += stratum_mass * (sums[i] / cnts[i] as f64) / denom;
                }
            }
        }
        // The pair population of the sampled stratum is the same
        // C(n−1, k*) as its mass.
        let ci_halfwidths: Vec<f64> = (0..n)
            .map(|i| {
                halfwidth(
                    (1..=k_star)
                        .map(|t_size| if t_size <= done_size { Some(0.0) } else { None })
                        .chain((!sampled.is_empty()).then(|| {
                            component_variance(&accs[i], stratum_mass / denom, stratum_mass)
                        })),
                )
            })
            .collect();
        let snapshot = ProgressSnapshot {
            values: phi,
            ci_halfwidths,
            samples_used,
            batches_done,
            allocation: None,
        };
        let control = observe(&snapshot);
        let complete = b + 1 == total_batches;
        if complete || control == Control::Stop {
            return StreamingOutcome::from_snapshot(snapshot, !complete);
        }
    }
    unreachable!("the final batch always returns")
}

#[cfg(test)]
// Tests assert invariants; an unwrap that trips IS the test failing.
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::metrics::l2_relative_error;
    use crate::utility::{AdditiveUtility, CachedUtility, TableUtility};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn additive_game_recovers_weights() {
        let w = vec![0.3, 0.1, 0.6];
        let u = AdditiveUtility::new(0.2, w.clone());
        let psi = exact_banzhaf(&u);
        for (p, e) in psi.iter().zip(&w) {
            assert!((p - e).abs() < 1e-12);
        }
    }

    #[test]
    fn banzhaf_vs_shapley_on_paper_table() {
        // Banzhaf and Shapley differ in general but share the ranking on
        // this monotone example.
        let u = TableUtility::paper_table1();
        let psi = exact_banzhaf(&u);
        let phi = crate::exact::exact_mc_sv(&u);
        assert!(psi[0] < psi[1] && psi[0] < psi[2]);
        assert!(phi[0] < phi[1] && phi[0] < phi[2]);
        // No efficiency for Banzhaf: on this table Σψ = 0.845, not
        // U(N) − U(∅) = 0.86.
        let total: f64 = psi.iter().sum();
        assert!((total - 0.86).abs() > 1e-6, "Σψ = {total}");
        assert!((total - 0.845).abs() < 1e-9, "Σψ = {total}");
    }

    #[test]
    fn msr_estimator_converges() {
        let u = TableUtility::paper_table1();
        let exact = exact_banzhaf(&u);
        let mut rng = StdRng::seed_from_u64(5);
        let est = banzhaf_msr(&u, &BanzhafConfig::new(40_000), &mut rng);
        assert!(
            l2_relative_error(&est, &exact) < 0.05,
            "{est:?} vs {exact:?}"
        );
    }

    #[test]
    fn msr_handles_single_client() {
        let u = TableUtility::new(1, vec![0.2, 0.9]);
        let mut rng = StdRng::seed_from_u64(6);
        let est = banzhaf_msr(&u, &BanzhafConfig::new(200), &mut rng);
        assert!((est[0] - 0.7).abs() < 1e-9);
    }

    #[test]
    fn pruned_estimator_respects_budget_and_approximates() {
        // rate = 2.5 > ln(n−1): marginal decay beats the binomial growth
        // of Banzhaf's stratum mass, the regime where pruning is sound
        // (see banzhaf_pruned docs).
        let u = CachedUtility::new(crate::utility::SaturatingUtility::uniform(
            10, 0.1, 0.85, 2.5,
        ));
        let mut rng = StdRng::seed_from_u64(7);
        let est = banzhaf_pruned(&u, 32, &mut rng);
        assert!(u.stats().evaluations <= 32);
        let exact = exact_banzhaf(&u);
        let err = l2_relative_error(&est, &exact);
        assert!(err < 0.2, "error {err}");
    }

    #[test]
    fn pruning_banzhaf_fails_on_slow_saturation() {
        // The contrast case: at rate = 1.2 the mid strata carry most of
        // the Banzhaf mass and truncation loses it — unlike the Shapley
        // value, whose 1/C(n−1,s) weights rescue IPSS (observation (ii)).
        let u = crate::utility::SaturatingUtility::uniform(10, 0.1, 0.85, 1.2);
        let mut rng = StdRng::seed_from_u64(9);
        let est = banzhaf_pruned(&u, 32, &mut rng);
        let exact = exact_banzhaf(&u);
        let err = l2_relative_error(&est, &exact);
        assert!(err > 0.3, "expected large truncation error, got {err}");
    }

    #[test]
    fn streaming_complete_run_is_bit_identical_to_legacy() {
        use crate::anytime::Control;
        let u = crate::utility::HashUtility { n: 8, seed: 14 };
        for gamma in [1usize, 9, 40, 93] {
            let legacy = banzhaf_pruned(&u, gamma, &mut StdRng::seed_from_u64(23));
            let out = banzhaf_pruned_streaming(&u, gamma, &mut StdRng::seed_from_u64(23), |_| {
                Control::Continue
            });
            assert_eq!(out.values, legacy, "γ={gamma}");
            assert!(!out.stopped_early);
        }
    }

    #[test]
    fn streaming_stopped_run_equals_full_run_prefix() {
        use crate::anytime::Control;
        let u = crate::utility::HashUtility { n: 8, seed: 15 };
        let mut snapshots = Vec::new();
        let _ = banzhaf_pruned_streaming(&u, 60, &mut StdRng::seed_from_u64(4), |s| {
            snapshots.push(s.clone());
            Control::Continue
        });
        let out = banzhaf_pruned_streaming(&u, 60, &mut StdRng::seed_from_u64(4), |s| {
            if s.batches_done >= 4 {
                Control::Stop
            } else {
                Control::Continue
            }
        });
        assert!(out.stopped_early);
        assert_eq!(out.values, snapshots[3].values);
        assert_eq!(out.ci_halfwidths, snapshots[3].ci_halfwidths);
        assert!(snapshots[0].ci_halfwidths.iter().all(|h| !h.is_nan()));
    }

    #[test]
    fn full_budget_pruned_is_exact() {
        let u = TableUtility::paper_table1();
        let exact = exact_banzhaf(&u);
        let mut rng = StdRng::seed_from_u64(8);
        let est = banzhaf_pruned(&u, 8, &mut rng);
        for (a, b) in est.iter().zip(&exact) {
            assert!((a - b).abs() < 1e-12, "{est:?} vs {exact:?}");
        }
    }
}
