//! Lock-step multi-coalition training must be bit-identical to solo
//! training — the determinism contract of the batched FedAvg engine.
//!
//! `train_coalitions` advances B parameter lanes through one pass over the
//! client data; every lane's trajectory must match the per-coalition
//! `train_coalition` reference loop bit-for-bit, for any lane count, any
//! model family and any FedAvg configuration the workspace exercises. On
//! top, `FlUtility::eval_batch` (size-sorted lane blocks) must reproduce
//! mapped `eval` exactly, and the composed cached/parallel stack must keep
//! counting one training per distinct coalition.

// Driver code: test assertions panic by design, so unwrap/expect are
// the failure mechanism, not a robustness gap.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use rand::rngs::StdRng;
use rand::SeedableRng;

use fedval_core::coalition::{all_subsets, Coalition};
use fedval_core::utility::{CachedUtility, ParallelUtility, Utility};
use fedval_data::{Dataset, MnistLike, SyntheticSetup};
use fedval_fl::{
    train_coalition, train_coalitions, FedAvgConfig, FlAlgorithm, FlUtility, ModelSpec,
};

fn federated_problem(n_clients: usize, per_client: usize) -> (Vec<Dataset>, Dataset) {
    let gen = MnistLike::new(77);
    let (train, test) = gen.generate_split(per_client * n_clients, 80, 78);
    let mut rng = StdRng::seed_from_u64(79);
    let clients = SyntheticSetup::SameSizeSameDist.partition(&train, n_clients, &mut rng);
    (clients, test)
}

/// A spread of coalitions over `n` clients: empty, singletons, pairs, the
/// grand coalition — `count` of them, deterministic.
fn coalition_spread(n: usize, count: usize) -> Vec<Coalition> {
    let mut out = vec![
        Coalition::empty(),
        Coalition::full(n),
        Coalition::singleton(0),
        Coalition::from_members([0, n - 1]),
        Coalition::from_members(0..n.min(3)),
        Coalition::singleton(n - 1),
        Coalition::from_members([1, 2]),
        Coalition::from_members((0..n).filter(|i| i % 2 == 0)),
    ];
    out.truncate(count.max(1));
    out.truncate(1usize << n); // never more than exist
    out
}

#[test]
fn batched_equals_solo_for_every_lane_count_and_spec() {
    let (clients, _) = federated_problem(4, 30);
    let cfg = FedAvgConfig {
        rounds: 2,
        local_epochs: 1,
        lr: 0.1,
        seed: 1001,
        ..Default::default()
    };
    let specs = [
        ModelSpec::default_mlp(),
        ModelSpec::Mlp {
            hidden: vec![24, 16],
        },
        ModelSpec::Linear,
        ModelSpec::Cnn { side: 8 },
    ];
    for spec in &specs {
        for lanes in [1usize, 3, 8] {
            let batch = coalition_spread(4, lanes);
            let nets = train_coalitions(spec, &clients, 64, 10, &batch, &cfg);
            assert_eq!(nets.len(), batch.len());
            for (s, net) in batch.iter().zip(&nets) {
                let solo = train_coalition(spec, &clients, 64, 10, *s, &cfg);
                assert_eq!(
                    net.params(),
                    solo.params(),
                    "{} B={lanes} coalition {s:?} diverged from solo",
                    spec.name()
                );
            }
        }
    }
}

#[test]
fn batched_equals_solo_with_partial_participation() {
    let (clients, _) = federated_problem(5, 24);
    let cfg = FedAvgConfig {
        rounds: 3,
        local_epochs: 1,
        participation: 0.6,
        seed: 2002,
        ..Default::default()
    };
    let spec = ModelSpec::default_mlp();
    let batch = coalition_spread(5, 8);
    let nets = train_coalitions(&spec, &clients, 64, 10, &batch, &cfg);
    for (s, net) in batch.iter().zip(&nets) {
        let solo = train_coalition(&spec, &clients, 64, 10, *s, &cfg);
        assert_eq!(net.params(), solo.params(), "coalition {s:?}");
    }
}

#[test]
fn batched_equals_solo_with_fedprox() {
    let (clients, _) = federated_problem(4, 24);
    let cfg = FedAvgConfig {
        rounds: 2,
        local_epochs: 2,
        algorithm: FlAlgorithm::FedProx { mu: 0.4 },
        seed: 3003,
        ..Default::default()
    };
    let spec = ModelSpec::default_mlp();
    let batch = coalition_spread(4, 3);
    let nets = train_coalitions(&spec, &clients, 64, 10, &batch, &cfg);
    for (s, net) in batch.iter().zip(&nets) {
        let solo = train_coalition(&spec, &clients, 64, 10, *s, &cfg);
        assert_eq!(net.params(), solo.params(), "coalition {s:?}");
    }
}

fn fl_utility(n: usize) -> FlUtility {
    let (clients, test) = federated_problem(n, 24);
    FlUtility::new(
        clients,
        test,
        ModelSpec::default_mlp(),
        FedAvgConfig {
            rounds: 2,
            local_epochs: 1,
            lr: 0.15,
            seed: 4004,
            ..Default::default()
        },
    )
}

#[test]
fn fl_eval_batch_is_bit_identical_to_mapped_eval() {
    let u = fl_utility(3);
    // All subsets plus duplicates, in scrambled order.
    let mut coalitions: Vec<Coalition> = all_subsets(3).collect();
    coalitions.push(Coalition::from_members([0, 2]));
    coalitions.push(Coalition::empty());
    coalitions.reverse();
    let mapped: Vec<f64> = coalitions.iter().map(|&s| u.eval(s)).collect();
    for lane_block in [1usize, 3, 8] {
        let u = fl_utility(3).with_lane_block(lane_block);
        assert_eq!(
            u.eval_batch(&coalitions),
            mapped,
            "lane_block {lane_block} diverged from mapped eval"
        );
    }
}

#[test]
fn cached_parallel_lockstep_stack_is_deterministic_and_counts_once() {
    // The full composition the valuation algorithms run on: cache dedups,
    // the parallel adapter spreads sub-batches, the FL utility trains each
    // sub-batch in lock-step. Values must match the serial mapped path at
    // every thread count, and each distinct coalition must be trained
    // exactly once.
    let serial = fl_utility(3);
    let coalitions: Vec<Coalition> = all_subsets(3).collect();
    let expected: Vec<f64> = coalitions.iter().map(|&s| serial.eval(s)).collect();
    for threads in [1usize, 2, 4] {
        let u = CachedUtility::new(ParallelUtility::with_num_threads(fl_utility(3), threads));
        // Duplicate the batch: the cache must still train each coalition
        // exactly once.
        let mut doubled = coalitions.clone();
        doubled.extend_from_slice(&coalitions);
        let got = u.eval_batch(&doubled);
        assert_eq!(&got[..coalitions.len()], &expected[..], "threads {threads}");
        assert_eq!(&got[coalitions.len()..], &expected[..], "threads {threads}");
        assert_eq!(u.stats().evaluations, coalitions.len(), "threads {threads}");
    }
}
