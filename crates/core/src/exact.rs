//! Exact Shapley-value computation under the three equivalent expressions
//! used in the paper: marginal-contribution (MC-SV, Def. 3),
//! complementary-contribution (CC-SV, Def. 4), and permutation-based
//! (Perm-SV, the `Perm-Shapley` baseline of Sec. V-A).
//!
//! All of these require `O(2^n)` distinct utility evaluations and are only
//! tractable for small `n`; they provide the ground truth against which the
//! approximation algorithms are scored (the `l2` relative error of Eq. 21).

use crate::anytime::{
    component_variance, halfwidth, Control, ProgressSnapshot, StreamingOutcome, Welford,
};
use crate::coalition::{all_subsets, binom, Coalition};
use crate::utility::Utility;

/// Size (in coalitions) of the batches the exact passes hand to
/// [`Utility::eval_batch`]. Large enough to amortise fan-out overhead and
/// keep every core busy, small enough to bound the in-flight value buffer
/// at `n = 24`.
const EXACT_BATCH: usize = 8192;

/// Evaluate all `2^n` coalitions via `eval_batch` (in chunks) into a table
/// indexed by coalition mask. One evaluation per distinct coalition — the
/// fold phases then read the table instead of re-invoking the utility.
pub(crate) fn full_value_table<U: Utility + ?Sized>(u: &U, n: usize) -> Vec<f64> {
    let mut table = vec![0.0f64; 1 << n];
    let mut batch: Vec<Coalition> = Vec::with_capacity(EXACT_BATCH.min(1 << n));
    let mut start = 0usize;
    for t in all_subsets(n) {
        batch.push(t);
        if batch.len() == EXACT_BATCH {
            table[start..start + batch.len()].copy_from_slice(&u.eval_batch(&batch));
            start += batch.len();
            batch.clear();
        }
    }
    if !batch.is_empty() {
        table[start..start + batch.len()].copy_from_slice(&u.eval_batch(&batch));
    }
    table
}

/// Exact MC-SV (Def. 3):
/// `ϕ_i = Σ_{S ⊆ N\{i}} (U(M_{S∪{i}}) − U(M_S)) / (n · C(n−1, |S|))`.
///
/// Implemented in two phases: a batched evaluation of all `2^n` coalitions
/// through [`Utility::eval_batch`] (so a [`ParallelUtility`] inner trains
/// them across all cores and every coalition is evaluated exactly once,
/// cached or not), then a serial fold in mask order — each `T ∋ i`
/// contributes the marginal `U(T) − U(T\{i})` to client `i` with weight
/// `1/(n · C(n−1, |T|−1))`. The fold order matches the historical serial
/// implementation, so results are bit-identical at any thread count.
///
/// [`ParallelUtility`]: crate::utility::ParallelUtility
pub fn exact_mc_sv<U: Utility + ?Sized>(u: &U) -> Vec<f64> {
    let n = u.n_clients();
    assert!(n >= 1, "need at least one client");
    assert!(n <= 24, "exact computation enumerates 2^n coalitions");
    let table = full_value_table(u, n);
    let mut phi = vec![0.0; n];
    let inv_n = 1.0 / n as f64;
    // Precompute 1/C(n-1, s) for s = 0..n.
    let inv_binom: Vec<f64> = (0..n).map(|s| 1.0 / binom(n - 1, s)).collect();
    for t in all_subsets(n) {
        if t.is_empty() {
            continue;
        }
        let ut = table[t.0 as usize];
        let w = inv_n * inv_binom[t.size() - 1];
        for i in t.members() {
            let us = table[t.without(i).0 as usize];
            phi[i] += (ut - us) * w;
        }
    }
    phi
}

/// Anytime exact MC-SV — the streaming variant of [`exact_mc_sv`].
///
/// Evaluates the `2^n` sweep in the same `EXACT_BATCH`-sized chunks
/// (mask order) and emits a [`ProgressSnapshot`] after each chunk. The
/// mid-sweep estimate is the stratified-mean prefix fold of
/// [`crate::service::partial_prefix_fold`] — the same partial the
/// service returns on a deadline — and the *complete* sweep runs the
/// legacy weighted fold verbatim, so a finished run is bit-identical to
/// [`exact_mc_sv`].
///
/// CI terms: every stratum is scheduled, so a stratum with no evaluated
/// pairs yet keeps the half-width at `∞`; mask order reaches the full
/// coalition last, so a `CiAtMost` rule effectively cannot fire before
/// completion (when all half-widths collapse to 0 through the
/// finite-population correction). The exact sweep is therefore not the
/// early-stopping vehicle — use `MaxSamples` to budget it, or a sampling
/// estimator to converge early.
pub fn exact_mc_sv_streaming<U, F>(u: &U, observe: F) -> StreamingOutcome
where
    U: Utility + ?Sized,
    F: FnMut(&ProgressSnapshot) -> Control,
{
    exact_mc_sv_streaming_with_batch(u, EXACT_BATCH, observe)
}

/// [`exact_mc_sv_streaming`] with an explicit chunk size (test hook —
/// the production path always uses [`EXACT_BATCH`]).
pub(crate) fn exact_mc_sv_streaming_with_batch<U, F>(
    u: &U,
    batch_size: usize,
    mut observe: F,
) -> StreamingOutcome
where
    U: Utility + ?Sized,
    F: FnMut(&ProgressSnapshot) -> Control,
{
    let n = u.n_clients();
    assert!(n >= 1, "need at least one client");
    assert!(n <= 24, "exact computation enumerates 2^n coalitions");
    assert!(batch_size >= 1);
    let total = 1usize << n;
    let mut evaluated: Vec<(Coalition, f64)> = Vec::with_capacity(total);
    let mut batches_done = 0usize;
    let mut start = 0usize;
    while start < total {
        let end = (start + batch_size).min(total);
        let batch: Vec<Coalition> = (start..end).map(|m| Coalition(m as u128)).collect();
        let values = u.eval_batch(&batch);
        evaluated.extend(batch.iter().copied().zip(values));
        start = end;
        batches_done += 1;
        let complete = start == total;
        let snapshot = exact_prefix_snapshot(n, &evaluated, complete, batches_done);
        let control = observe(&snapshot);
        if complete || control == Control::Stop {
            return StreamingOutcome::from_snapshot(snapshot, !complete);
        }
    }
    unreachable!("the final chunk always returns")
}

/// Prefix snapshot of the exact sweep. In mask order `T\{i}` always
/// precedes `T`, so every evaluated non-empty coalition contributes all
/// of its marginals; the evaluated prefix is exactly masks
/// `0..evaluated.len()`, indexable directly.
fn exact_prefix_snapshot(
    n: usize,
    evaluated: &[(Coalition, f64)],
    complete: bool,
    batches_done: usize,
) -> ProgressSnapshot {
    let values = if complete {
        // The legacy fold, verbatim — bit-identical to [`exact_mc_sv`].
        let mut phi = vec![0.0; n];
        let inv_n = 1.0 / n as f64;
        let inv_binom: Vec<f64> = (0..n).map(|s| 1.0 / binom(n - 1, s)).collect();
        for t in all_subsets(n) {
            if t.is_empty() {
                continue;
            }
            let ut = evaluated[t.0 as usize].1;
            let w = inv_n * inv_binom[t.size() - 1];
            for i in t.members() {
                let us = evaluated[t.without(i).0 as usize].1;
                phi[i] += (ut - us) * w;
            }
        }
        phi
    } else {
        crate::service::partial_prefix_fold(n, evaluated)
    };

    let mut accs = vec![vec![Welford::new(); n]; n]; // accs[i][|t|-1]
    for &(t, ut) in evaluated {
        if t.is_empty() {
            continue;
        }
        let k = t.size() - 1;
        for i in t.members() {
            let us = evaluated[t.without(i).0 as usize].1;
            accs[i][k].push(ut - us);
        }
    }
    let inv_n = 1.0 / n as f64;
    let ci_halfwidths: Vec<f64> = accs
        .iter()
        .map(|client| {
            halfwidth(
                client
                    .iter()
                    .enumerate()
                    .map(|(k, acc)| component_variance(acc, inv_n, binom(n - 1, k))),
            )
        })
        .collect();
    ProgressSnapshot {
        values,
        ci_halfwidths,
        samples_used: evaluated.len(),
        batches_done,
        allocation: None,
    }
}

/// Exact CC-SV (Def. 4):
/// `ϕ_i = Σ_{S ⊆ N\{i}} (U(M_{S∪{i}}) − U(M_{N\(S∪{i})})) / (n · C(n−1, |S|))`.
///
/// Batched like [`exact_mc_sv`]: one `eval_batch` sweep, then a serial
/// fold in mask order.
pub fn exact_cc_sv<U: Utility + ?Sized>(u: &U) -> Vec<f64> {
    let n = u.n_clients();
    assert!(n >= 1);
    assert!(n <= 24, "exact computation enumerates 2^n coalitions");
    let table = full_value_table(u, n);
    let mut phi = vec![0.0; n];
    let inv_n = 1.0 / n as f64;
    let inv_binom: Vec<f64> = (0..n).map(|s| 1.0 / binom(n - 1, s)).collect();
    for t in all_subsets(n) {
        if t.is_empty() {
            continue;
        }
        let cc = table[t.0 as usize] - table[t.complement(n).0 as usize];
        let w = inv_n * inv_binom[t.size() - 1];
        for i in t.members() {
            phi[i] += cc * w;
        }
    }
    phi
}

/// Exact Perm-SV: the average over all `n!` permutations of each client's
/// marginal contribution to the prefix preceding it.
///
/// Equivalent to MC-SV (the classical identity); enumerating permutations is
/// kept for faithfulness to the `Perm-Shapley` baseline and for testing the
/// identity itself. Only feasible for tiny `n` — the paper reports the same
/// blow-up (Table IV: 6.8·10⁹ s at `n = 10`).
pub fn exact_perm_sv<U: Utility + ?Sized>(u: &U) -> Vec<f64> {
    let n = u.n_clients();
    assert!(n >= 1);
    assert!(n <= 10, "n! permutations; n > 10 is infeasible");
    let mut phi = vec![0.0; n];
    let mut perm: Vec<usize> = (0..n).collect();
    let mut count = 0u64;
    permute(&mut perm, 0, &mut |p| {
        count += 1;
        let mut prefix = Coalition::empty();
        let mut u_prev = u.eval(prefix);
        for &i in p {
            prefix = prefix.with(i);
            let u_cur = u.eval(prefix);
            phi[i] += u_cur - u_prev;
            u_prev = u_cur;
        }
    });
    let inv = 1.0 / count as f64;
    for v in &mut phi {
        *v *= inv;
    }
    phi
}

/// Heap-style recursive permutation visitor.
fn permute(items: &mut [usize], k: usize, visit: &mut impl FnMut(&[usize])) {
    if k == items.len() {
        visit(items);
        return;
    }
    for i in k..items.len() {
        items.swap(k, i);
        permute(items, k + 1, visit);
        items.swap(k, i);
    }
}

/// Number of distinct utility evaluations exact Perm-SV *would* require if
/// models could not be cached across permutations: `n! · (n + 1)` prefix
/// evaluations. Used to report the paper's extrapolated `Perm-Shapley`
/// times for large `n` (Table IV / Table V).
pub fn perm_sv_naive_evaluations(n: usize) -> f64 {
    let mut fact = 1.0f64;
    for i in 2..=n {
        fact *= i as f64;
    }
    fact * (n as f64 + 1.0)
}

#[cfg(test)]
// Tests assert invariants; an unwrap that trips IS the test failing.
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::utility::{AdditiveUtility, HashUtility, TableUtility};

    fn assert_close(a: &[f64], b: &[f64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < tol, "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn paper_example_1_values() {
        // Example 1: ϕ1 = 0.22, ϕ2 ≈ 0.32, ϕ3 = 0.32.
        let u = TableUtility::paper_table1();
        let phi = exact_mc_sv(&u);
        assert!((phi[0] - 0.22).abs() < 1e-12, "ϕ1 = {}", phi[0]);
        assert!((phi[1] - 0.32).abs() < 0.005, "ϕ2 = {}", phi[1]);
        assert!((phi[2] - 0.32).abs() < 0.005, "ϕ3 = {}", phi[2]);
    }

    #[test]
    fn mc_cc_perm_agree() {
        for seed in 0..5u64 {
            for n in 1..=6usize {
                let u = HashUtility { n, seed };
                let mc = exact_mc_sv(&u);
                let cc = exact_cc_sv(&u);
                let perm = exact_perm_sv(&u);
                assert_close(&mc, &cc, 1e-10);
                assert_close(&mc, &perm, 1e-10);
            }
        }
    }

    #[test]
    fn additive_recovers_weights() {
        let w = vec![0.3, -0.1, 0.7, 0.05];
        let u = AdditiveUtility::new(0.2, w.clone());
        assert_close(&exact_mc_sv(&u), &w, 1e-12);
        assert_close(&exact_cc_sv(&u), &w, 1e-12);
        assert_close(&exact_perm_sv(&u), &w, 1e-12);
    }

    #[test]
    fn efficiency_axiom() {
        // Σ ϕ_i = U(N) − U(∅).
        for n in 2..=7usize {
            let u = HashUtility { n, seed: 99 };
            let phi = exact_mc_sv(&u);
            let total: f64 = phi.iter().sum();
            let expected = u.eval(Coalition::full(n)) - u.eval(Coalition::empty());
            assert!((total - expected).abs() < 1e-10);
        }
    }

    #[test]
    fn null_player_axiom() {
        // A client whose marginal is always zero gets value zero (Eq. 1).
        let u = AdditiveUtility::new(0.1, vec![0.5, 0.0, 0.2]);
        let phi = exact_mc_sv(&u);
        assert!(phi[1].abs() < 1e-12);
    }

    #[test]
    fn symmetry_axiom() {
        // Interchangeable clients get equal value (Eq. 2).
        let u = TableUtility::from_fn(4, |s| {
            // Utility depends only on |S| → all clients symmetric.
            (s.size() as f64).sqrt()
        });
        let phi = exact_mc_sv(&u);
        for w in phi.windows(2) {
            assert!((w[0] - w[1]).abs() < 1e-12);
        }
    }

    #[test]
    fn single_client() {
        let u = TableUtility::new(1, vec![0.2, 0.9]);
        let phi = exact_mc_sv(&u);
        assert!((phi[0] - 0.7).abs() < 1e-12);
        assert_close(&phi, &exact_perm_sv(&u), 1e-12);
    }

    #[test]
    fn streaming_complete_run_is_bit_identical_to_legacy() {
        let u = HashUtility { n: 6, seed: 44 };
        let legacy = exact_mc_sv(&u);
        // Production chunk size (single batch) and a tiny chunk size
        // (nine batches) must both land on the legacy fold exactly.
        for batch_size in [EXACT_BATCH, 7] {
            let mut snapshots = Vec::new();
            let out = exact_mc_sv_streaming_with_batch(&u, batch_size, |s| {
                snapshots.push(s.clone());
                Control::Continue
            });
            assert_eq!(out.values, legacy, "batch_size={batch_size}");
            assert!(!out.stopped_early);
            // Full enumeration: the finite-population correction zeroes
            // every CI term.
            assert!(out.ci_halfwidths.iter().all(|&h| h == 0.0));
            for w in snapshots.windows(2) {
                assert!(w[0].samples_used < w[1].samples_used);
            }
            assert!(snapshots
                .iter()
                .all(|s| s.ci_halfwidths.iter().all(|h| !h.is_nan())));
        }
    }

    #[test]
    fn streaming_stopped_run_equals_full_run_prefix() {
        let u = HashUtility { n: 6, seed: 45 };
        let mut snapshots = Vec::new();
        let _ = exact_mc_sv_streaming_with_batch(&u, 10, |s| {
            snapshots.push(s.clone());
            Control::Continue
        });
        let out = exact_mc_sv_streaming_with_batch(&u, 10, |s| {
            if s.batches_done >= 3 {
                Control::Stop
            } else {
                Control::Continue
            }
        });
        assert!(out.stopped_early);
        assert_eq!(out.values, snapshots[2].values);
        assert_eq!(out.samples_used, snapshots[2].samples_used);
        // The mid-sweep estimate is the service's partial fold.
        let prefix: Vec<(Coalition, f64)> = (0..out.samples_used)
            .map(|m| (Coalition(m as u128), u.eval(Coalition(m as u128))))
            .collect();
        assert_eq!(out.values, crate::service::partial_prefix_fold(6, &prefix));
    }

    #[test]
    fn naive_evaluation_count() {
        assert_eq!(perm_sv_naive_evaluations(3), 24.0); // 3! · 4
        assert!(perm_sv_naive_evaluations(10) > 3.9e7);
    }

    #[test]
    fn exact_passes_evaluate_each_coalition_once_even_uncached() {
        // The batched sweep must touch every coalition exactly once —
        // without requiring a CachedUtility wrapper (the historical serial
        // code re-evaluated `T\{i}` for every member of every `T`).
        use std::sync::atomic::{AtomicUsize, Ordering};
        struct Counting {
            inner: HashUtility,
            calls: AtomicUsize,
        }
        impl crate::utility::Utility for Counting {
            fn n_clients(&self) -> usize {
                self.inner.n
            }
            fn eval(&self, s: Coalition) -> f64 {
                self.calls.fetch_add(1, Ordering::Relaxed);
                self.inner.eval(s)
            }
        }
        let u = Counting {
            inner: HashUtility { n: 8, seed: 77 },
            calls: AtomicUsize::new(0),
        };
        let mc = exact_mc_sv(&u);
        assert_eq!(u.calls.load(Ordering::Relaxed), 1 << 8);
        let cc = exact_cc_sv(&u);
        assert_eq!(u.calls.load(Ordering::Relaxed), 2 << 8);
        // And the values still agree with each other (SV identity).
        for (a, b) in mc.iter().zip(&cc) {
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn batched_sweep_matches_cached_serial_reference() {
        // Reference fold identical to the pre-batching implementation.
        fn reference<U: crate::utility::Utility>(u: &U) -> Vec<f64> {
            let n = u.n_clients();
            let mut phi = vec![0.0; n];
            let inv_n = 1.0 / n as f64;
            let inv_binom: Vec<f64> = (0..n)
                .map(|s| 1.0 / crate::coalition::binom(n - 1, s))
                .collect();
            for t in crate::coalition::all_subsets(n) {
                if t.is_empty() {
                    continue;
                }
                let ut = u.eval(t);
                let w = inv_n * inv_binom[t.size() - 1];
                for i in t.members() {
                    phi[i] += (ut - u.eval(t.without(i))) * w;
                }
            }
            phi
        }
        for n in 1..=9usize {
            let u = HashUtility { n, seed: 3 };
            assert_eq!(exact_mc_sv(&u), reference(&u), "n = {n}");
        }
    }
}
