//! The trajectory cache must be invisible in every value: cached and
//! uncached sweeps are bit-identical under both linalg backends, both FL
//! algorithms and partial participation — while the cache provably removes
//! the cross-block re-training an exhaustive sweep used to pay (one
//! round-0 local training per client per *sweep*, not per lane block).

// Driver code: test assertions panic by design, so unwrap/expect are
// the failure mechanism, not a robustness gap.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;

use fedval_core::coalition::{all_subsets, Coalition};
use fedval_core::utility::{ParallelUtility, Utility};
use fedval_data::{Dataset, MnistLike, SyntheticSetup};
use fedval_fl::{FedAvgConfig, FlAlgorithm, FlUtility, ModelSpec, TrajectoryCache};
use fedval_nn::Backend;

fn federated_problem(n_clients: usize) -> (Vec<Dataset>, Dataset) {
    let gen = MnistLike::new(501);
    let (train, test) = gen.generate_split(24 * n_clients, 60, 502);
    let mut rng = StdRng::seed_from_u64(503);
    let clients = SyntheticSetup::SameSizeSameDist.partition(&train, n_clients, &mut rng);
    (clients, test)
}

fn utility(cfg: FedAvgConfig, n: usize) -> FlUtility {
    let (clients, test) = federated_problem(n);
    FlUtility::new(clients, test, ModelSpec::default_mlp(), cfg)
}

/// Cached sweeps must reproduce the solo reference values bit-for-bit in
/// every configuration corner: both backends, FedAvg and FedProx, full and
/// partial participation.
#[test]
fn cached_sweeps_bit_identical_to_solo_under_all_configs() {
    let n = 4;
    let coalitions: Vec<Coalition> = all_subsets(n).collect();
    for backend in [Backend::Reference, Backend::Simd] {
        for algorithm in [FlAlgorithm::FedAvg, FlAlgorithm::FedProx { mu: 0.3 }] {
            for participation in [1.0f32, 0.5] {
                let cfg = FedAvgConfig {
                    rounds: 2,
                    local_epochs: 1,
                    seed: 601,
                    backend,
                    algorithm,
                    participation,
                    ..Default::default()
                };
                // Solo reference: FlUtility::eval never touches any cache.
                let u = utility(cfg, n).with_lane_block(3);
                let reference: Vec<f64> = coalitions.iter().map(|&s| u.eval(s)).collect();
                // Trajectory cache off.
                let off = utility(
                    FedAvgConfig {
                        traj_cache: false,
                        ..cfg
                    },
                    n,
                )
                .with_lane_block(3);
                assert_eq!(
                    off.eval_batch(&coalitions),
                    reference,
                    "uncached {backend:?} {algorithm:?} p={participation}"
                );
                // Per-call trajectory cache (the default).
                let per_call = utility(
                    FedAvgConfig {
                        traj_cache: true,
                        ..cfg
                    },
                    n,
                )
                .with_lane_block(3);
                assert_eq!(
                    per_call.eval_batch(&coalitions),
                    reference,
                    "per-call cache {backend:?} {algorithm:?} p={participation}"
                );
                // Shared handle, replayed twice (second pass is all hits).
                let cache = Arc::new(TrajectoryCache::new());
                let shared = utility(cfg, n)
                    .with_lane_block(3)
                    .with_traj_cache(Arc::clone(&cache));
                assert_eq!(shared.eval_batch(&coalitions), reference);
                let trainings = cache.stats().local_trainings;
                assert!(trainings > 0);
                assert_eq!(
                    shared.eval_batch(&coalitions),
                    reference,
                    "replay {backend:?} {algorithm:?} p={participation}"
                );
                assert_eq!(
                    cache.stats().local_trainings,
                    trainings,
                    "a replayed sweep must train nothing new"
                );
            }
        }
    }
}

/// The tentpole accounting claim: an exact-SV sweep pays round-0 local
/// training once per client per *sweep* with the cache, versus once per
/// client per lane block without it.
#[test]
fn exact_sv_sweep_pays_round0_once_per_client() {
    let n = 5;
    let cfg = FedAvgConfig {
        rounds: 2,
        local_epochs: 1,
        seed: 611,
        ..Default::default()
    };
    let coalitions: Vec<Coalition> = all_subsets(n).collect();
    // Counting-only baseline: identical training path, no hits.
    let baseline = Arc::new(TrajectoryCache::counting_only());
    let u = utility(cfg, n)
        .with_lane_block(4)
        .with_traj_cache(Arc::clone(&baseline));
    let expected = u.eval_batch(&coalitions);
    // Cached sweep over the same blocks.
    let cache = Arc::new(TrajectoryCache::new());
    let u = utility(cfg, n)
        .with_lane_block(4)
        .with_traj_cache(Arc::clone(&cache));
    assert_eq!(u.eval_batch(&coalitions), expected);

    let uncached = baseline.stats();
    let cached = cache.stats();
    assert_eq!(
        cached.round0_trainings, n,
        "cross-block cache must pay round 0 exactly once per client"
    );
    assert!(
        uncached.round0_trainings > n,
        "the uncached sweep re-pays round 0 per block ({} trainings)",
        uncached.round0_trainings
    );
    assert!(
        cached.local_trainings < uncached.local_trainings,
        "cache must reduce total local trainings ({} vs {})",
        cached.local_trainings,
        uncached.local_trainings
    );
    assert!(cached.hits > 0);
    assert_eq!(cached.probes, uncached.probes, "same grouping either way");
}

/// A shared cache handle must stay bit-transparent under the full
/// cache→parallel→lock-step stack: ParallelUtility splits batches into
/// sub-batches (separate `eval_batch` calls), and the shared handle is
/// what carries trajectories across them and across threads.
#[test]
fn shared_cache_is_bit_transparent_under_parallel_fanout() {
    let n = 4;
    let cfg = FedAvgConfig {
        rounds: 2,
        local_epochs: 1,
        seed: 621,
        ..Default::default()
    };
    let coalitions: Vec<Coalition> = all_subsets(n).collect();
    let reference: Vec<f64> = {
        let u = utility(cfg, n);
        coalitions.iter().map(|&s| u.eval(s)).collect()
    };
    for threads in [1usize, 2, 4] {
        let cache = Arc::new(TrajectoryCache::new());
        let par = ParallelUtility::with_num_threads(
            utility(cfg, n).with_traj_cache(Arc::clone(&cache)),
            threads,
        );
        assert_eq!(par.eval_batch(&coalitions), reference, "threads={threads}");
        assert!(cache.stats().local_trainings > 0);
    }
}

/// Single-coalition batches ride the lock-step path when a cache is live,
/// so even degenerate batch shapes share and fill the run's cache —
/// bit-identically to the solo reference.
#[test]
fn single_coalition_batches_use_and_fill_the_shared_cache() {
    let n = 4;
    let cfg = FedAvgConfig {
        rounds: 2,
        local_epochs: 1,
        seed: 631,
        ..Default::default()
    };
    let s = Coalition::from_members([0, 2]);
    let reference = utility(cfg, n).eval(s);
    let cache = Arc::new(TrajectoryCache::new());
    let u = utility(cfg, n).with_traj_cache(Arc::clone(&cache));
    assert_eq!(u.eval_batch(&[s]), vec![reference]);
    let first = cache.stats().local_trainings;
    assert!(first > 0, "the single-lane batch must fill the cache");
    assert_eq!(u.eval_batch(&[s]), vec![reference]);
    assert_eq!(
        cache.stats().local_trainings,
        first,
        "the replay must be served entirely from the cache"
    );
}
