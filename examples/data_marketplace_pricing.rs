//! Data-marketplace pricing: cross-silo providers contribute tabular
//! datasets to a federated XGBoost-style model (the Table V setting) and
//! the platform splits a fixed reward pot proportionally to Shapley
//! value.
//!
//! One provider is a *free rider* with an empty dataset — the null-player
//! axiom (Eq. 1) demands it earns nothing, and IPSS respects that.
//!
//! Run with: `cargo run --release -p fedval-examples --bin data_marketplace_pricing`

// Demo driver: service errors surface by panicking with the message;
// a real integration would match on the typed ValuationError.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use fedval_core::prelude::*;
use fedval_data::{AdultLike, Dataset};
use fedval_fl::GbdtUtility;
use fedval_gbdt::GbdtParams;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let n = 5usize;
    let pot = 10_000.0f64; // reward pool in your favourite currency

    let gen = AdultLike::new(31);
    let mut fed = gen.generate_federated(n, 420 * (n - 1), 500, 6);
    // Provider 5 joins the federation but contributes no data.
    fed.clients[n - 1] = Dataset::empty(gen.n_features(), 2);

    let utility = GbdtUtility::new(
        fed.clients,
        fed.test,
        GbdtParams {
            n_trees: 12,
            ..Default::default()
        },
    );

    let exact_outcome = run_valuation(&utility, exact_mc_sv);
    let mut rng = StdRng::seed_from_u64(13);
    let ipss_outcome = run_valuation(&utility, |u| ipss_values(u, &IpssConfig::new(8), &mut rng));

    println!("provider   exact ϕ    IPSS ϕ̂    payout (IPSS)");
    let total: f64 = ipss_outcome.values.iter().map(|v| v.max(0.0)).sum();
    for i in 0..n {
        let payout = if total > 0.0 {
            pot * ipss_outcome.values[i].max(0.0) / total
        } else {
            0.0
        };
        println!(
            "  {}       {:+.4}    {:+.4}    {payout:>9.2}",
            i + 1,
            exact_outcome.values[i],
            ipss_outcome.values[i]
        );
    }

    // Null player: the free rider's exact value is ~0 and its payout small.
    println!(
        "\nfree rider exact ϕ = {:+.5} (null-player axiom)",
        exact_outcome.values[n - 1]
    );
    println!(
        "model trainings: exact {} vs IPSS {}",
        exact_outcome.model_evaluations, ipss_outcome.model_evaluations
    );
    println!(
        "IPSS vs exact: error = {:.4}, Kendall τ = {:.2}",
        l2_relative_error(&ipss_outcome.values, &exact_outcome.values),
        kendall_tau(&ipss_outcome.values, &exact_outcome.values)
    );
}
