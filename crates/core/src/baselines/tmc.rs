//! Extended-TMC: the Truncated Monte Carlo permutation sampler of Ghorbani
//! & Zou (Data Shapley, ICML'19), extended to FL exactly as in Sec. V-A:
//! sample random permutations of clients, walk each permutation training
//! the FL model on growing prefixes, and record each client's marginal
//! contribution (Eq. 20). Truncation skips the tail of a permutation once
//! the prefix utility is within `tolerance` of the grand-coalition utility
//! (further marginals are presumed negligible).
//!
//! Unlike the stratified estimators, TMC is *not* routed through
//! [`Utility::eval_batch`]: each step's truncation decision depends on the
//! utility of the previous prefix, so a permutation's evaluations form a
//! serial dependency chain. Wrap the utility in
//! [`crate::utility::CachedUtility`] to share prefix evaluations across
//! permutations instead.

use rand::Rng;

use crate::coalition::Coalition;
use crate::sampling::random_permutation;
use crate::utility::Utility;

/// Configuration for [`extended_tmc`].
#[derive(Clone, Debug)]
pub struct TmcConfig {
    /// Number of sampled permutations (the `γ` of Table III for this
    /// baseline — each permutation is one "sampling round").
    pub permutations: usize,
    /// Truncation tolerance: once `|U(N) − U(prefix)| < tolerance`, the
    /// remaining clients in the permutation receive zero marginal.
    pub tolerance: f64,
}

impl TmcConfig {
    pub fn new(permutations: usize) -> Self {
        TmcConfig {
            permutations,
            tolerance: 0.01,
        }
    }

    pub fn with_tolerance(mut self, tolerance: f64) -> Self {
        self.tolerance = tolerance;
        self
    }
}

/// Extended-TMC estimator: `ϕ̂_i = E_π[U(M_{π[:i]∪{i}}) − U(M_{π[:i]})]`.
pub fn extended_tmc<U: Utility + ?Sized, R: Rng + ?Sized>(
    u: &U,
    cfg: &TmcConfig,
    rng: &mut R,
) -> Vec<f64> {
    let n = u.n_clients();
    assert!(n >= 1);
    assert!(cfg.permutations >= 1);
    let u_full = u.eval(Coalition::full(n));
    let u_empty = u.eval(Coalition::empty());
    let mut phi = vec![0.0f64; n];
    for _ in 0..cfg.permutations {
        let perm = random_permutation(n, rng);
        let mut prefix = Coalition::empty();
        let mut u_prev = u_empty;
        for &i in &perm {
            if (u_full - u_prev).abs() < cfg.tolerance {
                // Truncated: the model has converged — remaining marginals
                // are recorded as zero (no evaluation spent).
                continue;
            }
            prefix = prefix.with(i);
            let u_cur = u.eval(prefix);
            phi[i] += u_cur - u_prev;
            u_prev = u_cur;
        }
    }
    let inv = 1.0 / cfg.permutations as f64;
    for v in &mut phi {
        *v *= inv;
    }
    phi
}

#[cfg(test)]
// Tests assert invariants; an unwrap that trips IS the test failing.
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::exact::exact_mc_sv;
    use crate::metrics::l2_relative_error;
    use crate::utility::{AdditiveUtility, CachedUtility, SaturatingUtility, TableUtility};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn additive_utility_is_recovered_exactly_per_permutation() {
        // Every permutation yields marginals exactly w_i, so even one
        // permutation is exact (with truncation off).
        let w = vec![0.2, 0.5, 0.3];
        let u = AdditiveUtility::new(0.0, w.clone());
        let cfg = TmcConfig::new(1).with_tolerance(0.0);
        let mut rng = StdRng::seed_from_u64(0);
        let phi = extended_tmc(&u, &cfg, &mut rng);
        for (p, e) in phi.iter().zip(&w) {
            assert!((p - e).abs() < 1e-12);
        }
    }

    #[test]
    fn converges_to_exact_sv() {
        let u = TableUtility::paper_table1();
        let exact = exact_mc_sv(&u);
        let cfg = TmcConfig::new(3000).with_tolerance(0.0);
        let mut rng = StdRng::seed_from_u64(1);
        let phi = extended_tmc(&u, &cfg, &mut rng);
        assert!(
            l2_relative_error(&phi, &exact) < 0.03,
            "{phi:?} vs {exact:?}"
        );
    }

    #[test]
    fn truncation_saves_evaluations_on_saturating_utility() {
        let sat = SaturatingUtility::uniform(10, 0.1, 0.85, 1.2);
        let with_trunc = CachedUtility::new(sat.clone());
        let without_trunc = CachedUtility::new(sat);
        let mut r1 = StdRng::seed_from_u64(3);
        let mut r2 = StdRng::seed_from_u64(3);
        let _ = extended_tmc(
            &with_trunc,
            &TmcConfig::new(20).with_tolerance(0.02),
            &mut r1,
        );
        let _ = extended_tmc(
            &without_trunc,
            &TmcConfig::new(20).with_tolerance(0.0),
            &mut r2,
        );
        assert!(
            with_trunc.stats().evaluations < without_trunc.stats().evaluations,
            "truncation must reduce distinct evaluations ({} vs {})",
            with_trunc.stats().evaluations,
            without_trunc.stats().evaluations
        );
    }

    #[test]
    fn efficiency_holds_in_expectation() {
        // Without truncation each permutation's marginals telescope to
        // U(N) − U(∅), so Σϕ̂ is exactly that for any sample.
        let u = TableUtility::paper_table1();
        let cfg = TmcConfig::new(7).with_tolerance(0.0);
        let mut rng = StdRng::seed_from_u64(5);
        let phi = extended_tmc(&u, &cfg, &mut rng);
        let total: f64 = phi.iter().sum();
        assert!((total - (0.96 - 0.10)).abs() < 1e-12);
    }
}
