//! Experiment configuration shared by every bench target.
//!
//! * `FEDVAL_QUICK=1` — shrink every experiment (fewer clients, reps and
//!   samples) for smoke runs;
//! * `FEDVAL_SEED=<u64>` — base seed (default 42).

/// Table III — the sampling rounds `γ` the paper pairs with each client
/// count: `n=3→5`, `n=6→8`, `n=10→32`; beyond that the scalability
/// experiments use `γ = n·ln n`.
pub fn gamma_for(n: usize) -> usize {
    match n {
        0..=3 => 5,
        4..=6 => 8,
        7..=10 => 32,
        _ => (n as f64 * (n as f64).ln()).round() as usize,
    }
}

/// True when `FEDVAL_QUICK=1` — benches then use a reduced
/// parameterisation.
pub fn quick() -> bool {
    std::env::var("FEDVAL_QUICK")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// The base seed for all experiment randomness (`FEDVAL_SEED`,
/// default 42).
pub fn base_seed() -> u64 {
    std::env::var("FEDVAL_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(42)
}

/// The machine's available parallelism (1 when undetectable).
pub fn machine_cores() -> usize {
    std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(1)
}

/// JSON fields fingerprinting the run's environment —
/// `available_parallelism()`, the `RAYON_NUM_THREADS` override (JSON
/// `null` when unset) and the resolved `FEDVAL_BACKEND` selection —
/// embedded in every `BENCH_*.json` tracking report so trajectories
/// recorded on different runners (and backends: timings *and* utility
/// values are backend-dependent) stay comparable.
pub fn parallelism_json_fields() -> String {
    let threads = match std::env::var("RAYON_NUM_THREADS") {
        Ok(v) => format!("\"{}\"", v.replace('\\', "\\\\").replace('"', "\\\"")),
        Err(_) => "null".to_string(),
    };
    format!(
        "\"machine_cores\": {},\n  \"rayon_num_threads\": {threads},\n  \"fedval_backend\": \"{}\"",
        machine_cores(),
        fedval_nn::Backend::default().name()
    )
}

/// Client counts for the end-to-end tables (Table IV / Table V).
pub fn table_client_counts() -> Vec<usize> {
    if quick() {
        vec![3, 6]
    } else {
        vec![3, 6, 10]
    }
}

/// Per-client training-set size used by the neural experiments.
///
/// Sized so that a single client's data already trains the model close to
/// its plateau — the cross-silo regime of the paper's experiments, where
/// data-rich providers make marginal utility saturate quickly (the key
/// combinations phenomenon).
pub fn samples_per_client() -> usize {
    if quick() {
        60
    } else {
        100
    }
}

/// Test-set size used by the neural experiments. Sized so that the
/// binomial noise of accuracy estimates (≈ √(p(1−p)/N)) sits well below
/// the per-stratum marginal utilities the valuation integrates.
pub fn test_samples() -> usize {
    if quick() {
        250
    } else {
        500
    }
}

#[cfg(test)]
// Tests assert invariants; an unwrap that trips IS the test failing.
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn table3_budgets() {
        assert_eq!(gamma_for(3), 5);
        assert_eq!(gamma_for(6), 8);
        assert_eq!(gamma_for(10), 32);
        // Scalability: γ = n·ln n.
        assert_eq!(gamma_for(100), 461);
        assert!(gamma_for(20) >= 59 && gamma_for(20) <= 61);
    }
}
