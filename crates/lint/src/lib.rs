//! `fedval-lint` — the workspace's determinism static-analysis pass.
//!
//! Every estimator in this repository stakes its value on three
//! bit-identity contracts (ARCHITECTURE.md): results are bit-identical
//! across thread counts, linalg backends/caches, and service coalescing.
//! The equivalence suites enforce those contracts *dynamically* — a
//! violation is caught only if a test seed happens to exercise it. This
//! crate enforces the source-level preconditions *statically*: no
//! order-sensitive hash iteration in estimator code, no wall-clock reads
//! outside the timing whitelist, no RNG that does not flow from an
//! explicit seed, and no unexplained `#[allow(...)]` escape hatches.
//!
//! The scanner is dependency-free by construction (the build container
//! has no registry access): a hand-rolled lexer strips comments and
//! string literals (keeping line positions), a flat token scan
//! recognises the method chains and attribute spans the rules need, and
//! `#[cfg(test)]` item spans are skipped. See [`rules`] for the rule
//! catalog and the annotation grammar
//! (`// lint:order-insensitive(<reason>)`, `// lint:wall-clock(<reason>)`,
//! `// lint:seeded(<reason>)`).
//!
//! ```
//! use fedval_lint::scan_source;
//!
//! let findings = scan_source(
//!     "crates/core/src/demo.rs",
//!     "fn f(m: &std::collections::HashMap<u32, f64>) -> f64 {\n\
//!          m.values().sum()\n\
//!      }\n",
//! );
//! assert_eq!(findings.len(), 1);
//! assert_eq!(findings[0].rule.id(), "hash-order");
//! ```

pub mod lexer;
pub mod rules;

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

pub use rules::{classify, scan_source, FileClass, Finding, Rule};

/// The annotation grammar, printed when findings fail a run — one line
/// per annotation kind. Kept here so the CLI and the CI job's failure
/// output stay in sync with the rules.
pub const ANNOTATION_GRAMMAR: &str = "\
Annotation grammar (trailing comment on the site line, or in the comment
block directly above; the reason inside the parentheses is mandatory):
  // lint:order-insensitive(<reason>)  hash iteration whose fold provably
                                       commutes (e.g. integer counters)
  // lint:wall-clock(<reason>)         timing gauge that never feeds a value
  // lint:seeded(<reason>)             RNG argument that is a seed by
                                       construction despite its name
Rules and contracts: ARCHITECTURE.md \u{00a7} Static guarantees.";

/// Scan every first-party Rust source under `root` (the workspace
/// checkout): `crates/`, `tests/`, `examples/`. `shims/` (vendored
/// third-party stand-ins), `target/` and lint fixtures are skipped.
/// Findings come back sorted by path and line.
pub fn scan_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    let mut files: Vec<PathBuf> = Vec::new();
    for top in ["crates", "tests", "examples"] {
        let dir = root.join(top);
        if dir.is_dir() {
            collect_rs_files(&dir, &mut files)?;
        }
    }
    files.sort();
    let mut findings = Vec::new();
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        if classify(&rel).is_none() {
            continue;
        }
        let source = fs::read_to_string(&path)?;
        findings.extend(scan_source(&rel, &source));
    }
    findings.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(findings)
}

/// Recursively collect `.rs` files, skipping `target/`, `fixtures/` and
/// hidden directories.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == "fixtures" || name.starts_with('.') {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Locate the workspace root by walking up from `start` to the first
/// directory holding a `Cargo.toml` that declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}
