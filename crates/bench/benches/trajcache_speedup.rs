//! trajcache_speedup — tracks what the cross-block trajectory cache
//! removes from the dominant valuation workload: an exact SV sweep (all
//! `2^n` FedAvg train+evaluate cycles) over an FL-backed utility,
//! evaluated through lock-step lane blocks.
//!
//! Two runs of the same sweep, both through `FlUtility::eval_batch` with
//! lane blocks of `B`:
//!
//! * **uncached** — a counting-only `TrajectoryCache` handle: the training
//!   path is unchanged (every block re-pays its round-0 local trainings),
//!   but every local training is counted;
//! * **cached** — a live shared cache: local trainings bit-equal across
//!   blocks are paid once per sweep (all of round 0 collapses to one
//!   training per client) and replayed everywhere else.
//!
//! The two runs must produce **bit-identical** utility values — the
//! determinism contract — and the measured local-training counts must
//! drop by at least the round-0 dedup (uncached round-0 trainings collapse
//! to one per client). Counts, timings and the dedup factor go to
//! `BENCH_trajcache.json` at the workspace root, stamped with
//! `machine_cores`/`rayon_num_threads`/backend like every tracking report.
//!
//! Knobs: `FEDVAL_TRAJ_N=<clients>` (default 8; `FEDVAL_QUICK=1` drops to
//! 5), `FEDVAL_TRAJ_B=<lanes>` (default 8), `FEDVAL_TRAJ_JSON=<path>` to
//! redirect the report.

// Bench driver: measurement harness code panics on setup failure by
// design; unwrap/expect are the error mechanism here.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::io::Write as _;
use std::sync::Arc;
use std::time::Instant;

use fedval_bench::quick;
use fedval_core::coalition::Coalition;
use fedval_core::utility::{TrajCacheStats, Utility};
use fedval_data::{MnistLike, SyntheticSetup};
use fedval_fl::{FedAvgConfig, FlUtility, ModelSpec, TrajectoryCache};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn n_clients() -> usize {
    if let Ok(v) = std::env::var("FEDVAL_TRAJ_N") {
        return v.parse().expect("FEDVAL_TRAJ_N must be a client count");
    }
    if quick() {
        5
    } else {
        8
    }
}

fn lane_block() -> usize {
    std::env::var("FEDVAL_TRAJ_B")
        .map(|v| v.parse().expect("FEDVAL_TRAJ_B must be a lane count"))
        .unwrap_or(8)
}

fn fl_utility(n: usize, lane_block: usize, cache: Arc<TrajectoryCache>) -> FlUtility {
    let gen = MnistLike::new(0x7C0);
    let (train, test) = gen.generate_split(24 * n, 96, 0x7C1);
    let mut rng = StdRng::seed_from_u64(0x7C2);
    let clients = SyntheticSetup::SameSizeSameDist.partition(&train, n, &mut rng);
    FlUtility::new(
        clients,
        test,
        ModelSpec::default_mlp(),
        FedAvgConfig {
            rounds: 2,
            local_epochs: 2,
            batch_size: 16,
            lr: 0.15,
            seed: 0x7C3,
            ..Default::default()
        },
    )
    .with_lane_block(lane_block)
    .with_traj_cache(cache)
}

struct Run {
    secs: f64,
    values: Vec<f64>,
    stats: TrajCacheStats,
}

/// Repetitions per path; the fastest is kept (min-time benchmarking). A
/// fresh cache per rep so stats describe exactly one sweep.
const REPS: usize = 3;

fn sweep(n: usize, b: usize, coalitions: &[Coalition], cached: bool) -> Run {
    let mut best: Option<Run> = None;
    for _ in 0..REPS {
        let cache = Arc::new(if cached {
            TrajectoryCache::new()
        } else {
            TrajectoryCache::counting_only()
        });
        let u = fl_utility(n, b, Arc::clone(&cache));
        let start = Instant::now();
        let values = u.eval_batch(coalitions);
        let secs = start.elapsed().as_secs_f64();
        let stats = cache.stats();
        if let Some(prev) = &best {
            assert_eq!(values, prev.values, "non-deterministic sweep");
            assert_eq!(stats, prev.stats, "non-deterministic training counts");
            if secs < prev.secs {
                best = Some(Run {
                    secs,
                    values,
                    stats,
                });
            }
        } else {
            best = Some(Run {
                secs,
                values,
                stats,
            });
        }
    }
    best.expect("at least one rep")
}

fn main() {
    let n = n_clients();
    let b = lane_block();
    let coalitions: Vec<Coalition> = fedval_core::coalition::all_subsets(n).collect();
    let blocks = coalitions.len().div_ceil(b);
    println!(
        "trajcache_speedup: n = {n} clients, {} coalitions, lane block B = {b} ({blocks} blocks)",
        coalitions.len()
    );

    let uncached = sweep(n, b, &coalitions, false);
    println!(
        "uncached {:8.3}s  {} local trainings ({} in round 0)",
        uncached.secs, uncached.stats.local_trainings, uncached.stats.round0_trainings
    );
    let cached = sweep(n, b, &coalitions, true);
    println!(
        "cached   {:8.3}s  {} local trainings ({} in round 0, {} hits)",
        cached.secs, cached.stats.local_trainings, cached.stats.round0_trainings, cached.stats.hits
    );

    let identical = uncached.values == cached.values;
    let speedup = uncached.secs / cached.secs;
    let round0_dedup =
        uncached.stats.round0_trainings as f64 / cached.stats.round0_trainings as f64;
    let trainings_saved = uncached.stats.local_trainings - cached.stats.local_trainings;
    println!(
        "speedup: {speedup:.2}x  trainings saved: {trainings_saved}  \
         round-0 dedup: {round0_dedup:.2}x  values bit-identical: {identical}"
    );
    assert!(identical, "cached values diverged from uncached values");
    assert_eq!(
        cached.stats.round0_trainings, n,
        "round 0 must cost exactly one local training per client per sweep"
    );
    assert!(
        trainings_saved >= uncached.stats.round0_trainings - n,
        "savings must cover at least the round-0 dedup"
    );

    let path = std::env::var("FEDVAL_TRAJ_JSON")
        .unwrap_or_else(|_| format!("{}/../../BENCH_trajcache.json", env!("CARGO_MANIFEST_DIR")));
    let report = format!(
        "{{\n  \"bench\": \"trajcache_speedup\",\n  \"scenario\": \"exact SV sweep over FL-backed utility (synthetic MNIST, FedAvg {} rounds x {} epochs), cross-block trajectory cache vs counting-only baseline, lane blocks of B\",\n  \"n_clients\": {n},\n  \"coalitions\": {},\n  \"lane_block\": {b},\n  \"lane_blocks_total\": {blocks},\n  {},\n  \"uncached\": {{\"seconds\": {:.6}, \"local_trainings\": {}, \"round0_trainings\": {}, \"probes\": {}, \"hits\": {}}},\n  \"cached\": {{\"seconds\": {:.6}, \"local_trainings\": {}, \"round0_trainings\": {}, \"probes\": {}, \"hits\": {}}},\n  \"speedup\": {:.4},\n  \"local_trainings_saved\": {trainings_saved},\n  \"round0_dedup_factor\": {round0_dedup:.4},\n  \"values_bit_identical\": {identical}\n}}\n",
        2,
        2,
        coalitions.len(),
        fedval_bench::parallelism_json_fields(),
        uncached.secs,
        uncached.stats.local_trainings,
        uncached.stats.round0_trainings,
        uncached.stats.probes,
        uncached.stats.hits,
        cached.secs,
        cached.stats.local_trainings,
        cached.stats.round0_trainings,
        cached.stats.probes,
        cached.stats.hits,
        speedup,
    );
    let mut file = std::fs::File::create(&path).expect("create BENCH_trajcache.json");
    file.write_all(report.as_bytes())
        .expect("write BENCH_trajcache.json");
    println!("wrote {path}");
}
