//! Fig. 6(a–e) — the five synthetic-MNIST setups of Sec. V-B with ten FL
//! clients: time cost and approximation error for the compared
//! algorithms, under both MLP and CNN models.
//!
//! Paper shape per setup: OR and IPSS are the fastest; IPSS's error is the
//! lowest; λ-MR ranks second in accuracy on (c); Extended-TMC /
//! Extended-GTB errors are an order of magnitude above IPSS on the
//! noisy-label setup.
//!
//! Time accounting: sampling/exact methods are costed under the τ model of
//! Sec. IV-C — `time = Σ_{S evaluated} τ̂(|S|)` with per-size τ̂ measured
//! while building the ground truth — so all five setups × two models run
//! in minutes without re-training coalitions per algorithm. Gradient-based
//! methods are wall-clock timed (their cost is one FL training).

// Bench driver: measurement harness code panics on setup failure by
// design; unwrap/expect are the error mechanism here.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use fedval_bench::runner::{RecordingUtility, TauModel};
use fedval_bench::{
    base_seed, fmt_err, fmt_secs, gamma_for, mnist_synthetic, quick, run_neural, Algorithm,
    NeuralModel, Table,
};
use fedval_core::baselines::{cc_shapley, extended_gtb_values, extended_tmc};
use fedval_core::baselines::{CcShapConfig, GtbConfig, TmcConfig};
use fedval_core::exact::exact_mc_sv;
use fedval_core::ipss::{ipss_values, IpssConfig};
use fedval_core::metrics::l2_relative_error;
use fedval_core::utility::CachedUtility;
use fedval_data::SyntheticSetup;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let seed = base_seed();
    let n = if quick() { 6 } else { 10 };
    let gamma = gamma_for(n);
    let setups = [
        SyntheticSetup::SameSizeSameDist,
        SyntheticSetup::SameSizeDiffDist {
            majority_fraction: 0.5,
        },
        SyntheticSetup::DiffSizeSameDist,
        SyntheticSetup::SameSizeNoisyLabel { max_rate: 0.2 },
        SyntheticSetup::SameSizeNoisyFeature { max_scale: 0.2 },
    ];
    let models = if quick() {
        vec![NeuralModel::Mlp]
    } else {
        vec![NeuralModel::Mlp, NeuralModel::Cnn]
    };
    for model in &models {
        for setup in &setups {
            let problem = mnist_synthetic(*setup, n, *model, seed);
            let warm = CachedUtility::new(problem.utility());
            let tau = TauModel::measure_full(&warm, n);
            let exact = exact_mc_sv(&warm);
            let mut table = Table::new(["Algorithm", "Time(s)", "Error(l2)"]);
            let mut best: Option<(&str, f64)> = None;
            for alg in Algorithm::ALL {
                if alg.is_exact() {
                    continue; // Fig. 6 compares the approximations
                }
                let (time, values) = if alg.is_gradient_based() {
                    let r = run_neural(alg, &problem, gamma, seed ^ 0x6F16);
                    (r.seconds(), r.values)
                } else {
                    let recorder = RecordingUtility::new(&warm);
                    let mut rng = StdRng::seed_from_u64(seed ^ 0x6F17);
                    let values = match alg {
                        Algorithm::ExtTmc => {
                            extended_tmc(&recorder, &TmcConfig::new(gamma), &mut rng)
                        }
                        Algorithm::ExtGtb => {
                            extended_gtb_values(&recorder, &GtbConfig::new(gamma), &mut rng)
                        }
                        Algorithm::CcShapley => {
                            cc_shapley(&recorder, &CcShapConfig::new(gamma), &mut rng)
                        }
                        Algorithm::Ipss => {
                            ipss_values(&recorder, &IpssConfig::new(gamma), &mut rng)
                        }
                        _ => unreachable!(),
                    };
                    let evaluated = recorder.recorded();
                    (tau.cost_of(evaluated.iter()), values)
                };
                let err = l2_relative_error(&values, &exact);
                if best.is_none_or(|(_, e)| err < e) {
                    best = Some((alg.name(), err));
                }
                table.row([alg.name().to_string(), fmt_secs(time), fmt_err(Some(err))]);
            }
            table.print(&format!(
                "Fig. 6 ({}) — {} model, n = {n}, γ = {gamma}, τ̄ = {:.0} ms",
                setup.label(),
                model.name(),
                tau.mean_tau() * 1e3
            ));
            if let Some((name, err)) = best {
                println!("Lowest error: {name} ({err:.4})");
            }
        }
    }
}
