// Fixture: RNG construction that does not flow from an explicit seed —
// all three sites must trip `unseeded-rng`.
use rand::rngs::StdRng;
use rand::SeedableRng;

pub fn entropy_seeded() -> StdRng {
    // Nondeterministic constructor: banned everywhere, no annotation.
    StdRng::from_entropy()
}

pub fn thread_local_rng() -> f64 {
    let mut rng = rand::thread_rng();
    rand::Rng::random(&mut rng)
}

pub fn magic_number(run_index: u64) -> StdRng {
    // Seeding constructor, but nothing in the argument names a seed.
    StdRng::seed_from_u64(run_index.wrapping_mul(31))
}
