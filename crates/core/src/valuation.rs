//! Uniform result type and timing helper shared by the experiment harness
//! and the examples.

use std::time::{Duration, Instant};

use crate::utility::{CachedUtility, EvalStats, Utility};

/// The outcome of running one valuation algorithm against one utility.
#[derive(Clone, Debug)]
pub struct ValuationOutcome {
    /// Estimated (or exact) data values `ϕ_1..ϕ_n`.
    pub values: Vec<f64>,
    /// Distinct model train+evaluate cycles consumed.
    pub model_evaluations: usize,
    /// Wall-clock time of the whole run (sampling + training + estimation),
    /// the paper's *Calculation Time* metric.
    pub wall_time: Duration,
    /// Wall-clock time spent purely inside utility evaluation.
    pub utility_time: Duration,
}

impl ValuationOutcome {
    /// Fraction of total value assigned to client `i` (handy for payout
    /// examples); `None` when the total is not positive.
    pub fn share(&self, i: usize) -> Option<f64> {
        let total: f64 = self.values.iter().sum();
        (total > 0.0).then(|| self.values[i] / total)
    }
}

/// Run `algo` against a fresh cache around `utility`, measuring wall time
/// and distinct evaluations.
///
/// Each invocation uses its own [`CachedUtility`] so algorithms are charged
/// for every distinct coalition they touch, matching the paper's accounting
/// where the dominant cost `τ` is FL training per combination.
pub fn run_valuation<U, F>(utility: U, algo: F) -> ValuationOutcome
where
    U: Utility,
    F: FnOnce(&CachedUtility<U>) -> Vec<f64>,
{
    let cached = CachedUtility::new(utility);
    // lint:wall-clock(ValuationOutcome::wall_time is a reported metric
    // only; the values themselves never depend on it)
    #[allow(clippy::disallowed_methods)]
    let start = Instant::now();
    let values = algo(&cached);
    let wall_time = start.elapsed();
    let EvalStats {
        evaluations,
        eval_time,
        ..
    } = cached.stats();
    ValuationOutcome {
        values,
        model_evaluations: evaluations,
        wall_time,
        utility_time: eval_time,
    }
}

#[cfg(test)]
// Tests assert invariants; an unwrap that trips IS the test failing.
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::exact::exact_mc_sv;
    use crate::utility::TableUtility;

    #[test]
    fn run_valuation_measures_evaluations() {
        let out = run_valuation(TableUtility::paper_table1(), exact_mc_sv);
        assert_eq!(out.model_evaluations, 8, "exact SV touches all 2^3 subsets");
        assert_eq!(out.values.len(), 3);
        assert!(out.wall_time >= out.utility_time);
    }

    #[test]
    fn shares_sum_to_one() {
        let out = run_valuation(TableUtility::paper_table1(), exact_mc_sv);
        let total: f64 = (0..3).map(|i| out.share(i).unwrap()).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn share_none_for_nonpositive_total() {
        let out = ValuationOutcome {
            values: vec![-1.0, 0.5],
            model_evaluations: 0,
            wall_time: Duration::ZERO,
            utility_time: Duration::ZERO,
        };
        assert!(out.share(0).is_none());
    }
}
