//! Extended-GTB: the Group-Testing-Based SV estimator of Jia et al.
//! (AISTATS'19), extended to FL as in Sec. V-A.
//!
//! GTB samples coalitions from a carefully skewed size distribution, uses
//! the indicator pattern of each sample to estimate all pairwise value
//! differences `ϕ_i − ϕ_j` simultaneously, and then recovers a valuation
//! consistent with those differences and the efficiency constraint
//! `Σ_i ϕ_i = U(N) − U(∅)`.
//!
//! The recovery step in the original is a feasibility program whose
//! constraints are relaxed until satisfiable (as the paper describes). We
//! solve the equivalent least-squares projection in closed form — the
//! minimum-norm solution consistent with the measured differences — and
//! then report the smallest constraint slack `ε` it satisfies, mirroring
//! the incremental-relaxation loop (substitution documented in DESIGN.md).

use rand::Rng;

use crate::coalition::Coalition;
use crate::sampling::random_subset_of_size;
use crate::utility::Utility;

/// Configuration for [`extended_gtb`].
#[derive(Clone, Debug)]
pub struct GtbConfig {
    /// Number of sampled coalitions (the `γ` for this baseline).
    pub samples: usize,
}

impl GtbConfig {
    pub fn new(samples: usize) -> Self {
        GtbConfig { samples }
    }
}

/// Outcome of the GTB estimator with diagnostic information.
#[derive(Clone, Debug)]
pub struct GtbOutcome {
    /// Estimated data values.
    pub values: Vec<f64>,
    /// The smallest uniform slack `ε` such that every pairwise-difference
    /// constraint `|ϕ_i − ϕ_j − Δ̂_{ij}| ≤ ε` is satisfied by `values` —
    /// the relaxation level the feasibility loop would have stopped at.
    pub final_epsilon: f64,
}

/// Extended-GTB estimator.
pub fn extended_gtb<U: Utility + ?Sized, R: Rng + ?Sized>(
    u: &U,
    cfg: &GtbConfig,
    rng: &mut R,
) -> GtbOutcome {
    let n = u.n_clients();
    assert!(n >= 2, "group testing needs at least two clients");
    assert!(cfg.samples >= 1);

    // Size distribution q(k) ∝ 1/k + 1/(n−k) over k ∈ 1..=n−1, and its
    // normaliser Z = Σ_k (1/k + 1/(n−k)) = 2·H_{n−1}.
    let weights: Vec<f64> = (1..n)
        .map(|k| 1.0 / k as f64 + 1.0 / (n - k) as f64)
        .collect();
    let z: f64 = weights.iter().sum();
    let cum: Vec<f64> = weights
        .iter()
        .scan(0.0, |acc, w| {
            *acc += w;
            Some(*acc)
        })
        .collect();

    // Sampling phase: each draw contributes u_t·(β_ti − β_tj) to the
    // pairwise difference estimate. We accumulate per-client sums; the
    // pairwise structure collapses because Σ_j Δ̂_{ij} only needs
    // per-client and global aggregates.
    let t = cfg.samples;
    let mut per_client = vec![0.0f64; n]; // Σ_t u_t·β_ti
    for _ in 0..t {
        let r: f64 = rng.random::<f64>() * z;
        let k = match cum.iter().position(|&c| r < c) {
            Some(idx) => idx + 1,
            None => n - 1,
        };
        let s = random_subset_of_size(n, k, rng);
        let ut = u.eval(s);
        for i in s.members() {
            per_client[i] += ut;
        }
    }
    let scale = z / t as f64;
    // Δ̂_{ij} = scale·(per_client[i] − per_client[j]);
    // Σ_j Δ̂_{ij} = scale·(n·per_client[i] − Σ_j per_client[j]).
    let sum_all: f64 = per_client.iter().sum();

    let u_total = u.eval(Coalition::full(n)) - u.eval(Coalition::empty());
    // Least-squares recovery: ϕ_i = U_total/n + (1/n)·Σ_j Δ̂_{ij}.
    let values: Vec<f64> = (0..n)
        .map(|i| u_total / n as f64 + scale * (n as f64 * per_client[i] - sum_all) / n as f64)
        .collect();

    // Report the slack the recovered solution attains, i.e. the ε at which
    // the original feasibility program becomes satisfiable. For the
    // least-squares solution ϕ_i − ϕ_j − Δ̂_{ij} = 0 identically, so the
    // slack is numerically ~0; kept for API faithfulness and diagnostics.
    let mut eps = 0.0f64;
    for i in 0..n {
        for j in (i + 1)..n {
            let delta_ij = scale * (per_client[i] - per_client[j]);
            eps = eps.max((values[i] - values[j] - delta_ij).abs());
        }
    }

    GtbOutcome {
        values,
        final_epsilon: eps,
    }
}

/// Convenience wrapper returning only the estimated values.
pub fn extended_gtb_values<U: Utility + ?Sized, R: Rng + ?Sized>(
    u: &U,
    cfg: &GtbConfig,
    rng: &mut R,
) -> Vec<f64> {
    extended_gtb(u, cfg, rng).values
}

#[cfg(test)]
// Tests assert invariants; an unwrap that trips IS the test failing.
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::exact::exact_mc_sv;
    use crate::metrics::l2_relative_error;
    use crate::utility::{AdditiveUtility, TableUtility};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn efficiency_constraint_is_exact() {
        let u = TableUtility::paper_table1();
        let cfg = GtbConfig::new(50);
        let mut rng = StdRng::seed_from_u64(1);
        let out = extended_gtb(&u, &cfg, &mut rng);
        let total: f64 = out.values.iter().sum();
        assert!((total - (0.96 - 0.10)).abs() < 1e-10);
    }

    #[test]
    fn recovered_solution_satisfies_measured_differences() {
        let u = TableUtility::paper_table1();
        let out = extended_gtb(&u, &GtbConfig::new(30), &mut StdRng::seed_from_u64(2));
        assert!(out.final_epsilon < 1e-10);
    }

    #[test]
    fn converges_with_many_samples() {
        // GTB's difference estimator is consistent; with a large sample the
        // estimate should land near the exact SV.
        let u = TableUtility::paper_table1();
        let exact = exact_mc_sv(&u);
        let mut rng = StdRng::seed_from_u64(3);
        let out = extended_gtb(&u, &GtbConfig::new(60_000), &mut rng);
        let err = l2_relative_error(&out.values, &exact);
        assert!(err < 0.12, "error {err}: {:?} vs {exact:?}", out.values);
    }

    #[test]
    fn additive_utility_symmetric_clients() {
        // For equal weights the estimate must be symmetric-ish and sum to n·w.
        let u = AdditiveUtility::new(0.0, vec![0.25; 4]);
        let out = extended_gtb(&u, &GtbConfig::new(2000), &mut StdRng::seed_from_u64(4));
        let total: f64 = out.values.iter().sum();
        assert!((total - 1.0).abs() < 1e-10);
        for v in &out.values {
            assert!((v - 0.25).abs() < 0.1, "{:?}", out.values);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let u = TableUtility::paper_table1();
        let a = extended_gtb_values(&u, &GtbConfig::new(20), &mut StdRng::seed_from_u64(9));
        let b = extended_gtb_values(&u, &GtbConfig::new(20), &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }
}
