//! The parallel batch-evaluation engine's contract, end to end:
//!
//! 1. **Determinism** — for a fixed RNG seed, every estimator routed
//!    through `eval_batch` produces bit-identical values with 1, 2 and N
//!    rayon threads (and identical to the plain serial utility).
//! 2. **Exact accounting** — the sharded `CachedUtility` counts each
//!    distinct coalition exactly once, no matter how many threads hammer
//!    it concurrently.
//! 3. **Budget** — IPSS hits an *uncached* utility exactly γ times (the
//!    internal memo regression).

// Driver code: test assertions panic by design, so unwrap/expect are
// the failure mechanism, not a robustness gap.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use fedval_core::banzhaf::{banzhaf_msr, BanzhafConfig};
use fedval_core::coalition::{all_subsets, Coalition};
use fedval_core::owen::{owen_sampling, OwenConfig};
use fedval_core::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

/// Run an estimator against the serial utility and against
/// `ParallelUtility` at several thread counts; all runs must agree
/// bit-for-bit.
fn assert_thread_invariant<F>(label: &str, run: F)
where
    F: Fn(&dyn Utility) -> Vec<f64>,
{
    let base = HashUtility { n: 10, seed: 0xBEE };
    let serial = run(&base);
    for threads in THREAD_COUNTS {
        let par = ParallelUtility::with_num_threads(base.clone(), threads);
        let got = run(&par);
        assert_eq!(got, serial, "{label}: thread count {threads} diverged");
    }
    // And through the sharded cache on top of the fan-out.
    let cached = CachedUtility::new(ParallelUtility::with_num_threads(base.clone(), 4));
    let got = run(&cached);
    assert_eq!(got, serial, "{label}: cached+parallel diverged");
}

#[test]
fn ipss_is_bit_identical_across_thread_counts() {
    assert_thread_invariant("ipss", |u| {
        ipss_values(u, &IpssConfig::new(40), &mut StdRng::seed_from_u64(7))
    });
}

#[test]
fn exact_mc_sv_is_bit_identical_across_thread_counts() {
    assert_thread_invariant("exact_mc_sv", |u| exact_mc_sv(u));
}

#[test]
fn exact_cc_sv_is_bit_identical_across_thread_counts() {
    assert_thread_invariant("exact_cc_sv", |u| exact_cc_sv(u));
}

#[test]
fn stratified_is_bit_identical_across_thread_counts() {
    assert_thread_invariant("stratified", |u| {
        stratified_sampling_values(
            u,
            Scheme::MarginalContribution,
            &StratifiedConfig::uniform(10, 30),
            &mut StdRng::seed_from_u64(8),
        )
    });
}

#[test]
fn owen_is_bit_identical_across_thread_counts() {
    assert_thread_invariant("owen", |u| {
        owen_sampling(u, &OwenConfig::new(5, 6), &mut StdRng::seed_from_u64(9))
    });
}

#[test]
fn banzhaf_msr_is_bit_identical_across_thread_counts() {
    assert_thread_invariant("banzhaf_msr", |u| {
        banzhaf_msr(u, &BanzhafConfig::new(200), &mut StdRng::seed_from_u64(10))
    });
}

#[test]
fn cc_shapley_is_bit_identical_across_thread_counts() {
    assert_thread_invariant("cc_shapley", |u| {
        cc_shapley(u, &CcShapConfig::new(50), &mut StdRng::seed_from_u64(11))
    });
}

#[test]
fn leave_one_out_is_bit_identical_across_thread_counts() {
    assert_thread_invariant("leave_one_out", |u| leave_one_out(u));
}

#[test]
fn sharded_cache_counts_each_coalition_exactly_once_under_hammering() {
    // 8 threads × overlapping slices of the same 2^12 coalition space,
    // through both eval and eval_batch: evaluations must equal the number
    // of distinct coalitions, lookups the number of calls.
    let n = 12usize;
    let u = CachedUtility::new(HashUtility { n, seed: 0xCAFE });
    let coalitions: Vec<Coalition> = all_subsets(n).collect();
    let threads = 8usize;
    std::thread::scope(|scope| {
        for t in 0..threads {
            let u = &u;
            let coalitions = &coalitions;
            scope.spawn(move || {
                // Each thread walks the whole space from a different
                // offset, alternating single and batched evaluation.
                let offset = t * coalitions.len() / threads;
                for chunk in coalitions[offset..]
                    .iter()
                    .chain(coalitions[..offset].iter())
                    .copied()
                    .collect::<Vec<_>>()
                    .chunks(97)
                {
                    if t % 2 == 0 {
                        let _ = u.eval_batch(chunk);
                    } else {
                        for &c in chunk {
                            let _ = u.eval(c);
                        }
                    }
                }
            });
        }
    });
    let stats = u.stats();
    assert_eq!(
        stats.evaluations,
        1 << n,
        "each distinct coalition must be counted exactly once"
    );
    assert_eq!(stats.lookups, threads * (1 << n));
    assert_eq!(u.cached_len(), 1 << n);
    // Cached values agree with the ground truth.
    let truth = HashUtility { n, seed: 0xCAFE };
    for &c in coalitions.iter().step_by(57) {
        assert_eq!(u.eval(c), truth.eval(c));
    }
}

#[test]
fn ipss_hits_uncached_utility_exactly_gamma_times() {
    use std::sync::atomic::{AtomicUsize, Ordering};
    struct Counting {
        inner: HashUtility,
        calls: AtomicUsize,
    }
    impl Utility for Counting {
        fn n_clients(&self) -> usize {
            self.inner.n
        }
        fn eval(&self, s: Coalition) -> f64 {
            self.calls.fetch_add(1, Ordering::Relaxed);
            self.inner.eval(s)
        }
    }
    for gamma in [5usize, 32, 100] {
        let u = Counting {
            inner: HashUtility { n: 9, seed: 0xFE },
            calls: AtomicUsize::new(0),
        };
        let mut rng = StdRng::seed_from_u64(0x44);
        let out = ipss(&u, &IpssConfig::new(gamma), &mut rng);
        assert_eq!(u.calls.load(Ordering::Relaxed), gamma, "γ = {gamma}");
        assert_eq!(out.values.len(), 9);
    }
}
