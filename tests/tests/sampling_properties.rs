//! Property tests on the sampling machinery: balanced designs, stratified
//! configurations, IPSS budget accounting — the plumbing every estimator
//! stands on.

use fedval_core::coalition::{binom_u128, subsets_up_to, Coalition};
use fedval_core::ipss::{compute_k_star, ipss, IpssConfig};
use fedval_core::prelude::*;
use fedval_core::sampling::{
    balanced_subsets_of_size, coverage_counts, distinct_subsets_of_size,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn distinct_subsets_are_valid(
        n in 2usize..14,
        k in 1usize..6,
        count in 1usize..40,
        seed in 0u64..10_000,
    ) {
        let k = k.min(n);
        let mut rng = StdRng::seed_from_u64(seed);
        let subs = distinct_subsets_of_size(n, k, count, &mut rng);
        let expected = (count as u128).min(binom_u128(n, k)) as usize;
        prop_assert_eq!(subs.len(), expected);
        let mut seen = std::collections::HashSet::new();
        for s in &subs {
            prop_assert_eq!(s.size(), k);
            prop_assert!(s.is_subset_of(Coalition::full(n)));
            prop_assert!(seen.insert(s.0), "duplicate coalition");
        }
    }

    #[test]
    fn balanced_designs_have_unit_coverage_spread(
        n in 2usize..16,
        k in 1usize..5,
        count in 1usize..50,
        seed in 0u64..10_000,
    ) {
        let k = k.min(n);
        let mut rng = StdRng::seed_from_u64(seed);
        let subs = balanced_subsets_of_size(n, k, count, &mut rng);
        if (subs.len() as u128) < binom_u128(n, k) {
            // Only when the stratum is not exhausted is balance promised.
            let cov = coverage_counts(n, &subs);
            let max = *cov.iter().max().unwrap();
            let min = *cov.iter().min().unwrap();
            prop_assert!(max - min <= 1, "coverage {cov:?}");
        }
    }

    #[test]
    fn k_star_is_maximal(n in 1usize..20, gamma in 1usize..5_000) {
        let k = compute_k_star(n, gamma).unwrap();
        prop_assert!(subsets_up_to(n, k) <= gamma as u128);
        if k < n {
            prop_assert!(subsets_up_to(n, k + 1) > gamma as u128);
        }
    }

    #[test]
    fn ipss_never_exceeds_budget(
        n in 2usize..10,
        gamma in 2usize..200,
        seed in 0u64..10_000,
    ) {
        prop_assume!(gamma >= 1);
        let u = CachedUtility::new(HashUtility { n, seed });
        let mut rng = StdRng::seed_from_u64(seed ^ 0x1b);
        let out = ipss(&u, &IpssConfig::new(gamma), &mut rng);
        prop_assert!(u.stats().evaluations <= gamma.min(1 << n));
        prop_assert_eq!(out.values.len(), n);
        prop_assert!(out.values.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn stratified_uniform_budget_sums(n in 1usize..32, gamma in 0usize..500) {
        let cfg = StratifiedConfig::uniform(n, gamma);
        prop_assert_eq!(cfg.total_rounds(), gamma);
        prop_assert_eq!(cfg.rounds_per_stratum.len(), n);
        // Allocation is as even as possible: max − min ≤ 1.
        let max = cfg.rounds_per_stratum.iter().max().unwrap();
        let min = cfg.rounds_per_stratum.iter().min().unwrap();
        prop_assert!(max - min <= 1);
    }

    #[test]
    fn property_error_is_scale_invariant(
        scale in 0.1f64..100.0,
        values in prop::collection::vec(-1.0f64..1.0, 6),
    ) {
        let scaled: Vec<f64> = values.iter().map(|v| v * scale).collect();
        let a = property_error(&values, &[0], &[(1, 2)]);
        let b = property_error(&scaled, &[0], &[(1, 2)]);
        if a.is_finite() && b.is_finite() {
            prop_assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }
}
