// Fixture: the near-misses for `allow-justification` — a justified
// allow, and an allow inside a `#[cfg(test)]` span (test code is free).

// Recursion threads the whole split context; a params struct would only
// rename the argument list.
#[allow(clippy::too_many_arguments)]
pub fn justified(a: u8, b: u8, c: u8, d: u8, e: u8, f: u8, g: u8, h: u8) -> u8 {
    a + b + c + d + e + f + g + h
}

/// Doc-comment justification works too: the lint reads any comment
/// block directly above the attribute.
#[allow(dead_code)]
pub fn doc_justified() {}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    #[test]
    fn in_test_code_allows_are_free() {
        assert_eq!(super::justified(1, 1, 1, 1, 1, 1, 1, 1), 8);
    }
}
