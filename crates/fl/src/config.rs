//! FedAvg hyper-parameters and deterministic seed derivation.

use fedval_nn::Backend;

/// Which federated optimisation algorithm the clients run (`A` in
/// Def. 1). FedAvg is the paper's algorithm; FedProx (Li et al., MLSys'20,
/// cited in Sec. VI-A) adds a proximal pull towards the global model that
/// tames client drift under heterogeneity.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FlAlgorithm {
    FedAvg,
    /// FedProx with proximal coefficient `μ`: each local step additionally
    /// pulls the weights towards the round's global model by
    /// `lr·μ·(w − w_global)` (applied at epoch granularity).
    FedProx {
        mu: f32,
    },
}

/// Hyper-parameters of the federated training loop (Def. 1).
#[derive(Clone, Copy, Debug)]
pub struct FedAvgConfig {
    /// Communication rounds between server and clients.
    pub rounds: usize,
    /// Local SGD epochs per client per round.
    pub local_epochs: usize,
    /// Local mini-batch size.
    pub batch_size: usize,
    /// Local SGD learning rate.
    pub lr: f32,
    /// Base seed. Model initialisation and the per-client data order are
    /// derived from this, making `U(M_S)` a pure function of the coalition
    /// (required for sound caching).
    pub seed: u64,
    /// The local optimisation algorithm.
    pub algorithm: FlAlgorithm,
    /// Fraction of the coalition's clients participating per round
    /// (cross-device-style partial participation; `1.0` = every client
    /// every round, the cross-silo default the paper uses).
    pub participation: f32,
    /// Server-side step size applied to the aggregated update (`1.0` is
    /// plain FedAvg parameter averaging).
    pub server_lr: f32,
    /// Linear-algebra backend every kernel of this utility's trainings
    /// runs on — solo and lock-step forward/backward, the FedProx
    /// proximal pull and the server-side update arithmetic. Defaults to
    /// the process-wide `FEDVAL_BACKEND` selection (reference when
    /// unset); values are deterministic *per backend*, so a cached
    /// utility must not mix backends.
    pub backend: Backend,
    /// Whether batched evaluation memoises per-client per-round local
    /// training updates across lock-step lane blocks (the trajectory
    /// cache — `crate::trajcache`). Values are bit-identical either way;
    /// the cache only removes redundant trainings. Defaults to the
    /// process-wide `FEDVAL_TRAJCACHE` selection: enabled unless set to
    /// `0`/`false`/`off`.
    pub traj_cache: bool,
    /// Byte budget for the per-call trajectory cache an `eval_batch`
    /// creates when no shared handle is installed (`None` = unbounded).
    /// Each cached update costs `p · 4` bytes for a `p`-parameter model;
    /// crossing the budget evicts least-recently-used entries, trading
    /// re-training for memory without changing any value. Defaults to the
    /// process-wide `FEDVAL_TRAJCACHE_BYTES` selection (unset = no
    /// bound). Shared handles carry their own budget —
    /// `TrajectoryCache::with_byte_budget` — and ignore this field.
    pub traj_cache_bytes: Option<usize>,
}

impl Default for FedAvgConfig {
    fn default() -> Self {
        FedAvgConfig {
            rounds: 4,
            local_epochs: 2,
            batch_size: 16,
            lr: 0.1,
            seed: 0,
            algorithm: FlAlgorithm::FedAvg,
            participation: 1.0,
            server_lr: 1.0,
            backend: Backend::default(),
            traj_cache: trajcache_from_env(),
            traj_cache_bytes: trajcache_bytes_from_env(),
        }
    }
}

/// Process-wide default of [`FedAvgConfig::traj_cache_bytes`], resolved
/// once from `FEDVAL_TRAJCACHE_BYTES`: a byte count bounds every per-call
/// trajectory cache; unset (or unparsable) leaves them unbounded.
pub fn trajcache_bytes_from_env() -> Option<usize> {
    static ENV_BYTES: std::sync::OnceLock<Option<usize>> = std::sync::OnceLock::new();
    *ENV_BYTES.get_or_init(|| {
        std::env::var("FEDVAL_TRAJCACHE_BYTES")
            .ok()
            .and_then(|v| v.trim().parse().ok())
    })
}

/// Process-wide default of [`FedAvgConfig::traj_cache`], resolved once
/// from `FEDVAL_TRAJCACHE`: `0`/`false`/`off` (any case) disables the
/// trajectory cache, anything else — including unset — enables it. The
/// CI matrix runs both states in every backend × thread cell.
pub fn trajcache_from_env() -> bool {
    static ENV_TRAJCACHE: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *ENV_TRAJCACHE.get_or_init(|| match std::env::var("FEDVAL_TRAJCACHE") {
        Ok(v) => !matches!(
            v.trim().to_ascii_lowercase().as_str(),
            "0" | "false" | "off"
        ),
        Err(_) => true,
    })
}

#[inline]
pub(crate) fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Seed for the FL process of a given coalition.
///
/// All coalitions share the same *model initialisation* seed (the FL server
/// initialises one global model regardless of which clients participate —
/// Def. 1), so this hashes only the base seed; the coalition enters the
/// per-round seeds below.
pub fn init_seed(base: u64) -> u64 {
    mix64(base ^ 0x1217_0000)
}

/// Seed for client `client`'s local training in `round`.
///
/// Deliberately *coalition-independent*: a client shuffles its local data
/// the same way no matter which coalition it trains in. These common
/// random numbers cancel in marginal contributions `U(S∪{i}) − U(S)`,
/// sharply reducing the noise floor of the ground-truth Shapley values —
/// a variance-reduction choice documented in DESIGN.md §3. Determinism
/// per coalition (hence cacheability) is unaffected.
pub fn local_seed(base: u64, round: usize, client: usize) -> u64 {
    let hi = mix64(mix64(base) ^ ((round as u64) << 32) ^ client as u64);
    mix64(hi)
}

#[cfg(test)]
// Tests assert invariants; an unwrap that trips IS the test failing.
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn seeds_are_deterministic_and_distinct() {
        assert_eq!(local_seed(7, 0, 0), local_seed(7, 0, 0));
        assert_ne!(local_seed(7, 0, 0), local_seed(7, 1, 0));
        assert_ne!(local_seed(7, 0, 0), local_seed(7, 0, 2));
        assert_ne!(local_seed(7, 0, 0), local_seed(8, 0, 0));
        assert_eq!(init_seed(3), init_seed(3));
        assert_ne!(init_seed(3), init_seed(4));
    }

    #[test]
    fn default_config_is_small_and_fast() {
        let cfg = FedAvgConfig::default();
        assert!(cfg.rounds <= 8 && cfg.local_epochs <= 4);
    }
}
