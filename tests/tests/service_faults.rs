//! The valuation service's failure model, driven by the deterministic
//! [`FaultyUtility`] injector: fault isolation (only the requests whose
//! coalitions fault see errors), retry-through-backoff (transient faults
//! heal and results stay bit-identical to the fault-free same-seed run),
//! graceful degradation (deadline/budget overruns return the exact
//! partial-prefix fold), bounded-latency flushing (the window caps park
//! wait without changing any value), and shutdown draining (every
//! outstanding ticket resolves).
//!
//! Set `FEDVAL_FAULTS=<rounds>` to widen the seeded fault sweep — CI's
//! fault-injection matrix cell runs it under both linalg backends.

// Driver code: test assertions panic by design, so unwrap/expect are
// the failure mechanism, not a robustness gap.
#![allow(clippy::unwrap_used, clippy::expect_used)]
// Wall-clock here only bounds how long shutdown may take to drain
// (an upper-limit assertion), never a computed value.
#![allow(clippy::disallowed_methods)]

use std::sync::Mutex;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;

use fedval_core::coalition::Coalition;
use fedval_core::fault::{FaultyUtility, PERSISTENT};
use fedval_core::ipss::{ipss_values, IpssConfig};
use fedval_core::service::{
    partial_prefix_fold, Estimator, LimitPolicy, RetryPolicy, Ticket, ValuationError,
    ValuationRequest, ValuationResponse, ValuationServer,
};
use fedval_core::utility::{HashUtility, Utility};

fn ok(result: Result<ValuationResponse, ValuationError>) -> ValuationResponse {
    match result {
        Ok(resp) => resp,
        Err(e) => panic!("request failed: {e}"),
    }
}

/// Fault-free same-seed baseline for one request.
fn baseline(n: usize, seed: u64, req: ValuationRequest) -> Vec<f64> {
    let server = ValuationServer::start(HashUtility { n, seed });
    let values = ok(server.call(req)).values;
    server.shutdown();
    values
}

// ---------------------------------------------------------------------
// Isolation: a persistent fault errors exactly the requests that touch
// the faulty coalition; concurrent peers stay bit-identical.
// ---------------------------------------------------------------------

#[test]
fn persistent_fault_fails_only_the_requests_that_touch_it() {
    // The faulty mask has size 7; IPSS with γ = 37 on n = 8 evaluates
    // strata 0..=2 only (1 + 8 + 28), so it never touches the mask, while
    // the exhaustive sweep must.
    let faulty = Coalition::from_members([0, 1, 2, 3, 4, 5, 6]);
    let inner = HashUtility { n: 8, seed: 31 };
    let server =
        ValuationServer::builder(FaultyUtility::new(inner).panic_on_coalition(faulty, PERSISTENT))
            .retry_policy(RetryPolicy {
                max_retries: 2,
                backoff_base: Duration::from_millis(1),
                backoff_cap: Duration::from_millis(4),
            })
            .start();
    let sweep = server.submit(ValuationRequest::new(Estimator::ExactMc, 0, 1));
    let ipss = server.submit(ValuationRequest::new(Estimator::Ipss, 37, 2));

    match sweep.wait() {
        Err(ValuationError::UtilityPanicked { attempts, detail }) => {
            assert_eq!(attempts, 3, "flushed attempt + 2 retries");
            assert!(
                detail.contains("injected fault"),
                "payload survives: {detail}"
            );
        }
        other => panic!("the sweep must fail on the persistent fault, got {other:?}"),
    }
    let ipss_resp = ok(ipss.wait());
    assert_eq!(
        ipss_resp.values,
        baseline(8, 31, ValuationRequest::new(Estimator::Ipss, 37, 2)),
        "an unaffected peer must stay bit-identical to its fault-free run"
    );
    assert!(!ipss_resp.run.partial);

    // The server survives the failed request and keeps serving (γ = 9
    // stays in strata 0..=1, clear of the faulty size-7 mask — unlike
    // LOO, which would evaluate N∖{7} and trip it again).
    let after = ok(server.call(ValuationRequest::new(Estimator::Ipss, 9, 3)));
    assert_eq!(
        after.values,
        baseline(8, 31, ValuationRequest::new(Estimator::Ipss, 9, 3))
    );
    let stats = server.stats();
    assert!(stats.failed_flushes >= 1, "the sweep's flush was poisoned");
    assert!(stats.retries >= 2, "the sweep retried before giving up");
    server.shutdown();
}

// ---------------------------------------------------------------------
// Retry: seeded transient faults heal through backoff; every concurrent
// request completes bit-identical to the fault-free same-seed run.
// ---------------------------------------------------------------------

#[test]
fn transient_faults_heal_and_results_stay_bit_identical() {
    let n = 7;
    let inner = HashUtility { n, seed: 5 };
    let reqs = || {
        vec![
            ValuationRequest::new(Estimator::ExactMc, 0, 1),
            ValuationRequest::new(Estimator::Ipss, 29, 2),
            ValuationRequest::new(Estimator::StratifiedCc, 21, 3),
        ]
    };
    // 1-in-4 of the 128 masks fault on first evaluation, then heal.
    let server = ValuationServer::builder(FaultyUtility::new(inner).seeded_faults(99, 4)).start();
    let tickets: Vec<Ticket> = reqs().into_iter().map(|r| server.submit(r)).collect();
    let responses: Vec<ValuationResponse> = tickets.into_iter().map(|t| ok(t.wait())).collect();
    for (resp, req) in responses.iter().zip(reqs()) {
        assert_eq!(
            resp.values,
            baseline(n, 5, req),
            "{:?} diverged after healing from transient faults",
            resp.request.estimator
        );
        assert!(!resp.run.partial);
    }
    let stats = server.stats();
    assert!(
        stats.failed_flushes >= 1,
        "1-in-4 faults must poison a flush"
    );
    assert!(stats.retries >= 1, "healing requires at least one retry");
    assert!(
        stats.eval.lookups > stats.distinct_coalitions,
        "retry traffic bypasses the coalescer and shows up as extra lookups"
    );
    server.shutdown();
}

// ---------------------------------------------------------------------
// Graceful degradation: deadlines and budgets at batch boundaries.
// ---------------------------------------------------------------------

/// Records every `(coalition, value)` pair an estimator evaluates, per
/// batch — the oracle for partial-prefix reproduction.
struct Recorder {
    inner: HashUtility,
    batches: Mutex<Vec<Vec<(Coalition, f64)>>>,
}

impl Utility for Recorder {
    fn n_clients(&self) -> usize {
        self.inner.n_clients()
    }
    fn eval(&self, s: Coalition) -> f64 {
        self.eval_batch(std::slice::from_ref(&s))[0]
    }
    fn eval_batch(&self, coalitions: &[Coalition]) -> Vec<f64> {
        let values = self.inner.eval_batch(coalitions);
        self.batches.lock().unwrap().push(
            coalitions
                .iter()
                .copied()
                .zip(values.iter().copied())
                .collect(),
        );
        values
    }
}

/// The `(coalition, value)` prefix of the first `k` batches of a solo
/// IPSS run with the given seed.
fn ipss_prefix(n: usize, useed: u64, gamma: usize, seed: u64, k: usize) -> Vec<(Coalition, f64)> {
    let rec = Recorder {
        inner: HashUtility { n, seed: useed },
        batches: Mutex::new(Vec::new()),
    };
    let mut rng = StdRng::seed_from_u64(seed);
    let _ = ipss_values(&rec, &IpssConfig::new(gamma), &mut rng);
    let batches = rec.batches.into_inner().unwrap();
    assert!(
        batches.len() >= k,
        "run has {} batches, need {k}",
        batches.len()
    );
    batches.into_iter().take(k).flatten().collect()
}

#[test]
fn budget_overrun_returns_the_exact_partial_prefix() {
    // IPSS on n = 8 with γ = 93 schedules 4 batches (1 + 8 + 28 + 56);
    // max_evals = 37 admits exactly the first three.
    let server = ValuationServer::start(HashUtility { n: 8, seed: 17 });
    let resp = ok(server.call(ValuationRequest::new(Estimator::Ipss, 93, 4).with_max_evals(37)));
    assert!(resp.run.partial, "overrunning the budget must mark partial");
    assert_eq!(resp.run.batches, 3, "the 56-wide batch must not start");
    assert_eq!(resp.run.coalitions, 37);

    // The partial values are the fold of the full run's 3-batch prefix —
    // bit-identical, not approximately equal.
    let prefix = ipss_prefix(8, 17, 93, 4, 3);
    assert_eq!(prefix.len(), 37);
    assert_eq!(resp.values, partial_prefix_fold(8, &prefix));
    server.shutdown();
}

#[test]
fn deadline_overrun_returns_the_same_prefix_as_a_budget_cut() {
    // A 300 ms delay on a stratum-2 coalition pushes the run past its
    // 100 ms deadline while batch 3 is in flight; the boundary before
    // batch 4 fires, leaving the same 3-batch prefix as the budget test.
    let slow = Coalition::from_members([0, 1]);
    let inner = HashUtility { n: 8, seed: 17 };
    let server = ValuationServer::builder(FaultyUtility::new(inner).delay_on_coalition(
        slow,
        Duration::from_millis(300),
        1,
    ))
    .start();
    let resp = ok(server.call(
        ValuationRequest::new(Estimator::Ipss, 93, 4).with_deadline(Duration::from_millis(100)),
    ));
    assert!(resp.run.partial);
    assert_eq!(resp.run.batches, 3);
    let prefix = ipss_prefix(8, 17, 93, 4, 3);
    assert_eq!(resp.values, partial_prefix_fold(8, &prefix));
    server.shutdown();
}

#[test]
fn zero_deadline_degrades_to_an_empty_partial_response() {
    let server = ValuationServer::start(HashUtility { n: 6, seed: 2 });
    let resp =
        ok(server
            .call(ValuationRequest::new(Estimator::Ipss, 22, 1).with_deadline(Duration::ZERO)));
    assert!(resp.run.partial);
    assert_eq!(resp.run.batches, 0, "no batch may start past the deadline");
    assert_eq!(resp.values, vec![0.0; 6], "the empty prefix folds to zeros");
    server.shutdown();
}

#[test]
fn fail_policy_surfaces_the_typed_limit_errors() {
    let server = ValuationServer::start(HashUtility { n: 6, seed: 2 });
    let deadline = server.call(
        ValuationRequest::new(Estimator::Ipss, 22, 1)
            .with_deadline(Duration::ZERO)
            .on_limit(LimitPolicy::Fail),
    );
    assert!(matches!(
        deadline,
        Err(ValuationError::DeadlineExceeded { .. })
    ));
    let budget = server.call(
        ValuationRequest::new(Estimator::Ipss, 22, 1)
            .with_max_evals(6)
            .on_limit(LimitPolicy::Fail),
    );
    match budget {
        Err(ValuationError::BudgetExhausted {
            consumed,
            max_evals,
            next_batch,
        }) => {
            assert_eq!((consumed, max_evals, next_batch), (1, 6, 6));
        }
        other => panic!("expected BudgetExhausted, got {other:?}"),
    }
    server.shutdown();
}

// ---------------------------------------------------------------------
// Bounded-latency flushing: the window caps park wait without changing
// any returned value.
// ---------------------------------------------------------------------

/// Run the window experiment: B (one big exhaustive batch) hits a
/// one-shot fault and sleeps through a 300 ms retry backoff; A (small
/// IPSS batches) arrives mid-backoff. Under the pure barrier A's first
/// batch waits for B's recovery; under a 5 ms window it flushes alone.
fn window_experiment(max_wait: Option<Duration>) -> (ValuationResponse, ValuationResponse) {
    let faulty = Coalition::full(6); // touched by the sweep only (IPSS γ=22 stops at |S|=2)
    let inner = HashUtility { n: 6, seed: 13 };
    let mut builder =
        ValuationServer::builder(FaultyUtility::new(inner).panic_on_coalition(faulty, 1))
            .retry_policy(RetryPolicy {
                max_retries: 1,
                backoff_base: Duration::from_millis(300),
                backoff_cap: Duration::from_millis(300),
            });
    if let Some(w) = max_wait {
        builder = builder.flush_window(w);
    }
    let server = builder.start();
    let sweep = server.submit(ValuationRequest::new(Estimator::ExactMc, 0, 1));
    // Let B park, flush, fault, and enter its 300 ms backoff sleep.
    std::thread::sleep(Duration::from_millis(30));
    let ipss = server.submit(ValuationRequest::new(Estimator::Ipss, 22, 2));
    let ipss_resp = ok(ipss.wait());
    let sweep_resp = ok(sweep.wait());
    server.shutdown();
    (sweep_resp, ipss_resp)
}

#[test]
fn flush_window_bounds_park_wait_without_changing_values() {
    let (sweep_barrier, ipss_barrier) = window_experiment(None);
    let (sweep_windowed, ipss_windowed) = window_experiment(Some(Duration::from_millis(5)));

    // Both modes recover from the transient fault and agree bit-for-bit
    // with the fault-free baselines.
    let sweep_base = baseline(6, 13, ValuationRequest::new(Estimator::ExactMc, 0, 1));
    let ipss_base = baseline(6, 13, ValuationRequest::new(Estimator::Ipss, 22, 2));
    assert_eq!(sweep_barrier.values, sweep_base);
    assert_eq!(sweep_windowed.values, sweep_base);
    assert_eq!(ipss_barrier.values, ipss_base);
    assert_eq!(ipss_windowed.values, ipss_base);
    assert_eq!(
        sweep_barrier.run.retries, 1,
        "one retry heals the one-shot fault"
    );

    // The latency contract: under the barrier, A is coupled to B's 300 ms
    // recovery; the 5 ms window decouples them (generous margins for CI).
    assert!(
        ipss_barrier.run.park_wait_max >= Duration::from_millis(150),
        "barrier mode must couple A to B's backoff, waited {:?}",
        ipss_barrier.run.park_wait_max
    );
    assert!(
        ipss_windowed.run.park_wait_max <= Duration::from_millis(100),
        "a 5 ms window must bound A's park wait, waited {:?}",
        ipss_windowed.run.park_wait_max
    );
}

#[test]
fn flush_after_parked_one_disables_batching_but_not_correctness() {
    let n = 7;
    let reqs = || {
        vec![
            ValuationRequest::new(Estimator::ExactMc, 0, 1),
            ValuationRequest::new(Estimator::Ipss, 29, 2),
        ]
    };
    let server = ValuationServer::builder(HashUtility { n, seed: 8 })
        .flush_after_parked(1)
        .start();
    let tickets: Vec<Ticket> = reqs().into_iter().map(|r| server.submit(r)).collect();
    for (t, req) in tickets.into_iter().zip(reqs()) {
        assert_eq!(ok(t.wait()).values, baseline(n, 8, req));
    }
    let stats = server.stats();
    assert_eq!(
        stats.merged_batches, stats.flushes,
        "max_parked = 1 must flush every batch alone"
    );
    server.shutdown();
}

// ---------------------------------------------------------------------
// Shutdown: every outstanding ticket resolves with the typed error.
// ---------------------------------------------------------------------

#[test]
fn shutdown_drains_every_inflight_ticket() {
    // 1 ms per evaluation makes the 79-evaluation runs slow enough that
    // shutdown lands mid-flight; completion would need ≥ 79 ms.
    let inner = HashUtility { n: 12, seed: 44 };
    let server = ValuationServer::builder(
        FaultyUtility::new(inner).delay_every_evals(1, Duration::from_millis(1)),
    )
    .start();
    let tickets: Vec<Ticket> = (0..4)
        .map(|i| server.submit(ValuationRequest::new(Estimator::Ipss, 79, i)))
        .collect();
    std::thread::sleep(Duration::from_millis(5));
    let start = Instant::now();
    server.shutdown();
    for t in tickets {
        match t.wait() {
            Err(ValuationError::ServerShutdown) => {}
            other => panic!("expected ServerShutdown for every in-flight ticket, got {other:?}"),
        }
    }
    assert!(
        start.elapsed() < Duration::from_secs(5),
        "draining must not hang"
    );
}

#[test]
fn dropping_the_server_drains_like_shutdown() {
    // Dropping instead of calling `shutdown` must take the same drain
    // path: every outstanding ticket resolves with the typed error.
    let inner = HashUtility { n: 12, seed: 45 };
    let tickets: Vec<Ticket> = {
        let server = ValuationServer::builder(
            FaultyUtility::new(inner).delay_every_evals(1, Duration::from_millis(1)),
        )
        .start();
        let tickets = (0..2)
            .map(|i| server.submit(ValuationRequest::new(Estimator::Ipss, 79, i)))
            .collect();
        std::thread::sleep(Duration::from_millis(5));
        tickets
        // server dropped here
    };
    for t in tickets {
        match t.wait() {
            Err(ValuationError::ServerShutdown) => {}
            other => panic!("expected ServerShutdown after drop, got {other:?}"),
        }
    }
}

// ---------------------------------------------------------------------
// PR 5's untested guards: a dying run must not deadlock peers, and a
// poisoned flush must not corrupt the service counters.
// ---------------------------------------------------------------------

#[test]
fn dying_run_deregisters_and_peers_complete() {
    let server = ValuationServer::start(HashUtility { n: 8, seed: 6 });
    // IPSS with budget 0 fails its precondition before parking anything.
    let dying = server.submit(ValuationRequest::new(Estimator::Ipss, 0, 1));
    let peer = server.submit(ValuationRequest::new(Estimator::ExactMc, 0, 2));
    match dying.wait() {
        Err(ValuationError::EstimatorPanicked { detail }) => {
            assert!(
                detail.contains("budget"),
                "precondition message survives: {detail}"
            );
        }
        other => panic!("expected EstimatorPanicked, got {other:?}"),
    }
    let peer_resp = ok(peer.wait());
    assert_eq!(
        peer_resp.values,
        baseline(8, 6, ValuationRequest::new(Estimator::ExactMc, 0, 2)),
        "the peer must complete despite the dying run"
    );
    server.shutdown();
}

#[test]
fn poisoned_flush_leaves_exact_counters_after_recovery() {
    // Solo IPSS on n = 6, γ = 22: three deterministic batches (1 + 6 + 15).
    // A one-shot fault on the pair {0, 1} poisons exactly the third flush.
    let faulty = Coalition::from_members([0, 1]);
    let inner = HashUtility { n: 6, seed: 3 };
    let server =
        ValuationServer::builder(FaultyUtility::new(inner).panic_on_coalition(faulty, 1)).start();
    let resp = ok(server.call(ValuationRequest::new(Estimator::Ipss, 22, 9)));
    assert_eq!(
        resp.values,
        baseline(6, 3, ValuationRequest::new(Estimator::Ipss, 22, 9)),
        "recovery must be bit-identical"
    );
    assert_eq!(resp.run.retries, 1);
    assert!(!resp.run.partial);

    let stats = server.stats();
    assert_eq!(stats.flushes, 3, "one flush per IPSS batch");
    assert_eq!(stats.merged_batches, 3);
    assert_eq!(
        stats.failed_flushes, 1,
        "exactly the {{0,1}} flush poisoned"
    );
    assert_eq!(stats.retries, 1, "one direct retry healed it");
    assert_eq!(
        stats.distinct_coalitions, 7,
        "only the two successful flushes (1 + 6) count"
    );
    // Cache accounting: 22 lookups through flushes (1 + 6 + 15) plus the
    // 15-wide retry = 37; the poisoned attempt trained nothing, so the 22
    // distinct coalitions were each trained exactly once.
    assert_eq!(stats.eval.lookups, 37);
    assert_eq!(stats.eval.evaluations, 22);
    server.shutdown();
}

// ---------------------------------------------------------------------
// wait_timeout: polling without blocking forever.
// ---------------------------------------------------------------------

#[test]
fn wait_timeout_polls_then_delivers() {
    // 2 ms per evaluation × 64 coalitions ≈ 128 ms of injected latency.
    let inner = HashUtility { n: 6, seed: 12 };
    let server = ValuationServer::builder(
        FaultyUtility::new(inner).delay_every_evals(1, Duration::from_millis(2)),
    )
    .start();
    let ticket = server.submit(ValuationRequest::new(Estimator::ExactMc, 0, 0));
    assert!(
        ticket.wait_timeout(Duration::from_millis(10)).is_none(),
        "a 128 ms run cannot resolve within 10 ms"
    );
    let resp = ok(ticket.wait());
    assert_eq!(
        resp.values,
        baseline(6, 12, ValuationRequest::new(Estimator::ExactMc, 0, 0))
    );
    server.shutdown();
}

// ---------------------------------------------------------------------
// The FEDVAL_FAULTS sweep: seeded fault schedules, scaled by env.
// ---------------------------------------------------------------------

#[test]
fn seeded_fault_sweep_heals_every_round() {
    let rounds: u64 = std::env::var("FEDVAL_FAULTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2);
    let n = 6;
    let reqs = || {
        vec![
            ValuationRequest::new(Estimator::ExactMc, 0, 1),
            ValuationRequest::new(Estimator::Ipss, 22, 2),
            ValuationRequest::new(Estimator::Loo, 0, 3),
        ]
    };
    let baselines: Vec<Vec<f64>> = reqs().into_iter().map(|r| baseline(n, 77, r)).collect();
    for round in 0..rounds {
        let inner = HashUtility { n, seed: 77 };
        let server =
            ValuationServer::builder(FaultyUtility::new(inner).seeded_faults(round, 3)).start();
        let tickets: Vec<Ticket> = reqs().into_iter().map(|r| server.submit(r)).collect();
        for (t, expected) in tickets.into_iter().zip(&baselines) {
            let resp = ok(t.wait());
            assert_eq!(
                &resp.values, expected,
                "round {round}: {:?} diverged under seeded faults",
                resp.request.estimator
            );
        }
        server.shutdown();
    }
}
