// Fixture: the near-misses for `unseeded-rng` — seeds that flow from an
// explicit seed parameter, and one justified derived stream.
use rand::rngs::StdRng;
use rand::SeedableRng;

pub fn from_config(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

pub fn per_stratum(base_seed: u64, stratum: u64) -> StdRng {
    // Derived streams keep the seed identifier in the expression.
    StdRng::seed_from_u64(base_seed ^ stratum)
}

pub fn annotated_derivation(request_fingerprint: u64) -> StdRng {
    // lint:seeded(the fingerprint is a pure function of the request, so
    // the stream replays with the request)
    StdRng::seed_from_u64(request_fingerprint)
}
