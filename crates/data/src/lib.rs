//! # fedval-data
//!
//! Synthetic federated datasets and partitioners for the IPSS reproduction.
//!
//! The paper evaluates on MNIST, FEMNIST, Adult and Sent-140. Benchmark
//! files are unavailable offline, so this crate provides seeded generators
//! that preserve the properties the experiments manipulate — class
//! structure, writer heterogeneity, size skew, label noise, feature noise
//! (full substitution rationale in DESIGN.md §2):
//!
//! * [`synth::MnistLike`], [`synth::FemnistLike`], [`synth::AdultLike`],
//!   [`synth::Sent140Like`] — dataset generators;
//! * [`partition::SyntheticSetup`] — the five partition setups of Sec. V-B;
//! * [`dataset::Dataset`] — the dense in-memory dataset shared by every
//!   model substrate.

pub mod dataset;
pub mod partition;
pub mod rand_ext;
pub mod synth;

pub use dataset::{Dataset, Standardizer};
pub use partition::{
    add_feature_noise, add_label_noise, partition_label_skew, partition_size_ratio,
    plant_scalability_fixtures, SyntheticSetup,
};
pub use synth::{AdultLike, FederatedDataset, FemnistLike, MnistLike, Sent140Like};
