//! Sequential network container: forward/backward across layers, SGD
//! training, accuracy evaluation and flat parameter (de)serialisation.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use fedval_data::Dataset;

use crate::backend::Backend;
use crate::layers::Layer;
use crate::loss::{argmax_rows, softmax_cross_entropy};

/// A feed-forward classification network (sequence of [`Layer`]s ending in
/// class logits, trained with softmax cross-entropy).
pub struct Network {
    layers: Vec<Box<dyn Layer>>,
    in_len: usize,
    n_classes: usize,
}

impl Network {
    /// Build from layers. Panics if adjacent layer shapes disagree or the
    /// final layer does not emit `n_classes` logits.
    pub fn new(layers: Vec<Box<dyn Layer>>, n_classes: usize) -> Self {
        assert!(!layers.is_empty());
        for pair in layers.windows(2) {
            assert_eq!(
                pair[0].out_len(),
                pair[1].in_len(),
                "layer shape mismatch: {} → {}",
                pair[0].out_len(),
                pair[1].in_len()
            );
        }
        assert_eq!(layers[layers.len() - 1].out_len(), n_classes);
        let in_len = layers[0].in_len();
        Network {
            layers,
            in_len,
            n_classes,
        }
    }

    pub fn in_len(&self) -> usize {
        self.in_len
    }

    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// The layer stack (used by [`crate::lanes::MultiNetwork`] to build its
    /// multi-lane counterpart).
    pub(crate) fn layers(&self) -> &[Box<dyn Layer>] {
        &self.layers
    }

    /// Select the linear-algebra backend for every layer's kernels. Lane
    /// counterparts built afterwards via [`crate::lanes::MultiNetwork::from_network`]
    /// inherit the choice. Layers default to the process-wide
    /// `FEDVAL_BACKEND` selection, so this is only needed for programmatic
    /// overrides (e.g. `FedAvgConfig { backend, .. }`).
    pub fn set_backend(&mut self, backend: Backend) {
        for layer in &mut self.layers {
            layer.set_backend(backend);
        }
    }

    /// Forward pass producing logits for a batch of flattened inputs.
    pub fn forward(&mut self, input: &[f32], batch: usize) -> Vec<f32> {
        assert_eq!(input.len(), batch * self.in_len);
        let mut act = input.to_vec();
        for layer in &mut self.layers {
            act = layer.forward(&act, batch);
        }
        act
    }

    /// One SGD step on a batch; returns the batch loss.
    pub fn train_batch(&mut self, input: &[f32], labels: &[u32], lr: f32) -> f32 {
        let batch = labels.len();
        let logits = self.forward(input, batch);
        let (loss, mut grad) = softmax_cross_entropy(&logits, labels, self.n_classes);
        for layer in &mut self.layers {
            layer.zero_grads();
        }
        for layer in self.layers.iter_mut().rev() {
            grad = layer.backward(&grad, batch);
        }
        for layer in &mut self.layers {
            layer.sgd_step(lr);
        }
        loss
    }

    /// Train for `epochs` passes over `data` with mini-batches of
    /// `batch_size`, shuffling each epoch with `rng`. Returns the mean loss
    /// of the final epoch. Empty datasets are a no-op returning 0.
    pub fn train_epochs(
        &mut self,
        data: &Dataset,
        epochs: usize,
        batch_size: usize,
        lr: f32,
        rng: &mut impl Rng,
    ) -> f32 {
        assert!(batch_size >= 1);
        let n = data.n_samples();
        if n == 0 {
            return 0.0;
        }
        assert_eq!(data.n_features(), self.in_len);
        let mut order: Vec<usize> = (0..n).collect();
        let mut last_epoch_loss = 0.0;
        let mut xbuf: Vec<f32> = Vec::with_capacity(batch_size * self.in_len);
        let mut ybuf: Vec<u32> = Vec::with_capacity(batch_size);
        for _ in 0..epochs {
            order.shuffle(rng);
            let mut epoch_loss = 0.0f64;
            let mut batches = 0usize;
            for chunk in order.chunks(batch_size) {
                xbuf.clear();
                ybuf.clear();
                for &i in chunk {
                    xbuf.extend_from_slice(data.row(i));
                    ybuf.push(data.label(i));
                }
                epoch_loss += self.train_batch(&xbuf, &ybuf, lr) as f64;
                batches += 1;
            }
            last_epoch_loss = epoch_loss / batches as f64;
        }
        last_epoch_loss as f32
    }

    /// Predicted classes for a dataset.
    pub fn predict(&mut self, data: &Dataset) -> Vec<u32> {
        let n = data.n_samples();
        let mut preds = Vec::with_capacity(n);
        // Evaluate in modest batches to bound activation memory.
        let bs = 64usize;
        let mut xbuf: Vec<f32> = Vec::with_capacity(bs * self.in_len);
        let mut start = 0;
        while start < n {
            let end = (start + bs).min(n);
            xbuf.clear();
            for i in start..end {
                xbuf.extend_from_slice(data.row(i));
            }
            let logits = self.forward(&xbuf, end - start);
            preds.extend(argmax_rows(&logits, self.n_classes));
            start = end;
        }
        preds
    }

    /// Classification accuracy on `data` (the paper's utility `U(·)`).
    pub fn accuracy(&mut self, data: &Dataset) -> f64 {
        let n = data.n_samples();
        if n == 0 {
            return 0.0;
        }
        let preds = self.predict(data);
        let correct = preds
            .iter()
            .zip(data.labels())
            .filter(|(p, y)| p == y)
            .count();
        correct as f64 / n as f64
    }

    /// Mean cross-entropy loss on `data`.
    pub fn mean_loss(&mut self, data: &Dataset) -> f64 {
        let n = data.n_samples();
        if n == 0 {
            return 0.0;
        }
        let bs = 64usize;
        let mut total = 0.0f64;
        let mut xbuf: Vec<f32> = Vec::new();
        let mut ybuf: Vec<u32> = Vec::new();
        let mut start = 0;
        while start < n {
            let end = (start + bs).min(n);
            xbuf.clear();
            ybuf.clear();
            for i in start..end {
                xbuf.extend_from_slice(data.row(i));
                ybuf.push(data.label(i));
            }
            let logits = self.forward(&xbuf, end - start);
            let (loss, _) = softmax_cross_entropy(&logits, &ybuf, self.n_classes);
            total += loss as f64 * (end - start) as f64;
            start = end;
        }
        total / n as f64
    }

    /// Total number of scalar parameters.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(|l| l.param_count()).sum()
    }

    /// Flatten all parameters into one vector (FedAvg's aggregation unit).
    pub fn params(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.param_count());
        for layer in &self.layers {
            layer.write_params(&mut out);
        }
        out
    }

    /// Load parameters from a flat vector produced by [`Network::params`].
    pub fn set_params(&mut self, params: &[f32]) {
        assert_eq!(params.len(), self.param_count());
        let mut src = params;
        for layer in &mut self.layers {
            layer.read_params(&mut src);
        }
        debug_assert!(src.is_empty());
    }

    /// Mean per-batch gradient of the loss at the *current* parameters on
    /// `data`, as a flat vector aligned with [`Network::params`] — used by
    /// the DIG-FL baseline (validation-gradient projections).
    pub fn loss_gradient(&mut self, data: &Dataset) -> Vec<f32> {
        let n = data.n_samples();
        assert!(n > 0, "gradient of empty dataset");
        let mut xbuf: Vec<f32> = Vec::with_capacity(n * self.in_len);
        let mut ybuf: Vec<u32> = Vec::with_capacity(n);
        for i in 0..n {
            xbuf.extend_from_slice(data.row(i));
            ybuf.push(data.label(i));
        }
        let logits = self.forward(&xbuf, n);
        let (_, mut grad) = softmax_cross_entropy(&logits, &ybuf, self.n_classes);
        for layer in &mut self.layers {
            layer.zero_grads();
        }
        for layer in self.layers.iter_mut().rev() {
            grad = layer.backward(&grad, n);
        }
        // Extract parameter gradients via the sgd probe: θ' = θ − g at lr 1.
        let before = self.params();
        for layer in &mut self.layers {
            layer.sgd_step(1.0);
        }
        let after = self.params();
        self.set_params(&before);
        before.iter().zip(&after).map(|(b, a)| b - a).collect()
    }
}

/// Deterministic RNG for model initialisation, derived from a seed.
pub fn init_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

#[cfg(test)]
// Tests assert invariants; an unwrap that trips IS the test failing.
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::layers::{Dense, Relu};
    use crate::models;
    use fedval_data::MnistLike;

    fn toy_network(seed: u64) -> Network {
        let mut rng = init_rng(seed);
        Network::new(
            vec![
                Box::new(Dense::new(4, 8, &mut rng)),
                Box::new(Relu::new(8)),
                Box::new(Dense::new(8, 3, &mut rng)),
            ],
            3,
        )
    }

    fn blob_dataset(n: usize, seed: u64) -> Dataset {
        // Three well-separated Gaussian blobs in 4-D.
        let mut rng = init_rng(seed);
        let mut ds = Dataset::empty(4, 3);
        let centers = [
            [2.0f32, 0.0, 0.0, 0.0],
            [0.0, 2.0, 0.0, 0.0],
            [0.0, 0.0, 2.0, 0.0],
        ];
        for i in 0..n {
            let c = i % 3;
            let row: Vec<f32> = centers[c]
                .iter()
                .map(|&m| m + fedval_data::rand_ext::normal_f32(&mut rng, 0.0, 0.35))
                .collect();
            ds.push(&row, c as u32);
        }
        ds
    }

    #[test]
    fn network_learns_separable_blobs() {
        let mut net = toy_network(0);
        let train = blob_dataset(300, 1);
        let test = blob_dataset(90, 2);
        let before = net.accuracy(&test);
        let mut rng = init_rng(3);
        net.train_epochs(&train, 30, 16, 0.1, &mut rng);
        let after = net.accuracy(&test);
        assert!(
            after > 0.9 && after > before,
            "accuracy before {before}, after {after}"
        );
    }

    #[test]
    fn training_reduces_loss() {
        let mut net = toy_network(4);
        let train = blob_dataset(200, 5);
        let initial = net.mean_loss(&train);
        let mut rng = init_rng(6);
        net.train_epochs(&train, 10, 16, 0.1, &mut rng);
        let trained = net.mean_loss(&train);
        assert!(trained < initial, "loss {initial} → {trained}");
    }

    #[test]
    fn params_round_trip_preserves_behaviour() {
        let mut net = toy_network(7);
        let data = blob_dataset(50, 8);
        let mut rng = init_rng(9);
        net.train_epochs(&data, 3, 8, 0.1, &mut rng);
        let params = net.params();
        assert_eq!(params.len(), net.param_count());
        let preds_before = net.predict(&data);
        let mut net2 = toy_network(999); // different init
        net2.set_params(&params);
        assert_eq!(net2.predict(&data), preds_before);
    }

    #[test]
    fn deterministic_training_given_seeds() {
        let train = blob_dataset(100, 10);
        let run = || {
            let mut net = toy_network(11);
            let mut rng = init_rng(12);
            net.train_epochs(&train, 5, 16, 0.1, &mut rng);
            net.params()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn empty_dataset_is_noop() {
        let mut net = toy_network(13);
        let empty = Dataset::empty(4, 3);
        let before = net.params();
        let mut rng = init_rng(14);
        let loss = net.train_epochs(&empty, 5, 8, 0.1, &mut rng);
        assert_eq!(loss, 0.0);
        assert_eq!(net.params(), before);
        assert_eq!(net.accuracy(&empty), 0.0);
    }

    #[test]
    fn loss_gradient_points_downhill() {
        let mut net = toy_network(15);
        let data = blob_dataset(60, 16);
        let l0 = net.mean_loss(&data);
        let grad = net.loss_gradient(&data);
        assert_eq!(grad.len(), net.param_count());
        // Take a small step against the gradient: loss must decrease.
        let params = net.params();
        let stepped: Vec<f32> = params
            .iter()
            .zip(&grad)
            .map(|(p, g)| p - 0.05 * g)
            .collect();
        net.set_params(&stepped);
        let l1 = net.mean_loss(&data);
        assert!(l1 < l0, "loss {l0} → {l1}");
    }

    #[test]
    fn cnn_trains_on_mnist_like() {
        // End-to-end: a small CNN should beat chance on MNIST-like data.
        let gen = MnistLike::new(17);
        let (train, test) = gen.generate_split(240, 120, 18);
        let mut net = models::cnn(8, 10, 19);
        let mut rng = init_rng(20);
        net.train_epochs(&train, 8, 16, 0.08, &mut rng);
        let acc = net.accuracy(&test);
        assert!(acc > 0.5, "CNN accuracy {acc} (chance = 0.1)");
    }
}
