//! Owen sampling — the multilinear-extension route to the Shapley value,
//! the third classical estimator family alongside permutation sampling
//! (Extended-TMC) and stratified coalition sampling (Alg. 1 / IPSS).
//!
//! The multilinear extension of the game is
//! `e_i(q) = E[U(S_q ∪ {i}) − U(S_q)]` where `S_q` includes every other
//! client independently with probability `q`; the Shapley value is
//! `ϕ_i = ∫₀¹ e_i(q) dq`. Owen sampling estimates the integral on a `q`
//! grid with Monte-Carlo coalitions at each node, optionally with
//! antithetic pairing (`S_q` and its complement) for variance reduction.

use std::collections::{HashMap, HashSet};

use rand::Rng;

use crate::coalition::Coalition;
use crate::utility::Utility;

/// Configuration for [`owen_sampling`].
#[derive(Clone, Debug)]
pub struct OwenConfig {
    /// Number of `q` grid nodes on `[0, 1]` (trapezoid rule). ≥ 2.
    pub q_nodes: usize,
    /// Coalitions sampled per grid node.
    pub samples_per_node: usize,
    /// Pair each sample with its complement (antithetic sampling) —
    /// halves the variance contributed by the `q ↔ 1−q` symmetry at no
    /// extra per-sample cost beyond the second evaluation.
    pub antithetic: bool,
}

impl OwenConfig {
    pub fn new(q_nodes: usize, samples_per_node: usize) -> Self {
        OwenConfig {
            q_nodes,
            samples_per_node,
            antithetic: false,
        }
    }

    pub fn with_antithetic(mut self) -> Self {
        self.antithetic = true;
        self
    }
}

/// Owen estimator of the Shapley value.
pub fn owen_sampling<U: Utility + ?Sized, R: Rng + ?Sized>(
    u: &U,
    cfg: &OwenConfig,
    rng: &mut R,
) -> Vec<f64> {
    let n = u.n_clients();
    assert!(n >= 1);
    assert!(cfg.q_nodes >= 2 && cfg.samples_per_node >= 1);
    // e_hat[node][i] accumulates marginal contributions of client i at q.
    let mut phi = vec![0.0f64; n];
    let mut node_means = vec![vec![0.0f64; n]; cfg.q_nodes];
    for (node, means) in node_means.iter_mut().enumerate() {
        let q = node as f64 / (cfg.q_nodes - 1) as f64;
        // Draw the node's coalitions first (the RNG stream is identical to
        // the historical draw-then-evaluate interleaving, which consumed no
        // randomness during evaluation), then evaluate the whole
        // neighbourhood — each sample plus its n single-flip variants — as
        // one deduplicated batch.
        let mut samples: Vec<Coalition> =
            Vec::with_capacity(cfg.samples_per_node * if cfg.antithetic { 2 } else { 1 });
        for _ in 0..cfg.samples_per_node {
            let mut mask = 0u128;
            for i in 0..n {
                if rng.random::<f64>() < q {
                    mask |= 1 << i;
                }
            }
            samples.push(Coalition(mask));
            if cfg.antithetic {
                samples.push(Coalition(mask).complement(n));
            }
        }
        let values = batch_neighbourhoods(u, n, &samples);
        let mut sums = vec![0.0f64; n];
        let mut counts = vec![0usize; n];
        for &s in &samples {
            accumulate(&values, s, n, &mut sums, &mut counts);
        }
        for (mean, (&sum, &count)) in means.iter_mut().zip(sums.iter().zip(&counts)) {
            *mean = if count > 0 { sum / count as f64 } else { 0.0 };
        }
    }
    // Trapezoid rule over the q grid.
    let h = 1.0 / (cfg.q_nodes - 1) as f64;
    for (node, means) in node_means.iter().enumerate() {
        let weight = if node == 0 || node == cfg.q_nodes - 1 {
            h / 2.0
        } else {
            h
        };
        for (p, m) in phi.iter_mut().zip(means) {
            *p += weight * m;
        }
    }
    phi
}

/// Evaluate every coalition the accumulation pass will touch — each sample
/// and its `n` single-flip variants — as one deduplicated `eval_batch`
/// call, returning the values keyed by mask.
fn batch_neighbourhoods<U: Utility + ?Sized>(
    u: &U,
    n: usize,
    samples: &[Coalition],
) -> HashMap<u128, f64> {
    let mut batch: Vec<Coalition> = Vec::with_capacity(samples.len() * (n + 1));
    let mut seen: HashSet<u128> = HashSet::with_capacity(samples.len() * (n + 1));
    let mut push = |batch: &mut Vec<Coalition>, s: Coalition| {
        if seen.insert(s.0) {
            batch.push(s);
        }
    };
    for &s in samples {
        push(&mut batch, s);
        for i in 0..n {
            push(
                &mut batch,
                if s.contains(i) {
                    s.without(i)
                } else {
                    s.with(i)
                },
            );
        }
    }
    let values = u.eval_batch(&batch);
    batch.iter().zip(values).map(|(s, v)| (s.0, v)).collect()
}

/// Record every client's marginal contribution around coalition `s` (the
/// shared-sample trick): for `i ∈ s` the base coalition is `s\{i}` (a
/// valid `S_q ⊆ N\{i}` draw), for `i ∉ s` it is `s` itself — so every
/// sample informs every client, including at the grid ends `q ∈ {0, 1}`.
/// Reads from the pre-evaluated value map.
fn accumulate(
    values: &HashMap<u128, f64>,
    s: Coalition,
    n: usize,
    sums: &mut [f64],
    counts: &mut [usize],
) {
    let base = values[&s.0];
    for i in 0..n {
        if s.contains(i) {
            sums[i] += base - values[&s.without(i).0];
        } else {
            sums[i] += values[&s.with(i).0] - base;
        }
        counts[i] += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::exact_mc_sv;
    use crate::metrics::l2_relative_error;
    use crate::utility::{AdditiveUtility, SaturatingUtility, TableUtility};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn additive_game_is_exact_per_sample() {
        let w = vec![0.2, 0.3, 0.5];
        let u = AdditiveUtility::new(0.1, w.clone());
        let mut rng = StdRng::seed_from_u64(0);
        let phi = owen_sampling(&u, &OwenConfig::new(3, 2), &mut rng);
        for (p, e) in phi.iter().zip(&w) {
            assert!((p - e).abs() < 1e-12, "{phi:?}");
        }
    }

    #[test]
    fn converges_to_exact_shapley() {
        let u = TableUtility::paper_table1();
        let exact = exact_mc_sv(&u);
        let mut rng = StdRng::seed_from_u64(1);
        let phi = owen_sampling(&u, &OwenConfig::new(21, 400), &mut rng);
        let err = l2_relative_error(&phi, &exact);
        assert!(err < 0.05, "error {err}: {phi:?} vs {exact:?}");
    }

    #[test]
    fn antithetic_reduces_variance() {
        let u = SaturatingUtility::uniform(6, 0.1, 0.8, 0.8);
        let exact = exact_mc_sv(&u);
        let spread = |antithetic: bool| -> f64 {
            let runs = 40;
            let mut errs = Vec::with_capacity(runs);
            for r in 0..runs {
                let mut rng = StdRng::seed_from_u64(100 + r as u64);
                let cfg = if antithetic {
                    OwenConfig::new(5, 4).with_antithetic()
                } else {
                    // Same evaluation budget: double the plain samples.
                    OwenConfig::new(5, 8)
                };
                let phi = owen_sampling(&u, &cfg, &mut rng);
                errs.push(l2_relative_error(&phi, &exact));
            }
            crate::metrics::variance(&errs)
        };
        let v_plain = spread(false);
        let v_anti = spread(true);
        assert!(
            v_anti < v_plain * 1.5,
            "antithetic variance {v_anti} should not exceed plain {v_plain} substantially"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let u = TableUtility::paper_table1();
        let cfg = OwenConfig::new(5, 10);
        let a = owen_sampling(&u, &cfg, &mut StdRng::seed_from_u64(9));
        let b = owen_sampling(&u, &cfg, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }

    #[test]
    fn single_client() {
        let u = TableUtility::new(1, vec![0.3, 0.9]);
        let mut rng = StdRng::seed_from_u64(3);
        let phi = owen_sampling(&u, &OwenConfig::new(2, 4), &mut rng);
        assert!((phi[0] - 0.6).abs() < 1e-9);
    }
}
