//! Offline stand-in for the `rayon` crate.
//!
//! The build environment has no crates.io access, so this crate implements
//! the rayon API subset the workspace uses on top of `std::thread::scope`:
//!
//! * `slice.par_iter().map(f).collect::<Vec<_>>()` (order-preserving);
//! * `slice.par_iter().map(f).for_each(g)` / `.sum()`;
//! * [`ThreadPoolBuilder`] → [`ThreadPool::install`] to pin the degree of
//!   parallelism for a scope (used by the determinism tests to compare
//!   1-, 2- and N-thread runs);
//! * [`current_num_threads`].
//!
//! Work distribution mirrors real rayon's effect, not its deque
//! machinery: every parallel call runs a **shared-index stealing loop** —
//! workers claim small index blocks from one atomic counter until the
//! input is drained — so a straggler item (a large coalition's FedAvg
//! cycle, say) delays only the worker that claimed it while the rest of
//! the batch flows on. Results are scattered back by index, so `collect`
//! stays order-preserving, which the bit-identical determinism guarantee
//! relies on. (Callers that know their items' costs — the FL engine's
//! size-sorted lane blocks — sort before splitting, making the steal loop
//! a backstop rather than the primary balancing mechanism.)
//!
//! Like real rayon, the default thread count honours the
//! `RAYON_NUM_THREADS` environment variable (read once per process) and
//! falls back to `available_parallelism`.
//!
//! To migrate to the real crate: delete the `rayon` entry under
//! `[workspace.dependencies]`; the call sites compile unchanged.

use std::cell::Cell;
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

thread_local! {
    /// Parallelism override installed by [`ThreadPool::install`]; 0 means
    /// "use the machine default".
    static INSTALLED_THREADS: Cell<usize> = const { Cell::new(0) };
}

/// Process-wide default thread count: `RAYON_NUM_THREADS` if set to a
/// positive integer (real rayon's global-pool knob), else the machine's
/// available parallelism.
fn default_num_threads() -> usize {
    static DEFAULT: OnceLock<usize> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
            if let Ok(n) = v.parse::<usize>() {
                if n >= 1 {
                    return n;
                }
            }
        }
        std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
    })
}

/// Number of threads parallel calls on this thread will fan out to.
pub fn current_num_threads() -> usize {
    let installed = INSTALLED_THREADS.with(|t| t.get());
    if installed > 0 {
        installed
    } else {
        default_num_threads()
    }
}

/// Builder mirroring `rayon::ThreadPoolBuilder` (subset).
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

/// Error type for [`ThreadPoolBuilder::build`]; construction cannot fail
/// in this shim, the type exists for signature compatibility.
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error (unreachable in shim)")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    /// `0` keeps the machine default, as in real rayon.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: if self.num_threads == 0 {
                default_num_threads()
            } else {
                self.num_threads
            },
        })
    }
}

/// A fixed degree of parallelism; [`ThreadPool::install`] scopes it onto
/// the calling thread (this shim spawns threads per call, so "pool" is a
/// policy, not a set of live workers).
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }

    /// Run `op` with parallel calls fanning out to this pool's thread
    /// count. Restores the previous setting afterwards (panic-safe).
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        struct Restore(usize);
        impl Drop for Restore {
            fn drop(&mut self) {
                INSTALLED_THREADS.with(|t| t.set(self.0));
            }
        }
        let _restore = Restore(INSTALLED_THREADS.with(|t| t.replace(self.num_threads)));
        op()
    }
}

/// Order-preserving parallel map over a slice via a shared-index stealing
/// loop: `current_num_threads()` scoped workers repeatedly claim the next
/// block of indices from one atomic counter and map them, so uneven
/// per-item costs self-balance instead of being locked into static
/// chunks. Each worker tags results with their indices; the caller
/// scatters them back, so output order always matches input order.
fn par_map_slice<'a, T: Sync, R: Send, F>(slice: &'a [T], f: &F) -> Vec<R>
where
    F: Fn(&'a T) -> R + Sync,
{
    let threads = current_num_threads().min(slice.len().max(1));
    if threads <= 1 || slice.len() <= 1 {
        return slice.iter().map(f).collect();
    }
    // Small steal blocks: fine enough that one expensive item cannot trap
    // cheap work behind it, coarse enough to keep counter traffic low when
    // items are tiny.
    let block = slice.len().div_ceil(threads * 8).max(1);
    let next = AtomicUsize::new(0);
    let mut tagged: Vec<Vec<(usize, R)>> = Vec::with_capacity(threads);
    std::thread::scope(|scope| {
        let next = &next;
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(move || {
                    let mut got: Vec<(usize, R)> = Vec::new();
                    loop {
                        let start = next.fetch_add(block, Ordering::Relaxed);
                        if start >= slice.len() {
                            break;
                        }
                        let end = (start + block).min(slice.len());
                        for (i, item) in slice[start..end].iter().enumerate() {
                            got.push((start + i, f(item)));
                        }
                    }
                    got
                })
            })
            .collect();
        for h in handles {
            // A panic in a worker propagates to the caller, like rayon.
            tagged.push(h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)));
        }
    });
    let mut out: Vec<Option<R>> = Vec::with_capacity(slice.len());
    out.resize_with(slice.len(), || None);
    for piece in tagged {
        for (i, r) in piece {
            debug_assert!(out[i].is_none(), "index {i} produced twice");
            out[i] = Some(r);
        }
    }
    out.into_iter()
        .map(|r| r.expect("stealing loop covered every index"))
        .collect()
}

/// Parallel iterator over `&[T]` (entry point of the `par_iter` chain).
pub struct SliceParIter<'a, T: Sync> {
    slice: &'a [T],
}

impl<'a, T: Sync> SliceParIter<'a, T> {
    pub fn map<R: Send, F: Fn(&'a T) -> R + Sync>(self, f: F) -> ParMap<'a, T, F> {
        ParMap {
            slice: self.slice,
            f,
        }
    }

    pub fn for_each<F: Fn(&'a T) + Sync>(self, f: F) {
        let _ = self.map(&f).run();
    }
}

/// The `.map(f)` stage of a parallel slice iterator.
pub struct ParMap<'a, T: Sync, F> {
    slice: &'a [T],
    f: F,
}

impl<'a, T: Sync, R: Send, F: Fn(&'a T) -> R + Sync> ParMap<'a, T, F> {
    fn run(self) -> Vec<R> {
        par_map_slice(self.slice, &self.f)
    }

    /// Order-preserving collect. `C: From<Vec<R>>` covers the
    /// `collect::<Vec<_>>()` form used throughout the workspace.
    pub fn collect<C: From<Vec<R>>>(self) -> C {
        C::from(self.run())
    }

    pub fn for_each<G: Fn(R) + Sync>(self, g: G) {
        for r in self.run() {
            g(r);
        }
    }

    pub fn sum<S: std::iter::Sum<R>>(self) -> S {
        self.run().into_iter().sum()
    }
}

pub mod iter {
    use super::SliceParIter;

    /// `par_iter()` on `&self` collections (subset of
    /// `rayon::iter::IntoParallelRefIterator`).
    pub trait IntoParallelRefIterator<'a> {
        type Item: Sync + 'a;
        fn par_iter(&'a self) -> SliceParIter<'a, Self::Item>;
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
        type Item = T;
        fn par_iter(&'a self) -> SliceParIter<'a, T> {
            SliceParIter { slice: self }
        }
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
        type Item = T;
        fn par_iter(&'a self) -> SliceParIter<'a, T> {
            SliceParIter { slice: self }
        }
    }
}

pub mod prelude {
    pub use crate::iter::IntoParallelRefIterator;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<usize> = (0..1000).collect();
        let doubled: Vec<usize> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn install_scopes_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.current_num_threads(), 3);
        let outside = current_num_threads();
        let inside = pool.install(current_num_threads);
        assert_eq!(inside, 3);
        assert_eq!(current_num_threads(), outside, "restored after install");
    }

    #[test]
    fn single_thread_pool_still_maps_everything() {
        let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let v: Vec<i64> = (0..100).collect();
        let s: i64 = pool.install(|| v.par_iter().map(|&x| x).sum());
        assert_eq!(s, 4950);
    }

    #[test]
    fn stealing_loop_preserves_order_under_uneven_costs() {
        // Items with wildly different costs (front-loaded) must still come
        // back in input order — the stealing loop scatters by index.
        let v: Vec<u64> = (0..257).collect();
        let expect: Vec<u64> = v
            .iter()
            .map(|&x| if x < 8 { x * 3 } else { x + 1 })
            .collect();
        for n in [2usize, 3, 5, 16] {
            let pool = ThreadPoolBuilder::new().num_threads(n).build().unwrap();
            let got: Vec<u64> = pool.install(|| {
                v.par_iter()
                    .map(|&x| {
                        if x < 8 {
                            // Simulate a straggler item.
                            std::thread::sleep(std::time::Duration::from_millis(1));
                            x * 3
                        } else {
                            x + 1
                        }
                    })
                    .collect()
            });
            assert_eq!(got, expect, "thread count {n}");
        }
    }

    #[test]
    fn results_identical_across_thread_counts() {
        let v: Vec<u64> = (0..512).collect();
        let expect: Vec<u64> = v.iter().map(|&x| x.wrapping_mul(x)).collect();
        for n in [1usize, 2, 4, 7] {
            let pool = ThreadPoolBuilder::new().num_threads(n).build().unwrap();
            let got: Vec<u64> = pool.install(|| v.par_iter().map(|&x| x.wrapping_mul(x)).collect());
            assert_eq!(got, expect, "thread count {n}");
        }
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let empty: Vec<u32> = Vec::new();
        let out: Vec<u32> = empty.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
        let one = [42u32];
        let out: Vec<u32> = one.par_iter().map(|&x| x + 1).collect();
        assert_eq!(out, vec![43]);
    }

    #[test]
    fn for_each_visits_all() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let count = AtomicUsize::new(0);
        let v: Vec<usize> = (0..257).collect();
        v.par_iter().for_each(|_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 257);
    }
}
