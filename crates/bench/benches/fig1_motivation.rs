//! Fig. 1(b) — the motivating scatter: calculation time vs approximation
//! error for every approximation algorithm on FEMNIST-like data with ten
//! FL clients. The paper's point: existing solutions fail to reach the
//! bottom-left corner (fast *and* accurate) — IPSS does.

// Bench driver: measurement harness code panics on setup failure by
// design; unwrap/expect are the error mechanism here.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use fedval_bench::{
    base_seed, exact_values_neural, femnist, fmt_err, fmt_secs, gamma_for, quick, run_neural,
    Algorithm, NeuralModel, Table,
};
use fedval_core::metrics::l2_relative_error;

fn main() {
    let seed = base_seed();
    let n = if quick() { 6 } else { 10 };
    let problem = femnist(n, NeuralModel::Mlp, seed);
    let exact = exact_values_neural(&problem);
    let gamma = gamma_for(n);

    let mut table = Table::new(["Algorithm", "Time(s)", "Error(l2)", "Evaluations"]);
    for alg in Algorithm::ALL {
        if alg == Algorithm::PermShapley {
            continue; // infeasible point; Fig. 1(b) plots approximations
        }
        let result = run_neural(alg, &problem, gamma, seed ^ 0xF16);
        let err = if alg.is_exact() {
            None
        } else {
            Some(l2_relative_error(&result.values, &exact))
        };
        table.row([
            alg.name().to_string(),
            fmt_secs(result.seconds()),
            fmt_err(err),
            result.evaluations.to_string(),
        ]);
    }
    table.print(&format!(
        "Fig. 1(b) — time vs error, FEMNIST-like, n = {n}, γ = {gamma} (MLP)"
    ));
    println!(
        "Shape check: IPSS should sit in the bottom-left corner —\n\
         lower error than every baseline at a time at or below the fastest\n\
         sampling baselines."
    );
}
