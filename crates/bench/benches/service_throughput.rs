//! service_throughput — tracks what the multi-valuation service is for:
//! many valuation requests against one FL training setup, answered
//! cheaper together than alone.
//!
//! One workload (six requests: exact MC/CC sweeps, IPSS, stratified MC,
//! Owen, LOO over one FedAvg utility), four serving modes:
//!
//! * **solo** — every request on its own fresh server (fresh coalition
//!   cache, fresh trajectory cache): the no-sharing baseline a
//!   per-request deployment would pay;
//! * **sequential** — one long-lived server, requests submitted one at a
//!   time (1 concurrent run): sharing via the caches only;
//! * **concurrent** — the same server fed all requests at once (N
//!   concurrent runs): sharing plus coalescing into merged lane blocks,
//!   under the pure all-runs-parked barrier;
//! * **windowed** — concurrent again, with the bounded-latency flush
//!   window (5 ms): the barrier still coalesces bursts, but no parked
//!   batch can wait longer than the window on a straggler.
//!
//! All four modes must return **bit-identical** values per request (the
//! determinism contract), and the shared modes must train strictly fewer
//! models and local updates than the solo sum. Requests/sec per mode, the
//! training counts, the dedup factor and per-mode park-wait latency
//! percentiles (p50/p99 of each run's longest wait at the coalescer — the
//! tail the flush window exists to bound) go to `BENCH_service.json` at
//! the workspace root, stamped with `machine_cores`/`rayon_num_threads`
//! like every tracking report.
//!
//! A fifth section measures **anytime** valuation: for Owen and
//! stratified-MC requests over a spread of seeds, a fixed-budget run is
//! compared with a same-seed run stopped by `CiAtMost(ε)` at the CI the
//! fixed budget *guarantees* (twice the full run's final half-width —
//! both runs satisfy the target, the anytime run just stops as soon as
//! it does). p50/p99 `samples_used` for both and the evals-saved factor
//! go into the report; the Owen problem must save ≥ 2×.
//!
//! Knobs: `FEDVAL_SERVICE_N=<clients>` (default 7; `FEDVAL_QUICK=1` drops
//! to 5), `FEDVAL_SERVICE_JSON=<path>` to redirect the report.

// Bench driver: measurement harness code panics on setup failure by
// design; unwrap/expect are the error mechanism here.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::io::Write as _;
use std::time::{Duration, Instant};

use fedval_bench::quick;
use fedval_core::service::{Estimator, ValuationRequest, ValuationResponse};
use fedval_data::{MnistLike, SyntheticSetup};
use fedval_fl::service::{serve, FlServiceConfig};
use fedval_fl::{FedAvgConfig, FlUtility, ModelSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;

const WINDOW: Duration = Duration::from_millis(5);

fn n_clients() -> usize {
    if let Ok(v) = std::env::var("FEDVAL_SERVICE_N") {
        return v.parse().expect("FEDVAL_SERVICE_N must be a client count");
    }
    if quick() {
        5
    } else {
        7
    }
}

fn fl_utility(n: usize) -> FlUtility {
    let gen = MnistLike::new(0x5EF);
    let (train, test) = gen.generate_split(24 * n, 96, 0x5F0);
    let mut rng = StdRng::seed_from_u64(0x5F1);
    let clients = SyntheticSetup::SameSizeSameDist.partition(&train, n, &mut rng);
    FlUtility::new(
        clients,
        test,
        ModelSpec::default_mlp(),
        FedAvgConfig {
            rounds: 2,
            local_epochs: 1,
            seed: 0x5F2,
            ..Default::default()
        },
    )
}

fn requests(n: usize) -> Vec<ValuationRequest> {
    let gamma = (1usize << n) / 4;
    vec![
        ValuationRequest::new(Estimator::ExactMc, 0, 1),
        ValuationRequest::new(Estimator::ExactCc, 0, 2),
        ValuationRequest::new(Estimator::Ipss, gamma, 3),
        ValuationRequest::new(Estimator::StratifiedMc, gamma, 4),
        ValuationRequest::new(Estimator::Owen, n * (n + 1), 5),
        ValuationRequest::new(Estimator::Loo, 0, 6),
    ]
}

struct Mode {
    secs: f64,
    values: Vec<Vec<f64>>,
    evaluations: usize,
    local_trainings: usize,
    /// Each run's longest park wait at the coalescer, in seconds.
    park_waits: Vec<f64>,
}

/// Percentile (0..=100) of a small sample, nearest-rank.
fn percentile(samples: &[f64], p: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let rank = ((p / 100.0 * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Serve the workload: `solo` = fresh server per request (the
/// no-sharing baseline), otherwise one server with all requests in
/// flight (`concurrent`, optionally windowed) or one at a time.
fn run_mode(
    n: usize,
    reqs: &[ValuationRequest],
    concurrent: bool,
    solo: bool,
    window: Option<Duration>,
) -> Mode {
    let cfg = FlServiceConfig {
        flush_max_wait: window,
        ..Default::default()
    };
    let start = Instant::now();
    let mut values = Vec::new();
    let mut park_waits = Vec::new();
    let mut evaluations = 0;
    let mut local_trainings = 0;
    let mut finish = |responses: Vec<ValuationResponse>, evals: usize, trainings: usize| {
        park_waits.extend(responses.iter().map(|r| r.run.park_wait_max.as_secs_f64()));
        values.extend(responses.into_iter().map(|r| r.values));
        evaluations += evals;
        local_trainings += trainings;
    };
    if solo {
        for req in reqs {
            let (server, _cache) = serve(fl_utility(n), cfg);
            let resp = server.call(req.clone()).expect("healthy run");
            let stats = server.stats();
            finish(
                vec![resp],
                stats.eval.evaluations,
                stats.traj.expect("traj wired").local_trainings,
            );
            server.shutdown();
        }
    } else {
        let (server, _cache) = serve(fl_utility(n), cfg);
        let responses: Vec<ValuationResponse> = if concurrent {
            let tickets: Vec<_> = reqs.iter().map(|r| server.submit(r.clone())).collect();
            tickets
                .into_iter()
                .map(|t| t.wait().expect("healthy run"))
                .collect()
        } else {
            reqs.iter()
                .map(|r| server.call(r.clone()).expect("healthy run"))
                .collect()
        };
        let stats = server.stats();
        finish(
            responses,
            stats.eval.evaluations,
            stats.traj.expect("traj wired").local_trainings,
        );
        server.shutdown();
    }
    Mode {
        secs: start.elapsed().as_secs_f64(),
        values,
        evaluations,
        local_trainings,
        park_waits,
    }
}

/// One estimator's fixed-budget vs CI-stopped comparison, over seeds.
struct Anytime {
    label: &'static str,
    n_clients: usize,
    budget: usize,
    seeds: usize,
    /// `samples_used` of each full (fixed-budget) run.
    fixed_samples: Vec<f64>,
    /// `samples_used` of each same-seed CI-stopped run.
    stopped_samples: Vec<f64>,
    /// Runs whose stopping rule actually fired before the schedule end.
    stopped_early: usize,
}

impl Anytime {
    /// Mean evals of the fixed-budget runs over the CI-stopped runs —
    /// the work saved at a matched CI target.
    fn saved_factor(&self) -> f64 {
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
        mean(&self.fixed_samples) / mean(&self.stopped_samples).max(1.0)
    }
}

/// Fixed budget vs CI-stopped at a matched target, on a shared server
/// (the coalition/trajectory caches change cost, not `samples_used`,
/// which counts the estimator's own schedule).
fn run_anytime(
    server: &fedval_fl::service::FlValuationServer,
    label: &'static str,
    n_clients: usize,
    estimator: Estimator,
    budget: usize,
    seeds: usize,
) -> Anytime {
    use fedval_core::anytime::StoppingRule;
    let mut out = Anytime {
        label,
        n_clients,
        budget,
        seeds,
        fixed_samples: Vec::new(),
        stopped_samples: Vec::new(),
        stopped_early: 0,
    };
    let samples = |resp: &ValuationResponse| -> f64 {
        resp.progress
            .as_ref()
            .map(|s| s.samples_used as f64)
            .expect("streaming response carries a snapshot")
    };
    for seed in 0..seeds as u64 {
        let req = ValuationRequest::new(estimator, budget, 0xA0 + seed);
        // The fixed-budget run: what a non-anytime deployment pays, and
        // the CI it certifies at the end.
        let full = server
            .call(req.clone().with_stopping(StoppingRule::stream_only()))
            .expect("healthy run");
        let h_full = full
            .progress
            .as_ref()
            .expect("streaming response carries a snapshot")
            .max_halfwidth()
            .unwrap_or(f64::INFINITY);
        out.fixed_samples.push(samples(&full));
        // Matched target: both runs certify CI ≤ 2·h_full; the anytime
        // run stops at the first batch boundary that reaches it.
        let eps = if h_full.is_finite() {
            2.0 * h_full
        } else {
            f64::INFINITY
        };
        let stopped = server
            .call(req.with_stopping(StoppingRule::ci_at_most(eps)))
            .expect("healthy run");
        out.stopped_samples.push(samples(&stopped));
        out.stopped_early += stopped.run.stopped_early as usize;
    }
    out
}

fn print_anytime(a: &Anytime) {
    println!(
        "anytime {:13} n {:2} budget {:4}  fixed p50 {:6.0} p99 {:6.0}  \
         stopped p50 {:6.0} p99 {:6.0}  saved {:.2}x  ({}/{} stopped early)",
        a.label,
        a.n_clients,
        a.budget,
        percentile(&a.fixed_samples, 50.0),
        percentile(&a.fixed_samples, 99.0),
        percentile(&a.stopped_samples, 50.0),
        percentile(&a.stopped_samples, 99.0),
        a.saved_factor(),
        a.stopped_early,
        a.seeds,
    );
}

fn anytime_json(a: &Anytime) -> String {
    format!(
        "{{\"estimator\": \"{}\", \"n_clients\": {}, \"budget\": {}, \"seeds\": {}, \
         \"fixed_samples_p50\": {:.1}, \"fixed_samples_p99\": {:.1}, \
         \"stopped_samples_p50\": {:.1}, \"stopped_samples_p99\": {:.1}, \
         \"evals_saved_factor\": {:.4}, \"stopped_early\": {}}}",
        a.label,
        a.n_clients,
        a.budget,
        a.seeds,
        percentile(&a.fixed_samples, 50.0),
        percentile(&a.fixed_samples, 99.0),
        percentile(&a.stopped_samples, 50.0),
        percentile(&a.stopped_samples, 99.0),
        a.saved_factor(),
        a.stopped_early,
    )
}

/// A symmetric heteroscedastic game for the adaptive section: the value
/// depends on the coalition *size* only, with hash noise confined to
/// sizes 1–2. Owen contributions are then identical across clients (no
/// between-client spread to confuse the planner's pooled variances)
/// while their per-draw variance concentrates at the low-`q` grid nodes:
/// the `q = 0` and `q = 1` nodes draw a constant coalition size and are
/// exactly noiseless, the low-`q` interior node straddles the noisy
/// sizes and carries nearly all of the spread — the regime Neyman
/// allocation exists for.
struct SizeNoisyUtility {
    n: usize,
}

impl fedval_core::utility::Utility for SizeNoisyUtility {
    fn n_clients(&self) -> usize {
        self.n
    }
    fn eval(&self, s: fedval_core::coalition::Coalition) -> f64 {
        let base = s.size() as f64 * 0.5;
        if (1..=2).contains(&s.size()) {
            // splitmix-style size hash: deterministic, seed-free noise.
            let mut x = (s.size() as u64) ^ 0x9E37_79B9_7F4A_7C15;
            x ^= x >> 33;
            x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
            x ^= x >> 33;
            base + (x as f64 / u64::MAX as f64 - 0.5) * 0.6
        } else {
            base
        }
    }
}

/// Uniform vs adaptive (Neyman re-planned) stratified MC at a matched CI
/// target, over seeds, on the heteroscedastic game.
struct AdaptiveBench {
    n_clients: usize,
    budget: usize,
    seeds: usize,
    uniform_samples: Vec<f64>,
    adaptive_samples: Vec<f64>,
    /// Final cumulative per-stratum draw counts of the first seed's
    /// adaptive run — the allocation trace the planner converged to.
    final_allocation: Vec<usize>,
}

impl AdaptiveBench {
    fn saved_factor(&self) -> f64 {
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
        mean(&self.uniform_samples) / mean(&self.adaptive_samples).max(1.0)
    }
}

/// For each seed: derive the target CI from a full uniform run (exactly
/// the half-width its whole budget certifies), then race the uniform and
/// the adaptive schedule to that target under `CiAtMost` and compare
/// `samples_used` — "the evaluations needed to match what the uniform
/// budget buys". Drives the streaming estimators directly: the steering
/// question is about the schedule, and an 8-node grid separates the
/// noisy low-q nodes from the noiseless rest far better than the
/// service's fixed 4-node derivation.
fn run_adaptive_bench(n: usize, q_nodes: usize, per_node: usize, seeds: usize) -> AdaptiveBench {
    use fedval_core::adaptive::AdaptivePolicy;
    use fedval_core::anytime::{Control, StoppingRule};
    use fedval_core::owen::{owen_sampling_streaming, owen_sampling_streaming_adaptive};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let u = SizeNoisyUtility { n };
    let cfg = fedval_core::owen::OwenConfig::new(q_nodes, per_node);
    // Per-client CIs need two observations per node before they go
    // finite, so the exploration floor must keep feeding each node until
    // two draws (2·n pooled contributions) have landed.
    let policy = AdaptivePolicy {
        min_observations: 2 * n,
        ..AdaptivePolicy::default()
    };
    let mut out = AdaptiveBench {
        n_clients: n,
        budget: q_nodes * per_node * (n + 1),
        seeds,
        uniform_samples: Vec::new(),
        adaptive_samples: Vec::new(),
        final_allocation: Vec::new(),
    };
    for seed in 0..seeds as u64 {
        // Derive the target from a *different* seed than the raced runs:
        // a same-seed uniform race would retrace the very trajectory the
        // target came from and stop at its first favourable dip, biasing
        // the comparison toward uniform.
        let full =
            owen_sampling_streaming(&u, &cfg, &mut StdRng::seed_from_u64(0xE0 + seed), |_| {
                Control::Continue
            });
        let eps = full.ci_halfwidths.iter().fold(0.0f64, |a, &b| a.max(b));
        assert!(eps.is_finite(), "the full run must certify a CI");
        let rule = StoppingRule::ci_at_most(eps);
        let race = |s: &fedval_core::anytime::ProgressSnapshot| {
            if rule.should_stop(s) {
                Control::Stop
            } else {
                Control::Continue
            }
        };
        let uniform =
            owen_sampling_streaming(&u, &cfg, &mut StdRng::seed_from_u64(0xB0 + seed), race);
        out.uniform_samples.push(uniform.samples_used as f64);
        let adaptive = owen_sampling_streaming_adaptive(
            &u,
            &cfg,
            &policy,
            &mut StdRng::seed_from_u64(0xB0 + seed),
            race,
        );
        out.adaptive_samples.push(adaptive.samples_used as f64);
        if seed == 0 {
            out.final_allocation = adaptive
                .allocation
                .expect("adaptive outcome carries the allocation");
        }
    }
    out
}

fn print_adaptive(a: &AdaptiveBench) {
    println!(
        "adaptive owen         n {:2} budget {:4}  uniform p50 {:6.0} p99 {:6.0}  \
         adaptive p50 {:6.0} p99 {:6.0}  saved {:.2}x  final allocation {:?}",
        a.n_clients,
        a.budget,
        percentile(&a.uniform_samples, 50.0),
        percentile(&a.uniform_samples, 99.0),
        percentile(&a.adaptive_samples, 50.0),
        percentile(&a.adaptive_samples, 99.0),
        a.saved_factor(),
        a.final_allocation,
    );
}

fn adaptive_json(a: &AdaptiveBench) -> String {
    let alloc: Vec<String> = a.final_allocation.iter().map(usize::to_string).collect();
    format!(
        "{{\"estimator\": \"owen\", \"n_clients\": {}, \"budget\": {}, \"seeds\": {}, \
         \"uniform_samples_p50\": {:.1}, \"uniform_samples_p99\": {:.1}, \
         \"adaptive_samples_p50\": {:.1}, \"adaptive_samples_p99\": {:.1}, \
         \"evals_saved_factor\": {:.4}, \"final_allocation\": [{}]}}",
        a.n_clients,
        a.budget,
        a.seeds,
        percentile(&a.uniform_samples, 50.0),
        percentile(&a.uniform_samples, 99.0),
        percentile(&a.adaptive_samples, 50.0),
        percentile(&a.adaptive_samples, 99.0),
        a.saved_factor(),
        alloc.join(", "),
    )
}

fn print_mode(label: &str, m: &Mode, r: usize) {
    println!(
        "{label:11} {:8.3}s  {:6.2} req/s  {:5} models  {:6} local trainings  \
         park wait p50 {:6.1}ms p99 {:6.1}ms",
        m.secs,
        r as f64 / m.secs,
        m.evaluations,
        m.local_trainings,
        percentile(&m.park_waits, 50.0) * 1e3,
        percentile(&m.park_waits, 99.0) * 1e3,
    );
}

fn mode_json(m: &Mode, r: usize) -> String {
    format!(
        "{{\"seconds\": {:.6}, \"requests_per_sec\": {:.4}, \"models_trained\": {}, \
         \"local_trainings\": {}, \"park_wait_p50_ms\": {:.3}, \"park_wait_p99_ms\": {:.3}}}",
        m.secs,
        r as f64 / m.secs,
        m.evaluations,
        m.local_trainings,
        percentile(&m.park_waits, 50.0) * 1e3,
        percentile(&m.park_waits, 99.0) * 1e3,
    )
}

fn main() {
    let n = n_clients();
    let reqs = requests(n);
    let r = reqs.len();
    println!("service_throughput: n = {n} clients, {r} valuation requests");

    let solo = run_mode(n, &reqs, false, true, None);
    print_mode("solo", &solo, r);
    let sequential = run_mode(n, &reqs, false, false, None);
    print_mode("sequential", &sequential, r);
    let concurrent = run_mode(n, &reqs, true, false, None);
    print_mode("concurrent", &concurrent, r);
    let windowed = run_mode(n, &reqs, true, false, Some(WINDOW));
    print_mode("windowed", &windowed, r);

    let identical = solo.values == sequential.values
        && solo.values == concurrent.values
        && solo.values == windowed.values;
    let dedup_models = solo.evaluations as f64 / concurrent.evaluations as f64;
    let dedup_trainings = solo.local_trainings as f64 / concurrent.local_trainings as f64;
    println!(
        "dedup vs solo: {dedup_models:.2}x models, {dedup_trainings:.2}x local trainings, \
         values bit-identical: {identical}"
    );
    assert!(identical, "served values diverged from solo execution");
    assert!(
        concurrent.evaluations < solo.evaluations,
        "shared coalition cache must dedup across runs"
    );
    assert!(
        concurrent.local_trainings < solo.local_trainings,
        "shared trajectory cache must dedup across runs"
    );

    // Anytime section: fixed budget vs CI-stopped at a matched target,
    // per estimator over a seed spread, on a shared server per problem —
    // the caches cut wall-clock cost but leave `samples_used` untouched.
    // Owen gets a few more clients than the throughput workload: its
    // savings question is only interesting while the schedule samples
    // the coalition space rather than enumerating it. Stratified MC
    // stays at the workload size — its per-(client, stratum) CI only
    // goes finite once the strata are nearly covered, so the honest
    // comparison runs where that happens.
    let seeds = 12;
    let n_any = n + 3;
    let (server, _cache) = serve(fl_utility(n_any), FlServiceConfig::default());
    let owen = run_anytime(
        &server,
        "owen",
        n_any,
        Estimator::Owen,
        4 * (n_any + 1) * 16,
        seeds,
    );
    print_anytime(&owen);
    server.shutdown();
    let (server, _cache) = serve(fl_utility(n), FlServiceConfig::default());
    let stratified = run_anytime(
        &server,
        "stratified_mc",
        n,
        Estimator::StratifiedMc,
        30 * n,
        seeds,
    );
    print_anytime(&stratified);
    server.shutdown();
    assert!(
        owen.saved_factor() >= 2.0,
        "anytime Owen must save >= 2x evaluations at a matched CI, got {:.2}x",
        owen.saved_factor()
    );

    // Adaptive section: uniform vs Neyman-re-planned Owen racing to the
    // same CI target on a heteroscedastic game (noise confined to the
    // small coalition sizes, so the low-q grid nodes carry nearly all
    // the contribution variance). Same per-node depth as the anytime
    // Owen workload: 16 draws/node.
    let adaptive = run_adaptive_bench(10, 8, 16, seeds);
    print_adaptive(&adaptive);
    assert!(
        adaptive.saved_factor() >= 1.5,
        "adaptive allocation must save >= 1.5x evaluations at a matched CI, got {:.2}x",
        adaptive.saved_factor()
    );

    let path = std::env::var("FEDVAL_SERVICE_JSON")
        .unwrap_or_else(|_| format!("{}/../../BENCH_service.json", env!("CARGO_MANIFEST_DIR")));
    let report = format!(
        "{{\n  \"bench\": \"service_throughput\",\n  \"scenario\": \"6 valuation requests (exact MC/CC, IPSS, stratified MC, Owen, LOO) over one FedAvg utility: fresh server per request (solo) vs one server at 1 (sequential) and N (concurrent) requests in flight, plus concurrent under a {window_ms} ms bounded-latency flush window (windowed), plus fixed-budget vs CiAtMost-stopped anytime runs at a matched CI target, plus uniform vs Neyman-adaptive Owen schedules racing to a matched CI on a heteroscedastic game\",\n  \"n_clients\": {n},\n  \"requests\": {r},\n  \"flush_window_ms\": {window_ms},\n  {},\n  \"solo\": {},\n  \"sequential\": {},\n  \"concurrent\": {},\n  \"windowed\": {},\n  \"dedup_factor_models\": {dedup_models:.4},\n  \"dedup_factor_local_trainings\": {dedup_trainings:.4},\n  \"values_bit_identical\": {identical},\n  \"anytime\": [\n    {},\n    {}\n  ],\n  \"adaptive\": {}\n}}\n",
        fedval_bench::parallelism_json_fields(),
        mode_json(&solo, r),
        mode_json(&sequential, r),
        mode_json(&concurrent, r),
        mode_json(&windowed, r),
        anytime_json(&owen),
        anytime_json(&stratified),
        adaptive_json(&adaptive),
        window_ms = WINDOW.as_millis(),
    );
    let mut file = std::fs::File::create(&path).expect("create BENCH_service.json");
    file.write_all(report.as_bytes())
        .expect("write BENCH_service.json");
    println!("wrote {path}");
}
