//! Theorem 2: under FL linear regression, the MC-SV scheme has strictly
//! lower variance than the CC-SV scheme inside the stratified framework
//! (Alg. 1) — both analytic formulas (Eqs. 9–11) and Monte-Carlo
//! estimation helpers used by the Fig. 10 bench.
//!
//! The variance in Theorem 2 is over the randomness of *training* (the
//! per-sample errors `e_j` of Eq. 8), with the same `e_j` shared between
//! the two utility evaluations of a pair. MC pairs `(S∪{i}, S)` cancel the
//! shared samples, leaving only `Var[Σ_{j∈Dᵢ} e_j]`; CC pairs
//! `(S∪{i}, N\(S∪{i}))` sum *disjoint* samples and keep both sides'
//! variance — the source of the gap (Eq. 11).

use rand::rngs::StdRng;
use rand::SeedableRng;

use fedval_core::coalition::Coalition;
use fedval_core::metrics::variance;
use fedval_core::stratified::{stratified_sampling_values, Scheme, StratifiedConfig};
use fedval_core::utility::Utility;
use fedval_data::rand_ext::standard_normal;

/// Analytic variance of the MC-SV estimator for client `i` (Eq. 9) under
/// the linear model: each stratum contributes `|D_i|²σ²/(n²·m_{i,k}²)` per
/// sampled pair, i.e. `Σ_k |D_i|²σ²/(n²·m_k)` with `m_k` pairs per stratum.
pub fn analytic_var_mc(
    n: usize,
    sizes: &[usize],
    sigma2: f64,
    m_per_stratum: usize,
    i: usize,
) -> f64 {
    assert_eq!(sizes.len(), n);
    assert!(m_per_stratum >= 1);
    let di2 = (sizes[i] * sizes[i]) as f64;
    (1..=n)
        .map(|_k| di2 * sigma2 / ((n * n * m_per_stratum) as f64))
        .sum()
}

/// Analytic variance of the CC-SV estimator for client `i` (Eq. 10):
/// each stratum-`k` term carries `((|D_S|+|D_i|)² + (|D_N|−|D_S|−|D_i|)²)σ²`
/// with `|D_S∪{i}| = k·t` for equal client sizes `t`.
pub fn analytic_var_cc(
    n: usize,
    sizes: &[usize],
    sigma2: f64,
    m_per_stratum: usize,
    i: usize,
) -> f64 {
    assert_eq!(sizes.len(), n);
    assert!(m_per_stratum >= 1);
    let total: usize = sizes.iter().sum();
    let t = sizes[i];
    (1..=n)
        .map(|k| {
            let side = (k * t) as f64;
            let other = total as f64 - side;
            (side * side + other * other) * sigma2 / ((n * n * m_per_stratum) as f64)
        })
        .sum()
}

/// The Theorem 2 utility model (Eq. 8): `U(M_S) = −Σ_{j∈D_S} e_j`, where
/// the per-sample training errors `e_j` are random draws shared by every
/// coalition containing sample `j`. One instance = one training
/// realisation; redraw per run to estimate variance over training noise.
#[derive(Clone, Debug)]
pub struct TrainingErrorUtility {
    /// Per-client error sums `Σ_{j∈Dᵢ} e_j`.
    client_error_sums: Vec<f64>,
}

impl TrainingErrorUtility {
    /// Draw a fresh realisation: `n` clients with `sizes[i]` samples each,
    /// `e_j = |N(mu_e, sigma²)|` (absolute errors, as in mean absolute
    /// error).
    pub fn draw(sizes: &[usize], mu_e: f64, sigma: f64, rng: &mut StdRng) -> Self {
        let client_error_sums = sizes
            .iter()
            .map(|&t| {
                (0..t)
                    .map(|_| (mu_e + sigma * standard_normal(rng)).abs())
                    .sum()
            })
            .collect();
        TrainingErrorUtility { client_error_sums }
    }
}

impl Utility for TrainingErrorUtility {
    fn n_clients(&self) -> usize {
        self.client_error_sums.len()
    }

    fn eval(&self, s: Coalition) -> f64 {
        -s.members().map(|i| self.client_error_sums[i]).sum::<f64>()
    }
}

/// Monte-Carlo variance of the Alg. 1 estimator over *training noise*:
/// each run draws a fresh utility realisation from `factory(run)` and runs
/// the framework once; returns the per-client variance of the estimates,
/// averaged over clients (the quantity Fig. 10 plots against `γ`).
pub fn estimator_variance_over_runs<U, F>(
    factory: F,
    n: usize,
    scheme: Scheme,
    gamma: usize,
    runs: usize,
    seed: u64,
) -> f64
where
    U: Utility,
    F: Fn(usize) -> U,
{
    assert!(runs >= 2);
    let cfg = StratifiedConfig::uniform(n, gamma);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut estimates: Vec<Vec<f64>> = vec![Vec::with_capacity(runs); n];
    for run in 0..runs {
        let u = factory(run);
        assert_eq!(u.n_clients(), n);
        let values = stratified_sampling_values(&u, scheme, &cfg, &mut rng);
        for (per_client, v) in estimates.iter_mut().zip(values) {
            per_client.push(v);
        }
    }
    estimates.iter().map(|e| variance(e)).sum::<f64>() / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analytic_cc_strictly_dominates_mc() {
        // Theorem 2 / Eq. 11: Var_CC − Var_MC ≥ Σ |D_S|²σ²/(n²m²) > 0.
        for n in [3usize, 5, 10] {
            let sizes = vec![20usize; n];
            for m in [1usize, 4, 16] {
                let mc = analytic_var_mc(n, &sizes, 1.0, m, 0);
                let cc = analytic_var_cc(n, &sizes, 1.0, m, 0);
                assert!(
                    cc > mc,
                    "n={n}, m={m}: Var_CC = {cc} must exceed Var_MC = {mc}"
                );
            }
        }
    }

    #[test]
    fn analytic_variance_decreases_with_budget() {
        let sizes = vec![10usize; 6];
        let v1 = analytic_var_mc(6, &sizes, 1.0, 1, 0);
        let v4 = analytic_var_mc(6, &sizes, 1.0, 4, 0);
        assert!((v1 / v4 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn training_error_utility_is_additive_and_negative() {
        let mut rng = StdRng::seed_from_u64(0);
        let u = TrainingErrorUtility::draw(&[10, 20, 30], 1.0, 0.3, &mut rng);
        let v01 = u.eval(Coalition::from_members([0, 1]));
        let v0 = u.eval(Coalition::singleton(0));
        let v1 = u.eval(Coalition::singleton(1));
        assert!((v01 - (v0 + v1)).abs() < 1e-12);
        assert!(v0 < 0.0);
        assert_eq!(u.eval(Coalition::empty()), 0.0);
    }

    #[test]
    fn empirical_mc_variance_below_cc_theorem2() {
        // The Theorem 2 / Fig. 10 phenomenon: over training-noise
        // realisations, MC-SV's estimator variance is lower than CC-SV's
        // at the same budget, because MC pairs cancel shared samples.
        let sizes = vec![25usize; 6];
        let var_of = |scheme, seed| {
            estimator_variance_over_runs(
                |run| {
                    let mut rng = StdRng::seed_from_u64(1000 + run as u64);
                    TrainingErrorUtility::draw(&sizes, 1.0, 0.5, &mut rng)
                },
                6,
                scheme,
                12,
                150,
                seed,
            )
        };
        let var_mc = var_of(Scheme::MarginalContribution, 7);
        let var_cc = var_of(Scheme::ComplementaryContribution, 7);
        assert!(
            var_mc < var_cc,
            "empirical Var_MC = {var_mc} should be below Var_CC = {var_cc}"
        );
    }
}
