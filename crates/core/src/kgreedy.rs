//! K-Greedy (Alg. 2): the diagnostic algorithm used in Sec. IV-A to expose
//! the *key combinations* phenomenon.
//!
//! K-Greedy evaluates every coalition with at most `K` clients and
//! approximates the MC-SV using only those coalitions, intentionally
//! discarding all larger combinations. Fig. 4 shows that on FEMNIST the
//! relative error is already below 1% for `K ≤ 2` — the observation that
//! motivates the importance-pruning of IPSS.

use crate::coalition::{binom, subsets_of_size};
use crate::utility::{eval_batch_into_memo, Utility};

/// Alg. 2 — K-Greedy.
///
/// `ϕ̂_i = Σ_{S ⊆ N\{i}, |S| < K} (U(M_{S∪{i}}) − U(M_S)) / (n · C(n−1, |S|))`
///
/// Note on weights: the paper prints `C(n, |S|)` in Alg. 2 line 7; we use
/// the MC-SV weight `C(n−1, |S|)` so that `K = n` recovers the exact MC-SV
/// (see DESIGN.md §3 — with the printed coefficient the estimator would not
/// converge to the exact value, which contradicts Fig. 4's error → 0 trend).
pub fn k_greedy<U: Utility + ?Sized>(u: &U, k_max: usize) -> Vec<f64> {
    let n = u.n_clients();
    assert!(n >= 1);
    assert!(
        k_max >= 1,
        "K must be at least 1 (K=1 uses only singletons)"
    );
    let k_max = k_max.min(n);
    let mut phi = vec![0.0; n];
    let inv_n = 1.0 / n as f64;
    let inv_binom: Vec<f64> = (0..n).map(|s| 1.0 / binom(n - 1, s)).collect();
    // Enumerate coalitions T with 1 ≤ |T| ≤ K. For each member i of T the
    // pair (S = T\{i}, S∪{i} = T) has |S| = |T|−1 < K, exactly the index
    // set of Alg. 2 line 7. Each stratum is evaluated as one batch and
    // memoised, so even an uncached utility sees each coalition once.
    let mut memo: std::collections::HashMap<u128, f64> = std::collections::HashMap::new();
    eval_batch_into_memo(u, &[crate::coalition::Coalition::empty()], &mut memo);
    for t_size in 1..=k_max {
        let stratum: Vec<crate::coalition::Coalition> = subsets_of_size(n, t_size).collect();
        eval_batch_into_memo(u, &stratum, &mut memo);
        for &t in &stratum {
            let ut = memo[&t.0];
            let w = inv_n * inv_binom[t_size - 1];
            for i in t.members() {
                let us = memo[&t.without(i).0];
                phi[i] += (ut - us) * w;
            }
        }
    }
    phi
}

/// Number of distinct utility evaluations K-Greedy performs:
/// `Σ_{j=0}^{K} C(n, j)` (every coalition of size ≤ K, including `∅`).
pub fn k_greedy_evaluations(n: usize, k_max: usize) -> u128 {
    crate::coalition::subsets_up_to(n, k_max.min(n))
}

#[cfg(test)]
// Tests assert invariants; an unwrap that trips IS the test failing.
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::exact::exact_mc_sv;
    use crate::utility::{CachedUtility, HashUtility, SaturatingUtility, TableUtility};

    #[test]
    fn k_equals_n_recovers_exact_mc_sv() {
        let u = TableUtility::paper_table1();
        let exact = exact_mc_sv(&u);
        let approx = k_greedy(&u, 3);
        for (a, e) in approx.iter().zip(&exact) {
            assert!((a - e).abs() < 1e-12, "{approx:?} vs {exact:?}");
        }
    }

    #[test]
    fn k_beyond_n_is_clamped() {
        let u = TableUtility::paper_table1();
        assert_eq!(k_greedy(&u, 3), k_greedy(&u, 10));
    }

    #[test]
    fn error_decreases_with_k_on_saturating_utility() {
        // The key-combinations phenomenon: on a concave utility the
        // truncated estimate approaches the exact SV as K grows, with the
        // largest gains at small K (Fig. 4's shape).
        let u = SaturatingUtility::uniform(8, 0.1, 0.85, 0.6);
        let exact = exact_mc_sv(&u);
        let norm: f64 = exact.iter().map(|v| v * v).sum::<f64>().sqrt();
        let mut last_err = f64::INFINITY;
        for k in 1..=8usize {
            let approx = k_greedy(&u, k);
            let err: f64 = approx
                .iter()
                .zip(&exact)
                .map(|(a, e)| (a - e) * (a - e))
                .sum::<f64>()
                .sqrt()
                / norm;
            assert!(
                err <= last_err + 1e-12,
                "error should be non-increasing in K (k={k}: {err} > {last_err})"
            );
            last_err = err;
        }
        assert!(last_err < 1e-12, "K = n must be exact");
    }

    #[test]
    fn evaluation_count_matches_formula() {
        let u = CachedUtility::new(HashUtility { n: 10, seed: 3 });
        let _ = k_greedy(&u, 2);
        // Σ_{j=0}^{2} C(10, j) = 1 + 10 + 45 = 56.
        assert_eq!(u.stats().evaluations, 56);
        assert_eq!(k_greedy_evaluations(10, 2), 56);
    }

    #[test]
    fn k1_uses_only_singletons() {
        let u = TableUtility::paper_table1();
        let phi = k_greedy(&u, 1);
        // ϕ̂_i = (U({i}) − U(∅)) / 3.
        assert!((phi[0] - 0.40 / 3.0).abs() < 1e-12);
        assert!((phi[1] - 0.60 / 3.0).abs() < 1e-12);
        assert!((phi[2] - 0.50 / 3.0).abs() < 1e-12);
    }
}
