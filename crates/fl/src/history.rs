//! Training history of a FedAvg run — the raw material of the
//! gradient-based valuation baselines.
//!
//! OR, λ-MR and GTG-Shapley all avoid retraining by *reconstructing* the
//! model of an arbitrary coalition `S` from the per-round, per-client
//! updates recorded during the single full-coalition FL run (Sec. VI-B-2).

use fedval_core::coalition::Coalition;
use fedval_nn::{Backend, LinalgBackend};

/// Everything recorded during one full-coalition FedAvg run.
#[derive(Clone, Debug)]
pub struct TrainingHistory {
    /// Parameters of the initial global model `M⁰`.
    pub init_params: Vec<f32>,
    /// `updates[t][i]` — client `i`'s raw local update `Δᵢᵗ = local − global`
    /// in round `t`; `None` for clients with empty datasets.
    pub updates: Vec<Vec<Option<Vec<f32>>>>,
    /// Global parameters after each round (`globals[t] = M^{t+1}`).
    pub globals: Vec<Vec<f32>>,
    /// Client dataset sizes `|D_i|` (the FedAvg aggregation weights).
    pub client_sizes: Vec<usize>,
}

impl TrainingHistory {
    /// Number of recorded rounds.
    pub fn rounds(&self) -> usize {
        self.updates.len()
    }

    /// Number of clients.
    pub fn n_clients(&self) -> usize {
        self.client_sizes.len()
    }

    /// FedAvg weights restricted to a coalition: `w_i = |D_i| / |D_S|` over
    /// members with data. Returns `None` if the coalition holds no data.
    fn coalition_weights(&self, coalition: Coalition) -> Option<Vec<(usize, f32)>> {
        let total: usize = coalition.members().map(|i| self.client_sizes[i]).sum();
        if total == 0 {
            return None;
        }
        Some(
            coalition
                .members()
                .filter(|&i| self.client_sizes[i] > 0)
                .map(|i| (i, self.client_sizes[i] as f32 / total as f32))
                .collect(),
        )
    }

    /// OR-style reconstruction (Song et al.): replay all rounds from the
    /// initial model, aggregating only the recorded updates of clients in
    /// `coalition` with coalition-restricted FedAvg weights.
    ///
    /// `M_S ≈ M⁰ + Σ_t Σ_{i∈S} w_i·Δᵢᵗ`
    ///
    /// The replay accumulations run through the process-selected linalg
    /// backend's `axpy` (element-wise, so the values are bit-identical
    /// across backends).
    pub fn reconstruct(&self, coalition: Coalition) -> Vec<f32> {
        let be = Backend::default();
        let mut params = self.init_params.clone();
        let Some(weights) = self.coalition_weights(coalition) else {
            return params;
        };
        for round in &self.updates {
            for &(i, w) in &weights {
                if let Some(delta) = &round[i] {
                    be.axpy(w, delta, &mut params);
                }
            }
        }
        params
    }

    /// λ-MR / GTG-style *per-round* reconstruction: apply only round `t`'s
    /// coalition updates on top of the **actual** global model entering
    /// round `t`.
    ///
    /// `M_Sᵗ ≈ M^{t} + Σ_{i∈S} w_i·Δᵢᵗ` where `M^{t}` is the recorded
    /// global model before round `t`.
    pub fn reconstruct_round(&self, round: usize, coalition: Coalition) -> Vec<f32> {
        let be = Backend::default();
        let mut params = self.global_before(round).to_vec();
        let Some(weights) = self.coalition_weights(coalition) else {
            return params;
        };
        for &(i, w) in &weights {
            if let Some(delta) = &self.updates[round][i] {
                be.axpy(w, delta, &mut params);
            }
        }
        params
    }

    /// The global parameters entering round `t` (`M⁰` for `t = 0`).
    pub fn global_before(&self, round: usize) -> &[f32] {
        if round == 0 {
            &self.init_params
        } else {
            &self.globals[round - 1]
        }
    }

    /// The global parameters after round `t`.
    pub fn global_after(&self, round: usize) -> &[f32] {
        &self.globals[round]
    }
}

#[cfg(test)]
// Tests assert invariants; an unwrap that trips IS the test failing.
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    /// Hand-built two-round, two-client history.
    fn toy_history() -> TrainingHistory {
        TrainingHistory {
            init_params: vec![0.0, 0.0],
            updates: vec![
                vec![Some(vec![1.0, 0.0]), Some(vec![0.0, 2.0])],
                vec![Some(vec![0.5, 0.5]), Some(vec![-0.5, 0.5])],
            ],
            globals: vec![vec![0.5, 1.0], vec![0.5, 1.5]],
            client_sizes: vec![10, 10],
        }
    }

    #[test]
    fn full_coalition_reconstruction_matches_recorded_globals() {
        // With equal sizes the aggregation weight is 1/2; replaying both
        // rounds reproduces the recorded final global exactly.
        let h = toy_history();
        let full = Coalition::from_members([0, 1]);
        let rec = h.reconstruct(full);
        assert_eq!(rec, vec![0.5, 1.5]);
    }

    #[test]
    fn singleton_reconstruction_uses_full_weight() {
        let h = toy_history();
        let rec = h.reconstruct(Coalition::singleton(0));
        // w_0 = 1: init + Δ₀⁰ + Δ₀¹ = [1.5, 0.5].
        assert_eq!(rec, vec![1.5, 0.5]);
    }

    #[test]
    fn empty_coalition_returns_init() {
        let h = toy_history();
        assert_eq!(h.reconstruct(Coalition::empty()), h.init_params);
    }

    #[test]
    fn per_round_reconstruction() {
        let h = toy_history();
        // Round 1 for client 1 alone, on top of the actual global [0.5, 1.0]:
        // + Δ₁¹ = [0.0, 1.5].
        let rec = h.reconstruct_round(1, Coalition::singleton(1));
        assert_eq!(rec, vec![0.0, 1.5]);
        assert_eq!(h.global_before(0), &[0.0, 0.0]);
        assert_eq!(h.global_before(1), &[0.5, 1.0]);
        assert_eq!(h.global_after(1), &[0.5, 1.5]);
    }

    #[test]
    fn zero_size_clients_are_skipped() {
        let mut h = toy_history();
        h.client_sizes = vec![10, 0];
        let rec = h.reconstruct(Coalition::from_members([0, 1]));
        // Only client 0 has data: weight 1.
        assert_eq!(rec, vec![1.5, 0.5]);
        // Coalition of only the empty client: initial model.
        assert_eq!(h.reconstruct(Coalition::singleton(1)), h.init_params);
    }

    #[test]
    fn unequal_sizes_weight_proportionally() {
        let mut h = toy_history();
        h.client_sizes = vec![30, 10]; // weights 0.75 / 0.25
        let rec = h.reconstruct(Coalition::from_members([0, 1]));
        // round 0: 0.75·[1,0] + 0.25·[0,2] = [0.75, 0.5]
        // round 1: 0.75·[0.5,0.5] + 0.25·[−0.5,0.5] = [0.25, 0.5]
        assert_eq!(rec, vec![1.0, 1.0]);
    }
}
