//! Machine-readable experiment reports: every bench target can export its
//! rows as JSON for downstream plotting/regression-tracking, alongside the
//! human-readable tables.
//!
//! Set `FEDVAL_JSON=<dir>` to make [`ExperimentReport::maybe_write`] drop
//! one JSON file per experiment into `<dir>`.

use std::io::Write as _;
use std::path::PathBuf;

/// One algorithm's measurement within an experiment cell.
#[derive(Clone, Debug, PartialEq)]
pub struct Measurement {
    pub algorithm: String,
    /// Wall-clock or τ-model seconds, depending on the experiment.
    pub seconds: f64,
    /// `l2` relative error (Eq. 21); `None` for exact methods.
    pub error: Option<f64>,
    /// Distinct utility evaluations, when the notion applies.
    pub evaluations: Option<usize>,
}

/// A full experiment report (one bench target / one paper artefact).
#[derive(Clone, Debug, PartialEq)]
pub struct ExperimentReport {
    /// Identifier matching the paper artefact, e.g. "table4".
    pub experiment: String,
    /// Free-form configuration description (model, n, γ, setup…).
    pub config: String,
    pub seed: u64,
    pub measurements: Vec<Measurement>,
}

impl ExperimentReport {
    pub fn new(experiment: &str, config: &str, seed: u64) -> Self {
        ExperimentReport {
            experiment: experiment.to_string(),
            config: config.to_string(),
            seed,
            measurements: Vec::new(),
        }
    }

    pub fn push(
        &mut self,
        algorithm: &str,
        seconds: f64,
        error: Option<f64>,
        evaluations: Option<usize>,
    ) {
        self.measurements.push(Measurement {
            algorithm: algorithm.to_string(),
            seconds,
            error,
            evaluations,
        });
    }

    /// Serialise to a JSON string.
    pub fn to_json(&self) -> String {
        // A minimal JSON emitter (the workspace builds without a registry,
        // so serde/serde_json are unavailable); the structure is flat
        // enough to emit directly.
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!(
            "  \"experiment\": {},\n",
            json_string(&self.experiment)
        ));
        out.push_str(&format!("  \"config\": {},\n", json_string(&self.config)));
        out.push_str(&format!("  \"seed\": {},\n", self.seed));
        out.push_str("  \"measurements\": [\n");
        for (idx, m) in self.measurements.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"algorithm\": {}, \"seconds\": {}, \"error\": {}, \"evaluations\": {}}}{}\n",
                json_string(&m.algorithm),
                json_number(m.seconds),
                m.error.map_or("null".to_string(), json_number),
                m.evaluations
                    .map_or("null".to_string(), |e| e.to_string()),
                if idx + 1 < self.measurements.len() {
                    ","
                } else {
                    ""
                }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Write `<dir>/<experiment>_<suffix>.json` when `FEDVAL_JSON=<dir>` is
    /// set; silently a no-op otherwise. Returns the path written to.
    pub fn maybe_write(&self, suffix: &str) -> Option<PathBuf> {
        let dir = std::env::var_os("FEDVAL_JSON")?;
        let dir = PathBuf::from(dir);
        std::fs::create_dir_all(&dir).ok()?;
        let path = dir.join(format!("{}_{suffix}.json", self.experiment));
        let mut file = std::fs::File::create(&path).ok()?;
        file.write_all(self.to_json().as_bytes()).ok()?;
        Some(path)
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_number(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
// Tests assert invariants; an unwrap that trips IS the test failing.
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn sample_report() -> ExperimentReport {
        let mut r = ExperimentReport::new("table4", "FEMNIST/MLP/n=10", 42);
        r.push("IPSS", 0.14, Some(0.1567), Some(32));
        r.push("MC-Shap.", 12.08, None, Some(1024));
        r
    }

    #[test]
    fn json_round_trip_structure() {
        let r = sample_report();
        let json = r.to_json();
        assert!(json.contains("\"experiment\": \"table4\""));
        assert!(json.contains("\"algorithm\": \"IPSS\""));
        assert!(json.contains("\"error\": null"));
        assert!(json.contains("\"evaluations\": 1024"));
        // Balanced braces/brackets.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn json_escapes_special_characters() {
        let mut r = ExperimentReport::new("x", "quote \" backslash \\ newline \n", 1);
        r.push("λ-MR", f64::INFINITY, Some(0.5), None);
        let json = r.to_json();
        assert!(json.contains("\\\""));
        assert!(json.contains("\\\\"));
        assert!(json.contains("\\n"));
        assert!(json.contains("\"seconds\": null"), "{json}");
    }

    #[test]
    fn maybe_write_respects_env() {
        // Without FEDVAL_JSON set the write is a no-op.
        std::env::remove_var("FEDVAL_JSON");
        assert!(sample_report().maybe_write("test").is_none());
        // With it set, the file appears.
        let dir = std::env::temp_dir().join("fedval_json_test");
        std::env::set_var("FEDVAL_JSON", &dir);
        let path = sample_report().maybe_write("unit").expect("write");
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.contains("table4"));
        std::env::remove_var("FEDVAL_JSON");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn reports_are_cloneable_and_comparable() {
        let r = sample_report();
        let copy = r.clone();
        assert_eq!(r, copy);
    }
}
