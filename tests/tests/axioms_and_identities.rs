//! Cross-crate property tests: the Shapley axioms of Def. 2, the
//! equivalence of the three SV expressions, and the exactness of each
//! estimator at full budget — all driven over random games.
//!
//! Written as explicit randomised case loops (a seeded RNG drawing 48
//! random games per property) because the offline build has no `proptest`;
//! the checked properties are identical.

// Driver code: test assertions panic by design, so unwrap/expect are
// the failure mechanism, not a robustness gap.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use fedval_core::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CASES: usize = 48;

/// A random utility table over `n` clients with values in [0, 1].
fn random_game(n: usize, rng: &mut StdRng) -> TableUtility {
    let values: Vec<f64> = (0..(1usize << n)).map(|_| rng.random::<f64>()).collect();
    TableUtility::new(n, values)
}

#[test]
fn efficiency_axiom_holds() {
    let mut driver = StdRng::seed_from_u64(0xE441);
    for _ in 0..CASES {
        let game = random_game(5, &mut driver);
        let phi = exact_mc_sv(&game);
        let total: f64 = phi.iter().sum();
        let expected = game.eval(Coalition::full(5)) - game.eval(Coalition::empty());
        assert!((total - expected).abs() < 1e-9);
    }
}

#[test]
fn three_expressions_agree() {
    let mut driver = StdRng::seed_from_u64(0x3A61);
    for _ in 0..CASES {
        let game = random_game(5, &mut driver);
        let mc = exact_mc_sv(&game);
        let cc = exact_cc_sv(&game);
        let perm = exact_perm_sv(&game);
        for i in 0..5 {
            assert!((mc[i] - cc[i]).abs() < 1e-9);
            assert!((mc[i] - perm[i]).abs() < 1e-9);
        }
    }
}

#[test]
fn null_player_gets_zero() {
    let mut driver = StdRng::seed_from_u64(0x0711);
    for _ in 0..CASES {
        let game = random_game(4, &mut driver);
        // Plant a null player: client 4's presence never changes utility.
        let padded = TableUtility::from_fn(5, |s| game.eval(s.without(4)));
        let phi = exact_mc_sv(&padded);
        assert!(phi[4].abs() < 1e-9);
    }
}

#[test]
fn symmetric_players_get_equal_value() {
    let mut driver = StdRng::seed_from_u64(0x5E77);
    for _ in 0..CASES {
        let game = random_game(4, &mut driver);
        // Make clients 0 and 1 interchangeable: utility depends only on
        // whether each of them is present, not which.
        let sym = TableUtility::from_fn(4, |s| {
            let both = usize::from(s.contains(0)) + usize::from(s.contains(1));
            let rest = Coalition::from_members(s.members().filter(|&i| i >= 2));
            game.eval(rest.union(Coalition::from_members(0..both)))
        });
        let phi = exact_mc_sv(&sym);
        assert!((phi[0] - phi[1]).abs() < 1e-9);
    }
}

#[test]
fn linearity_of_sv() {
    let mut driver = StdRng::seed_from_u64(0x11EA);
    for _ in 0..CASES {
        let a = random_game(4, &mut driver);
        let b = random_game(4, &mut driver);
        let alpha = driver.random_range(0.0f64..3.0);
        // SV(a + α·b) = SV(a) + α·SV(b).
        let combo = TableUtility::from_fn(4, |s| a.eval(s) + alpha * b.eval(s));
        let pa = exact_mc_sv(&a);
        let pb = exact_mc_sv(&b);
        let pc = exact_mc_sv(&combo);
        for i in 0..4 {
            assert!((pc[i] - (pa[i] + alpha * pb[i])).abs() < 1e-9);
        }
    }
}

#[test]
fn ipss_full_budget_is_exact() {
    let mut driver = StdRng::seed_from_u64(0x1955);
    for _ in 0..CASES {
        let game = random_game(5, &mut driver);
        let seed = driver.random_range(0u64..1000);
        let mut rng = StdRng::seed_from_u64(seed);
        let est = ipss_values(&game, &IpssConfig::new(1 << 5), &mut rng);
        let exact = exact_mc_sv(&game);
        for i in 0..5 {
            assert!((est[i] - exact[i]).abs() < 1e-9);
        }
    }
}

#[test]
fn kgreedy_full_depth_is_exact() {
    let mut driver = StdRng::seed_from_u64(0x46EE);
    for _ in 0..CASES {
        let game = random_game(5, &mut driver);
        let est = k_greedy(&game, 5);
        let exact = exact_mc_sv(&game);
        for i in 0..5 {
            assert!((est[i] - exact[i]).abs() < 1e-9);
        }
    }
}

#[test]
fn stratified_full_budget_is_exact_both_schemes() {
    let mut driver = StdRng::seed_from_u64(0x57F1);
    for _ in 0..CASES {
        let game = random_game(4, &mut driver);
        let seed = driver.random_range(0u64..1000);
        let cfg = StratifiedConfig::explicit(vec![4, 6, 4, 1]);
        let exact = exact_mc_sv(&game);
        for scheme in [
            Scheme::MarginalContribution,
            Scheme::ComplementaryContribution,
        ] {
            let mut rng = StdRng::seed_from_u64(seed);
            let est = stratified_sampling_values(&game, scheme, &cfg, &mut rng);
            for i in 0..4 {
                assert!((est[i] - exact[i]).abs() < 1e-9, "{scheme:?}");
            }
        }
    }
}

#[test]
fn tmc_without_truncation_preserves_efficiency() {
    let mut driver = StdRng::seed_from_u64(0x7EC0);
    for _ in 0..CASES {
        let game = random_game(4, &mut driver);
        let seed = driver.random_range(0u64..1000);
        let mut rng = StdRng::seed_from_u64(seed);
        let est = extended_tmc(&game, &TmcConfig::new(5).with_tolerance(0.0), &mut rng);
        let total: f64 = est.iter().sum();
        let expected = game.eval(Coalition::full(4)) - game.eval(Coalition::empty());
        assert!((total - expected).abs() < 1e-9);
    }
}

#[test]
fn gtb_satisfies_efficiency_exactly() {
    let mut driver = StdRng::seed_from_u64(0x67B0);
    for _ in 0..CASES {
        let game = random_game(4, &mut driver);
        let seed = driver.random_range(0u64..1000);
        let mut rng = StdRng::seed_from_u64(seed);
        let est = extended_gtb_values(&game, &GtbConfig::new(40), &mut rng);
        let total: f64 = est.iter().sum();
        let expected = game.eval(Coalition::full(4)) - game.eval(Coalition::empty());
        assert!((total - expected).abs() < 1e-7);
    }
}
