// Fixture: the near-misses for `wall-clock` — an annotated reporting
// gauge, and clock mentions that are not clock reads.
use std::time::{Duration, Instant};

pub fn annotated_gauge(work: impl Fn() -> f64) -> f64 {
    // lint:wall-clock(reporting-only latency gauge; the returned value
    // is computed before the elapsed time is read)
    let start = Instant::now();
    let v = work();
    let _elapsed = start.elapsed();
    v
}

pub fn durations_are_fine() -> Duration {
    // Duration arithmetic and Instant *values* passed in are not reads.
    Duration::from_millis(5) + Duration::ZERO
}

pub fn instant_parameter(deadline: Instant, now: Instant) -> bool {
    // Comparing instants someone else read is the caller's concern.
    now >= deadline
}
