//! Owen sampling — the multilinear-extension route to the Shapley value,
//! the third classical estimator family alongside permutation sampling
//! (Extended-TMC) and stratified coalition sampling (Alg. 1 / IPSS).
//!
//! The multilinear extension of the game is
//! `e_i(q) = E[U(S_q ∪ {i}) − U(S_q)]` where `S_q` includes every other
//! client independently with probability `q`; the Shapley value is
//! `ϕ_i = ∫₀¹ e_i(q) dq`. Owen sampling estimates the integral on a `q`
//! grid with Monte-Carlo coalitions at each node, optionally with
//! antithetic pairing (`S_q` and its complement) for variance reduction.

use std::collections::{HashMap, HashSet};

use rand::Rng;

use crate::adaptive::{AdaptivePolicy, AllocationPlanner, ComponentState};
use crate::anytime::{
    component_variance, halfwidth, Control, ProgressSnapshot, StreamingOutcome, Welford,
};
use crate::coalition::Coalition;
use crate::utility::Utility;

/// Configuration for [`owen_sampling`].
#[derive(Clone, Debug)]
pub struct OwenConfig {
    /// Number of `q` grid nodes on `[0, 1]` (trapezoid rule). ≥ 2.
    pub q_nodes: usize,
    /// Coalitions sampled per grid node.
    pub samples_per_node: usize,
    /// Pair each sample with its complement (antithetic sampling) —
    /// halves the variance contributed by the `q ↔ 1−q` symmetry at no
    /// extra per-sample cost beyond the second evaluation.
    pub antithetic: bool,
}

impl OwenConfig {
    pub fn new(q_nodes: usize, samples_per_node: usize) -> Self {
        OwenConfig {
            q_nodes,
            samples_per_node,
            antithetic: false,
        }
    }

    pub fn with_antithetic(mut self) -> Self {
        self.antithetic = true;
        self
    }
}

/// Owen estimator of the Shapley value.
pub fn owen_sampling<U: Utility + ?Sized, R: Rng + ?Sized>(
    u: &U,
    cfg: &OwenConfig,
    rng: &mut R,
) -> Vec<f64> {
    let n = u.n_clients();
    assert!(n >= 1);
    assert!(cfg.q_nodes >= 2 && cfg.samples_per_node >= 1);
    // e_hat[node][i] accumulates marginal contributions of client i at q.
    let mut phi = vec![0.0f64; n];
    let mut node_means = vec![vec![0.0f64; n]; cfg.q_nodes];
    for (node, means) in node_means.iter_mut().enumerate() {
        let q = node as f64 / (cfg.q_nodes - 1) as f64;
        // Draw the node's coalitions first (the RNG stream is identical to
        // the historical draw-then-evaluate interleaving, which consumed no
        // randomness during evaluation), then evaluate the whole
        // neighbourhood — each sample plus its n single-flip variants — as
        // one deduplicated batch.
        let mut samples: Vec<Coalition> =
            Vec::with_capacity(cfg.samples_per_node * if cfg.antithetic { 2 } else { 1 });
        for _ in 0..cfg.samples_per_node {
            let mut mask = 0u128;
            for i in 0..n {
                if rng.random::<f64>() < q {
                    mask |= 1 << i;
                }
            }
            samples.push(Coalition(mask));
            if cfg.antithetic {
                samples.push(Coalition(mask).complement(n));
            }
        }
        let values = batch_neighbourhoods(u, n, &samples);
        let mut sums = vec![0.0f64; n];
        let mut counts = vec![0usize; n];
        for &s in &samples {
            accumulate(&values, s, n, &mut sums, &mut counts);
        }
        for (mean, (&sum, &count)) in means.iter_mut().zip(sums.iter().zip(&counts)) {
            *mean = if count > 0 { sum / count as f64 } else { 0.0 };
        }
    }
    // Trapezoid rule over the q grid.
    let h = 1.0 / (cfg.q_nodes - 1) as f64;
    for (node, means) in node_means.iter().enumerate() {
        let weight = if node == 0 || node == cfg.q_nodes - 1 {
            h / 2.0
        } else {
            h
        };
        for (p, m) in phi.iter_mut().zip(means) {
            *p += weight * m;
        }
    }
    phi
}

/// Anytime Owen sampling — the streaming variant of [`owen_sampling`].
///
/// Draws the entire `q`-grid schedule up front (the RNG stream is
/// identical to the non-streaming run with the same seed), then
/// evaluates it in **round-robin** rounds: round `r` evaluates draw `r`
/// of *every* grid node (plus its antithetic partner when enabled),
/// together with their single-flip neighbourhoods, deduplicated against
/// everything already evaluated. Because every sample informs every
/// client (the shared-sample trick), per-client CIs become finite after
/// two draws per node — Owen is the natural early-stopping vehicle.
///
/// After each round the canonical prefix fold is recomputed from
/// scratch — per-node means over the prefix in draw order, then the
/// trapezoid rule in node order, exactly the legacy operation order —
/// so a completed schedule is bit-identical to [`owen_sampling`] and a
/// stopped run bit-equals the same-seed full run's snapshot at the same
/// round (the determinism contract).
///
/// CI terms treat each node's per-sample contributions as i.i.d.
/// ([`Welford`] per `(client, node)`, trapezoid weight, infinite
/// population — draws are with replacement). Under antithetic pairing
/// this ignores the negative pair covariance and is therefore
/// conservative (never too narrow).
pub fn owen_sampling_streaming<U, R, F>(
    u: &U,
    cfg: &OwenConfig,
    rng: &mut R,
    mut observe: F,
) -> StreamingOutcome
where
    U: Utility + ?Sized,
    R: Rng + ?Sized,
    F: FnMut(&ProgressSnapshot) -> Control,
{
    let n = u.n_clients();
    assert!(n >= 1);
    assert!(cfg.q_nodes >= 2 && cfg.samples_per_node >= 1);
    // Identical draws (and RNG consumption) to the non-streaming run:
    // node-major, each draw immediately followed by its complement when
    // antithetic.
    let per_draw = if cfg.antithetic { 2 } else { 1 };
    let mut samples: Vec<Vec<Coalition>> = Vec::with_capacity(cfg.q_nodes);
    for node in 0..cfg.q_nodes {
        let q = node as f64 / (cfg.q_nodes - 1) as f64;
        let mut node_samples: Vec<Coalition> = Vec::with_capacity(cfg.samples_per_node * per_draw);
        for _ in 0..cfg.samples_per_node {
            let mut mask = 0u128;
            for i in 0..n {
                if rng.random::<f64>() < q {
                    mask |= 1 << i;
                }
            }
            node_samples.push(Coalition(mask));
            if cfg.antithetic {
                node_samples.push(Coalition(mask).complement(n));
            }
        }
        samples.push(node_samples);
    }

    let mut memo: HashMap<u128, f64> = HashMap::new();
    let mut samples_used = 0usize;
    for r in 0..cfg.samples_per_node {
        let mut batch: Vec<Coalition> = Vec::new();
        let mut seen: HashSet<u128> = HashSet::new();
        {
            let mut push = |s: Coalition| {
                if !memo.contains_key(&s.0) && seen.insert(s.0) {
                    batch.push(s);
                }
            };
            for node_samples in &samples {
                for &s in &node_samples[r * per_draw..(r + 1) * per_draw] {
                    push(s);
                    for i in 0..n {
                        push(if s.contains(i) {
                            s.without(i)
                        } else {
                            s.with(i)
                        });
                    }
                }
            }
        }
        let values = u.eval_batch(&batch);
        for (s, v) in batch.iter().zip(values) {
            memo.insert(s.0, v);
        }
        samples_used += batch.len();
        let prefix = (r + 1) * per_draw;
        let (snapshot, _pooled) =
            owen_prefix_snapshot(n, cfg, &samples, &memo, prefix, samples_used, r + 1);
        let control = observe(&snapshot);
        let complete = r + 1 == cfg.samples_per_node;
        if complete || control == Control::Stop {
            return StreamingOutcome::from_snapshot(snapshot, !complete);
        }
    }
    unreachable!("the final round always returns")
}

/// Adaptive Owen sampling — [`owen_sampling_streaming`] with the grid
/// budget re-planned at every round by Neyman allocation instead of
/// spending `samples_per_node` draws on every node uniformly.
///
/// The total draw budget is `q_nodes · samples_per_node` (each draw
/// costs one coalition plus its antithetic partner when enabled, before
/// neighbourhood dedup). Each round an [`AllocationPlanner`] turns the
/// pooled per-node contribution variances into the next round's
/// per-node draw counts (`m_j ∝ w_j·σ_j` with `w_j` the trapezoid node
/// weight, plus the exploration floor), and the node's sample list
/// grows raggedly; the prefix fold already handles ragged lists (it
/// folds whatever each node has, in draw order).
///
/// Determinism contract: planning consumes no randomness, draws consume
/// RNG in plan order (node-major), so the allocation sequence — exposed
/// on [`ProgressSnapshot::allocation`] as cumulative per-node draw
/// counts — is a pure function of (seed, snapshot history), and
/// same-seed runs are bit-identical at any thread count or coalescing
/// interleaving.
pub fn owen_sampling_streaming_adaptive<U, R, F>(
    u: &U,
    cfg: &OwenConfig,
    policy: &AdaptivePolicy,
    rng: &mut R,
    mut observe: F,
) -> StreamingOutcome
where
    U: Utility + ?Sized,
    R: Rng + ?Sized,
    F: FnMut(&ProgressSnapshot) -> Control,
{
    let n = u.n_clients();
    assert!(n >= 1);
    assert!(cfg.q_nodes >= 2 && cfg.samples_per_node >= 1);
    let planner = AllocationPlanner::new(*policy);
    let round_size = policy.round(cfg.q_nodes);
    let budget = cfg.q_nodes * cfg.samples_per_node; // total draws
    let h = 1.0 / (cfg.q_nodes - 1) as f64;
    let node_weight = |node: usize| {
        if node == 0 || node == cfg.q_nodes - 1 {
            h / 2.0
        } else {
            h
        }
    };

    let mut samples: Vec<Vec<Coalition>> = vec![Vec::new(); cfg.q_nodes];
    let mut drawn: Vec<usize> = vec![0usize; cfg.q_nodes];
    let mut pooled: Vec<Welford> = vec![Welford::new(); cfg.q_nodes];
    let mut memo: HashMap<u128, f64> = HashMap::new();
    let mut samples_used = 0usize;
    let mut batches_done = 0usize;
    let mut scheduled = 0usize;
    loop {
        let components: Vec<ComponentState> = (0..cfg.q_nodes)
            .map(|node| ComponentState {
                weight: node_weight(node),
                variance: pooled[node].sample_variance(),
                observed: pooled[node].count(),
                drawn: drawn[node],
                remaining: usize::MAX, // with replacement: unbounded
            })
            .collect();
        let plan = planner.plan_round(round_size.min(budget - scheduled), &components);

        // Draw in plan order (node-major), then evaluate the new samples
        // plus their single-flip neighbourhoods as one deduped batch.
        let mut batch: Vec<Coalition> = Vec::new();
        let mut seen: HashSet<u128> = HashSet::new();
        for (node, &m) in plan.iter().enumerate() {
            if m == 0 {
                continue;
            }
            let q = node as f64 / (cfg.q_nodes - 1) as f64;
            let mut push = |s: Coalition| {
                if !memo.contains_key(&s.0) && seen.insert(s.0) {
                    batch.push(s);
                }
            };
            for _ in 0..m {
                let mut mask = 0u128;
                for i in 0..n {
                    if rng.random::<f64>() < q {
                        mask |= 1 << i;
                    }
                }
                let mut news = vec![Coalition(mask)];
                if cfg.antithetic {
                    news.push(Coalition(mask).complement(n));
                }
                for s in news {
                    push(s);
                    for i in 0..n {
                        push(if s.contains(i) {
                            s.without(i)
                        } else {
                            s.with(i)
                        });
                    }
                    samples[node].push(s);
                }
            }
            drawn[node] += m;
            scheduled += m;
        }

        let values = u.eval_batch(&batch);
        for (s, v) in batch.iter().zip(values) {
            memo.insert(s.0, v);
        }
        samples_used += batch.len();
        batches_done += 1;
        // Ragged prefix: fold everything each node has drawn so far.
        let (mut snapshot, new_pooled) = owen_prefix_snapshot(
            n,
            cfg,
            &samples,
            &memo,
            usize::MAX,
            samples_used,
            batches_done,
        );
        snapshot.allocation = Some(drawn.clone());
        pooled = new_pooled;

        let complete = scheduled >= budget;
        let control = observe(&snapshot);
        if complete || control == Control::Stop {
            return StreamingOutcome::from_snapshot(snapshot, !complete);
        }
    }
}

/// The canonical prefix fold of Owen sampling plus its CI: per-node
/// means over the first `prefix` samples in draw order, then the
/// trapezoid rule in node order. Over the complete schedule this is
/// bit-identical to the [`owen_sampling`] fold (same contributions,
/// same accumulation order; evaluation is pure per coalition mask, so
/// the cross-node memo cannot change any value).
///
/// Also returns the pooled per-node [`Welford`] accumulators (every
/// contribution at that node, across clients, in fold order) — the
/// `σ_j` estimates the adaptive planner steers by.
fn owen_prefix_snapshot(
    n: usize,
    cfg: &OwenConfig,
    samples: &[Vec<Coalition>],
    memo: &HashMap<u128, f64>,
    prefix: usize,
    samples_used: usize,
    batches_done: usize,
) -> (ProgressSnapshot, Vec<Welford>) {
    let mut node_means = vec![vec![0.0f64; n]; cfg.q_nodes];
    let mut accs = vec![vec![Welford::new(); cfg.q_nodes]; n]; // accs[i][node]
    let mut pooled = vec![Welford::new(); cfg.q_nodes];
    for (node, node_samples) in samples.iter().enumerate() {
        let mut sums = vec![0.0f64; n];
        let mut counts = vec![0usize; n];
        for &s in &node_samples[..prefix.min(node_samples.len())] {
            let base = memo[&s.0];
            for i in 0..n {
                let contribution = if s.contains(i) {
                    base - memo[&s.without(i).0]
                } else {
                    memo[&s.with(i).0] - base
                };
                sums[i] += contribution;
                counts[i] += 1;
                accs[i][node].push(contribution);
                pooled[node].push(contribution);
            }
        }
        for (mean, (&sum, &count)) in node_means[node].iter_mut().zip(sums.iter().zip(&counts)) {
            *mean = if count > 0 { sum / count as f64 } else { 0.0 };
        }
    }
    // Trapezoid rule over the q grid — the legacy loop, verbatim.
    let h = 1.0 / (cfg.q_nodes - 1) as f64;
    let node_weight = |node: usize| {
        if node == 0 || node == cfg.q_nodes - 1 {
            h / 2.0
        } else {
            h
        }
    };
    let mut values = vec![0.0f64; n];
    for (node, means) in node_means.iter().enumerate() {
        let weight = node_weight(node);
        for (p, m) in values.iter_mut().zip(means) {
            *p += weight * m;
        }
    }
    let ci_halfwidths: Vec<f64> =
        accs.iter()
            .map(|node_accs| {
                halfwidth(
                    node_accs.iter().enumerate().map(|(node, acc)| {
                        component_variance(acc, node_weight(node), f64::INFINITY)
                    }),
                )
            })
            .collect();
    (
        ProgressSnapshot {
            values,
            ci_halfwidths,
            samples_used,
            batches_done,
            allocation: None,
        },
        pooled,
    )
}

/// Evaluate every coalition the accumulation pass will touch — each sample
/// and its `n` single-flip variants — as one deduplicated `eval_batch`
/// call, returning the values keyed by mask.
fn batch_neighbourhoods<U: Utility + ?Sized>(
    u: &U,
    n: usize,
    samples: &[Coalition],
) -> HashMap<u128, f64> {
    let mut batch: Vec<Coalition> = Vec::with_capacity(samples.len() * (n + 1));
    let mut seen: HashSet<u128> = HashSet::with_capacity(samples.len() * (n + 1));
    let mut push = |batch: &mut Vec<Coalition>, s: Coalition| {
        if seen.insert(s.0) {
            batch.push(s);
        }
    };
    for &s in samples {
        push(&mut batch, s);
        for i in 0..n {
            push(
                &mut batch,
                if s.contains(i) {
                    s.without(i)
                } else {
                    s.with(i)
                },
            );
        }
    }
    let values = u.eval_batch(&batch);
    batch.iter().zip(values).map(|(s, v)| (s.0, v)).collect()
}

/// Record every client's marginal contribution around coalition `s` (the
/// shared-sample trick): for `i ∈ s` the base coalition is `s\{i}` (a
/// valid `S_q ⊆ N\{i}` draw), for `i ∉ s` it is `s` itself — so every
/// sample informs every client, including at the grid ends `q ∈ {0, 1}`.
/// Reads from the pre-evaluated value map.
fn accumulate(
    value_by_mask: &HashMap<u128, f64>,
    s: Coalition,
    n: usize,
    sums: &mut [f64],
    counts: &mut [usize],
) {
    let base = value_by_mask[&s.0];
    for i in 0..n {
        if s.contains(i) {
            sums[i] += base - value_by_mask[&s.without(i).0];
        } else {
            sums[i] += value_by_mask[&s.with(i).0] - base;
        }
        counts[i] += 1;
    }
}

#[cfg(test)]
// Tests assert invariants; an unwrap that trips IS the test failing.
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::exact::exact_mc_sv;
    use crate::metrics::l2_relative_error;
    use crate::utility::{AdditiveUtility, SaturatingUtility, TableUtility};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn additive_game_is_exact_per_sample() {
        let w = vec![0.2, 0.3, 0.5];
        let u = AdditiveUtility::new(0.1, w.clone());
        let mut rng = StdRng::seed_from_u64(0);
        let phi = owen_sampling(&u, &OwenConfig::new(3, 2), &mut rng);
        for (p, e) in phi.iter().zip(&w) {
            assert!((p - e).abs() < 1e-12, "{phi:?}");
        }
    }

    #[test]
    fn converges_to_exact_shapley() {
        let u = TableUtility::paper_table1();
        let exact = exact_mc_sv(&u);
        let mut rng = StdRng::seed_from_u64(1);
        let phi = owen_sampling(&u, &OwenConfig::new(21, 400), &mut rng);
        let err = l2_relative_error(&phi, &exact);
        assert!(err < 0.05, "error {err}: {phi:?} vs {exact:?}");
    }

    #[test]
    fn antithetic_reduces_variance() {
        let u = SaturatingUtility::uniform(6, 0.1, 0.8, 0.8);
        let exact = exact_mc_sv(&u);
        let spread = |antithetic: bool| -> f64 {
            let runs = 40;
            let mut errs = Vec::with_capacity(runs);
            for r in 0..runs {
                let mut rng = StdRng::seed_from_u64(100 + r as u64);
                let cfg = if antithetic {
                    OwenConfig::new(5, 4).with_antithetic()
                } else {
                    // Same evaluation budget: double the plain samples.
                    OwenConfig::new(5, 8)
                };
                let phi = owen_sampling(&u, &cfg, &mut rng);
                errs.push(l2_relative_error(&phi, &exact));
            }
            crate::metrics::variance(&errs)
        };
        let v_plain = spread(false);
        let v_anti = spread(true);
        assert!(
            v_anti < v_plain * 1.5,
            "antithetic variance {v_anti} should not exceed plain {v_plain} substantially"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let u = TableUtility::paper_table1();
        let cfg = OwenConfig::new(5, 10);
        let a = owen_sampling(&u, &cfg, &mut StdRng::seed_from_u64(9));
        let b = owen_sampling(&u, &cfg, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }

    #[test]
    fn streaming_complete_run_is_bit_identical_to_legacy() {
        let u = SaturatingUtility::uniform(6, 0.1, 0.8, 0.8);
        for cfg in [
            OwenConfig::new(5, 6),
            OwenConfig::new(4, 5).with_antithetic(),
        ] {
            let legacy = owen_sampling(&u, &cfg, &mut StdRng::seed_from_u64(17));
            let mut snapshots = Vec::new();
            let out = owen_sampling_streaming(&u, &cfg, &mut StdRng::seed_from_u64(17), |s| {
                snapshots.push(s.clone());
                crate::anytime::Control::Continue
            });
            assert_eq!(out.values, legacy, "antithetic={}", cfg.antithetic);
            assert!(!out.stopped_early);
            assert_eq!(out.batches_done, cfg.samples_per_node);
            for w in snapshots.windows(2) {
                assert!(w[0].samples_used <= w[1].samples_used);
            }
        }
    }

    #[test]
    fn streaming_stopped_run_equals_full_run_prefix() {
        let u = SaturatingUtility::uniform(5, 0.1, 0.7, 0.9);
        let cfg = OwenConfig::new(5, 8);
        let mut snapshots = Vec::new();
        let _ = owen_sampling_streaming(&u, &cfg, &mut StdRng::seed_from_u64(3), |s| {
            snapshots.push(s.clone());
            crate::anytime::Control::Continue
        });
        // Stop after round 3: bit-equal to the unstopped run's snapshot.
        let out = owen_sampling_streaming(&u, &cfg, &mut StdRng::seed_from_u64(3), |s| {
            if s.batches_done >= 3 {
                crate::anytime::Control::Stop
            } else {
                crate::anytime::Control::Continue
            }
        });
        assert!(out.stopped_early);
        assert_eq!(out.values, snapshots[2].values);
        assert_eq!(out.ci_halfwidths, snapshots[2].ci_halfwidths);
        assert_eq!(out.samples_used, snapshots[2].samples_used);
    }

    #[test]
    fn streaming_ci_becomes_finite_and_shrinks() {
        let u = SaturatingUtility::uniform(6, 0.1, 0.8, 0.8);
        let cfg = OwenConfig::new(5, 40);
        let mut widths = Vec::new();
        let out = owen_sampling_streaming(&u, &cfg, &mut StdRng::seed_from_u64(11), |s| {
            widths.push(s.max_halfwidth().unwrap_or(f64::INFINITY));
            crate::anytime::Control::Continue
        });
        // Round 1 has a single draw per node: CI must be unbounded, not NaN.
        assert!(widths[0].is_infinite());
        // Every sample informs every client, so two draws suffice for a
        // finite CI, and 40 draws shrink it well below the early width.
        assert!(widths[1].is_finite(), "{widths:?}");
        let last = out.ci_halfwidths.iter().cloned().fold(0.0f64, f64::max);
        assert!(last < widths[1] / 2.0, "{widths:?}");
        assert!(widths.iter().all(|w| !w.is_nan()));
    }

    #[test]
    fn single_client() {
        let u = TableUtility::new(1, vec![0.3, 0.9]);
        let mut rng = StdRng::seed_from_u64(3);
        let phi = owen_sampling(&u, &OwenConfig::new(2, 4), &mut rng);
        assert!((phi[0] - 0.6).abs() < 1e-9);
    }

    #[test]
    fn adaptive_run_exposes_the_allocation_and_spends_the_budget() {
        let u = SaturatingUtility::uniform(6, 0.1, 0.8, 0.8);
        let cfg = OwenConfig::new(5, 8);
        let policy = crate::adaptive::AdaptivePolicy::default();
        let mut allocations = Vec::new();
        let out = owen_sampling_streaming_adaptive(
            &u,
            &cfg,
            &policy,
            &mut StdRng::seed_from_u64(7),
            |s| {
                let alloc = match &s.allocation {
                    Some(a) => a.clone(),
                    None => panic!("adaptive snapshots must carry the allocation"),
                };
                allocations.push(alloc);
                crate::anytime::Control::Continue
            },
        );
        assert!(!out.stopped_early);
        // Cumulative per-node draw counts: monotone, ending at the budget.
        for w in allocations.windows(2) {
            assert!(w[0].iter().zip(&w[1]).all(|(a, b)| a <= b));
        }
        let last = match allocations.last() {
            Some(a) => a,
            None => panic!("no snapshots observed"),
        };
        assert_eq!(last.len(), cfg.q_nodes);
        assert_eq!(
            last.iter().sum::<usize>(),
            cfg.q_nodes * cfg.samples_per_node
        );
        assert_eq!(out.allocation.as_ref(), Some(last));
    }

    #[test]
    fn adaptive_stopped_run_equals_full_run_prefix() {
        let u = SaturatingUtility::uniform(5, 0.1, 0.7, 0.9);
        let cfg = OwenConfig::new(4, 6).with_antithetic();
        let policy = crate::adaptive::AdaptivePolicy::default();
        let mut snapshots = Vec::new();
        let _ = owen_sampling_streaming_adaptive(
            &u,
            &cfg,
            &policy,
            &mut StdRng::seed_from_u64(13),
            |s| {
                snapshots.push(s.clone());
                crate::anytime::Control::Continue
            },
        );
        assert!(snapshots.len() >= 3);
        let out = owen_sampling_streaming_adaptive(
            &u,
            &cfg,
            &policy,
            &mut StdRng::seed_from_u64(13),
            |s| {
                if s.batches_done >= 2 {
                    crate::anytime::Control::Stop
                } else {
                    crate::anytime::Control::Continue
                }
            },
        );
        assert!(out.stopped_early);
        assert_eq!(out.values, snapshots[1].values);
        assert_eq!(out.ci_halfwidths, snapshots[1].ci_halfwidths);
        assert_eq!(out.allocation, snapshots[1].allocation);
    }
}
