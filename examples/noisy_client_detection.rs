//! Noisy-client detection: the same-size-noisy-label setup of Sec. V-B.
//!
//! Six clients hold equal shares of the data, but label noise ramps from
//! 0% (client 1) to 20% (client 6). A fair valuation should price the
//! noisy datasets down — and IPSS should recover that ranking with a
//! fraction of the exact computation's FL trainings.
//!
//! Run with: `cargo run --release -p fedval-examples --bin noisy_client_detection`

// Demo driver: service errors surface by panicking with the message;
// a real integration would match on the typed ValuationError.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use fedval_core::prelude::*;
use fedval_data::{MnistLike, SyntheticSetup};
use fedval_fl::{FedAvgConfig, FlUtility, ModelSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let n = 6usize;
    let gen = MnistLike::new(77);
    let (train, test) = gen.generate_split(100 * n, 400, 3);
    let mut rng = StdRng::seed_from_u64(4);
    let clients =
        SyntheticSetup::SameSizeNoisyLabel { max_rate: 0.2 }.partition(&train, n, &mut rng);

    let utility = FlUtility::new(
        clients,
        test,
        ModelSpec::default_mlp(),
        FedAvgConfig {
            rounds: 6,
            local_epochs: 2,
            batch_size: 16,
            lr: 0.25,
            seed: 11,
            ..Default::default()
        },
    );

    let exact_outcome = run_valuation(&utility, exact_mc_sv);
    let mut rng = StdRng::seed_from_u64(8);
    let ipss_outcome = run_valuation(&utility, |u| {
        ipss_values(u, &IpssConfig::new(8), &mut rng) // Table III: n=6 → γ=8
    });

    println!("client  noise   exact ϕ   IPSS ϕ̂");
    for i in 0..n {
        let noise = 20.0 * i as f64 / (n - 1) as f64;
        println!(
            "  {}     {noise:>4.1}%   {:+.4}   {:+.4}",
            i + 1,
            exact_outcome.values[i],
            ipss_outcome.values[i]
        );
    }
    println!(
        "\nexact:  {} FL trainings; IPSS: {} FL trainings",
        exact_outcome.model_evaluations, ipss_outcome.model_evaluations
    );

    // The cleanest client should out-value the noisiest, under both.
    let e = &exact_outcome.values;
    let a = &ipss_outcome.values;
    println!(
        "clean (1) > noisiest (6)? exact: {}, IPSS: {}",
        e[0] > e[n - 1],
        a[0] > a[n - 1]
    );
    println!("rank agreement (Kendall τ) = {:.2}", kendall_tau(a, e));
}
