//! The multi-valuation service: a long-lived [`ValuationServer`] that
//! serves many concurrent valuation requests against **one** utility,
//! coalescing their coalition evaluations into shared batches.
//!
//! # Why a service
//!
//! The paper's IPSS estimator amortises utility evaluations across the
//! coalitions *one* run samples; the engine underneath (sharded
//! [`CachedUtility`], lock-step lane blocks, the FL trajectory cache)
//! amortises them across *anything that shares the utility handle*. A
//! production valuation deployment asks many questions about one training
//! setup — per-round Shapley values, leave-one-out, Banzhaf indices,
//! different seeds and budgets — and almost every question touches the
//! same coalitions (`∅`, singletons, the grand coalition, the small
//! strata). Serving those queries one-at-a-time re-pays the overlap;
//! serving them through one long-lived server pays it once.
//!
//! # How coalescing works
//!
//! Each request runs its estimator on a worker thread against a
//! run-local [`Utility`] facade. When the estimator evaluates a batch,
//! the facade *parks* the batch instead of evaluating it. When every
//! currently-eligible run is parked (runs that finished have
//! deregistered; runs awaiting results don't count), the last arrival
//! becomes the *flush leader*: it merges all parked batches, deduplicates
//! them, sorts them by `(|S|, mask)` and evaluates the distinct
//! coalitions as **one** batch through the shared [`CachedUtility`] —
//! which forwards only the cache misses to the inner utility (an FL
//! utility turns them into size-sorted lock-step lane blocks over one
//! shared trajectory cache). The leader then scatters per-run results and
//! wakes the parked runs.
//!
//! ```text
//!  request₁ ──▶ worker₁ ─ eval_batch ─┐                     ┌─ CachedUtility
//!  request₂ ──▶ worker₂ ─ eval_batch ─┼─▶ park ▶ barrier ▶ ─┤   (shared, sharded)
//!  request₃ ──▶ worker₃ ─ eval_batch ─┘    merge + dedup    └─▶ inner utility
//!                                          one shared batch     (lane blocks +
//!                                                                traj cache)
//! ```
//!
//! The barrier couples a run's batch latency to the slowest concurrent
//! run's inter-batch compute, in exchange for maximal coalescing; a run
//! alone on the server flushes immediately, so the single-tenant case
//! degenerates to a plain cached evaluation. To bound the coupling, a
//! [`FlushWindow`] adds two early triggers — flush after `max_wait` of
//! parked time, or once `max_parked` batches are parked — trading some
//! coalescing for a latency cap. Utility determinism makes every
//! schedule invisible in the results: every value is a pure function of
//! its coalition mask, so coalesced runs return **bit-identical** values
//! to solo runs, under any interleaving and any flush trigger.
//!
//! # Failure model
//!
//! Failure is a first-class code path, not an abort:
//!
//! - **Typed errors.** [`Ticket::wait`] returns
//!   `Result<ValuationResponse, ValuationError>`; nothing in the service
//!   panics the caller.
//! - **Fault isolation.** If the inner utility panics under a flush
//!   leader, the flush is *poisoned*: only the runs whose batches were
//!   merged into it are affected, and each retries **its own batch**
//!   directly against the still-healthy shared cache with capped
//!   exponential backoff ([`RetryPolicy`]). Transient faults heal;
//!   persistent ones surface as [`ValuationError::UtilityPanicked`] on
//!   exactly the requests that touch the faulty coalitions.
//! - **Deadlines and budgets.** A request may carry a wall-clock
//!   deadline and/or an evaluation budget, enforced at batch boundaries.
//!   On overrun the run degrades gracefully (default
//!   [`LimitPolicy::Partial`]): it returns the values folded from the
//!   evaluated prefix ([`partial_prefix_fold`]) with
//!   [`RunStats::partial`] set, or fails with the typed error under
//!   [`LimitPolicy::Fail`].
//! - **Shutdown drains.** [`ValuationServer::shutdown`] stops in-flight
//!   runs at their next batch boundary and resolves *every* outstanding
//!   ticket with [`ValuationError::ServerShutdown`] — no ticket is ever
//!   left hanging.
//!
//! # Memory
//!
//! The shared caches are the service's working set: the coalition memo
//! grows by one `f64` per distinct coalition, and an FL trajectory cache
//! by `p` floats per distinct client-round. For long-lived servers, bound
//! the latter with a byte budget (`TrajectoryCache::with_byte_budget` in
//! `fedval-fl`) or clear it between runs; occupancy and evictions are
//! reported in [`TrajCacheStats`] through [`ServiceStats`].
//!
//! # Example
//!
//! ```
//! use fedval_core::coalition::Coalition;
//! use fedval_core::exact::exact_mc_sv;
//! use fedval_core::service::{Estimator, ValuationRequest, ValuationServer};
//! use fedval_core::utility::TableUtility;
//!
//! let server = ValuationServer::start(TableUtility::paper_table1());
//! // Submit three concurrent requests, then wait for all of them.
//! let tickets: Vec<_> = [
//!     ValuationRequest::new(Estimator::ExactMc, 0, 1),
//!     ValuationRequest::new(Estimator::ExactCc, 0, 2),
//!     ValuationRequest::new(Estimator::Ipss, 5, 3),
//! ]
//! .into_iter()
//! .map(|req| server.submit(req))
//! .collect();
//! let responses: Vec<_> = tickets
//!     .into_iter()
//!     .map(|t| t.wait().expect("healthy utility"))
//!     .collect();
//!
//! // Results are bit-identical to solo execution...
//! assert_eq!(responses[0].values, exact_mc_sv(&TableUtility::paper_table1()));
//! assert_eq!(responses[0].clients, vec![0, 1, 2]);
//! // ...and the shared cache paid each distinct coalition once: the two
//! // exact sweeps plus IPSS touch all 2^3 masks, but train only 8.
//! let stats = server.stats();
//! assert_eq!(stats.eval.evaluations, 8);
//! assert!(stats.eval.lookups > 8, "overlap resolved from the cache");
//! server.shutdown();
//! ```

// This module IS the timing whitelist (clippy.toml bans Instant::now
// elsewhere): park-wait deadlines and flush windows are wall-clock by
// design, bound only *when* work happens — never what the values are.
#![allow(clippy::disallowed_methods)]

use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::adaptive::AdaptivePolicy;
use crate::anytime::{Control, ProgressSnapshot, StoppingRule, StreamingOutcome};
use crate::banzhaf::{banzhaf_pruned, banzhaf_pruned_streaming};
use crate::coalition::Coalition;
use crate::exact::{exact_cc_sv, exact_mc_sv, exact_mc_sv_streaming};
use crate::fault::quiet;
use crate::ipss::{ipss_streaming, ipss_streaming_adaptive, ipss_values, IpssConfig};
use crate::loo::leave_one_out;
use crate::owen::{
    owen_sampling, owen_sampling_streaming, owen_sampling_streaming_adaptive, OwenConfig,
};
use crate::stratified::{
    stratified_sampling_streaming, stratified_sampling_streaming_adaptive,
    stratified_sampling_values, Scheme, StratifiedConfig,
};
use crate::utility::{CachedUtility, EvalStats, TrajCacheStats, Utility};

/// Which valuation estimator a [`ValuationRequest`] runs. Every variant
/// dispatches through [`Utility::eval_batch`], so all of them coalesce.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Estimator {
    /// Exact Shapley values via the MC expression (all `2^n` coalitions).
    ExactMc,
    /// Exact Shapley values via the CC expression (all `2^n` coalitions).
    ExactCc,
    /// IPSS (Alg. 3) with `γ` = the request's budget.
    Ipss,
    /// Stratified sampling (Alg. 1), MC scheme, budget split uniformly
    /// over the strata.
    StratifiedMc,
    /// Stratified sampling (Alg. 1), CC scheme, budget split uniformly.
    StratifiedCc,
    /// Owen multilinear sampling; the budget approximates the total
    /// number of utility evaluations.
    Owen,
    /// Importance-pruned Banzhaf values with `γ` = the request's budget.
    BanzhafPruned,
    /// Leave-one-out values (`n + 1` evaluations; budget ignored).
    Loo,
}

/// Why a valuation request failed — the error side of [`Ticket::wait`].
///
/// Every variant names a *request-scoped* failure: the server itself
/// stays healthy and keeps serving other requests (the whole point of
/// the fault-tolerance layer).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ValuationError {
    /// The utility panicked under every attempt to evaluate one of this
    /// run's batches (the poisoned flush plus `attempts − 1` direct
    /// retries). Other runs sharing the flush retried independently.
    UtilityPanicked {
        /// Evaluation attempts made for the failing batch.
        attempts: usize,
        /// Message of the last panic.
        detail: String,
    },
    /// The estimator itself panicked outside a utility batch (e.g. an
    /// infeasible budget failing a precondition).
    EstimatorPanicked {
        /// Message of the panic.
        detail: String,
    },
    /// The request was malformed (empty or out-of-range client set).
    InvalidRequest {
        /// What was wrong.
        detail: String,
    },
    /// The run hit its wall-clock deadline at a batch boundary and the
    /// request asked to fail ([`LimitPolicy::Fail`]) instead of
    /// returning a partial prefix.
    DeadlineExceeded {
        /// The request's deadline.
        deadline: Duration,
        /// Elapsed wall-clock time when the boundary check fired.
        elapsed: Duration,
    },
    /// The run's next batch would overrun its evaluation budget and the
    /// request asked to fail ([`LimitPolicy::Fail`]).
    BudgetExhausted {
        /// Coalition evaluations already consumed.
        consumed: usize,
        /// The request's `max_evals`.
        max_evals: usize,
        /// Size of the batch that did not fit.
        next_batch: usize,
    },
    /// The server shut down before (or while) serving this request. All
    /// outstanding tickets resolve with this error on shutdown.
    ServerShutdown,
    /// The worker vanished without delivering a response — a service
    /// bug, kept as a typed error so callers never block forever.
    WorkerLost,
}

impl fmt::Display for ValuationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValuationError::UtilityPanicked { attempts, detail } => {
                write!(f, "utility panicked in all {attempts} attempts: {detail}")
            }
            ValuationError::EstimatorPanicked { detail } => {
                write!(f, "estimator panicked: {detail}")
            }
            ValuationError::InvalidRequest { detail } => write!(f, "invalid request: {detail}"),
            ValuationError::DeadlineExceeded { deadline, elapsed } => write!(
                f,
                "deadline of {deadline:?} exceeded after {elapsed:?} (at a batch boundary)"
            ),
            ValuationError::BudgetExhausted {
                consumed,
                max_evals,
                next_batch,
            } => write!(
                f,
                "evaluation budget exhausted: {consumed} consumed of {max_evals}, \
                 next batch needs {next_batch}"
            ),
            ValuationError::ServerShutdown => write!(f, "server shut down"),
            ValuationError::WorkerLost => {
                write!(f, "valuation worker terminated without a response")
            }
        }
    }
}

impl std::error::Error for ValuationError {}

/// What a run does when it hits its deadline or evaluation budget.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum LimitPolicy {
    /// Degrade gracefully: return [`partial_prefix_fold`] over the
    /// evaluated prefix, with [`RunStats::partial`] set. Default.
    #[default]
    Partial,
    /// Fail the request with [`ValuationError::DeadlineExceeded`] /
    /// [`ValuationError::BudgetExhausted`].
    Fail,
}

/// One valuation query: *which estimator*, over *which clients*, with
/// *what budget and seed* — plus optional per-request limits.
#[derive(Clone, Debug)]
pub struct ValuationRequest {
    /// The estimator to run.
    pub estimator: Estimator,
    /// Restrict valuation to this subset of clients (`None` = all). The
    /// run plays the *sub-game* on these clients: coalitions range over
    /// subsets of the set, and values are reported per member. Sub-game
    /// coalitions are translated to global masks before evaluation, so
    /// requests over different client sets still share cached coalitions.
    pub clients: Option<Coalition>,
    /// Sampling budget, interpreted per estimator (IPSS/Banzhaf `γ`,
    /// stratified/Owen total evaluations; ignored by exact/LOO).
    pub budget: usize,
    /// Seed of the run's RNG stream — results are a pure function of
    /// `(estimator, clients, budget, seed)` and the utility.
    pub seed: u64,
    /// Wall-clock deadline, measured from worker start and enforced at
    /// batch boundaries (`None` = unbounded). A batch in flight when the
    /// deadline passes still completes; the *next* boundary fires.
    pub deadline: Option<Duration>,
    /// Hard cap on coalition evaluations this run may consume, enforced
    /// *before* each batch (`None` = unbounded). Distinct from `budget`:
    /// `budget` shapes what the estimator samples, `max_evals` cuts the
    /// run off mid-schedule.
    pub max_evals: Option<usize>,
    /// What to do when `deadline` or `max_evals` fires.
    pub on_limit: LimitPolicy,
    /// Run the estimator's *streaming* fold and stop early once this
    /// rule is satisfied at a batch boundary (`None` = classic fixed-
    /// budget run). Streaming runs emit [`ProgressSnapshot`] events on
    /// the ticket ([`Ticket::progress`]) and attach the final snapshot
    /// to the response; the determinism contract guarantees a stopped
    /// run's values bit-equal the same-seed full run's snapshot at the
    /// same batch count.
    pub stopping: Option<StoppingRule>,
    /// Re-plan the sampling budget at every batch boundary by Neyman
    /// allocation (`None` = the estimator's fixed uniform schedule).
    /// Applies to the sampling estimators with a steerable schedule —
    /// [`Estimator::StratifiedMc`], [`Estimator::StratifiedCc`],
    /// [`Estimator::Ipss`] and [`Estimator::Owen`]; the exact sweeps,
    /// LOO and pruned Banzhaf have nothing to steer and ignore it.
    /// Forces the streaming fold: combined with `stopping: None` the run
    /// streams under [`StoppingRule::stream_only`] (progress snapshots,
    /// no early stop). Adaptive snapshots carry
    /// [`ProgressSnapshot::allocation`], and the determinism contract is
    /// unchanged: the allocation sequence is a pure function of
    /// (seed, snapshot history), so coalesced runs stay bit-identical to
    /// solo runs.
    pub adaptive: Option<AdaptivePolicy>,
}

impl ValuationRequest {
    /// A request over all clients, with no deadline or evaluation cap.
    pub fn new(estimator: Estimator, budget: usize, seed: u64) -> Self {
        ValuationRequest {
            estimator,
            clients: None,
            budget,
            seed,
            deadline: None,
            max_evals: None,
            on_limit: LimitPolicy::default(),
            stopping: None,
            adaptive: None,
        }
    }

    /// Restrict the valuation to a client subset (the sub-game on `s`).
    pub fn for_clients(mut self, s: Coalition) -> Self {
        self.clients = Some(s);
        self
    }

    /// Set a wall-clock deadline, enforced at batch boundaries.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Cap the coalition evaluations the run may consume.
    pub fn with_max_evals(mut self, max_evals: usize) -> Self {
        self.max_evals = Some(max_evals);
        self
    }

    /// Choose the limit behaviour (default: [`LimitPolicy::Partial`]).
    pub fn on_limit(mut self, policy: LimitPolicy) -> Self {
        self.on_limit = policy;
        self
    }

    /// Run the streaming fold under `rule`, emitting progress snapshots
    /// and stopping early once the rule fires at a batch boundary.
    /// `StoppingRule::stream_only()` streams progress without ever
    /// stopping early.
    pub fn with_stopping(mut self, rule: StoppingRule) -> Self {
        self.stopping = Some(rule);
        self
    }

    /// Re-plan the sampling budget each round by Neyman allocation under
    /// `policy` (see [`crate::adaptive`]). Implies streaming; composes
    /// with [`ValuationRequest::with_stopping`], deadlines and budgets.
    pub fn with_adaptive(mut self, policy: AdaptivePolicy) -> Self {
        self.adaptive = Some(policy);
        self
    }
}

/// Per-run batching statistics, attached to every [`ValuationResponse`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Batches the run's estimator parked at the coalescer.
    pub batches: usize,
    /// Coalition values the run consumed (including repeats and overlap
    /// with other runs — compare with the shared [`EvalStats`] to see the
    /// dedup).
    pub coalitions: usize,
    /// Batches that were flushed together with at least one other run's
    /// batch — the run's share of actual cross-run coalescing.
    pub coalesced_batches: usize,
    /// The run hit its deadline or evaluation cap and the response holds
    /// the partial-prefix fold instead of the estimator's full output.
    pub partial: bool,
    /// A streaming run's [`StoppingRule`] fired before the schedule
    /// completed; the values are the (bit-reproducible) prefix estimate
    /// at the stopping batch. Always `false` for non-streaming runs.
    pub stopped_early: bool,
    /// Direct retries this run performed after poisoned flushes.
    pub retries: usize,
    /// Longest time one of this run's batches spent at the coalescer
    /// (parking through result delivery, including the flush itself) —
    /// the latency a [`FlushWindow`] bounds.
    pub park_wait_max: Duration,
}

/// Cumulative service-wide statistics ([`ValuationServer::stats`], also
/// snapshotted into every response).
#[derive(Clone, Copy, Debug, Default)]
pub struct ServiceStats {
    /// Requests completed since the server started (successfully or not).
    pub requests: usize,
    /// Coalescer flushes attempted (including poisoned ones).
    pub flushes: usize,
    /// Parked batches merged across all flushes (`> flushes` ⇔ cross-run
    /// coalescing happened).
    pub merged_batches: usize,
    /// Flushes whose inner evaluation panicked; the affected runs
    /// retried their own batches directly.
    pub failed_flushes: usize,
    /// Direct per-run retry attempts after poisoned flushes.
    pub retries: usize,
    /// Distinct coalitions delivered through *successful* flushes (after
    /// merge-level dedup; retry traffic bypasses the coalescer and is
    /// visible in `eval.lookups` instead).
    pub distinct_coalitions: usize,
    /// The shared coalition cache's accounting: `evaluations` is the
    /// total number of models actually trained on behalf of *all* runs.
    pub eval: EvalStats,
    /// Training-level accounting of the utility's trajectory cache, when
    /// the server was built with a stats source
    /// ([`ServerBuilder::traj_stats`]); includes occupancy (`entries`,
    /// `bytes`) and `evictions` under a byte budget.
    pub traj: Option<TrajCacheStats>,
}

/// The reply to a [`ValuationRequest`].
#[derive(Clone, Debug)]
pub struct ValuationResponse {
    /// The request this answers.
    pub request: ValuationRequest,
    /// Global client indices valued, ascending (all clients, or the
    /// members of `request.clients`).
    pub clients: Vec<usize>,
    /// Estimated values, positionally aligned with `clients`. When
    /// [`RunStats::partial`] is set, these are the [`partial_prefix_fold`]
    /// of the batches evaluated before the limit fired.
    pub values: Vec<f64>,
    /// Wall-clock time from worker start to estimator completion.
    pub wall_time: Duration,
    /// This run's batching statistics.
    pub run: RunStats,
    /// Service-wide statistics snapshotted at completion.
    pub service: ServiceStats,
    /// The final [`ProgressSnapshot`] of a streaming run (equal to the
    /// last event the ticket streamed, values bit-identical to `values`).
    /// `None` for non-streaming requests.
    pub progress: Option<ProgressSnapshot>,
}

/// A pending response ([`ValuationServer::submit`]).
pub struct Ticket {
    rx: mpsc::Receiver<Result<ValuationResponse, ValuationError>>,
    progress_rx: mpsc::Receiver<ProgressSnapshot>,
}

impl Ticket {
    /// Drain the progress events a *streaming* request has emitted so
    /// far (empty for non-streaming requests and between batches).
    /// Snapshots arrive in batch order — `samples_used` is monotone
    /// non-decreasing — and the last snapshot a completed run emits
    /// equals the response's [`ValuationResponse::progress`]. Designed
    /// to interleave with [`Ticket::wait_timeout`] in a poll loop.
    pub fn progress(&self) -> Vec<ProgressSnapshot> {
        let mut out = Vec::new();
        while let Ok(s) = self.progress_rx.try_recv() {
            out.push(s);
        }
        out
    }

    /// Block until the request resolves — with its response, or with the
    /// typed error describing why it could not be served.
    pub fn wait(self) -> Result<ValuationResponse, ValuationError> {
        self.rx.recv().unwrap_or(Err(ValuationError::WorkerLost))
    }

    /// Poll for up to `timeout`: `None` while the request is still in
    /// flight, `Some(result)` once it resolved. The ticket stays usable
    /// after a `None`, so callers can poll in a loop or interleave other
    /// work without blocking forever.
    pub fn wait_timeout(
        &self,
        timeout: Duration,
    ) -> Option<Result<ValuationResponse, ValuationError>> {
        match self.rx.recv_timeout(timeout) {
            Ok(result) => Some(result),
            Err(mpsc::RecvTimeoutError::Timeout) => None,
            Err(mpsc::RecvTimeoutError::Disconnected) => Some(Err(ValuationError::WorkerLost)),
        }
    }
}

/// Early flush triggers bounding how long a parked batch can wait on the
/// all-eligible-runs barrier ([`ServerBuilder::flush_window`],
/// [`ServerBuilder::flush_after_parked`]). Either trigger trades some
/// cross-run coalescing for a latency bound; neither can change a value
/// (every value is a pure function of its coalition mask).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FlushWindow {
    /// Flush once the oldest parked batch has waited this long, even if
    /// not every eligible run has parked (`None` = barrier only).
    pub max_wait: Option<Duration>,
    /// Flush as soon as this many batches are parked (`None` = barrier
    /// only; `Some(1)` disables cross-run batching entirely).
    pub max_parked: Option<usize>,
}

/// Backoff schedule for direct retries after a poisoned flush.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Direct retries after the initial (flushed) attempt fails.
    pub max_retries: usize,
    /// Sleep before the first retry; doubles per attempt.
    pub backoff_base: Duration,
    /// Cap on the per-attempt backoff.
    pub backoff_cap: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 2,
            backoff_base: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(50),
        }
    }
}

impl RetryPolicy {
    /// Backoff before retry `attempt` (1-based): `base · 2^(attempt−1)`,
    /// capped.
    fn backoff(&self, attempt: usize) -> Duration {
        let factor = 1u32 << (attempt - 1).min(16);
        self.backoff_base
            .checked_mul(factor)
            .unwrap_or(self.backoff_cap)
            .min(self.backoff_cap)
    }
}

/// Fold partial Shapley estimates from an evaluated prefix.
///
/// This is the graceful-degradation estimator behind
/// [`LimitPolicy::Partial`]: given the `(coalition, value)` pairs a run
/// evaluated before its deadline/budget fired (in evaluation order), it
/// computes, for every stratum, the mean marginal contribution over the
/// pairs `(T, T∖{i})` whose *both* members were evaluated, and averages
/// the per-stratum means — the same stratified-mean fold IPSS uses for
/// its partially-sampled stratum, applied uniformly to whatever prefix
/// exists. Clients without a single evaluated pair get `0.0`.
///
/// The fold is a pure function of the prefix: re-running the same
/// request without limits and truncating its evaluation log after the
/// same number of batches reproduces the partial values **bit-identically**
/// (the test suite asserts this).
pub fn partial_prefix_fold(n: usize, evaluated: &[(Coalition, f64)]) -> Vec<f64> {
    let mut memo: HashMap<u128, f64> = HashMap::with_capacity(evaluated.len());
    let mut order: Vec<Coalition> = Vec::with_capacity(evaluated.len());
    for &(s, v) in evaluated {
        if let std::collections::hash_map::Entry::Vacant(e) = memo.entry(s.0) {
            e.insert(v);
            order.push(s);
        }
    }
    // Per-(stratum, client) accumulators; deterministic accumulation in
    // first-evaluation order keeps the fold bit-stable.
    let mut sums = vec![vec![0.0f64; n]; n];
    let mut counts = vec![vec![0usize; n]; n];
    for &t in &order {
        let t_size = t.size();
        if t_size == 0 {
            continue;
        }
        let ut = memo[&t.0];
        for i in t.members() {
            if let Some(&us) = memo.get(&t.without(i).0) {
                sums[t_size - 1][i] += ut - us;
                counts[t_size - 1][i] += 1;
            }
        }
    }
    let inv_n = 1.0 / n as f64;
    (0..n)
        .map(|i| {
            let mut phi = 0.0f64;
            for stratum in 0..n {
                if counts[stratum][i] > 0 {
                    phi += sums[stratum][i] / counts[stratum][i] as f64;
                }
            }
            phi * inv_n
        })
        .collect()
}

/// Outcome of one flush, delivered to each parked batch.
struct FlushOutcome {
    /// Values aligned with the parked batch's coalitions.
    values: Vec<f64>,
    /// How many parked batches the flush merged.
    merged_batches: usize,
}

/// Why a parked batch came back without values.
enum FlushFailure {
    /// The flush leader's evaluation panicked; the message is the panic
    /// payload. The caller retries its own batch directly.
    Poisoned(String),
    /// The server shut down while the batch was parked.
    Shutdown,
}

/// A batch parked at the coalescer, waiting for a flush.
struct ParkedEntry {
    coalitions: Vec<Coalition>,
    /// `None` while pending; filled by the flush leader. `Err` carries
    /// the panic message of a poisoned flush.
    outcome: Option<Result<FlushOutcome, String>>,
    /// Taken by a leader (in flight) — no longer counted as parked.
    taken: bool,
    /// When the batch parked — drives the [`FlushWindow`] `max_wait`
    /// trigger.
    parked_at: Instant,
}

/// Coalescer state, guarded by one mutex (the condvar lives beside it).
#[derive(Default)]
struct CoState {
    /// Runs registered and *able to park*: registered minus the runs
    /// whose batch is in flight in a flush. The flush barrier is
    /// `parked == eligible`.
    eligible: usize,
    /// Entries not yet taken by a leader.
    parked: usize,
    next_ticket: u64,
    /// Parked batches by ticket. A `BTreeMap`, not a `HashMap`: the
    /// flush leader walks this map to take parked entries, and a B-tree
    /// iterates in ticket (arrival) order — deterministic by
    /// construction, where hash order would silently depend on the
    /// allocator state. (The merged batch is sorted again before
    /// evaluation, but the take order must not be left to chance.)
    entries: BTreeMap<u64, ParkedEntry>,
    flushes: usize,
    merged_batches: usize,
    failed_flushes: usize,
    distinct_coalitions: usize,
}

/// Everything the workers share: the cached utility, the coalescer, the
/// failure-handling configuration and the service counters.
struct Shared<U: Utility + Send + Sync> {
    cached: CachedUtility<U>,
    state: Mutex<CoState>,
    cv: Condvar,
    window: FlushWindow,
    retry: RetryPolicy,
    shutdown: AtomicBool,
    requests_done: AtomicU64,
    retries: AtomicU64,
    traj_stats: Option<Box<dyn Fn() -> TrajCacheStats + Send + Sync>>,
}

impl<U: Utility + Send + Sync> Shared<U> {
    /// Lock the coalescer state, recovering from poison: the service
    /// never panics while holding this lock on purpose, but a poisoned
    /// guard must degrade to the typed error path, not to more panics.
    fn lock_state(&self) -> MutexGuard<'_, CoState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }

    /// Register a run (performed by the dispatcher *before* the worker
    /// spawns, so a burst of submissions coalesces from its first batch).
    fn register(&self) {
        self.lock_state().eligible += 1;
    }

    /// Deregister a finished run and wake parked waiters — the barrier
    /// may have become satisfiable.
    fn unregister(&self) {
        let mut st = self.lock_state();
        st.eligible -= 1;
        drop(st);
        self.cv.notify_all();
    }

    /// Park `coalitions` and wait for a flush to deliver their values.
    /// A caller that observes a satisfied trigger — the barrier
    /// (`parked == eligible`), or either [`FlushWindow`] condition —
    /// becomes the leader and evaluates the merged batch itself.
    fn eval_coalesced(&self, coalitions: &[Coalition]) -> Result<FlushOutcome, FlushFailure> {
        let mut st = self.lock_state();
        let ticket = st.next_ticket;
        st.next_ticket += 1;
        st.entries.insert(
            ticket,
            ParkedEntry {
                coalitions: coalitions.to_vec(),
                outcome: None,
                taken: false,
                parked_at: Instant::now(),
            },
        );
        st.parked += 1;
        loop {
            if st.entries.get(&ticket).is_some_and(|e| e.outcome.is_some()) {
                let Some(entry) = st.entries.remove(&ticket) else {
                    unreachable!("own ticket resident until removed here")
                };
                let Some(outcome) = entry.outcome else {
                    unreachable!("outcome presence checked above")
                };
                return outcome.map_err(FlushFailure::Poisoned);
            }
            if self.is_shutdown() {
                // Withdraw the batch unless a leader already owns it (in
                // which case the leader will deliver an outcome shortly).
                if st.entries.get(&ticket).is_some_and(|e| !e.taken) {
                    st.entries.remove(&ticket);
                    st.parked -= 1;
                    drop(st);
                    self.cv.notify_all();
                    return Err(FlushFailure::Shutdown);
                }
            }
            let barrier = st.parked > 0 && st.parked == st.eligible;
            let count_trigger = self.window.max_parked.is_some_and(|k| st.parked >= k);
            let wait_deadline = self.window.max_wait.and_then(|w| {
                st.entries
                    .values()
                    .filter(|e| !e.taken)
                    .map(|e| e.parked_at)
                    .min()
                    .map(|oldest| oldest + w)
            });
            let window_trigger = wait_deadline.is_some_and(|d| Instant::now() >= d);
            if barrier || count_trigger || window_trigger {
                st = self.flush(st);
                continue; // own outcome is now set (or poisoned)
            }
            st = match wait_deadline {
                Some(deadline) => {
                    let timeout = deadline.saturating_duration_since(Instant::now());
                    self.cv
                        .wait_timeout(st, timeout)
                        .map(|(guard, _timed_out)| guard)
                        .unwrap_or_else(|e| e.into_inner().0)
                }
                None => self.cv.wait(st).unwrap_or_else(PoisonError::into_inner),
            };
        }
    }

    /// Flush every parked batch as the leader: merge, dedup, sort,
    /// evaluate through the shared cache, scatter results, wake waiters.
    /// Takes and returns the state guard (the evaluation itself runs
    /// unlocked, so a new wave of runs can park meanwhile). A panicking
    /// inner utility is caught here: the taken entries are poisoned with
    /// the panic message and their owners retry independently — the
    /// coalescer itself stays healthy.
    fn flush<'a>(&'a self, mut st: MutexGuard<'a, CoState>) -> MutexGuard<'a, CoState> {
        let taken: Vec<u64> = st
            .entries
            .iter_mut()
            .filter(|(_, e)| !e.taken)
            .map(|(&id, e)| {
                e.taken = true;
                id
            })
            .collect();
        let batch_count = taken.len();
        if batch_count == 0 {
            return st;
        }
        st.parked -= batch_count;
        st.eligible -= batch_count;
        st.flushes += 1;
        st.merged_batches += batch_count;
        // Merge + dedup, then a deterministic forwarding order (by size,
        // ties by mask) so lane-block composition downstream does not
        // depend on arrival order.
        let mut seen: HashSet<u128> = HashSet::new();
        let mut merged: Vec<Coalition> = Vec::new();
        for id in &taken {
            for &s in &st.entries[id].coalitions {
                if seen.insert(s.0) {
                    merged.push(s);
                }
            }
        }
        merged.sort_by_key(|s| (s.size(), s.0));
        drop(st);

        // Evaluate unlocked, catching panics: a poisoned flush fails only
        // the runs whose batches it merged.
        match quiet::catch_quiet(|| self.cached.eval_batch(&merged)) {
            Ok(values) => {
                let by_mask: HashMap<u128, f64> = merged.iter().map(|s| s.0).zip(values).collect();
                let mut st = self.lock_state();
                st.distinct_coalitions += merged.len();
                for id in &taken {
                    let Some(entry) = st.entries.get_mut(id) else {
                        unreachable!("taken entries stay resident until their owner consumes them")
                    };
                    entry.outcome = Some(Ok(FlushOutcome {
                        values: entry
                            .coalitions
                            .iter()
                            .map(|s| {
                                by_mask.get(&s.0).copied().unwrap_or_else(|| {
                                    unreachable!("merged batch covers every taken coalition")
                                })
                            })
                            .collect(),
                        merged_batches: batch_count,
                    }));
                }
                st.eligible += batch_count;
                drop(st);
            }
            Err(payload) => {
                let detail = quiet::panic_message(payload.as_ref());
                let mut st = self.lock_state();
                st.failed_flushes += 1;
                for id in &taken {
                    if let Some(entry) = st.entries.get_mut(id) {
                        entry.outcome = Some(Err(detail.clone()));
                    }
                }
                st.eligible += batch_count;
                drop(st);
            }
        }
        self.cv.notify_all();
        self.lock_state()
    }

    fn stats(&self) -> ServiceStats {
        let st = self.lock_state();
        ServiceStats {
            requests: self.requests_done.load(Ordering::Relaxed) as usize,
            flushes: st.flushes,
            merged_batches: st.merged_batches,
            failed_flushes: st.failed_flushes,
            retries: self.retries.load(Ordering::Relaxed) as usize,
            distinct_coalitions: st.distinct_coalitions,
            eval: self.cached.stats(),
            traj: self.traj_stats.as_ref().map(|f| f()),
        }
    }
}

/// Deregisters a run when dropped — including during a worker panic, so
/// parked peers never wait on a dead run.
struct RunGuard<U: Utility + Send + Sync>(Arc<Shared<U>>);

impl<U: Utility + Send + Sync> Drop for RunGuard<U> {
    fn drop(&mut self) {
        self.0.unregister();
    }
}

/// Internal abort marker unwound out of an estimator at a batch
/// boundary; `serve_one` catches it and turns it into the partial
/// response or the typed error.
enum ServiceAbort {
    Deadline {
        deadline: Duration,
        elapsed: Duration,
    },
    Budget {
        consumed: usize,
        max_evals: usize,
        next_batch: usize,
    },
    Fault(ValuationError),
}

fn abort(reason: ServiceAbort) -> ! {
    quiet::silent_panic_any(reason)
}

/// The run-local [`Utility`] facade an estimator evaluates against:
/// translates sub-game coalitions to global masks, enforces the
/// request's limits at batch boundaries, parks batches at the coalescer
/// (retrying directly after poisoned flushes) and tracks per-run
/// statistics.
struct RunUtility<U: Utility + Send + Sync> {
    shared: Arc<Shared<U>>,
    /// Global client indices of the run's sub-game, ascending.
    members: Vec<usize>,
    /// Fast path: the run spans all clients (masks pass through).
    identity: bool,
    started: Instant,
    deadline: Option<Duration>,
    max_evals: Option<usize>,
    /// Record `(local coalition, value)` pairs for [`partial_prefix_fold`]
    /// (only when the request carries a limit under `Partial` policy).
    record: bool,
    log: Mutex<Vec<(Coalition, f64)>>,
    batches: AtomicU64,
    coalitions: AtomicU64,
    coalesced: AtomicU64,
    retries: AtomicU64,
    park_wait_max_ns: AtomicU64,
}

impl<U: Utility + Send + Sync> RunUtility<U> {
    fn to_global(&self, s: Coalition) -> Coalition {
        if self.identity {
            return s;
        }
        Coalition::from_members(s.members().map(|j| self.members[j]))
    }

    fn run_stats(&self, partial: bool, stopped_early: bool) -> RunStats {
        RunStats {
            batches: self.batches.load(Ordering::Relaxed) as usize,
            coalitions: self.coalitions.load(Ordering::Relaxed) as usize,
            coalesced_batches: self.coalesced.load(Ordering::Relaxed) as usize,
            partial,
            stopped_early,
            retries: self.retries.load(Ordering::Relaxed) as usize,
            park_wait_max: Duration::from_nanos(self.park_wait_max_ns.load(Ordering::Relaxed)),
        }
    }

    /// Batch-boundary checkpoint: shutdown, deadline, then budget. Fires
    /// *before* the batch is parked, so an aborted batch consumed nothing.
    fn checkpoint(&self, next_batch: usize) {
        if self.shared.is_shutdown() {
            abort(ServiceAbort::Fault(ValuationError::ServerShutdown));
        }
        if let Some(deadline) = self.deadline {
            let elapsed = self.started.elapsed();
            if elapsed >= deadline {
                abort(ServiceAbort::Deadline { deadline, elapsed });
            }
        }
        if let Some(max_evals) = self.max_evals {
            let consumed = self.coalitions.load(Ordering::Relaxed) as usize;
            if consumed + next_batch > max_evals {
                abort(ServiceAbort::Budget {
                    consumed,
                    max_evals,
                    next_batch,
                });
            }
        }
    }

    /// Direct retries after a poisoned flush: the run's own batch, against
    /// the still-healthy shared cache, with capped exponential backoff.
    /// Bypassing the coalescer isolates the failure — peers whose batches
    /// are healthy retry successfully in parallel.
    fn retry_direct(&self, global: &[Coalition], mut detail: String) -> Vec<f64> {
        let policy = self.shared.retry;
        for attempt in 1..=policy.max_retries {
            thread::sleep(policy.backoff(attempt));
            self.retries.fetch_add(1, Ordering::Relaxed);
            self.shared.retries.fetch_add(1, Ordering::Relaxed);
            if self.shared.is_shutdown() {
                abort(ServiceAbort::Fault(ValuationError::ServerShutdown));
            }
            match quiet::catch_quiet(|| self.shared.cached.eval_batch(global)) {
                Ok(values) => return values,
                Err(payload) => detail = quiet::panic_message(payload.as_ref()),
            }
        }
        abort(ServiceAbort::Fault(ValuationError::UtilityPanicked {
            attempts: policy.max_retries + 1,
            detail,
        }));
    }
}

impl<U: Utility + Send + Sync> Utility for RunUtility<U> {
    fn n_clients(&self) -> usize {
        self.members.len()
    }

    fn eval(&self, s: Coalition) -> f64 {
        self.eval_batch(std::slice::from_ref(&s))[0]
    }

    fn eval_batch(&self, coalitions: &[Coalition]) -> Vec<f64> {
        if coalitions.is_empty() {
            return Vec::new();
        }
        self.checkpoint(coalitions.len());
        let global: Vec<Coalition> = coalitions.iter().map(|&s| self.to_global(s)).collect();
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.coalitions
            .fetch_add(coalitions.len() as u64, Ordering::Relaxed);
        let parked_at = Instant::now();
        let values = match self.shared.eval_coalesced(&global) {
            Ok(outcome) => {
                if outcome.merged_batches > 1 {
                    self.coalesced.fetch_add(1, Ordering::Relaxed);
                }
                outcome.values
            }
            Err(FlushFailure::Shutdown) => {
                abort(ServiceAbort::Fault(ValuationError::ServerShutdown))
            }
            Err(FlushFailure::Poisoned(detail)) => self.retry_direct(&global, detail),
        };
        self.park_wait_max_ns
            .fetch_max(parked_at.elapsed().as_nanos() as u64, Ordering::Relaxed);
        if self.record {
            self.log
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .extend(coalitions.iter().copied().zip(values.iter().copied()));
        }
        values
    }
}

/// Run the requested estimator against the run-local facade.
fn dispatch<V: Utility + Send + Sync>(req: &ValuationRequest, u: &RunUtility<V>) -> Vec<f64> {
    let n = u.n_clients();
    let mut rng = StdRng::seed_from_u64(req.seed);
    match req.estimator {
        Estimator::ExactMc => exact_mc_sv(u),
        Estimator::ExactCc => exact_cc_sv(u),
        Estimator::Ipss => {
            assert!(req.budget >= 1, "IPSS needs a budget of at least 1");
            ipss_values(u, &IpssConfig::new(req.budget), &mut rng)
        }
        Estimator::StratifiedMc => stratified_sampling_values(
            u,
            Scheme::MarginalContribution,
            &StratifiedConfig::uniform(n, req.budget),
            &mut rng,
        ),
        Estimator::StratifiedCc => stratified_sampling_values(
            u,
            Scheme::ComplementaryContribution,
            &StratifiedConfig::uniform(n, req.budget),
            &mut rng,
        ),
        Estimator::Owen => {
            // Budget ≈ q_nodes · samples_per_node · (n + 1) evaluations.
            let q_nodes = 4usize;
            let per_node = (req.budget / (q_nodes * (n + 1))).max(1);
            owen_sampling(u, &OwenConfig::new(q_nodes, per_node), &mut rng)
        }
        Estimator::BanzhafPruned => {
            assert!(
                req.budget >= 1,
                "pruned Banzhaf needs a budget of at least 1"
            );
            banzhaf_pruned(u, req.budget, &mut rng)
        }
        Estimator::Loo => leave_one_out(u),
    }
}

/// Run the requested estimator's *streaming* fold: every batch-boundary
/// snapshot is forwarded to the ticket's progress channel, and `rule`
/// decides whether to stop. Stopping is a clean [`Control::Stop`] return
/// at a batch boundary — no panic, no unwinding — so it composes with
/// the deadline/budget checkpoints (which still fire through the
/// [`RunUtility`] facade) and with coalescing, caching and retries
/// unchanged.
///
/// `ExactCc` and `Loo` have no incremental fold (a CC pair needs the
/// complement, evaluated half a sweep later; LOO is `n + 1` evaluations
/// total). They run the legacy estimator and emit one final snapshot
/// with zero half-widths — both are enumerations, not samplers — so the
/// "final snapshot equals the response" contract holds uniformly.
fn dispatch_streaming<V: Utility + Send + Sync>(
    req: &ValuationRequest,
    u: &RunUtility<V>,
    rule: StoppingRule,
    progress: &mpsc::Sender<ProgressSnapshot>,
) -> StreamingOutcome {
    let n = u.n_clients();
    let mut rng = StdRng::seed_from_u64(req.seed);
    let observe = |s: &ProgressSnapshot| {
        let _ = progress.send(s.clone()); // ticket may have been dropped
        if rule.should_stop(s) {
            Control::Stop
        } else {
            Control::Continue
        }
    };
    match req.estimator {
        Estimator::ExactMc => exact_mc_sv_streaming(u, observe),
        Estimator::Ipss => {
            assert!(req.budget >= 1, "IPSS needs a budget of at least 1");
            let cfg = IpssConfig::new(req.budget);
            match req.adaptive {
                Some(policy) => ipss_streaming_adaptive(u, &cfg, &policy, &mut rng, observe),
                None => ipss_streaming(u, &cfg, &mut rng, observe),
            }
        }
        Estimator::StratifiedMc | Estimator::StratifiedCc => {
            let scheme = if req.estimator == Estimator::StratifiedMc {
                Scheme::MarginalContribution
            } else {
                Scheme::ComplementaryContribution
            };
            match req.adaptive {
                Some(policy) => stratified_sampling_streaming_adaptive(
                    u, scheme, req.budget, &policy, &mut rng, observe,
                ),
                None => stratified_sampling_streaming(
                    u,
                    scheme,
                    &StratifiedConfig::uniform(n, req.budget),
                    &mut rng,
                    observe,
                ),
            }
        }
        Estimator::Owen => {
            let q_nodes = 4usize;
            let per_node = (req.budget / (q_nodes * (n + 1))).max(1);
            let cfg = OwenConfig::new(q_nodes, per_node);
            match req.adaptive {
                Some(policy) => {
                    owen_sampling_streaming_adaptive(u, &cfg, &policy, &mut rng, observe)
                }
                None => owen_sampling_streaming(u, &cfg, &mut rng, observe),
            }
        }
        Estimator::BanzhafPruned => {
            assert!(
                req.budget >= 1,
                "pruned Banzhaf needs a budget of at least 1"
            );
            banzhaf_pruned_streaming(u, req.budget, &mut rng, observe)
        }
        Estimator::ExactCc | Estimator::Loo => {
            let values = match req.estimator {
                Estimator::ExactCc => exact_cc_sv(u),
                _ => leave_one_out(u),
            };
            let snapshot = ProgressSnapshot {
                ci_halfwidths: vec![0.0; values.len()],
                values,
                samples_used: u.coalitions.load(Ordering::Relaxed) as usize,
                batches_done: u.batches.load(Ordering::Relaxed) as usize,
                allocation: None,
            };
            let _ = progress.send(snapshot.clone());
            StreamingOutcome::from_snapshot(snapshot, false)
        }
    }
}

type Reply = mpsc::Sender<Result<ValuationResponse, ValuationError>>;
type Job = (ValuationRequest, Reply, mpsc::Sender<ProgressSnapshot>);

/// The long-lived multi-valuation server — see the [module docs](self)
/// for the coalescing design and failure model. Construct with
/// [`ValuationServer::start`] (or [`ValuationServer::builder`] to attach
/// a trajectory-cache stats source, a [`FlushWindow`] or a
/// [`RetryPolicy`]), submit requests with [`ValuationServer::submit`] /
/// [`ValuationServer::call`], and stop with [`ValuationServer::shutdown`]
/// (dropping the server also shuts it down, draining in-flight tickets
/// with [`ValuationError::ServerShutdown`]).
pub struct ValuationServer<U: Utility + Send + Sync + 'static> {
    shared: Arc<Shared<U>>,
    tx: Option<mpsc::Sender<Job>>,
    dispatcher: Option<thread::JoinHandle<()>>,
}

/// Configures and starts a [`ValuationServer`].
pub struct ServerBuilder<U: Utility + Send + Sync + 'static> {
    utility: U,
    window: FlushWindow,
    retry: RetryPolicy,
    traj_stats: Option<Box<dyn Fn() -> TrajCacheStats + Send + Sync>>,
}

impl<U: Utility + Send + Sync + 'static> ServerBuilder<U> {
    /// Attach a trajectory-cache stats source (typically
    /// `move || cache.stats()` over the `Arc<TrajectoryCache>` handle the
    /// utility shares); its snapshots appear in [`ServiceStats::traj`].
    pub fn traj_stats(
        mut self,
        source: impl Fn() -> TrajCacheStats + Send + Sync + 'static,
    ) -> Self {
        self.traj_stats = Some(Box::new(source));
        self
    }

    /// Bound the time a parked batch waits on the barrier: flush once the
    /// oldest parked batch is `max_wait` old (see [`FlushWindow`]).
    pub fn flush_window(mut self, max_wait: Duration) -> Self {
        self.window.max_wait = Some(max_wait);
        self
    }

    /// Flush as soon as `max_parked` batches are parked (see
    /// [`FlushWindow`]).
    pub fn flush_after_parked(mut self, max_parked: usize) -> Self {
        self.window.max_parked = Some(max_parked);
        self
    }

    /// Override the retry/backoff schedule for poisoned flushes.
    pub fn retry_policy(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Spawn the dispatcher and return the running server.
    pub fn start(self) -> ValuationServer<U> {
        let shared = Arc::new(Shared {
            cached: CachedUtility::new(self.utility),
            state: Mutex::new(CoState::default()),
            cv: Condvar::new(),
            window: self.window,
            retry: self.retry,
            shutdown: AtomicBool::new(false),
            requests_done: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            traj_stats: self.traj_stats,
        });
        let (tx, rx) = mpsc::channel::<Job>();
        let dispatcher = {
            let shared = Arc::clone(&shared);
            thread::spawn(move || dispatcher_loop(shared, rx))
        };
        ValuationServer {
            shared,
            tx: Some(tx),
            dispatcher: Some(dispatcher),
        }
    }
}

/// Receive jobs, register each run, spawn its worker. A burst of pending
/// submissions is drained and *registered together* before any worker
/// spawns, so concurrent requests coalesce from their very first batch.
/// After shutdown, still-queued jobs are drained with the typed error
/// instead of spawning workers.
fn dispatcher_loop<U: Utility + Send + Sync + 'static>(
    shared: Arc<Shared<U>>,
    rx: mpsc::Receiver<Job>,
) {
    let mut workers: Vec<thread::JoinHandle<()>> = Vec::new();
    while let Ok(first) = rx.recv() {
        let mut burst = vec![first];
        while let Ok(job) = rx.try_recv() {
            burst.push(job);
        }
        if shared.is_shutdown() {
            for (_request, reply, _progress) in burst {
                let _ = reply.send(Err(ValuationError::ServerShutdown));
            }
            continue;
        }
        let guards: Vec<RunGuard<U>> = burst
            .iter()
            .map(|_| {
                shared.register();
                RunGuard(Arc::clone(&shared))
            })
            .collect();
        for ((request, reply, progress), guard) in burst.into_iter().zip(guards) {
            let shared = Arc::clone(&shared);
            workers.push(thread::spawn(move || {
                serve_one(shared, request, reply, progress, guard)
            }));
        }
        workers.retain(|w| !w.is_finished());
    }
    for w in workers {
        let _ = w.join();
    }
}

/// One worker: run the estimator under a quiet `catch_unwind`, convert
/// any abort or panic into the partial response or the typed error, and
/// deliver the result. Every code path sends exactly one reply.
fn serve_one<U: Utility + Send + Sync>(
    shared: Arc<Shared<U>>,
    request: ValuationRequest,
    reply: Reply,
    progress: mpsc::Sender<ProgressSnapshot>,
    guard: RunGuard<U>,
) {
    let start = Instant::now();
    let n = shared.cached.n_clients();
    let members: Vec<usize> = match request.clients {
        Some(s) if !s.is_subset_of(Coalition::full(n)) => {
            drop(guard);
            let _ = reply.send(Err(ValuationError::InvalidRequest {
                detail: format!("request.clients exceeds the utility's {n} clients"),
            }));
            return;
        }
        Some(s) if s.is_empty() => {
            drop(guard);
            let _ = reply.send(Err(ValuationError::InvalidRequest {
                detail: "request.clients must name at least one client".to_string(),
            }));
            return;
        }
        Some(s) => s.members().collect(),
        None => (0..n).collect(),
    };
    let record = request.on_limit == LimitPolicy::Partial
        && (request.deadline.is_some() || request.max_evals.is_some());
    let run = RunUtility {
        shared: Arc::clone(&shared),
        identity: members.len() == n,
        members,
        started: start,
        deadline: request.deadline,
        max_evals: request.max_evals,
        record,
        log: Mutex::new(Vec::new()),
        batches: AtomicU64::new(0),
        coalitions: AtomicU64::new(0),
        coalesced: AtomicU64::new(0),
        retries: AtomicU64::new(0),
        park_wait_max_ns: AtomicU64::new(0),
    };
    // An adaptive request without an explicit stopping rule still runs
    // the streaming fold (the planner lives at batch boundaries): it
    // streams under `stream_only`, never stopping early.
    let streaming_rule = match (request.stopping, request.adaptive) {
        (Some(rule), _) => Some(rule),
        (None, Some(_)) => Some(StoppingRule::stream_only()),
        (None, None) => None,
    };
    let outcome = quiet::catch_quiet(|| match streaming_rule {
        Some(rule) => {
            let out = dispatch_streaming(&request, &run, rule, &progress);
            let stopped_early = out.stopped_early;
            let snapshot = ProgressSnapshot {
                values: out.values,
                ci_halfwidths: out.ci_halfwidths,
                samples_used: out.samples_used,
                batches_done: out.batches_done,
                allocation: out.allocation,
            };
            (snapshot.values.clone(), Some(snapshot), stopped_early)
        }
        None => (dispatch(&request, &run), None, false),
    });
    let wall_time = start.elapsed();
    drop(guard); // deregister before snapshotting stats
    shared.requests_done.fetch_add(1, Ordering::Relaxed);

    let respond = |values: Vec<f64>,
                   partial: bool,
                   progress: Option<ProgressSnapshot>,
                   stopped_early: bool| ValuationResponse {
        clients: run.members.clone(),
        values,
        wall_time,
        run: run.run_stats(partial, stopped_early),
        service: shared.stats(),
        request: request.clone(),
        progress,
    };
    let result = match outcome {
        Ok((values, snapshot, stopped_early)) => {
            Ok(respond(values, false, snapshot, stopped_early))
        }
        Err(payload) => match payload.downcast::<ServiceAbort>() {
            Ok(reason) => match (*reason, request.on_limit) {
                (ServiceAbort::Fault(e), _) => Err(e),
                (
                    ServiceAbort::Deadline { .. } | ServiceAbort::Budget { .. },
                    LimitPolicy::Partial,
                ) => {
                    let log = run.log.lock().unwrap_or_else(PoisonError::into_inner);
                    Ok(respond(
                        partial_prefix_fold(run.members.len(), &log),
                        true,
                        None,
                        false,
                    ))
                }
                (ServiceAbort::Deadline { deadline, elapsed }, LimitPolicy::Fail) => {
                    Err(ValuationError::DeadlineExceeded { deadline, elapsed })
                }
                (
                    ServiceAbort::Budget {
                        consumed,
                        max_evals,
                        next_batch,
                    },
                    LimitPolicy::Fail,
                ) => Err(ValuationError::BudgetExhausted {
                    consumed,
                    max_evals,
                    next_batch,
                }),
            },
            Err(payload) => Err(ValuationError::EstimatorPanicked {
                detail: quiet::panic_message(payload.as_ref()),
            }),
        },
    };
    let _ = reply.send(result); // submitter may have dropped the ticket
}

impl<U: Utility + Send + Sync + 'static> ValuationServer<U> {
    /// Start a server over `utility` with default settings. The server
    /// wraps the utility in its own shared [`CachedUtility`]; hand it the
    /// innermost (possibly parallel) utility, not a pre-cached one.
    pub fn start(utility: U) -> Self {
        Self::builder(utility).start()
    }

    /// Configure before starting (flush window, retry policy,
    /// trajectory-cache stats source).
    pub fn builder(utility: U) -> ServerBuilder<U> {
        ServerBuilder {
            utility,
            window: FlushWindow::default(),
            retry: RetryPolicy::default(),
            traj_stats: None,
        }
    }

    /// Enqueue a request; returns a [`Ticket`] to wait on. Submission
    /// never blocks on the valuation itself. Submitting to a server that
    /// has shut down yields a ticket pre-resolved with
    /// [`ValuationError::ServerShutdown`].
    pub fn submit(&self, request: ValuationRequest) -> Ticket {
        let (tx, rx) = mpsc::channel();
        let (progress_tx, progress_rx) = mpsc::channel();
        let delivered = self
            .tx
            .as_ref()
            .map(|jobs| jobs.send((request, tx.clone(), progress_tx)).is_ok())
            .unwrap_or(false);
        if !delivered {
            let _ = tx.send(Err(ValuationError::ServerShutdown));
        }
        Ticket { rx, progress_rx }
    }

    /// Submit and wait — the blocking single-request convenience.
    pub fn call(&self, request: ValuationRequest) -> Result<ValuationResponse, ValuationError> {
        self.submit(request).wait()
    }

    /// Cumulative service statistics (also snapshotted per response).
    pub fn stats(&self) -> ServiceStats {
        self.shared.stats()
    }

    /// Stop the server: in-flight runs abort at their next batch
    /// boundary, every outstanding ticket resolves with
    /// [`ValuationError::ServerShutdown`], and all worker threads are
    /// joined before this returns.
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    /// Initiate shutdown through a shared reference: sets the shutdown
    /// flag and wakes parked workers, so in-flight runs abort at their
    /// next batch boundary and *new* submissions resolve with
    /// [`ValuationError::ServerShutdown`] — but does **not** join
    /// threads. Needed by owners that hold the server behind `Arc` (e.g.
    /// a network transport reacting to SIGTERM while connection handlers
    /// still share the server); the eventual [`shutdown`] or drop
    /// completes the join.
    ///
    /// [`shutdown`]: ValuationServer::shutdown
    pub fn begin_shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.cv.notify_all();
    }

    fn shutdown_in_place(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.cv.notify_all();
        drop(self.tx.take());
        if let Some(d) = self.dispatcher.take() {
            let _ = d.join();
        }
    }
}

impl<U: Utility + Send + Sync + 'static> Drop for ValuationServer<U> {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

#[cfg(test)]
// Tests assert invariants; an unwrap that trips IS the test failing.
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::utility::{HashUtility, TableUtility};

    /// Unwrap a service result in tests (plain `panic!` keeps the module
    /// clean under `deny(clippy::unwrap_used, clippy::expect_used)`).
    fn ok(result: Result<ValuationResponse, ValuationError>) -> ValuationResponse {
        match result {
            Ok(resp) => resp,
            Err(e) => panic!("request failed: {e}"),
        }
    }

    #[test]
    fn single_request_matches_direct_execution() {
        let server = ValuationServer::start(TableUtility::paper_table1());
        let resp = ok(server.call(ValuationRequest::new(Estimator::ExactMc, 0, 0)));
        assert_eq!(resp.values, exact_mc_sv(&TableUtility::paper_table1()));
        assert_eq!(resp.clients, vec![0, 1, 2]);
        assert_eq!(resp.service.eval.evaluations, 8);
        assert!(resp.run.batches >= 1);
        assert_eq!(
            resp.run.coalesced_batches, 0,
            "a lone run coalesces with no one"
        );
        assert!(!resp.run.partial);
        assert_eq!(resp.run.retries, 0);
        server.shutdown();
    }

    #[test]
    fn concurrent_runs_dedup_through_the_shared_cache() {
        let server = ValuationServer::start(HashUtility { n: 8, seed: 3 });
        let tickets: Vec<Ticket> = (0..3)
            .map(|i| server.submit(ValuationRequest::new(Estimator::ExactMc, 0, i)))
            .collect();
        let responses: Vec<ValuationResponse> = tickets.into_iter().map(|t| ok(t.wait())).collect();
        let expected = exact_mc_sv(&HashUtility { n: 8, seed: 3 });
        for resp in &responses {
            assert_eq!(resp.values, expected, "bit-identical to solo execution");
        }
        let stats = server.stats();
        assert_eq!(stats.requests, 3);
        // Three identical sweeps over 2^8 coalitions trained each model once.
        assert_eq!(stats.eval.evaluations, 1 << 8);
        // Flush-level dedup forwards between 2^8 (all three sweeps merged
        // into one flush) and 3·2^8 (no cross-run coalescing) lookups.
        assert!((1 << 8..=3 * (1 << 8)).contains(&stats.eval.lookups));
        assert_eq!(stats.distinct_coalitions, stats.eval.lookups);
        assert_eq!(stats.failed_flushes, 0);
        assert_eq!(stats.retries, 0);
        server.shutdown();
    }

    #[test]
    fn concurrent_runs_coalesce_into_merged_flushes() {
        // Deterministic barrier check: with a burst of identical sweeps
        // registered together, at least some flushes must merge batches
        // from more than one run.
        let server = ValuationServer::start(HashUtility { n: 7, seed: 9 });
        let tickets: Vec<Ticket> = (0..4)
            .map(|i| server.submit(ValuationRequest::new(Estimator::ExactCc, 0, i)))
            .collect();
        let responses: Vec<ValuationResponse> = tickets.into_iter().map(|t| ok(t.wait())).collect();
        let stats = server.stats();
        assert!(
            stats.merged_batches > stats.flushes,
            "some flush must merge more than one parked batch \
             (merged {} over {} flushes)",
            stats.merged_batches,
            stats.flushes
        );
        assert!(
            responses.iter().any(|r| r.run.coalesced_batches > 0),
            "at least one run must observe cross-run coalescing"
        );
        server.shutdown();
    }

    #[test]
    fn subgame_request_values_the_named_clients() {
        // The sub-game on {1, 3, 4} of an additive utility has exact
        // values equal to the members' weights.
        let weights = vec![0.1, 0.2, 0.3, 0.4, 0.5];
        let u = crate::utility::AdditiveUtility::new(0.0, weights.clone());
        let server = ValuationServer::start(u);
        let resp = ok(server.call(
            ValuationRequest::new(Estimator::ExactMc, 0, 0)
                .for_clients(Coalition::from_members([1, 3, 4])),
        ));
        assert_eq!(resp.clients, vec![1, 3, 4]);
        for (pos, &i) in resp.clients.iter().enumerate() {
            assert!(
                (resp.values[pos] - weights[i]).abs() < 1e-12,
                "client {i}: {} vs {}",
                resp.values[pos],
                weights[i]
            );
        }
        // Sub-game coalitions were evaluated as global masks: the shared
        // cache holds subsets of {1,3,4}, reusable by any later request.
        assert_eq!(server.stats().eval.evaluations, 8);
        server.shutdown();
    }

    #[test]
    fn invalid_requests_fail_with_the_typed_error() {
        let server = ValuationServer::start(TableUtility::paper_table1());
        let empty = server
            .call(ValuationRequest::new(Estimator::Loo, 0, 0).for_clients(Coalition::empty()));
        assert!(matches!(empty, Err(ValuationError::InvalidRequest { .. })));
        let oob = server.call(
            ValuationRequest::new(Estimator::Loo, 0, 0)
                .for_clients(Coalition::from_members([0, 5])),
        );
        assert!(matches!(oob, Err(ValuationError::InvalidRequest { .. })));
        // The server stays healthy after rejecting malformed requests.
        let resp = ok(server.call(ValuationRequest::new(Estimator::Loo, 0, 0)));
        assert_eq!(resp.values.len(), 3);
        server.shutdown();
    }

    #[test]
    fn mixed_estimators_share_overlapping_coalitions() {
        let server = ValuationServer::start(HashUtility { n: 6, seed: 4 });
        let tickets = vec![
            server.submit(ValuationRequest::new(Estimator::ExactMc, 0, 1)),
            server.submit(ValuationRequest::new(Estimator::Ipss, 20, 2)),
            server.submit(ValuationRequest::new(Estimator::Loo, 0, 3)),
            server.submit(ValuationRequest::new(Estimator::StratifiedMc, 18, 4)),
            server.submit(ValuationRequest::new(Estimator::Owen, 56, 5)),
            server.submit(ValuationRequest::new(Estimator::BanzhafPruned, 20, 6)),
        ];
        let responses: Vec<ValuationResponse> = tickets.into_iter().map(|t| ok(t.wait())).collect();
        assert_eq!(responses.len(), 6);
        for resp in &responses {
            assert_eq!(resp.values.len(), 6);
        }
        // Everything any estimator touched is a subset of the exact
        // sweep's 2^6 coalitions, so the shared cache trained at most 64.
        let stats = server.stats();
        assert_eq!(stats.requests, 6);
        assert_eq!(stats.eval.evaluations, 1 << 6);
        server.shutdown();
    }

    #[test]
    fn sampling_estimators_are_deterministic_under_coalescing() {
        // The same (estimator, budget, seed) run twice — once alone, once
        // amid concurrent traffic — must return bit-identical values.
        let solo = {
            let server = ValuationServer::start(HashUtility { n: 8, seed: 11 });
            ok(server.call(ValuationRequest::new(Estimator::Ipss, 30, 7))).values
        };
        let server = ValuationServer::start(HashUtility { n: 8, seed: 11 });
        let tickets = vec![
            server.submit(ValuationRequest::new(Estimator::Ipss, 30, 7)),
            server.submit(ValuationRequest::new(Estimator::ExactMc, 0, 1)),
            server.submit(ValuationRequest::new(Estimator::StratifiedCc, 24, 9)),
        ];
        let responses: Vec<ValuationResponse> = tickets.into_iter().map(|t| ok(t.wait())).collect();
        assert_eq!(responses[0].values, solo);
        server.shutdown();
    }

    #[test]
    fn stats_snapshot_is_attached_to_each_response() {
        let server = ValuationServer::start(TableUtility::paper_table1());
        let resp = ok(server.call(ValuationRequest::new(Estimator::Loo, 0, 0)));
        assert_eq!(resp.service.requests, 1);
        assert!(resp.service.flushes >= 1);
        assert!(resp.service.traj.is_none(), "no traj source installed");
        assert!(resp.wall_time > Duration::ZERO);
        server.shutdown();
    }

    #[test]
    fn traj_stats_source_is_surfaced() {
        let server = ValuationServer::builder(TableUtility::paper_table1())
            .traj_stats(|| TrajCacheStats {
                probes: 5,
                hits: 3,
                ..Default::default()
            })
            .start();
        let stats = server.stats();
        match stats.traj {
            Some(traj) => assert_eq!(traj.probes, 5),
            None => panic!("traj source installed but not surfaced"),
        }
        server.shutdown();
    }

    #[test]
    fn streaming_ticket_snapshots_are_monotone_and_end_at_the_response() {
        // Satellite: `Ticket::wait_timeout` under streaming — drain
        // progress in a poll loop, check monotonicity in samples_used,
        // and check the final snapshot equals the returned response.
        let server = ValuationServer::start(HashUtility { n: 7, seed: 3 });
        let ticket = server.submit(
            ValuationRequest::new(Estimator::Owen, 640, 5)
                .with_stopping(StoppingRule::stream_only()),
        );
        let mut snapshots: Vec<ProgressSnapshot> = Vec::new();
        let result = loop {
            snapshots.extend(ticket.progress());
            if let Some(result) = ticket.wait_timeout(Duration::from_millis(20)) {
                break result;
            }
        };
        snapshots.extend(ticket.progress()); // events sent before the reply
        let resp = ok(result);
        assert!(!snapshots.is_empty());
        for w in snapshots.windows(2) {
            assert!(
                w[0].samples_used <= w[1].samples_used,
                "snapshots must be monotone in samples_used"
            );
        }
        let last = match snapshots.last() {
            Some(s) => s,
            None => panic!("no snapshots"),
        };
        assert_eq!(last.values, resp.values, "final snapshot == response");
        assert_eq!(resp.progress.as_ref(), Some(last));
        assert!(!resp.run.stopped_early, "stream_only never stops early");
        server.shutdown();
    }

    #[test]
    fn ci_stopped_run_is_a_bit_identical_prefix_of_the_full_run() {
        // The determinism contract through the service: a CiAtMost-stopped
        // run's values bit-equal the full run's snapshot at the same
        // samples_used, and stopping spends strictly fewer evaluations.
        let full_server = ValuationServer::start(HashUtility { n: 7, seed: 9 });
        let full_ticket = full_server.submit(
            ValuationRequest::new(Estimator::Owen, 1280, 21)
                .with_stopping(StoppingRule::stream_only()),
        );
        let full = loop {
            if let Some(result) = full_ticket.wait_timeout(Duration::from_millis(50)) {
                break ok(result);
            }
        };
        let full_snapshots = full_ticket.progress();
        full_server.shutdown();

        // Stop at twice the full run's final width — reachable early.
        let eps = full
            .progress
            .as_ref()
            .and_then(|s| s.max_halfwidth())
            .map(|h| h * 2.0)
            .unwrap_or(f64::INFINITY);
        let server = ValuationServer::start(HashUtility { n: 7, seed: 9 });
        let resp = ok(server.call(
            ValuationRequest::new(Estimator::Owen, 1280, 21)
                .with_stopping(StoppingRule::ci_at_most(eps)),
        ));
        server.shutdown();
        assert!(resp.run.stopped_early, "eps = {eps} should fire early");
        let stopped_at = match resp.progress.as_ref() {
            Some(s) => s.samples_used,
            None => panic!("streaming response must carry a snapshot"),
        };
        let twin = full_snapshots.iter().find(|s| s.samples_used == stopped_at);
        match twin {
            Some(s) => assert_eq!(resp.values, s.values, "bit-identical prefix"),
            None => panic!("no full-run snapshot at samples_used = {stopped_at}"),
        }
        assert!(
            stopped_at < full.progress.map(|s| s.samples_used).unwrap_or(0),
            "stopping must save evaluations"
        );
    }

    #[test]
    fn max_samples_rule_caps_a_streaming_run() {
        let server = ValuationServer::start(HashUtility { n: 6, seed: 2 });
        let resp = ok(server.call(
            ValuationRequest::new(Estimator::StratifiedMc, 60, 4)
                .with_stopping(StoppingRule::max_samples(20)),
        ));
        assert!(resp.run.stopped_early);
        match resp.progress {
            Some(s) => assert!(s.samples_used >= 20, "fires at the boundary"),
            None => panic!("streaming response must carry a snapshot"),
        }
        // Non-streaming twin for contrast: classic path, no snapshot.
        let classic = ok(server.call(ValuationRequest::new(Estimator::StratifiedMc, 60, 4)));
        assert!(classic.progress.is_none());
        assert!(!classic.run.stopped_early);
        server.shutdown();
    }

    #[test]
    fn adaptive_request_streams_and_carries_the_allocation() {
        use crate::adaptive::AdaptivePolicy;
        let server = ValuationServer::start(HashUtility { n: 6, seed: 8 });
        // No explicit stopping rule: adaptive alone must force streaming.
        let ticket = server.submit(
            ValuationRequest::new(Estimator::StratifiedMc, 48, 9)
                .with_adaptive(AdaptivePolicy::default()),
        );
        let mut snapshots: Vec<ProgressSnapshot> = Vec::new();
        let result = loop {
            snapshots.extend(ticket.progress());
            if let Some(result) = ticket.wait_timeout(Duration::from_millis(20)) {
                break result;
            }
        };
        snapshots.extend(ticket.progress());
        let resp = ok(result);
        assert!(!resp.run.stopped_early);
        let final_alloc = match resp.progress.as_ref().and_then(|s| s.allocation.as_ref()) {
            Some(a) => a.clone(),
            None => panic!("adaptive response must carry the allocation"),
        };
        assert_eq!(final_alloc.iter().sum::<usize>(), 48);
        // Every streamed snapshot carries the (monotone) allocation too.
        assert!(snapshots.iter().all(|s| s.allocation.is_some()));

        // Same request again: the allocation sequence is deterministic.
        let twin = ok(server.call(
            ValuationRequest::new(Estimator::StratifiedMc, 48, 9)
                .with_adaptive(AdaptivePolicy::default()),
        ));
        assert_eq!(twin.values, resp.values);
        assert_eq!(
            twin.progress.as_ref().and_then(|s| s.allocation.as_ref()),
            Some(&final_alloc)
        );

        // And it composes with an early-stopping rule unchanged.
        let stopped = ok(server.call(
            ValuationRequest::new(Estimator::StratifiedMc, 48, 9)
                .with_adaptive(AdaptivePolicy::default())
                .with_stopping(StoppingRule::max_samples(16)),
        ));
        assert!(stopped.run.stopped_early);
        match stopped
            .progress
            .as_ref()
            .and_then(|s| s.allocation.as_ref())
        {
            Some(a) => assert!(a.iter().sum::<usize>() < 48),
            None => panic!("stopped adaptive response must carry the allocation"),
        }
        server.shutdown();
    }

    #[test]
    fn streaming_exact_cc_and_loo_emit_one_final_snapshot() {
        let server = ValuationServer::start(TableUtility::paper_table1());
        for estimator in [Estimator::ExactCc, Estimator::Loo] {
            let ticket = server.submit(
                ValuationRequest::new(estimator, 0, 0)
                    .with_stopping(StoppingRule::ci_at_most(1e-3)),
            );
            let resp = loop {
                if let Some(result) = ticket.wait_timeout(Duration::from_millis(50)) {
                    break ok(result);
                }
            };
            let events = ticket.progress();
            assert_eq!(events.len(), 1, "{estimator:?}");
            assert_eq!(events[0].values, resp.values);
            assert!(events[0].ci_halfwidths.iter().all(|&h| h == 0.0));
            assert!(!resp.run.stopped_early, "enumerations never stop early");
        }
        server.shutdown();
    }

    #[test]
    fn partial_prefix_fold_of_a_full_exact_log_recovers_loo_like_pairs() {
        // Sanity anchor on the fold itself: over the full 2^n log of an
        // additive utility, every evaluated pair has the same marginal
        // contribution w_i, so the stratified-mean fold returns exactly
        // the weights.
        let weights = [0.25, 0.5, 1.0];
        let u = crate::utility::AdditiveUtility::new(0.0, weights.to_vec());
        let log: Vec<(Coalition, f64)> = crate::coalition::all_subsets(3)
            .map(|s| (s, u.eval(s)))
            .collect();
        let phi = partial_prefix_fold(3, &log);
        for (i, &w) in weights.iter().enumerate() {
            assert!((phi[i] - w).abs() < 1e-12, "client {i}: {} vs {w}", phi[i]);
        }
        // Prefix property: the fold over the empty log is all zeros.
        assert_eq!(partial_prefix_fold(3, &[]), vec![0.0; 3]);
    }
}
